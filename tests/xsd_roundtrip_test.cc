// Round-trip tests for the bidirectional XSD bridge: DTD → Schema →
// text → Schema → DTD preserves the language (exactly for the operator
// bounds DTDs can express).

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "dtd/glushkov.h"
#include "xsd/from_dtd.h"
#include "xsd/parser.h"
#include "xsd/to_dtd.h"
#include "xsd/writer.h"

namespace dtdevolve::xsd {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

/// DTD → XSD text → Schema → DTD.
dtd::Dtd RoundTrip(const dtd::Dtd& dtd) {
  std::string text = WriteSchema(FromDtd(dtd));
  StatusOr<Schema> schema = ParseSchema(text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString() << "\n" << text;
  StatusOr<dtd::Dtd> back = ToDtd(*schema);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return std::move(*back);
}

class DtdXsdRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DtdXsdRoundTrip, PreservesEveryDeclarationLanguage) {
  dtd::Dtd original = MakeDtd(GetParam());
  dtd::Dtd back = RoundTrip(original);
  ASSERT_EQ(back.ElementNames().size(), original.ElementNames().size());
  EXPECT_EQ(back.root_name(), original.root_name());
  for (const std::string& name : original.ElementNames()) {
    const dtd::ElementDecl* a = original.FindElement(name);
    const dtd::ElementDecl* b = back.FindElement(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_TRUE(dtd::LanguageEquivalent(*a->content, *b->content))
        << name << ": " << a->content->ToString() << " vs "
        << b->content->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dtds, DtdXsdRoundTrip,
    ::testing::Values(
        R"(<!ELEMENT a (b, c)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>)",
        R"(<!ELEMENT a ((b,c)*,(d|e))> <!ELEMENT b (#PCDATA)>
           <!ELEMENT c (#PCDATA)> <!ELEMENT d (#PCDATA)> <!ELEMENT e EMPTY>)",
        R"(<!ELEMENT a (b?, c*, d+)> <!ELEMENT b (#PCDATA)>
           <!ELEMENT c (#PCDATA)> <!ELEMENT d (#PCDATA)>)",
        R"(<!ELEMENT p (#PCDATA|em|strong)*> <!ELEMENT em (#PCDATA)>
           <!ELEMENT strong (#PCDATA)>)",
        R"(<!ELEMENT r (s | (t, u) | v+)> <!ELEMENT s (#PCDATA)>
           <!ELEMENT t (#PCDATA)> <!ELEMENT u (#PCDATA)>
           <!ELEMENT v (#PCDATA)>)",
        R"(<!ELEMENT x ANY> <!ELEMENT y (x)>)"));

TEST(DtdXsdRoundTrip, AttributesSurvive) {
  dtd::Dtd original = MakeDtd(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id ID #REQUIRED
                kind (x|y) "x"
                ver CDATA #FIXED "1"
                note CDATA #IMPLIED>
  )");
  dtd::Dtd back = RoundTrip(original);
  const dtd::ElementDecl* decl = back.FindElement("a");
  ASSERT_EQ(decl->attributes.size(), 4u);
  EXPECT_EQ(decl->attributes[0].type, "ID");
  EXPECT_EQ(decl->attributes[0].default_kind,
            dtd::AttributeDecl::DefaultKind::kRequired);
  EXPECT_EQ(decl->attributes[1].type, "(x|y)");
  EXPECT_EQ(decl->attributes[1].default_value, "x");
  EXPECT_EQ(decl->attributes[2].default_kind,
            dtd::AttributeDecl::DefaultKind::kFixed);
  EXPECT_EQ(decl->attributes[3].default_kind,
            dtd::AttributeDecl::DefaultKind::kImplied);
}

TEST(ToDtdTest, FiniteBoundsExpandExactly) {
  Schema schema;
  schema.set_root_name("a");
  ElementDef& a = schema.AddElement("a");
  a.content = ElementDef::ContentKind::kComplex;
  a.particle = Particle::ElementRef("b", {2, 3});
  schema.AddElement("b").content = ElementDef::ContentKind::kSimple;

  StatusOr<dtd::Dtd> dtd = ToDtd(schema);
  ASSERT_TRUE(dtd.ok());
  const dtd::ContentModel& model = *dtd->FindElement("a")->content;
  dtd::Automaton automaton = dtd::Automaton::Build(model);
  EXPECT_FALSE(automaton.Accepts({"b"}));
  EXPECT_TRUE(automaton.Accepts({"b", "b"}));
  EXPECT_TRUE(automaton.Accepts({"b", "b", "b"}));
  EXPECT_FALSE(automaton.Accepts({"b", "b", "b", "b"}));
}

TEST(ToDtdTest, LargeBoundsWidenMonotonically) {
  Schema schema;
  schema.set_root_name("a");
  ElementDef& a = schema.AddElement("a");
  a.content = ElementDef::ContentKind::kComplex;
  a.particle = Particle::ElementRef("b", {2, 100});
  schema.AddElement("b").content = ElementDef::ContentKind::kSimple;

  StatusOr<dtd::Dtd> dtd = ToDtd(schema);
  ASSERT_TRUE(dtd.ok());
  dtd::Automaton automaton =
      dtd::Automaton::Build(*dtd->FindElement("a")->content);
  // Widening: everything in {2..100} must still be accepted.
  EXPECT_TRUE(automaton.Accepts({"b", "b"}));
  EXPECT_TRUE(automaton.Accepts(std::vector<std::string>(50, "b")));
}

TEST(ParseSchemaTest, RejectsUnsupportedConstructs) {
  EXPECT_FALSE(ParseSchema("<not-a-schema/>").ok());
  EXPECT_FALSE(ParseSchema("<xs:schema "
                           "xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"/>")
                   .ok());
  EXPECT_FALSE(
      ParseSchema("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
                  "<xs:complexType name=\"t\"/></xs:schema>")
          .ok());
  // Local element declarations (venetian blind style) are unsupported.
  EXPECT_FALSE(
      ParseSchema("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
                  "<xs:element name=\"a\"><xs:complexType><xs:sequence>"
                  "<xs:element name=\"local\" type=\"xs:string\"/>"
                  "</xs:sequence></xs:complexType></xs:element></xs:schema>")
          .ok());
}

TEST(ParseSchemaTest, ToleratesAnnotations) {
  StatusOr<Schema> schema = ParseSchema(
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
      "<xs:annotation/>"
      "<xs:element name=\"a\" type=\"xs:string\"/></xs:schema>");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->root_name(), "a");
}

}  // namespace
}  // namespace dtdevolve::xsd
