#include <gtest/gtest.h>

#include "evolve/structure_builder.h"

namespace dtdevolve::evolve {
namespace {

ElementStats StatsFromSequences(
    const std::vector<std::pair<std::vector<std::string>, uint32_t>>& seqs,
    uint32_t text_instances = 0) {
  ElementStats stats;
  for (const auto& [tags, count] : seqs) {
    for (uint32_t i = 0; i < count; ++i) {
      stats.RecordInstance(tags, /*locally_valid=*/false, false);
    }
  }
  for (uint32_t i = 0; i < text_instances; ++i) {
    stats.RecordInstance({}, false, /*has_text=*/true);
  }
  return stats;
}

TEST(StructureBuilderTest, NothingRecordedReturnsNull) {
  ElementStats stats;
  BuildOutcome outcome = BuildElementStructure(stats);
  EXPECT_EQ(outcome.model, nullptr);
}

TEST(StructureBuilderTest, SimpleAnd) {
  ElementStats stats = StatsFromSequences({{{"x", "y"}, 10}});
  BuildOutcome outcome = BuildElementStructure(stats);
  ASSERT_NE(outcome.model, nullptr);
  EXPECT_EQ(outcome.model->ToString(), "(x,y)");
  EXPECT_EQ(outcome.frequent_sequences, 1u);
  EXPECT_EQ(outcome.discarded_sequences, 0u);
  EXPECT_FALSE(outcome.trace.empty());
}

TEST(StructureBuilderTest, TextOnlyBecomesPcdata) {
  ElementStats stats = StatsFromSequences({}, /*text_instances=*/5);
  BuildOutcome outcome = BuildElementStructure(stats);
  ASSERT_NE(outcome.model, nullptr);
  EXPECT_EQ(outcome.model->ToString(), "(#PCDATA)");
}

TEST(StructureBuilderTest, NoContentBecomesEmpty) {
  ElementStats stats;
  for (int i = 0; i < 5; ++i) stats.RecordInstance({}, false, false);
  BuildOutcome outcome = BuildElementStructure(stats);
  ASSERT_NE(outcome.model, nullptr);
  EXPECT_EQ(outcome.model->ToString(), "EMPTY");
}

TEST(StructureBuilderTest, TextPlusElementsBecomesMixed) {
  ElementStats stats;
  for (int i = 0; i < 5; ++i) {
    stats.RecordInstance({"em"}, false, /*has_text=*/true);
  }
  BuildOutcome outcome = BuildElementStructure(stats);
  ASSERT_NE(outcome.model, nullptr);
  EXPECT_EQ(outcome.model->ToString(), "(#PCDATA|em)*");
}

TEST(StructureBuilderTest, MuDiscardsRareSequences) {
  ElementStats stats =
      StatsFromSequences({{{"x", "y"}, 95}, {{"noise"}, 5}});
  BuildOptions options;
  options.min_support = 0.1;
  BuildOutcome outcome = BuildElementStructure(stats, options);
  ASSERT_NE(outcome.model, nullptr);
  EXPECT_EQ(outcome.model->ToString(), "(x,y)");
  EXPECT_EQ(outcome.frequent_sequences, 1u);
  EXPECT_EQ(outcome.discarded_sequences, 1u);
}

TEST(StructureBuilderTest, MuZeroKeepsEverything) {
  ElementStats stats =
      StatsFromSequences({{{"x", "y"}, 95}, {{"noise"}, 5}});
  BuildOptions options;
  options.min_support = 0.0;
  BuildOutcome outcome = BuildElementStructure(stats, options);
  ASSERT_NE(outcome.model, nullptr);
  EXPECT_TRUE(outcome.model->Mentions("noise"));
}

TEST(StructureBuilderTest, OrAblationFlag) {
  ElementStats stats = StatsFromSequences({{{"d"}, 5}, {{"e"}, 5}});
  BuildOptions with_or;
  BuildOutcome or_outcome = BuildElementStructure(stats, with_or);
  EXPECT_EQ(or_outcome.model->ToString(), "(d|e)");

  BuildOptions without_or;
  without_or.enable_or = false;
  BuildOutcome no_or = BuildElementStructure(stats, without_or);
  EXPECT_EQ(no_or.model->ToString(), "(d?,e?)");
}

TEST(StructureBuilderTest, PaperExample5) {
  ElementStats stats = StatsFromSequences(
      {{{"b", "c", "b", "c", "d"}, 10}, {{"b", "c", "b", "c", "e"}, 10}});
  BuildOutcome outcome = BuildElementStructure(stats);
  ASSERT_NE(outcome.model, nullptr);
  EXPECT_EQ(outcome.model->ToString(), "((b,c)*,(d|e))");
}

}  // namespace
}  // namespace dtdevolve::evolve
