#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xsd/from_dtd.h"
#include "xsd/writer.h"

namespace dtdevolve::xsd {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

TEST(FromDtdTest, SequenceAndOccurrences) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (b, c?, d*, e+)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e (#PCDATA)>
  )");
  Schema schema = FromDtd(dtd);
  EXPECT_EQ(schema.root_name(), "a");
  const ElementDef* a = schema.FindElement("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->content, ElementDef::ContentKind::kComplex);
  ASSERT_NE(a->particle, nullptr);
  EXPECT_EQ(a->particle->kind(), Particle::Kind::kSequence);
  const auto& children = a->particle->children();
  ASSERT_EQ(children.size(), 4u);
  EXPECT_EQ(children[0]->occurs(), (Occurs{1, 1}));
  EXPECT_EQ(children[1]->occurs(), (Occurs{0, 1}));
  EXPECT_EQ(children[2]->occurs(), (Occurs{0, Occurs::kUnbounded}));
  EXPECT_EQ(children[3]->occurs(), (Occurs{1, Occurs::kUnbounded}));
  EXPECT_EQ(schema.FindElement("b")->content,
            ElementDef::ContentKind::kSimple);
}

TEST(FromDtdTest, ChoiceAndGroups) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a ((b,c)*,(d|e))>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e (#PCDATA)>
  )");
  Schema schema = FromDtd(dtd);
  const ElementDef* a = schema.FindElement("a");
  ASSERT_EQ(a->particle->kind(), Particle::Kind::kSequence);
  const auto& children = a->particle->children();
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->kind(), Particle::Kind::kSequence);
  EXPECT_EQ(children[0]->occurs(), (Occurs{0, Occurs::kUnbounded}));
  EXPECT_EQ(children[1]->kind(), Particle::Kind::kChoice);
}

TEST(FromDtdTest, SpecialContentKinds) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT r (t, br, any, p)>
    <!ELEMENT t (#PCDATA)>
    <!ELEMENT br EMPTY>
    <!ELEMENT any ANY>
    <!ELEMENT p (#PCDATA|em)*>
    <!ELEMENT em (#PCDATA)>
  )");
  Schema schema = FromDtd(dtd);
  EXPECT_EQ(schema.FindElement("t")->content, ElementDef::ContentKind::kSimple);
  EXPECT_EQ(schema.FindElement("br")->content, ElementDef::ContentKind::kEmpty);
  EXPECT_EQ(schema.FindElement("any")->content, ElementDef::ContentKind::kAny);
  const ElementDef* p = schema.FindElement("p");
  EXPECT_EQ(p->content, ElementDef::ContentKind::kMixed);
  ASSERT_NE(p->particle, nullptr);
  EXPECT_EQ(p->particle->occurs().max, Occurs::kUnbounded);
}

TEST(FromDtdTest, Attributes) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id ID #REQUIRED
                kind (x|y) "x"
                ver CDATA #FIXED "1"
                note CDATA #IMPLIED>
  )");
  Schema schema = FromDtd(dtd);
  const ElementDef* a = schema.FindElement("a");
  ASSERT_EQ(a->attributes.size(), 4u);
  EXPECT_EQ(a->attributes[0].type, "xs:ID");
  EXPECT_TRUE(a->attributes[0].required);
  EXPECT_EQ(a->attributes[1].enumeration,
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(a->attributes[1].default_value, "x");
  EXPECT_EQ(a->attributes[2].fixed_value, "1");
  EXPECT_EQ(a->attributes[3].type, "xs:string");
  EXPECT_FALSE(a->attributes[3].required);
}

TEST(WriterTest, OutputIsWellFormedXml) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a ((b,c)*,(d|e),f?)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA|em)*>
    <!ELEMENT d EMPTY>
    <!ELEMENT e ANY>
    <!ELEMENT em (#PCDATA)>
    <!ELEMENT f (#PCDATA)>
    <!ATTLIST a id ID #REQUIRED kind (x|y) "x">
  )");
  std::string text = WriteSchema(FromDtd(dtd));
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << text;
  EXPECT_EQ(doc->root().tag(), "xs:schema");
  // Root element is declared first.
  const auto elements = doc->root().ChildElements();
  ASSERT_FALSE(elements.empty());
  EXPECT_EQ(*elements[0]->FindAttribute("name"), "a");
  // Occurrence attributes rendered.
  EXPECT_NE(text.find("maxOccurs=\"unbounded\""), std::string::npos);
  EXPECT_NE(text.find("minOccurs=\"0\""), std::string::npos);
  EXPECT_NE(text.find("mixed=\"true\""), std::string::npos);
  EXPECT_NE(text.find("<xs:enumeration value=\"x\"/>"), std::string::npos);
  EXPECT_NE(text.find("use=\"required\""), std::string::npos);
  EXPECT_NE(text.find("type=\"xs:anyType\""), std::string::npos);
}

TEST(WriterTest, SimpleContentWithAttributesUsesExtension) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT price (#PCDATA)>
    <!ATTLIST price currency CDATA #REQUIRED>
  )");
  std::string text = WriteSchema(FromDtd(dtd));
  EXPECT_NE(text.find("<xs:simpleContent>"), std::string::npos);
  EXPECT_NE(text.find("<xs:extension base=\"xs:string\">"),
            std::string::npos);
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  ASSERT_TRUE(doc.ok()) << text;
}

TEST(XsdExportTest, EvolvedDtdExportsAsSchema) {
  // The paper's Example 5 pipeline, ending at an XML Schema — §6's
  // "extending the approach to the evolution of XML schemas".
  StatusOr<dtd::Dtd> initial = dtd::ParseDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
  )");
  ASSERT_TRUE(initial.ok());
  evolve::ExtendedDtd ext(std::move(*initial));
  evolve::Recorder recorder(ext);
  for (int i = 0; i < 10; ++i) {
    StatusOr<xml::Document> d1 = xml::ParseDocument(
        "<a><b>1</b><c>2</c><b>3</b><c>4</c><d>5</d></a>");
    StatusOr<xml::Document> d2 = xml::ParseDocument(
        "<a><b>1</b><c>2</c><b>3</b><c>4</c><e>6</e></a>");
    recorder.RecordDocument(*d1);
    recorder.RecordDocument(*d2);
  }
  evolve::EvolveDtd(ext, {});

  std::string text = WriteSchema(FromDtd(ext.dtd()));
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  ASSERT_TRUE(doc.ok()) << text;
  // The evolved ((b,c)*,(d|e)) appears as a repeatable sequence plus a
  // choice, and the extracted d/e elements are xs:string.
  EXPECT_NE(text.find("<xs:choice>"), std::string::npos);
  EXPECT_NE(text.find("maxOccurs=\"unbounded\""), std::string::npos);
  EXPECT_NE(text.find("<xs:element name=\"d\" type=\"xs:string\"/>"),
            std::string::npos);
}

TEST(ParticleTest, CloneIsDeep) {
  std::vector<Particle::Ptr> children;
  children.push_back(Particle::ElementRef("a", {0, 1}));
  children.push_back(Particle::ElementRef("b"));
  Particle::Ptr original =
      Particle::Sequence(std::move(children), {1, Occurs::kUnbounded});
  Particle::Ptr copy = original->Clone();
  EXPECT_EQ(copy->kind(), Particle::Kind::kSequence);
  EXPECT_EQ(copy->children().size(), 2u);
  EXPECT_EQ(copy->children()[0]->ref(), "a");
  copy->occurs() = {1, 1};
  EXPECT_EQ(original->occurs().max, Occurs::kUnbounded);
}

}  // namespace
}  // namespace dtdevolve::xsd
