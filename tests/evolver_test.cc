#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/glushkov.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "xml/parser.h"

namespace dtdevolve::evolve {
namespace {

ExtendedDtd MakeExtended(const char* dtd_text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return ExtendedDtd(std::move(*dtd));
}

void Record(ExtendedDtd& ext, const char* doc_text, int times = 1) {
  Recorder recorder(ext);
  for (int i = 0; i < times; ++i) {
    StatusOr<xml::Document> doc = xml::ParseDocument(doc_text);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    recorder.RecordDocument(*doc);
  }
}

const ElementEvolution* FindElement(const EvolutionResult& result,
                                    const std::string& name) {
  for (const ElementEvolution& element : result.elements) {
    if (element.name == name) return &element;
  }
  return nullptr;
}

TEST(EvolverTest, NoRecordingNoChange) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  EvolutionResult result = EvolveDtd(ext);
  EXPECT_FALSE(result.any_change);
  EXPECT_TRUE(result.elements.empty());
}

TEST(EvolverTest, OldWindowKeepsDeclaration) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(ext, "<a><b>1</b></a>", 20);
  Record(ext, "<a><z/></a>", 1);  // 1/21 invalid — inside ψ = 0.1
  EvolutionOptions options;
  options.restrict_operators = false;
  EvolutionResult result = EvolveDtd(ext, options);
  const ElementEvolution* a = FindElement(result, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->window, Window::kOld);
  EXPECT_FALSE(a->changed);
  EXPECT_EQ(ext.dtd().FindElement("a")->content->ToString(), "(b)");
}

TEST(EvolverTest, OldWindowRestrictsOperators) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>");
  Record(ext, "<a><b>1</b><b>2</b></a>", 20);  // valid, b always present
  EvolutionResult result = EvolveDtd(ext);
  const ElementEvolution* a = FindElement(result, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->window, Window::kOld);
  EXPECT_TRUE(a->changed);
  EXPECT_EQ(ext.dtd().FindElement("a")->content->ToString(), "(b+)");
}

TEST(EvolverTest, NewWindowRebuildsFromRecordedStructures) {
  // All documents diverge: a now holds (x, y) instead of (b).
  ExtendedDtd ext = MakeExtended(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (#PCDATA)>
  )");
  Record(ext, "<a><x>1</x><y>2</y></a>", 20);
  EvolutionResult result = EvolveDtd(ext);
  const ElementEvolution* a = FindElement(result, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->window, Window::kNew);
  EXPECT_TRUE(a->changed);
  EXPECT_EQ(ext.dtd().FindElement("a")->content->ToString(), "(x,y)");
  // New declarations were added for the plus elements x and y.
  ASSERT_TRUE(ext.dtd().HasElement("x"));
  ASSERT_TRUE(ext.dtd().HasElement("y"));
  EXPECT_EQ(ext.dtd().FindElement("x")->content->ToString(), "(#PCDATA)");
  EXPECT_EQ(result.added_declarations.size(), 2u);
  EXPECT_TRUE(ext.dtd().Check().ok());
}

TEST(EvolverTest, NewWindowNestedPlusDeclarations) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(ext, "<a><outer><inner>1</inner></outer></a>", 20);
  EvolveDtd(ext);
  ASSERT_TRUE(ext.dtd().HasElement("outer"));
  ASSERT_TRUE(ext.dtd().HasElement("inner"));
  EXPECT_EQ(ext.dtd().FindElement("outer")->content->ToString(), "(inner)");
  EXPECT_EQ(ext.dtd().FindElement("inner")->content->ToString(),
            "(#PCDATA)");
  EXPECT_TRUE(ext.dtd().Check().ok());
}

TEST(EvolverTest, MiscWindowOrsOldAndNew) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(ext, "<a><b>1</b></a>", 10);   // valid half
  Record(ext, "<a><x>1</x></a>", 10);   // divergent half
  EvolutionResult result = EvolveDtd(ext);
  const ElementEvolution* a = FindElement(result, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->window, Window::kMisc);
  EXPECT_TRUE(a->changed);
  const dtd::ContentModel& model = *ext.dtd().FindElement("a")->content;
  // The combined declaration accepts both the old and the new shape.
  dtd::Automaton automaton = dtd::Automaton::Build(model);
  EXPECT_TRUE(automaton.Accepts({"b"}));
  EXPECT_TRUE(automaton.Accepts({"x"}));
  EXPECT_TRUE(ext.dtd().HasElement("x"));
}

TEST(EvolverTest, StatsAreResetAfterEvolution) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(ext, "<a><x>1</x></a>", 5);
  EvolveDtd(ext);
  EXPECT_EQ(ext.documents_recorded(), 0u);
  EXPECT_EQ(ext.FindStats("a"), nullptr);
}

TEST(EvolverTest, PsiControlsWindowAssignment) {
  // 3 of 10 instances invalid: ψ = 0.05 → misc; ψ = 0.35 → old.
  auto run = [](double psi) {
    ExtendedDtd ext =
        MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
    Record(ext, "<a><b>1</b></a>", 7);
    Record(ext, "<a><b>1</b><b>2</b></a>", 3);
    EvolutionOptions options;
    options.psi = psi;
    EvolutionResult result = EvolveDtd(ext, options);
    const ElementEvolution* a = FindElement(result, "a");
    EXPECT_NE(a, nullptr);
    return a->window;
  };
  EXPECT_EQ(run(0.05), Window::kMisc);
  EXPECT_EQ(run(0.35), Window::kOld);
}

TEST(EvolverTest, Example5EndToEndThroughRecorder) {
  // The full Fig. 3 → Fig. 5 pipeline: a declared as (b,c); documents
  // arrive shaped (b,c,b,c,d) and (b,c,b,c,e).
  ExtendedDtd ext = MakeExtended(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
  )");
  Record(ext,
         "<a><b>1</b><c>2</c><b>3</b><c>4</c><d>5</d></a>", 10);
  Record(ext,
         "<a><b>1</b><c>2</c><b>3</b><c>4</c><e>6</e></a>", 10);
  EvolutionResult result = EvolveDtd(ext);
  const ElementEvolution* a = FindElement(result, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->window, Window::kNew);
  EXPECT_EQ(ext.dtd().FindElement("a")->content->ToString(),
            "((b,c)*,(d|e))");
  // Fig. 5 tree (4): the plus elements get (#PCDATA) declarations.
  ASSERT_TRUE(ext.dtd().HasElement("d"));
  ASSERT_TRUE(ext.dtd().HasElement("e"));
  EXPECT_EQ(ext.dtd().FindElement("d")->content->ToString(), "(#PCDATA)");
  EXPECT_EQ(ext.dtd().FindElement("e")->content->ToString(), "(#PCDATA)");
}

TEST(EvolverTest, ExistingDeclarationsAreNotOverwritten) {
  // `c` is declared already; documents move it under `a` — evolution must
  // reference, not redeclare, it.
  ExtendedDtd ext = MakeExtended(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (b)>
  )");
  Record(ext, "<a><c><b>1</b></c></a>", 20);
  EvolveDtd(ext);
  EXPECT_EQ(ext.dtd().FindElement("a")->content->ToString(), "(c)");
  EXPECT_EQ(ext.dtd().FindElement("c")->content->ToString(), "(b)");
  EXPECT_TRUE(ext.dtd().Check().ok());
}

TEST(EvolverTest, DeterminismIsReported) {
  // The new-window rebuild here is deterministic…
  ExtendedDtd clean = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(clean, "<a><x>1</x><y>2</y></a>", 20);
  EvolutionResult clean_result = EvolveDtd(clean);
  ASSERT_FALSE(clean_result.elements.empty());
  EXPECT_TRUE(clean_result.elements[0].deterministic);

  // …while a misc-window OR of old and new declarations sharing a prefix
  // is not 1-unambiguous; the report must say so.
  ExtendedDtd misc = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(misc, "<a><b>1</b></a>", 10);
  Record(misc, "<a><b>1</b><b>2</b><b>3</b></a>", 10);
  EvolutionResult misc_result = EvolveDtd(misc);
  const ElementEvolution* a = FindElement(misc_result, "a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->window, Window::kMisc);
  dtd::Automaton automaton =
      dtd::Automaton::Build(*misc.dtd().FindElement("a")->content);
  EXPECT_EQ(a->deterministic, automaton.IsDeterministic());
}

TEST(EvolverTest, ReportCarriesModelsAndTrace) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(ext, "<a><x>1</x><y>2</y></a>", 20);
  EvolutionResult result = EvolveDtd(ext);
  const ElementEvolution* a = FindElement(result, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->old_model, "(b)");
  EXPECT_EQ(a->new_model, "(x,y)");
  EXPECT_EQ(a->instances, 20u);
  EXPECT_DOUBLE_EQ(a->invalidity, 1.0);
  EXPECT_FALSE(a->trace.empty());
}

}  // namespace
}  // namespace dtdevolve::evolve
