// Metrics suite: counter/gauge/histogram semantics, registry identity,
// Prometheus rendering, and exactness under concurrent mutation (the
// concurrent tests are the TSan targets for the lock-free stripes).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace dtdevolve::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  util::ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(10.5);
  gauge.Add(2.0);
  gauge.Add(-4.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 8.0);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  // Integer-valued deltas stay exact in a double, so the sum must land
  // precisely even with the CAS-loop add racing across threads.
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  util::ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  pool.Wait();
  EXPECT_DOUBLE_EQ(gauge.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketsUseInclusiveUpperBounds) {
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.Observe(0.5);  // le=1
  histogram.Observe(1.0);  // le=1 (inclusive edge, Prometheus semantics)
  histogram.Observe(1.5);  // le=2
  histogram.Observe(5.0);  // le=5
  histogram.Observe(99.0);  // +Inf
  std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 107.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyAscending) {
  std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bound " << i;
  }
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  Histogram histogram({1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  util::ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Observe(2.0);
    });
  }
  pool.Wait();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(histogram.Count(), total);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 2.0 * total);
  EXPECT_EQ(histogram.BucketCounts()[1], total);
}

TEST(RegistryTest, SameNameAndLabelsReturnsSameSeries) {
  Registry registry;
  Counter& a = registry.GetCounter("requests_total", "requests");
  Counter& b = registry.GetCounter("requests_total", "requests");
  EXPECT_EQ(&a, &b);
  Counter& labeled =
      registry.GetCounter("requests_total", "requests", {{"code", "200"}});
  EXPECT_NE(&a, &labeled);
}

TEST(RegistryTest, LabelOrderIsNormalized) {
  Registry registry;
  Counter& a = registry.GetCounter("hits_total", "hits",
                                   {{"a", "1"}, {"b", "2"}});
  Counter& b = registry.GetCounter("hits_total", "hits",
                                   {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(RegistryTest, ConcurrentLookupsYieldOneSeries) {
  Registry registry;
  constexpr int kThreads = 8;
  util::ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&registry] {
      for (int i = 0; i < 2000; ++i) {
        registry.GetCounter("shared_total", "shared").Increment();
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(registry.GetCounter("shared_total", "shared").Value(),
            static_cast<uint64_t>(kThreads) * 2000);
}

TEST(RegistryTest, RenderPrometheusFormat) {
  Registry registry;
  registry.GetCounter("widgets_total", "Widgets made").Increment(3);
  registry.GetGauge("depth", "Queue depth").Set(7);
  Histogram& h =
      registry.GetHistogram("latency_seconds", "Latency", {0.1, 1.0});
  h.Observe(0.05);
  h.Observe(0.5);
  h.Observe(2.0);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP widgets_total Widgets made\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE widgets_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("widgets_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: 1 at le=0.1, 2 at le=1, 3 at +Inf.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3\n"), std::string::npos);
}

TEST(RegistryTest, RenderGroupsFamiliesAndSortsSeries) {
  Registry registry;
  registry.GetCounter("http_total", "HTTP", {{"code", "500"}}).Increment();
  registry.GetCounter("http_total", "HTTP", {{"code", "200"}}).Increment(2);
  const std::string text = registry.RenderPrometheus();
  // One HELP/TYPE pair for the family, series sorted by label set.
  const size_t help = text.find("# HELP http_total");
  ASSERT_NE(help, std::string::npos);
  EXPECT_EQ(text.find("# HELP http_total", help + 1), std::string::npos);
  const size_t code200 = text.find("http_total{code=\"200\"} 2");
  const size_t code500 = text.find("http_total{code=\"500\"} 1");
  ASSERT_NE(code200, std::string::npos);
  ASSERT_NE(code500, std::string::npos);
  EXPECT_LT(code200, code500);
}

TEST(RegistryTest, RenderEscapesLabelValues) {
  Registry registry;
  registry
      .GetCounter("odd_total", "odd",
                  {{"path", "a\"b\\c\nd"}})
      .Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("odd_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace dtdevolve::obs
