// The differential oracle itself (src/check): the seeded scenario sweep
// holds every invariant, runs are bit-deterministic, prefix truncation is
// exact (what failing-seed minimization relies on), and the report
// formatting surfaces violations with their replay seed.

#include <gtest/gtest.h>

#include <string>

#include "check/oracle.h"

namespace dtdevolve::check {
namespace {

TEST(CheckerTest, InvariantsHoldOnSeededScenarios) {
  OracleOptions options;
  options.scenarios = 40;
  options.seed = 1;
  OracleReport report = RunOracle(options);
  EXPECT_TRUE(report.ok()) << FormatReport(report);
  EXPECT_EQ(report.scenarios_run, 40u);
  // The sweep must actually exercise the pipeline, not vacuously pass.
  EXPECT_GT(report.documents, 1000u);
  EXPECT_GT(report.evolutions, 10u);
}

TEST(CheckerTest, ScenarioRunsAreDeterministic) {
  ScenarioResult first = RunScenario(7);
  ScenarioResult second = RunScenario(7);
  EXPECT_EQ(first.scenario, second.scenario);
  EXPECT_EQ(first.documents, second.documents);
  EXPECT_EQ(first.evolutions, second.evolutions);
  EXPECT_EQ(first.violations.size(), second.violations.size());
  EXPECT_TRUE(first.ok()) << FormatScenario(first);
}

TEST(CheckerTest, MaxDocumentsTruncatesToExactPrefix) {
  ScenarioResult full = RunScenario(11);
  ASSERT_GT(full.documents, 10u);
  OracleOptions capped;
  capped.max_documents = 10;
  ScenarioResult prefix = RunScenario(11, capped);
  EXPECT_EQ(prefix.documents, 10u);
  EXPECT_EQ(prefix.scenario, full.scenario);
  EXPECT_TRUE(prefix.ok()) << FormatScenario(prefix);
}

TEST(CheckerTest, MinimizeReturnsFullRunWhenScenarioPasses) {
  OracleOptions options;
  ScenarioResult full = RunScenario(3, options);
  ASSERT_TRUE(full.ok()) << FormatScenario(full);
  ScenarioResult minimized = MinimizeFailure(3, options);
  EXPECT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.documents, full.documents);
}

TEST(CheckerTest, CustomJobsLevelsAreCompared) {
  OracleOptions options;
  options.scenarios = 3;
  options.seed = 21;
  options.jobs = {1, 3, 5};
  OracleReport report = RunOracle(options);
  EXPECT_TRUE(report.ok()) << FormatReport(report);
}

TEST(CheckerTest, InductionInvariantsHoldOnSeededScenarios) {
  InductionOracleOptions options;
  options.scenarios = 25;
  options.seed = 1;
  InductionOracleReport report = RunInductionOracle(options);
  EXPECT_TRUE(report.ok()) << FormatInductionReport(report);
  EXPECT_EQ(report.scenarios_run, 25u);
  // The sweep must drive the whole candidate lifecycle, not vacuously
  // pass: candidates get induced and some get promoted.
  EXPECT_GT(report.candidates, 25u);
  EXPECT_GT(report.accepts, 10u);
}

TEST(CheckerTest, InductionScenarioRunsAreDeterministic) {
  ScenarioResult first = RunInductionScenario(11);
  ScenarioResult second = RunInductionScenario(11);
  EXPECT_EQ(first.scenario, second.scenario);
  EXPECT_EQ(first.documents, second.documents);
  EXPECT_EQ(first.evolutions, second.evolutions);
  EXPECT_EQ(first.violations.size(), second.violations.size());
}

TEST(CheckerTest, InductionReportFormattingCarriesReplaySeed) {
  InductionOracleReport report;
  report.scenarios_run = 1;
  report.documents = 30;
  ScenarioResult failing;
  failing.seed = 77;
  failing.scenario = "induction synthetic";
  failing.violations.push_back(
      {"accept-member-validity", "induced-invoice", 2, "member invalid"});
  report.failures.push_back(failing);

  std::string text = FormatInductionReport(report);
  EXPECT_NE(text.find("--induction --seed 77"), std::string::npos);
  EXPECT_NE(text.find("accept-member-validity"), std::string::npos);

  InductionOracleReport clean;
  clean.scenarios_run = 2;
  EXPECT_NE(FormatInductionReport(clean).find("all invariants held"),
            std::string::npos);
}

TEST(CheckerTest, ReportFormattingCarriesReplaySeed) {
  ScenarioResult failing;
  failing.seed = 99;
  failing.scenario = "synthetic";
  failing.documents = 12;
  failing.violations.push_back(
      {"trigger-accounting", "mail", 7, "counter drift"});
  OracleReport report;
  report.scenarios_run = 1;
  report.documents = 12;
  report.failures.push_back(failing);

  std::string scenario_text = FormatScenario(failing);
  EXPECT_NE(scenario_text.find("seed=99"), std::string::npos);
  EXPECT_NE(scenario_text.find("trigger-accounting"), std::string::npos);
  EXPECT_NE(scenario_text.find("dtd=mail"), std::string::npos);

  std::string report_text = FormatReport(report);
  EXPECT_NE(report_text.find("--seed 99"), std::string::npos);
  EXPECT_NE(report_text.find("failing scenario"), std::string::npos);

  OracleReport clean;
  clean.scenarios_run = 2;
  EXPECT_NE(FormatReport(clean).find("all invariants held"),
            std::string::npos);
}

}  // namespace
}  // namespace dtdevolve::check
