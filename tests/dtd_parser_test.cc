#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"

namespace dtdevolve::dtd {
namespace {

TEST(ContentModelParserTest, ParsesBasicForms) {
  EXPECT_EQ((*ParseContentModel("(b,c)"))->ToString(), "(b,c)");
  EXPECT_EQ((*ParseContentModel("(d|e)"))->ToString(), "(d|e)");
  EXPECT_EQ((*ParseContentModel("(a)"))->ToString(), "(a)");
  EXPECT_EQ((*ParseContentModel("(#PCDATA)"))->ToString(), "(#PCDATA)");
  EXPECT_EQ((*ParseContentModel("EMPTY"))->ToString(), "EMPTY");
  EXPECT_EQ((*ParseContentModel("ANY"))->ToString(), "ANY");
}

TEST(ContentModelParserTest, ParsesOccurrenceOperators) {
  EXPECT_EQ((*ParseContentModel("(a?)"))->ToString(), "(a?)");
  EXPECT_EQ((*ParseContentModel("(a,b*)"))->ToString(), "(a,b*)");
  EXPECT_EQ((*ParseContentModel("(a,b)+"))->ToString(), "(a,b)+");
  EXPECT_EQ((*ParseContentModel("((a|b)*,c)"))->ToString(), "((a|b)*,c)");
}

TEST(ContentModelParserTest, ParsesNestedGroups) {
  StatusOr<ContentModel::Ptr> model =
      ParseContentModel("((b,c)*,(d|e))");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->ToString(), "((b,c)*,(d|e))");
}

TEST(ContentModelParserTest, ParsesMixedContent) {
  StatusOr<ContentModel::Ptr> model = ParseContentModel("(#PCDATA|a|b)*");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->ToString(), "(#PCDATA|a|b)*");
}

TEST(ContentModelParserTest, ToleratesWhitespace) {
  StatusOr<ContentModel::Ptr> model =
      ParseContentModel("( b , c* , ( d | e ) )");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->ToString(), "(b,c*,(d|e))");
}

TEST(ContentModelParserTest, RejectsMalformedModels) {
  EXPECT_FALSE(ParseContentModel("").ok());
  EXPECT_FALSE(ParseContentModel("(a,").ok());
  EXPECT_FALSE(ParseContentModel("(a|b,c)").ok());  // mixed connectors
  EXPECT_FALSE(ParseContentModel("(a))").ok());     // trailing characters
  EXPECT_FALSE(ParseContentModel("(#CDATA)").ok());
  EXPECT_FALSE(ParseContentModel("bogus").ok());
}

TEST(DtdParserTest, ParsesTheFig2Dtd) {
  // Figure 2(c) of the paper.
  StatusOr<Dtd> dtd = ParseDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (d)>
    <!ELEMENT d (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->size(), 4u);
  EXPECT_EQ(dtd->root_name(), "a");
  EXPECT_EQ(dtd->FindElement("a")->content->ToString(), "(b,c)");
  EXPECT_EQ(dtd->FindElement("c")->content->ToString(), "(d)");
  EXPECT_TRUE(dtd->Check().ok());
}

TEST(DtdParserTest, ParsesAttlist) {
  StatusOr<Dtd> dtd = ParseDtd(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id ID #REQUIRED
                kind (x|y) "x"
                note CDATA #IMPLIED
                ver CDATA #FIXED "1">
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const ElementDecl* decl = dtd->FindElement("a");
  ASSERT_EQ(decl->attributes.size(), 4u);
  EXPECT_EQ(decl->attributes[0].name, "id");
  EXPECT_EQ(decl->attributes[0].type, "ID");
  EXPECT_EQ(decl->attributes[0].default_kind,
            AttributeDecl::DefaultKind::kRequired);
  EXPECT_EQ(decl->attributes[1].type, "(x|y)");
  EXPECT_EQ(decl->attributes[1].default_value, "x");
  EXPECT_EQ(decl->attributes[3].default_kind,
            AttributeDecl::DefaultKind::kFixed);
  EXPECT_EQ(decl->attributes[3].default_value, "1");
}

TEST(DtdParserTest, SkipsCommentsEntitiesAndPis) {
  StatusOr<Dtd> dtd = ParseDtd(R"dtd(
    <!-- a comment with <!ELEMENT inside -->
    <!ENTITY copy "(c)">
    <?keep going?>
    <!ELEMENT a EMPTY>
  )dtd");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->size(), 1u);
}

TEST(DtdParserTest, RejectsDuplicateAndMalformedDeclarations) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b)><!ELEMENT a (c)>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b)").ok());
  EXPECT_FALSE(ParseDtd("<!WHAT a (b)>").ok());
  EXPECT_FALSE(ParseDtd("ELEMENT a (b)").ok());
}

TEST(DtdParserTest, AttlistBeforeElementGetsFilled) {
  StatusOr<Dtd> dtd = ParseDtd(R"(
    <!ATTLIST a id CDATA #IMPLIED>
    <!ELEMENT a (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->FindElement("a")->content->ToString(), "(#PCDATA)");
  EXPECT_EQ(dtd->FindElement("a")->attributes.size(), 1u);
}

TEST(DtdWriterTest, RoundTripsThroughParser) {
  const char* text = R"(
    <!ELEMENT a ((b,c)*,(d|e))>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e EMPTY>
    <!ATTLIST a id ID #REQUIRED>
  )";
  StatusOr<Dtd> dtd = ParseDtd(text);
  ASSERT_TRUE(dtd.ok());
  std::string written = WriteDtd(*dtd);
  StatusOr<Dtd> again = ParseDtd(written);
  ASSERT_TRUE(again.ok()) << written;
  EXPECT_EQ(WriteDtd(*again), written);
  EXPECT_TRUE(dtd->FindElement("a")->content->Equals(
      *again->FindElement("a")->content));
}

TEST(DtdWriterTest, WritesSingleDeclaration) {
  ElementDecl decl("a", SeqOfNames({"b", "c"}));
  EXPECT_EQ(WriteElementDecl(decl), "<!ELEMENT a (b,c)>");
}

}  // namespace
}  // namespace dtdevolve::dtd
