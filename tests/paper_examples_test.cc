// Executable reproduction of every worked example and figure in the paper
// (EXPERIMENTS.md ids F2, F3, EX34, F5). Each test states where in the
// paper the expected behaviour comes from.

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "mining/rules.h"
#include "similarity/similarity.h"
#include "validate/validator.h"
#include "xml/parser.h"

namespace dtdevolve {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

// ---------------------------------------------------------------------------
// Figure 2: the document <a><b>5</b><c>7</c></a> and the DTD
// a:(b,c), b:(#PCDATA), c:(d), d:(#PCDATA), as labeled trees.
// ---------------------------------------------------------------------------

const char* kFig2Dtd = R"(
  <!ELEMENT a (b, c)>
  <!ELEMENT b (#PCDATA)>
  <!ELEMENT c (d)>
  <!ELEMENT d (#PCDATA)>
)";
const char* kFig2Doc = "<a><b>5</b><c>7</c></a>";

TEST(Fig2, TreeRepresentations) {
  xml::Document doc = MakeDoc(kFig2Doc);
  EXPECT_EQ(doc.root().tag(), "a");
  // αβ(a) = {b, c} on the document side (paper §2).
  EXPECT_EQ(doc.root().ChildTagSet(), (std::set<std::string>{"b", "c"}));

  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  // αβ applied to a DTD node returns the direct subelements independently
  // from the operators: αβ(a) = {b, c}.
  EXPECT_EQ(dtd.FindElement("a")->content->SymbolSet(),
            (std::set<std::string>{"b", "c"}));
  // Serialization round-trips the figure's declarations.
  EXPECT_EQ(dtd::WriteElementDecl(*dtd.FindElement("a")),
            "<!ELEMENT a (b,c)>");
}

TEST(Fig2, DocumentIsNotValidButLocallySimilar) {
  // Example 1: local similarity of a is full; global similarity is not,
  // because c holds data content where the DTD requires a d element.
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  xml::Document doc = MakeDoc(kFig2Doc);

  validate::Validator validator(dtd);
  EXPECT_FALSE(validator.Validate(doc).valid);
  EXPECT_TRUE(validator.ElementLocallyValid(doc.root()));

  similarity::SimilarityEvaluator evaluator(dtd);
  EXPECT_DOUBLE_EQ(evaluator.LocalSimilarity(doc.root(), "a"), 1.0);
  double global = evaluator.GlobalSimilarity(doc.root(), "a");
  EXPECT_LT(global, 1.0);
  EXPECT_GT(global, 0.0);
}

// ---------------------------------------------------------------------------
// Example 2 / Figure 3: recording the D1/D2 population against
// T = a:(b,c). D1 documents contain the (b,c) sequence followed by d
// elements; D2 documents contain it followed by a single e.
// ---------------------------------------------------------------------------

class Fig3Recording : public ::testing::Test {
 protected:
  Fig3Recording()
      : ext_(MakeDtd(R"(
          <!ELEMENT a (b, c)>
          <!ELEMENT b (#PCDATA)>
          <!ELEMENT c (#PCDATA)>
        )")) {
    evolve::Recorder recorder(ext_);
    for (int i = 0; i < 10; ++i) {
      // D1: (b,c) twice, then d twice — d is repeatable.
      recorder.RecordDocument(MakeDoc(
          "<a><b>1</b><c>2</c><b>3</b><c>4</c><d>5</d><d>6</d></a>"));
      // D2: (b,c) twice, then one e — d is also optional.
      recorder.RecordDocument(
          MakeDoc("<a><b>1</b><c>2</c><b>3</b><c>4</c><e>7</e></a>"));
    }
  }

  evolve::ExtendedDtd ext_;
};

TEST_F(Fig3Recording, LabelSetIsBCDE) {
  // "Element a is associated with the set {b, c, d, e} of element tags
  // found in the documents classified against T."
  const evolve::ElementStats* a = ext_.FindStats("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->LabelUniverse(),
            (std::set<std::string>{"b", "c", "d", "e"}));
  EXPECT_EQ(a->invalid_instances(), 20u);
  EXPECT_EQ(a->valid_instances(), 0u);
  EXPECT_DOUBLE_EQ(a->InvalidityRatio(), 1.0);
}

TEST_F(Fig3Recording, GroupBCIsRecorded) {
  // "{b, c} forms a group since elements b and c are repeated the same
  // number of times." In D1 instances d shares the repetition count, so
  // the recorded group there is {b,c,d}; D2 instances record {b,c}.
  const evolve::ElementStats* a = ext_.FindStats("a");
  evolve::GroupKey bc{{"b", "c"}, 2};
  evolve::GroupKey bcd{{"b", "c", "d"}, 2};
  ASSERT_TRUE(a->groups().count(bc));
  EXPECT_EQ(a->groups().at(bc), 10u);   // the D2 instances
  ASSERT_TRUE(a->groups().count(bcd));
  EXPECT_EQ(a->groups().at(bcd), 10u);  // the D1 instances
}

TEST_F(Fig3Recording, DIsRepeatableAndOptional) {
  // "element d is repeatable and optional (there are documents that do
  // not contain it)."
  const evolve::ElementStats* a = ext_.FindStats("a");
  const evolve::OccurrenceStats& d = a->labels().at("d").invalid;
  EXPECT_EQ(d.instances, 10u);   // only in D1 documents
  EXPECT_EQ(d.repeated, 10u);    // always twice there
  mining::SequenceRuleOracle oracle(a->SequenceList(), a->LabelUniverse(),
                                    0.0);
  EXPECT_FALSE(oracle.AlwaysPresent("d"));
}

TEST_F(Fig3Recording, PlusElementsRecordSubstructure) {
  // d and e are plus elements of a: their content ((#PCDATA)) is recorded
  // so a declaration can later be extracted (Fig. 5 tree (4)).
  const evolve::ElementStats* a = ext_.FindStats("a");
  ASSERT_NE(a->labels().at("d").plus_structure, nullptr);
  EXPECT_EQ(a->labels().at("d").plus_structure->text_instances(), 20u);
  ASSERT_NE(a->labels().at("e").plus_structure, nullptr);
}

TEST_F(Fig3Recording, SequencesDisregardOrderAndRepetition) {
  const evolve::ElementStats* a = ext_.FindStats("a");
  ASSERT_EQ(a->sequences().size(), 2u);
  EXPECT_TRUE(a->sequences().count({"b", "c", "d"}));
  EXPECT_TRUE(a->sequences().count({"b", "c", "e"}));
}

// ---------------------------------------------------------------------------
// Examples 3 and 4: association-rule arithmetic and absent elements.
// ---------------------------------------------------------------------------

TEST(Ex3, SupportAndConfidence) {
  // S = {{a,b,c},{a,b},{b,c,d}}; R = c → a,b:
  // Support(R) = 1/3, Confidence(R) = 1/2.
  using Sequences = std::vector<std::pair<std::set<std::string>, uint32_t>>;
  Sequences sequences = {
      {{"a", "b", "c"}, 1}, {{"a", "b"}, 1}, {{"b", "c", "d"}, 1}};
  mining::SequenceRuleOracle oracle(sequences, {"a", "b", "c", "d"}, 0.0);
  EXPECT_NEAR(oracle.Support({"a", "b", "c"}), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(oracle.Confidence({"c"}, {}, "a", true) *
                  oracle.Confidence({"c", "a"}, {}, "b", true),
              1.0 / 2.0, 1e-12);  // c → a,b decomposed
  EXPECT_NEAR(oracle.Confidence({"c"}, {}, "b", true), 1.0, 1e-12);
}

TEST(Ex4, AbsentElements) {
  // "The only absent element for the sequence {a,b,c} is d, whereas c and
  // d are absent for the sequence {a,b}." Absent items enable rules like
  // b̄ → c ("if element b is absent then element c is present").
  mining::TransactionSet transactions;
  std::set<std::string> universe = {"a", "b", "c", "d"};
  transactions.Add({"a", "b", "c"}, universe);
  transactions.Add({"a", "b"}, universe);
  transactions.Add({"b", "c", "d"}, universe);
  const mining::ItemDictionary& dict = transactions.dictionary();
  EXPECT_EQ(transactions.CountContaining({dict.Find("d", false)}), 2u);
  EXPECT_EQ(transactions.CountContaining(
                {dict.Find("c", false), dict.Find("d", false)}),
            1u);
  // ā → c,d holds with confidence 1 in S (the only a-less sequence is
  // {b,c,d}).
  int a_absent = dict.Find("a", false);
  int c_present = dict.Find("c", true);
  int d_present = dict.Find("d", true);
  EXPECT_EQ(transactions.CountContaining({a_absent}),
            transactions.CountContaining({a_absent, c_present, d_present}));
}

// ---------------------------------------------------------------------------
// Example 5 / Figure 5: the full evolution of element a.
// ---------------------------------------------------------------------------

TEST_F(Fig3Recording, Fig5Evolution) {
  evolve::EvolutionOptions options;
  evolve::EvolutionResult result = evolve::EvolveDtd(ext_, options);

  // Policy 1 merges {b,c} into (b,c)*; policy 4 builds the d/e
  // alternative; the final binding is Fig. 5 tree (3). Our recording saw
  // d repeated in every D1 instance ("a sequence of d elements"), so the
  // d alternative carries the + the prose implies: ((b,c)*,(d+|e)).
  EXPECT_EQ(ext_.dtd().FindElement("a")->content->ToString(),
            "((b,c)*,(d+|e))");

  bool p1 = false, p4 = false;
  for (const evolve::ElementEvolution& element : result.elements) {
    for (const evolve::PolicyTrace& trace : element.trace) {
      if (trace.policy == 1) p1 = true;
      if (trace.policy == 4) p4 = true;
    }
  }
  EXPECT_TRUE(p1);
  EXPECT_TRUE(p4);

  // "by recursively applying the evolution algorithm ... their actual
  // structure can be extracted" — Fig. 5 tree (4): d, e get (#PCDATA).
  ASSERT_TRUE(ext_.dtd().HasElement("d"));
  ASSERT_TRUE(ext_.dtd().HasElement("e"));
  EXPECT_EQ(ext_.dtd().FindElement("d")->content->ToString(), "(#PCDATA)");
  EXPECT_EQ(ext_.dtd().FindElement("e")->content->ToString(), "(#PCDATA)");
  EXPECT_TRUE(ext_.dtd().Check().ok());

  // The evolved DTD validates both document shapes.
  validate::Validator validator(ext_.dtd());
  EXPECT_TRUE(validator
                  .Validate(MakeDoc("<a><b>1</b><c>2</c><b>3</b><c>4</c>"
                                    "<d>5</d><d>6</d></a>"))
                  .valid);
  EXPECT_TRUE(
      validator
          .Validate(MakeDoc(
              "<a><b>1</b><c>2</c><b>3</b><c>4</c><e>7</e></a>"))
          .valid);
}

TEST(Fig5, RestrictionExample) {
  // §4.1's restriction example: a declared (b*); every instance contains
  // at least one b ⇒ the operator is restricted to +.
  evolve::ExtendedDtd ext(
      MakeDtd("<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>"));
  evolve::Recorder recorder(ext);
  for (int i = 0; i < 10; ++i) {
    recorder.RecordDocument(MakeDoc("<a><b>1</b><b>2</b></a>"));
  }
  evolve::EvolveDtd(ext, {});
  EXPECT_EQ(ext.dtd().FindElement("a")->content->ToString(), "(b+)");
}

}  // namespace
}  // namespace dtdevolve
