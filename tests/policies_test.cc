#include <gtest/gtest.h>

#include "evolve/policies.h"

namespace dtdevolve::evolve {
namespace {

using Sequences = std::vector<std::pair<std::set<std::string>, uint32_t>>;

/// Test harness: records a set of ordered child-tag sequences (with
/// multiplicities) as invalid instances and runs the policy engine the
/// way the structure builder would.
class PolicyHarness {
 public:
  void Add(const std::vector<std::string>& child_tags, uint32_t count = 1) {
    for (uint32_t i = 0; i < count; ++i) {
      stats_.RecordInstance(child_tags, /*locally_valid=*/false, false);
    }
  }

  std::string Run(double mu = 0.0, bool enable_or = true,
                  std::vector<PolicyTrace>* trace = nullptr) {
    mining::SequenceRuleOracle oracle(stats_.SequenceList(),
                                      stats_.LabelUniverse(), mu);
    std::set<std::string> labels;
    for (const auto& [sequence, count] : oracle.frequent_sequences()) {
      labels.insert(sequence.begin(), sequence.end());
    }
    PolicyOptions options;
    options.enable_or = enable_or;
    PolicyEngine engine(oracle, stats_, options);
    dtd::ContentModel::Ptr model = engine.Run(labels, trace);
    return model == nullptr ? "<null>" : model->ToString();
  }

  ElementStats stats_;
};

bool PolicyFired(const std::vector<PolicyTrace>& trace, int policy) {
  for (const PolicyTrace& t : trace) {
    if (t.policy == policy) return true;
  }
  return false;
}

TEST(PolicyEngineTest, P1PlainAndBinding) {
  PolicyHarness h;
  h.Add({"x", "y", "z"}, 10);
  std::vector<PolicyTrace> trace;
  EXPECT_EQ(h.Run(0.0, true, &trace), "(x,y,z)");
  EXPECT_TRUE(PolicyFired(trace, 1));
}

TEST(PolicyEngineTest, P1OrderFollowsRecordedPositions) {
  PolicyHarness h;
  h.Add({"z", "y", "x"}, 10);
  EXPECT_EQ(h.Run(), "(z,y,x)");
}

TEST(PolicyEngineTest, P1RepeatableGroup) {
  // Every instance repeats b and c the same number of times — the paper's
  // case 2: a repeatable AND group (b,c)*.
  PolicyHarness h;
  h.Add({"b", "c", "b", "c"}, 10);
  std::vector<PolicyTrace> trace;
  EXPECT_EQ(h.Run(0.0, true, &trace), "(b,c)*");
  EXPECT_TRUE(PolicyFired(trace, 1));
}

TEST(PolicyEngineTest, P1MixedRepetitions) {
  // b,c grouped twice, d varies: case 3 — (b,c)+ with d+.
  PolicyHarness h;
  h.Add({"b", "c", "b", "c", "d"}, 5);
  h.Add({"b", "c", "b", "c", "d", "d"}, 5);
  std::string result = h.Run();
  EXPECT_NE(result.find("(b,c)+"), std::string::npos) << result;
  EXPECT_NE(result.find("d+"), std::string::npos) << result;
}

TEST(PolicyEngineTest, P4TwoAlternatives) {
  PolicyHarness h;
  h.Add({"d"}, 5);
  h.Add({"e"}, 5);
  std::vector<PolicyTrace> trace;
  EXPECT_EQ(h.Run(0.0, true, &trace), "(d|e)");
  EXPECT_TRUE(PolicyFired(trace, 4));
}

TEST(PolicyEngineTest, P5ThreeWayAlternative) {
  PolicyHarness h;
  h.Add({"x"}, 4);
  h.Add({"y"}, 3);
  h.Add({"z"}, 3);
  std::vector<PolicyTrace> trace;
  std::string result = h.Run(0.0, true, &trace);
  // One OR over all three, in some position order.
  EXPECT_TRUE(PolicyFired(trace, 5));
  EXPECT_NE(result.find("|"), std::string::npos);
  EXPECT_EQ(result.find(","), std::string::npos) << result;
}

TEST(PolicyEngineTest, RepeatedAlternativeGetsPlus) {
  PolicyHarness h;
  h.Add({"d", "d"}, 5);
  h.Add({"e"}, 5);
  EXPECT_EQ(h.Run(), "(d+|e)");
}

TEST(PolicyEngineTest, P9OptionalElement) {
  PolicyHarness h;
  h.Add({"a", "b"}, 6);
  h.Add({"a"}, 4);
  std::vector<PolicyTrace> trace;
  EXPECT_EQ(h.Run(0.0, true, &trace), "(a,b?)");
  EXPECT_TRUE(PolicyFired(trace, 9));
}

TEST(PolicyEngineTest, P9RepeatedElement) {
  PolicyHarness h;
  h.Add({"a", "a"}, 5);
  h.Add({"a", "a", "a"}, 5);
  EXPECT_EQ(h.Run(), "(a+)");
}

TEST(PolicyEngineTest, P9StarWhenRepeatedAndOptional) {
  PolicyHarness h;
  h.Add({"k", "a", "a"}, 5);
  h.Add({"k"}, 5);
  EXPECT_EQ(h.Run(), "(k,a*)");
}

TEST(PolicyEngineTest, P13FallbackOrdersByPosition) {
  // No rule binds a and b (they co-occur only sometimes, not exclusively):
  // fallback AND with optional wrapping.
  PolicyHarness h;
  h.Add({"a", "b"}, 4);
  h.Add({"a"}, 3);
  h.Add({"b"}, 3);
  std::vector<PolicyTrace> trace;
  std::string result = h.Run(0.0, true, &trace);
  EXPECT_EQ(result, "(a?,b?)");
  EXPECT_TRUE(PolicyFired(trace, 13) || PolicyFired(trace, 9));
}

TEST(PolicyEngineTest, Example5EndToEnd) {
  // The paper's Example 5 population (with single d/e children): the
  // result is ((b,c)*,(d|e)).
  PolicyHarness h;
  h.Add({"b", "c", "b", "c", "d"}, 10);  // D1 shape
  h.Add({"b", "c", "b", "c", "e"}, 10);  // D2 shape
  std::vector<PolicyTrace> trace;
  std::string result = h.Run(0.0, true, &trace);
  EXPECT_EQ(result, "((b,c)*,(d|e))");
  EXPECT_TRUE(PolicyFired(trace, 1));
  EXPECT_TRUE(PolicyFired(trace, 4));
  EXPECT_TRUE(PolicyFired(trace, 13) || PolicyFired(trace, 11) ||
              PolicyFired(trace, 12));
}

TEST(PolicyEngineTest, OrAblationProducesNoAlternatives) {
  PolicyHarness h;
  h.Add({"d"}, 5);
  h.Add({"e"}, 5);
  std::string result = h.Run(0.0, /*enable_or=*/false);
  EXPECT_EQ(result.find("|"), std::string::npos) << result;
  // Without OR, mutual exclusion degrades to optional elements.
  EXPECT_EQ(result, "(d?,e?)");
}

TEST(PolicyEngineTest, BasicCaseSingleLabel) {
  PolicyHarness always;
  always.Add({"only"}, 5);
  std::vector<PolicyTrace> trace;
  EXPECT_EQ(always.Run(0.0, true, &trace), "(only)");
  EXPECT_TRUE(PolicyFired(trace, 0));  // basic case

  PolicyHarness repeated;
  repeated.Add({"only", "only"}, 5);
  EXPECT_EQ(repeated.Run(), "(only+)");

  PolicyHarness optional;
  optional.Add({"only"}, 5);
  optional.Add({}, 5);
  EXPECT_EQ(optional.Run(), "(only?)");
}

TEST(PolicyEngineTest, EmptyLabelSetReturnsNull) {
  PolicyHarness h;
  EXPECT_EQ(h.Run(), "<null>");
}

TEST(PolicyEngineTest, MuFiltersNoise) {
  PolicyHarness h;
  h.Add({"a", "b"}, 95);
  h.Add({"weird"}, 5);
  // With µ = 0.1, the weird sequence is dropped: weird never enters C.
  std::string result = h.Run(0.1);
  EXPECT_EQ(result, "(a,b)");
}

TEST(PolicyEngineTest, P2StarTreeImpliesElement) {
  // b,c form a star group present in all instances; k always present too
  // but occurring once — P1 case handles {k}? No: k's profile differs
  // from b,c only if they diverge. Make b,c sometimes absent while k
  // always present so the star tree and k bind via policy 2.
  PolicyHarness h;
  h.Add({"b", "c", "b", "c", "k"}, 5);
  h.Add({"b", "c", "k"}, 0);  // unused
  h.Add({"k"}, 5);
  std::vector<PolicyTrace> trace;
  std::string result = h.Run(0.0, true, &trace);
  // b,c group (repeatable) + k: the star tree's labels imply k.
  EXPECT_NE(result.find("(b,c)"), std::string::npos) << result;
  EXPECT_NE(result.find("k"), std::string::npos) << result;
}

TEST(PolicyEngineTest, TraceDescriptionsAreInformative) {
  PolicyHarness h;
  h.Add({"x", "y"}, 5);
  std::vector<PolicyTrace> trace;
  h.Run(0.0, true, &trace);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace[0].description.find("x"), std::string::npos);
}

}  // namespace
}  // namespace dtdevolve::evolve
