#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/glushkov.h"
#include "dtd/rewrite.h"

namespace dtdevolve::dtd {
namespace {

std::string Simplified(const char* model_text) {
  StatusOr<ContentModel::Ptr> model = ParseContentModel(model_text);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return Simplify(std::move(*model))->ToString();
}

TEST(RewriteTest, CollapsesStackedUnaries) {
  EXPECT_EQ(Simplified("((a?)?)"), "(a?)");
  EXPECT_EQ(Simplified("((a*)*)"), "(a*)");
  EXPECT_EQ(Simplified("((a+)+)"), "(a+)");
  EXPECT_EQ(Simplified("((a*)?)"), "(a*)");
  EXPECT_EQ(Simplified("((a?)*)"), "(a*)");
  EXPECT_EQ(Simplified("((a+)?)"), "(a*)");
  EXPECT_EQ(Simplified("((a?)+)"), "(a*)");
  EXPECT_EQ(Simplified("((a*)+)"), "(a*)");
  EXPECT_EQ(Simplified("((a+)*)"), "(a*)");
}

TEST(RewriteTest, FlattensNestedGroups) {
  EXPECT_EQ(Simplified("((a,b),c)"), "(a,b,c)");
  EXPECT_EQ(Simplified("(a,(b,(c,d)))"), "(a,b,c,d)");
  EXPECT_EQ(Simplified("((a|b)|c)"), "(a|b|c)");
}

TEST(RewriteTest, DeduplicatesAndSortsAlternatives) {
  EXPECT_EQ(Simplified("(b|a|b)"), "(a|b)");
  EXPECT_EQ(Simplified("(a|a)"), "(a)");
}

TEST(RewriteTest, HoistsOptionalAlternatives) {
  EXPECT_EQ(Simplified("(a?|b)"), "(a|b)?");
}

TEST(RewriteTest, DropsRedundantOptionality) {
  EXPECT_EQ(Simplified("((a*)?)"), "(a*)");
  EXPECT_EQ(Simplified("((a?,b?)?)"), "(a?,b?)");
}

TEST(RewriteTest, EmptyIsNeutralInSequences) {
  std::vector<ContentModel::Ptr> seq;
  seq.push_back(ContentModel::Empty());
  seq.push_back(ContentModel::Name("a"));
  EXPECT_EQ(Simplify(ContentModel::Seq(std::move(seq)))->ToString(), "(a)");
}

TEST(RewriteTest, EmptyInChoiceBecomesOptionality) {
  std::vector<ContentModel::Ptr> choice;
  choice.push_back(ContentModel::Empty());
  choice.push_back(ContentModel::Name("a"));
  EXPECT_EQ(Simplify(ContentModel::Choice(std::move(choice)))->ToString(),
            "(a?)");
}

TEST(RewriteTest, UnaryOverEmptyIsEmpty) {
  EXPECT_EQ(Simplify(ContentModel::Star(ContentModel::Empty()))->ToString(),
            "EMPTY");
}

TEST(RewriteTest, LeavesCanonicalFormsAlone) {
  EXPECT_EQ(Simplified("((b,c)*,(d|e))"), "((b,c)*,(d|e))");
  EXPECT_EQ(Simplified("(#PCDATA)"), "(#PCDATA)");
  EXPECT_EQ(Simplified("(#PCDATA|a)*"), "(#PCDATA|a)*");
}

TEST(RewriteTest, MixedContentKeepsPcdataFirst) {
  EXPECT_EQ(Simplified("(b|#PCDATA|a)*"), "(#PCDATA|a|b)*");
}

TEST(RewriteTest, SimplifyDtdTouchesEveryDeclaration) {
  StatusOr<Dtd> dtd = ParseDtd(R"(
    <!ELEMENT a ((b?)?)>
    <!ELEMENT b ((c|c))>
    <!ELEMENT c (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok());
  SimplifyDtd(*dtd);
  EXPECT_EQ(dtd->FindElement("a")->content->ToString(), "(b?)");
  EXPECT_EQ(dtd->FindElement("b")->content->ToString(), "(c)");
}

// Property: simplification preserves the language. TEST_P over a pool of
// hand-picked and mechanically combined models.
class RewriteEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(RewriteEquivalence, PreservesLanguage) {
  StatusOr<ContentModel::Ptr> parsed = ParseContentModel(GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ContentModel::Ptr original = (*parsed)->Clone();
  ContentModel::Ptr simplified = Simplify(std::move(*parsed));
  EXPECT_TRUE(LanguageEquivalent(*original, *simplified))
      << GetParam() << " vs " << simplified->ToString();
  // Simplification never grows the tree.
  EXPECT_LE(simplified->NodeCount(), original->NodeCount());
  // And is idempotent.
  ContentModel::Ptr twice = Simplify(simplified->Clone());
  EXPECT_TRUE(twice->Equals(*simplified))
      << simplified->ToString() << " vs " << twice->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    ModelPool, RewriteEquivalence,
    ::testing::Values(
        "(a)", "(a?)", "(a*)", "(a+)", "((a?)*)", "((a+)*)", "((a*)?)",
        "(a,b)", "(a|b)", "(a?|b)", "(a?|b?)", "((a,b),c)", "((a|b)|c)",
        "((a,b)|(a,b))", "((a,(b,c)),d)", "((a|b)*,c?)", "(a,(b|c)+,d*)",
        "((a+)?,b)", "(((a)))", "((a?,b?))", "((a|b)|(c|d))",
        "(x|(y|(z|x)))", "((a,b)*|c)", "((#PCDATA|a)*)", "(#PCDATA)",
        "((a*,b*),c*)", "(a?|b*)", "(((a,b)+)*)", "((d|e)|(b|c))",
        "((a|a)|a)", "((a,a),a)", "(q?,(r|s)?,t+)"));

}  // namespace
}  // namespace dtdevolve::dtd
