#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/glushkov.h"

namespace dtdevolve::dtd {
namespace {

Automaton Build(const char* model_text) {
  StatusOr<ContentModel::Ptr> model = ParseContentModel(model_text);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return Automaton::Build(**model);
}

bool Accepts(const char* model_text, std::vector<std::string> symbols) {
  return Build(model_text).Accepts(symbols);
}

TEST(AutomatonTest, SequenceAcceptance) {
  EXPECT_TRUE(Accepts("(b,c)", {"b", "c"}));
  EXPECT_FALSE(Accepts("(b,c)", {"b"}));
  EXPECT_FALSE(Accepts("(b,c)", {"c", "b"}));
  EXPECT_FALSE(Accepts("(b,c)", {"b", "c", "c"}));
  EXPECT_FALSE(Accepts("(b,c)", {}));
}

TEST(AutomatonTest, ChoiceAcceptance) {
  EXPECT_TRUE(Accepts("(d|e)", {"d"}));
  EXPECT_TRUE(Accepts("(d|e)", {"e"}));
  EXPECT_FALSE(Accepts("(d|e)", {"d", "e"}));
  EXPECT_FALSE(Accepts("(d|e)", {}));  // one alternative must be chosen
}

TEST(AutomatonTest, UnaryOperators) {
  EXPECT_TRUE(Accepts("(a?)", {}));
  EXPECT_TRUE(Accepts("(a?)", {"a"}));
  EXPECT_FALSE(Accepts("(a?)", {"a", "a"}));
  EXPECT_TRUE(Accepts("(a*)", {}));
  EXPECT_TRUE(Accepts("(a*)", {"a", "a", "a"}));
  EXPECT_FALSE(Accepts("(a+)", {}));
  EXPECT_TRUE(Accepts("(a+)", {"a", "a"}));
}

TEST(AutomatonTest, PaperExample5Declaration) {
  // ((b,c)*,(d|e)) — the DTD the evolution derives in Example 5.
  EXPECT_TRUE(Accepts("((b,c)*,(d|e))", {"d"}));
  EXPECT_TRUE(Accepts("((b,c)*,(d|e))", {"b", "c", "e"}));
  EXPECT_TRUE(Accepts("((b,c)*,(d|e))", {"b", "c", "b", "c", "d"}));
  EXPECT_FALSE(Accepts("((b,c)*,(d|e))", {"b", "c"}));
  EXPECT_FALSE(Accepts("((b,c)*,(d|e))", {"b", "d"}));
  EXPECT_FALSE(Accepts("((b,c)*,(d|e))", {"d", "e"}));
}

TEST(AutomatonTest, PcdataIsOptionalAndRepeatable) {
  // `(#PCDATA)` admits empty content and any number of text runs.
  EXPECT_TRUE(Accepts("(#PCDATA)", {}));
  EXPECT_TRUE(Accepts("(#PCDATA)", {"#PCDATA"}));
  EXPECT_TRUE(Accepts("(#PCDATA)", {"#PCDATA", "#PCDATA"}));
  EXPECT_FALSE(Accepts("(#PCDATA)", {"a"}));
}

TEST(AutomatonTest, MixedContent) {
  EXPECT_TRUE(Accepts("(#PCDATA|em)*", {}));
  EXPECT_TRUE(Accepts("(#PCDATA|em)*", {"#PCDATA", "em", "#PCDATA"}));
  EXPECT_FALSE(Accepts("(#PCDATA|em)*", {"strong"}));
}

TEST(AutomatonTest, EmptyAndAny) {
  EXPECT_TRUE(Accepts("EMPTY", {}));
  EXPECT_FALSE(Accepts("EMPTY", {"a"}));
  EXPECT_TRUE(Accepts("ANY", {}));
  EXPECT_TRUE(Accepts("ANY", {"x", "y", "z"}));
  EXPECT_TRUE(Build("ANY").is_any());
}

TEST(AutomatonTest, NestedNullableSequence) {
  EXPECT_TRUE(Accepts("(a?,b?,c?)", {}));
  EXPECT_TRUE(Accepts("(a?,b?,c?)", {"b"}));
  EXPECT_TRUE(Accepts("(a?,b?,c?)", {"a", "c"}));
  EXPECT_FALSE(Accepts("(a?,b?,c?)", {"c", "a"}));
}

TEST(AutomatonTest, Determinism) {
  EXPECT_TRUE(Build("(b,c)").IsDeterministic());
  EXPECT_TRUE(Build("((b,c)*,(d|e))").IsDeterministic());
  // The classic nondeterministic model: ((a,b)|(a,c)).
  EXPECT_FALSE(Build("((a,b)|(a,c))").IsDeterministic());
  // (a*,a) is also not 1-unambiguous.
  EXPECT_FALSE(Build("(a*,a)").IsDeterministic());
}

TEST(LanguageEquivalenceTest, BasicIdentities) {
  auto eq = [](const char* a, const char* b) {
    return LanguageEquivalent(**ParseContentModel(a), **ParseContentModel(b));
  };
  EXPECT_TRUE(eq("(a?)", "(a?)"));
  EXPECT_TRUE(eq("((a?)?)", "(a?)"));
  EXPECT_TRUE(eq("((a*)+)", "(a*)"));
  EXPECT_TRUE(eq("((a+)?)", "(a*)"));
  EXPECT_TRUE(eq("(a|b)", "(b|a)"));
  EXPECT_TRUE(eq("((a,b),c)", "(a,(b,c))"));
  EXPECT_FALSE(eq("(a?)", "(a)"));
  EXPECT_FALSE(eq("(a,b)", "(b,a)"));
  EXPECT_FALSE(eq("(a*)", "(a+)"));
  EXPECT_FALSE(eq("(a|b)", "(a,b)"));
}

TEST(LanguageEquivalenceTest, AnyOnlyEqualsAny) {
  EXPECT_TRUE(LanguageEquivalent(*ContentModel::Any(), *ContentModel::Any()));
  EXPECT_FALSE(LanguageEquivalent(*ContentModel::Any(),
                                  **ParseContentModel("(a*)")));
}

TEST(LanguageSubsetTest, Ordering) {
  auto sub = [](const char* a, const char* b) {
    return LanguageSubset(**ParseContentModel(a), **ParseContentModel(b));
  };
  EXPECT_TRUE(sub("(a)", "(a?)"));
  EXPECT_TRUE(sub("(a?)", "(a*)"));
  EXPECT_TRUE(sub("(a+)", "(a*)"));
  EXPECT_TRUE(sub("(a,b)", "((a|b)*)"));
  EXPECT_FALSE(sub("(a*)", "(a+)"));
  EXPECT_FALSE(sub("(a,b)", "(b,a)"));
  EXPECT_TRUE(LanguageSubset(**ParseContentModel("(a,b)"),
                             *ContentModel::Any()));
  EXPECT_FALSE(LanguageSubset(*ContentModel::Any(),
                              **ParseContentModel("(a*)")));
}

struct DeterminismCase {
  const char* model;
  bool deterministic;
};

class DeterminismSuite : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(DeterminismSuite, MatchesExpectation) {
  EXPECT_EQ(Build(GetParam().model).IsDeterministic(),
            GetParam().deterministic)
      << GetParam().model;
}

INSTANTIATE_TEST_SUITE_P(
    Models, DeterminismSuite,
    ::testing::Values(DeterminismCase{"(a)", true},
                      DeterminismCase{"(a,b,c)", true},
                      DeterminismCase{"(a|b|c)", true},
                      DeterminismCase{"(a*,b)", true},
                      DeterminismCase{"(a?,b)", true},
                      DeterminismCase{"((a,b)+,c)", true},
                      DeterminismCase{"(#PCDATA|a|b)*", true},
                      DeterminismCase{"((a,b)|(a,c))", false},
                      DeterminismCase{"(a*,a)", false},
                      DeterminismCase{"(a?,a)", false},
                      DeterminismCase{"((a|b)*,a)", false},
                      // The misc-window shape: shared prefix across OR.
                      DeterminismCase{"((b)|(b,c))", false}));

TEST(AutomatonTest, StructureOfSmallAutomaton) {
  Automaton a = Build("(b,c)");
  EXPECT_EQ(a.num_positions(), 2u);
  EXPECT_EQ(a.num_states(), 3u);
  // start → b → c, only c accepting.
  EXPECT_FALSE(a.IsAccepting(0));
  ASSERT_EQ(a.SuccessorsOf(0).size(), 1u);
  EXPECT_EQ(a.LabelOfPosition(a.SuccessorsOf(0)[0]), "b");
}

}  // namespace
}  // namespace dtdevolve::dtd
