#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "classify/repository.h"
#include "core/source.h"
#include "workload/scenarios.h"
#include "xml/parser.h"

namespace dtdevolve {
namespace {

xml::Document Doc(const std::string& text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

// Repository ids are handed to the clustering engine and exposed through
// `/dtds/candidates` membership lists, so an id must never be reassigned
// to a different document — not after Take, not after Clear.

TEST(RepositoryIdStabilityTest, AddNeverReusesTakenIds) {
  classify::Repository repo;
  const int a = repo.Add(Doc("<a/>"));
  const int b = repo.Add(Doc("<b/>"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  (void)repo.Take(a);
  (void)repo.Take(b);
  EXPECT_TRUE(repo.empty());
  // The counter is monotonic: freed ids stay retired.
  EXPECT_EQ(repo.Add(Doc("<c/>")), 2);
}

TEST(RepositoryIdStabilityTest, ClearRetiresAllHandedOutIds) {
  classify::Repository repo;
  repo.Add(Doc("<a/>"));
  repo.Add(Doc("<b/>"));
  repo.Clear();
  EXPECT_TRUE(repo.empty());
  EXPECT_EQ(repo.Add(Doc("<c/>")), 2);
}

TEST(RepositoryIdStabilityTest, RestoreBumpsTheCounterPastRestoredIds) {
  classify::Repository repo;
  repo.Restore(7, Doc("<a/>"));
  EXPECT_EQ(repo.Add(Doc("<b/>")), 8);
  // Restoring below the watermark never lowers it.
  repo.Restore(3, Doc("<c/>"));
  EXPECT_EQ(repo.Add(Doc("<d/>")), 9);
}

TEST(RepositoryIdStabilityTest, IdsSurviveReclassificationRounds) {
  // End-to-end regression: ids recorded before a reclassification round
  // still name the same documents afterwards, and new arrivals continue
  // above every id ever handed out.
  core::SourceOptions options;
  options.sigma = 0.5;
  options.auto_evolve = false;
  core::XmlSource source(options);
  ASSERT_TRUE(source
                  .AddDtd("bibliography",
                          workload::MakeBibliographyScenario(1).InitialDtd())
                  .ok());
  workload::ScenarioStream stream =
      workload::MakeMixedPopulationScenario(3, 2, 10);
  while (!stream.Done()) source.Process(stream.Next());

  const std::vector<int> before = source.repository().Ids();
  ASSERT_FALSE(before.empty());
  std::vector<std::string> tags;
  for (int id : before) {
    tags.push_back(source.repository().Get(id).root().tag());
  }

  // Induce + accept drains one family out of the repository.
  ASSERT_GT(source.InduceCandidates(), 0u);
  const uint64_t candidate = source.candidates().front().id;
  ASSERT_TRUE(source.AcceptCandidate(candidate).ok());

  // Survivors keep their id → document binding.
  for (int id : source.repository().Ids()) {
    size_t index =
        std::find(before.begin(), before.end(), id) - before.begin();
    ASSERT_LT(index, before.size());
    EXPECT_EQ(source.repository().Get(id).root().tag(), tags[index]);
  }
  // And the next unclassified arrival gets a brand-new id.
  workload::ScenarioStream more =
      workload::MakeMixedPopulationScenario(4, 3, 1);
  more.Next();
  more.Next();
  core::XmlSource::ProcessOutcome outcome = source.Process(more.Next());
  if (!outcome.classified) {
    const std::vector<int> after = source.repository().Ids();
    EXPECT_GT(after.back(), before.back());
  }
}

}  // namespace
}  // namespace dtdevolve
