#include <gtest/gtest.h>

#include "adapt/adapter.h"
#include "dtd/dtd_parser.h"
#include "validate/validator.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace dtdevolve::adapt {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

const char* kMailDtd = R"(
  <!ELEMENT mail (from, to, subject?, body)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

TEST(MinimalElementTest, BuildsSmallestValidInstance) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (((b,c) | d), e*, f?)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e (#PCDATA)>
    <!ELEMENT f (#PCDATA)>
  )");
  std::unique_ptr<xml::Element> minimal = MinimalElement(dtd, "a");
  // The cheapest alternative (d, 1 leaf) is chosen; optionals skipped.
  EXPECT_EQ(minimal->ChildTagSequence(), (std::vector<std::string>{"d"}));
  validate::Validator validator(dtd);
  EXPECT_TRUE(validator.ValidateSubtree(*minimal).valid);
}

TEST(MinimalElementTest, PlaceholderText) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT t (#PCDATA)>");
  AdaptOptions options;
  options.placeholder_text = "TODO";
  std::unique_ptr<xml::Element> minimal = MinimalElement(dtd, "t", options);
  EXPECT_EQ(minimal->TextContent(), "TODO");
}

TEST(AdapterTest, ValidDocumentUntouched) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  xml::Document doc = MakeDoc(
      "<mail><from>a</from><to>b</to><body>x</body></mail>");
  xml::Document before = doc.Clone();
  AdaptReport report;
  ASSERT_TRUE(AdaptDocument(doc, dtd, {}, &report).ok());
  EXPECT_FALSE(report.changed());
  EXPECT_TRUE(xml::StructurallyEqual(before.root(), doc.root()));
}

TEST(AdapterTest, DropsUnknownChildren) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  xml::Document doc = MakeDoc(
      "<mail><from>a</from><to>b</to><spam>z</spam><body>x</body></mail>");
  AdaptReport report;
  ASSERT_TRUE(AdaptDocument(doc, dtd, {}, &report).ok());
  EXPECT_EQ(report.children_dropped, 1u);
  validate::Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(doc).valid);
  // Matched content is preserved verbatim.
  EXPECT_EQ(doc.root().ChildElements()[0]->TextContent(), "a");
}

TEST(AdapterTest, InsertsMissingRequiredChildren) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  xml::Document doc = MakeDoc("<mail><from>a</from></mail>");
  AdaptReport report;
  ASSERT_TRUE(AdaptDocument(doc, dtd, {}, &report).ok());
  EXPECT_EQ(report.children_inserted, 2u);  // to, body (subject optional)
  EXPECT_EQ(doc.root().ChildTagSequence(),
            (std::vector<std::string>{"from", "to", "body"}));
  validate::Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(doc).valid);
}

TEST(AdapterTest, MovesMisplacedChildrenInsteadOfSynthesizing) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  // from and to swapped: an order violation.
  xml::Document doc = MakeDoc(
      "<mail><to>b</to><from>a</from><body>x</body></mail>");
  AdaptReport report;
  ASSERT_TRUE(AdaptDocument(doc, dtd, {}, &report).ok());
  EXPECT_GE(report.children_moved, 1u);
  EXPECT_EQ(report.children_dropped, 0u);
  EXPECT_EQ(doc.root().ChildTagSequence(),
            (std::vector<std::string>{"from", "to", "body"}));
  // The moved element keeps its content — no information loss.
  EXPECT_EQ(doc.root().ChildElements()[1]->TextContent(), "b");
  validate::Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(doc).valid);
}

TEST(AdapterTest, RepetitionViolationTrimmed) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  xml::Document doc = MakeDoc(
      "<mail><from>a</from><to>b</to><to>c</to><body>x</body></mail>");
  ASSERT_TRUE(AdaptDocument(doc, dtd).ok());
  validate::Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(doc).valid);
  EXPECT_EQ(doc.root().ChildTagSequence(),
            (std::vector<std::string>{"from", "to", "body"}));
}

TEST(AdapterTest, AdaptsNestedLevels) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT r (s)>
    <!ELEMENT s (u, v)>
    <!ELEMENT u (#PCDATA)>
    <!ELEMENT v (#PCDATA)>
  )");
  xml::Document doc = MakeDoc("<r><s><v>x</v></s></r>");
  AdaptReport report;
  ASSERT_TRUE(AdaptDocument(doc, dtd, {}, &report).ok());
  validate::Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(doc).valid);
  // v kept, u synthesized before it.
  const xml::Element* s = doc.root().ChildElements()[0];
  EXPECT_EQ(s->ChildTagSequence(), (std::vector<std::string>{"u", "v"}));
  EXPECT_EQ(s->ChildElements()[1]->TextContent(), "x");
}

TEST(AdapterTest, KeepUnknownWhenConfigured) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  xml::Document doc = MakeDoc(
      "<mail><from>a</from><to>b</to><spam>z</spam><body>x</body></mail>");
  AdaptOptions options;
  options.drop_unknown = false;
  AdaptReport report;
  ASSERT_TRUE(AdaptDocument(doc, dtd, options, &report).ok());
  EXPECT_EQ(report.children_dropped, 0u);
  EXPECT_TRUE(doc.root().ChildTagSet().count("spam"));
}

TEST(AdapterTest, UndeclaredRootFails) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  xml::Document doc = MakeDoc("<other/>");
  Status status = AdaptDocument(doc, dtd);
  EXPECT_EQ(status.code(), Status::Code::kNotFound);
}

TEST(AdapterTest, AnyContentUntouched) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT box ANY><!ELEMENT x (#PCDATA)>");
  xml::Document doc = MakeDoc("<box><x>1</x>text<x>2</x></box>");
  xml::Document before = doc.Clone();
  ASSERT_TRUE(AdaptDocument(doc, dtd).ok());
  EXPECT_TRUE(xml::StructurallyEqual(before.root(), doc.root()));
}

// Property: adapting any mutated document yields a valid document, and
// already-valid documents are never changed.
class AdapterProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdapterProperty, AdaptedDocumentsAreValid) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (b+, (c|d), e?)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (f, g?)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e (#PCDATA)>
    <!ELEMENT f (#PCDATA)>
    <!ELEMENT g (#PCDATA)>
  )");
  validate::Validator validator(dtd);
  workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                        GetParam());
  workload::MutationOptions mutation;
  mutation.drop_probability = 0.4;
  mutation.insert_probability = 0.4;
  mutation.duplicate_probability = 0.3;
  mutation.swap_probability = 0.4;
  workload::Mutator mutator(mutation, GetParam() + 1);
  for (int i = 0; i < 25; ++i) {
    xml::Document doc = generator.Generate();
    mutator.Mutate(doc);
    ASSERT_TRUE(AdaptDocument(doc, dtd).ok());
    validate::ValidationResult result = validator.Validate(doc);
    ASSERT_TRUE(result.valid)
        << xml::WriteElement(doc.root())
        << "\n"
        << (result.errors.empty() ? "?" : result.errors[0].message);
  }
}

TEST_P(AdapterProperty, ValidDocumentsAreFixpoints) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (b*, (c|d)+)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d EMPTY>
  )");
  workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                        GetParam() * 31);
  for (int i = 0; i < 25; ++i) {
    xml::Document doc = generator.Generate();
    xml::Document before = doc.Clone();
    AdaptReport report;
    ASSERT_TRUE(AdaptDocument(doc, dtd, {}, &report).ok());
    ASSERT_FALSE(report.changed());
    ASSERT_TRUE(xml::StructurallyEqual(before.root(), doc.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdapterProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace dtdevolve::adapt
