#include <gtest/gtest.h>

#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "validate/validator.h"
#include "xml/parser.h"

namespace dtdevolve::core {
namespace {

const char* kMailDtd = R"(
  <!ELEMENT mail (from, to, body)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kBookDtd = R"(
  <!ELEMENT book (title, author)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
)";

TEST(XmlSourceTest, AddDtdValidation) {
  XmlSource source;
  EXPECT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  // Duplicate name.
  Status dup = source.AddDtdText("mail", kMailDtd);
  EXPECT_EQ(dup.code(), Status::Code::kAlreadyExists);
  // Inconsistent DTD (dangling reference).
  Status bad = source.AddDtdText("bad", "<!ELEMENT a (missing)>");
  EXPECT_FALSE(bad.ok());
  // Unparseable DTD.
  EXPECT_FALSE(source.AddDtdText("worse", "<!ELEMENT ").ok());
  EXPECT_EQ(source.DtdNames(), (std::vector<std::string>{"mail"}));
}

TEST(XmlSourceTest, ClassifiesIntoBestDtd) {
  XmlSource source;
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(source.AddDtdText("book", kBookDtd).ok());

  StatusOr<XmlSource::ProcessOutcome> outcome = source.ProcessText(
      "<book><title>t</title><author>a</author></book>");
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->classified);
  EXPECT_EQ(outcome->dtd_name, "book");
  EXPECT_DOUBLE_EQ(outcome->similarity, 1.0);
  EXPECT_EQ(source.documents_processed(), 1u);
  EXPECT_EQ(source.documents_classified(), 1u);
  EXPECT_EQ(source.InstancesOf("book").size(), 1u);
  EXPECT_EQ(source.FindExtended("book")->documents_recorded(), 1u);
}

TEST(XmlSourceTest, UnclassifiedGoesToRepository) {
  XmlSource source;
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  StatusOr<XmlSource::ProcessOutcome> outcome =
      source.ProcessText("<unrelated><z/></unrelated>");
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->classified);
  EXPECT_EQ(source.repository().size(), 1u);
  EXPECT_EQ(source.documents_classified(), 0u);
  ASSERT_FALSE(source.events().empty());
  EXPECT_EQ(source.events().back().kind, SourceEvent::Kind::kUnclassified);
}

TEST(XmlSourceTest, ParseErrorsPropagate) {
  XmlSource source;
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  EXPECT_FALSE(source.ProcessText("<mail>").ok());
  EXPECT_EQ(source.documents_processed(), 0u);
}

TEST(XmlSourceTest, AutoEvolutionTriggersOnDivergence) {
  SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.2;
  options.min_documents_before_check = 10;
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());

  // Documents consistently carry an extra `cc` element.
  const char* drifted =
      "<mail><from>a</from><to>b</to><cc>c</cc><body>x</body></mail>";
  bool evolved = false;
  for (int i = 0; i < 12 && !evolved; ++i) {
    StatusOr<XmlSource::ProcessOutcome> outcome = source.ProcessText(drifted);
    ASSERT_TRUE(outcome.ok());
    evolved = outcome->evolved;
  }
  EXPECT_TRUE(evolved);
  EXPECT_EQ(source.evolutions_performed(), 1u);
  // The evolved DTD now accepts the drifted documents.
  const dtd::Dtd* dtd = source.FindDtd("mail");
  ASSERT_NE(dtd, nullptr);
  EXPECT_TRUE(dtd->HasElement("cc"));
  validate::Validator validator(*dtd);
  StatusOr<xml::Document> doc = xml::ParseDocument(drifted);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(validator.Validate(*doc).valid);
  // An evolution event with a report was logged.
  bool saw_evolution_event = false;
  for (const SourceEvent& event : source.events()) {
    if (event.kind == SourceEvent::Kind::kEvolved) {
      saw_evolution_event = true;
      EXPECT_NE(event.detail.find("mail"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_evolution_event);
}

TEST(XmlSourceTest, NoEvolutionBeforeMinDocuments) {
  SourceOptions options;
  options.tau = 0.0;  // would always fire
  options.min_documents_before_check = 100;
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  for (int i = 0; i < 20; ++i) {
    auto outcome = source.ProcessText(
        "<mail><from>a</from><cc>c</cc><body>x</body></mail>");
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->evolved);
  }
  EXPECT_EQ(source.evolutions_performed(), 0u);
}

TEST(XmlSourceTest, RepositoryReclassifiedAfterEvolution) {
  SourceOptions options;
  options.sigma = 0.6;  // strict enough to reject heavy drift at first
  options.tau = 0.1;
  options.min_documents_before_check = 5;
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());

  // A heavily drifted document (six unknown cc children) scores below σ
  // against the initial DTD and lands in the repository.
  const char* heavy =
      "<mail><from>a</from><to>b</to><cc>1</cc><cc>2</cc><cc>3</cc>"
      "<cc>4</cc><cc>5</cc><cc>6</cc><body>x</body></mail>";
  auto first = source.ProcessText(heavy);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->classified);
  EXPECT_EQ(source.repository().size(), 1u);

  // Mildly drifted documents classify and eventually trigger evolution;
  // variable cc repetition teaches the evolver `cc+`.
  for (int i = 0; i < 10; ++i) {
    const char* mild =
        (i % 2 == 0)
            ? "<mail><from>a</from><to>b</to><cc>c</cc><body>x</body>"
              "</mail>"
            : "<mail><from>a</from><to>b</to><cc>c</cc><cc>d</cc>"
              "<body>x</body></mail>";
    ASSERT_TRUE(source.ProcessText(mild).ok());
  }
  EXPECT_GE(source.evolutions_performed(), 1u);
  // After evolution, the repository document fits the evolved DTD and was
  // recovered.
  EXPECT_EQ(source.repository().size(), 0u);
  bool saw_reclassified = false;
  for (const SourceEvent& event : source.events()) {
    if (event.kind == SourceEvent::Kind::kReclassified) {
      saw_reclassified = true;
    }
  }
  EXPECT_TRUE(saw_reclassified);
}

TEST(XmlSourceTest, ForceEvolveAndCheck) {
  SourceOptions options;
  options.auto_evolve = false;
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(source
                    .ProcessText("<mail><from>a</from><cc>x</cc>"
                                 "<body>b</body></mail>")
                    .ok());
  }
  evolve::CheckResult check = source.Check("mail");
  EXPECT_TRUE(check.should_evolve);
  EXPECT_GT(check.divergence, 0.0);
  EXPECT_EQ(source.Check("nope").documents, 0u);

  std::optional<evolve::EvolutionResult> result = source.ForceEvolve("mail");
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->any_change);
  EXPECT_FALSE(source.ForceEvolve("nope").has_value());
}

TEST(XmlSourceTest, KeepDocumentsFlag) {
  SourceOptions options;
  options.keep_documents = false;
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(source
                  .ProcessText("<mail><from>a</from><to>b</to>"
                               "<body>x</body></mail>")
                  .ok());
  EXPECT_TRUE(source.InstancesOf("mail").empty());
  EXPECT_EQ(source.FindExtended("mail")->documents_recorded(), 1u);
}

TEST(FormatEvolutionTest, MentionsWindowsAndModels) {
  evolve::EvolutionResult result;
  evolve::ElementEvolution element;
  element.name = "a";
  element.window = evolve::Window::kNew;
  element.invalidity = 0.95;
  element.instances = 20;
  element.old_model = "(b)";
  element.new_model = "(x,y)";
  element.changed = true;
  element.trace.push_back({1, "AND(x,y)"});
  result.elements.push_back(std::move(element));
  result.added_declarations = {"x", "y"};
  std::string report = FormatEvolution(result);
  EXPECT_NE(report.find("window=new"), std::string::npos);
  EXPECT_NE(report.find("old: (b)"), std::string::npos);
  EXPECT_NE(report.find("new: (x,y)"), std::string::npos);
  EXPECT_NE(report.find("policy  1"), std::string::npos);
  EXPECT_NE(report.find("added declarations: x y"), std::string::npos);
}

}  // namespace
}  // namespace dtdevolve::core
