#include <gtest/gtest.h>

#include "dtd/diff.h"
#include "dtd/dtd_parser.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "xml/parser.h"

namespace dtdevolve::dtd {
namespace {

Dtd MakeDtd(const char* text) {
  StatusOr<Dtd> dtd = ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

TEST(DiffTest, IdenticalDtdsProduceNoEntries) {
  Dtd a = MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Dtd b = MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  EXPECT_TRUE(DiffDtds(a, b).empty());
  EXPECT_EQ(FormatDiff(DiffDtds(a, b)), "(no language changes)\n");
}

TEST(DiffTest, SameLanguageDifferentSyntaxIsNoChange) {
  Dtd a = MakeDtd("<!ELEMENT a ((b?)?)><!ELEMENT b (#PCDATA)>");
  Dtd b = MakeDtd("<!ELEMENT a (b?)><!ELEMENT b (#PCDATA)>");
  EXPECT_TRUE(DiffDtds(a, b).empty());
}

TEST(DiffTest, AddedAndRemoved) {
  Dtd old_dtd = MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Dtd new_dtd = MakeDtd("<!ELEMENT a (c)><!ELEMENT c (#PCDATA)>");
  std::vector<DeclDiff> diff = DiffDtds(old_dtd, new_dtd);
  ASSERT_EQ(diff.size(), 3u);  // a changed, b removed, c added
  EXPECT_EQ(diff[0].kind, DeclDiff::Kind::kChanged);
  EXPECT_EQ(diff[0].relation, DeclRelation::kIncomparable);
  EXPECT_EQ(diff[1].kind, DeclDiff::Kind::kRemoved);
  EXPECT_EQ(diff[1].name, "b");
  EXPECT_EQ(diff[2].kind, DeclDiff::Kind::kAdded);
  EXPECT_EQ(diff[2].name, "c");
}

TEST(DiffTest, RelationDirections) {
  Dtd old_dtd = MakeDtd("<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>");
  Dtd widened = MakeDtd(
      "<!ELEMENT a ((b|c)*)><!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>");
  Dtd narrowed = MakeDtd("<!ELEMENT a (b+)><!ELEMENT b (#PCDATA)>");

  std::vector<DeclDiff> widening = DiffDtds(old_dtd, widened);
  ASSERT_FALSE(widening.empty());
  EXPECT_EQ(widening[0].relation, DeclRelation::kWidened);

  std::vector<DeclDiff> narrowing = DiffDtds(old_dtd, narrowed);
  ASSERT_EQ(narrowing.size(), 1u);
  EXPECT_EQ(narrowing[0].relation, DeclRelation::kNarrowed);
  EXPECT_EQ(RelationName(narrowing[0].relation), "narrowed");
}

TEST(DiffTest, FormatIsReadable) {
  Dtd old_dtd = MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Dtd new_dtd = MakeDtd(
      "<!ELEMENT a (b,c?)><!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>");
  std::string text = FormatDiff(DiffDtds(old_dtd, new_dtd));
  EXPECT_NE(text.find("~ a [widened] (b) -> (b,c?)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("+ c (#PCDATA)"), std::string::npos) << text;
}

TEST(DiffTest, ReportsWhatEvolutionDid) {
  // End-to-end: diff the DTD before and after an evolution round.
  evolve::ExtendedDtd ext(
      MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>"));
  Dtd before = ext.dtd().Clone();
  evolve::Recorder recorder(ext);
  for (int i = 0; i < 20; ++i) {
    StatusOr<xml::Document> doc =
        xml::ParseDocument("<a><b>1</b><c>2</c></a>");
    recorder.RecordDocument(*doc);
  }
  evolve::EvolveDtd(ext, {});
  std::vector<DeclDiff> diff = DiffDtds(before, ext.dtd());
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].name, "a");
  EXPECT_EQ(diff[0].relation, DeclRelation::kIncomparable);  // (b) vs (b,c)
  EXPECT_EQ(diff[1].kind, DeclDiff::Kind::kAdded);
  EXPECT_EQ(diff[1].name, "c");
}

}  // namespace
}  // namespace dtdevolve::dtd
