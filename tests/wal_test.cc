// WAL suite: record framing, segment rotation, and — the part worth the
// suite — what `Wal::Open` does with the wreckage a crash leaves behind.
// The torn-tail / mid-log distinction is the durability contract: a torn
// final record was never acked and is truncated away with a warning,
// while corruption *inside* acked history is a hard error. Fault
// injection (`io/fault.h`) drives the failed-append and dir-fsync
// regressions deterministically. Under the `durability` ctest label.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dtd/dtd_parser.h"
#include "evolve/persist.h"
#include "io/fault.h"
#include "io/file.h"
#include "store/wal.h"

namespace dtdevolve::store {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "wal_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

WalOptions OptionsFor(const std::string& dir) {
  WalOptions options;
  options.dir = dir;
  options.fsync_policy = FsyncPolicy::kAlways;
  return options;
}

std::unique_ptr<Wal> MustOpen(const WalOptions& options, WalReplay* replay) {
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(options, 0, replay);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return wal.ok() ? std::move(*wal) : nullptr;
}

/// Path of the single segment a fresh one-segment log lives in.
std::string OnlySegment(const std::string& dir) {
  std::string found;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "expected exactly one segment in " << dir;
    found = entry.path().string();
  }
  EXPECT_FALSE(found.empty());
  return found;
}

void CorruptByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x5A;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

TEST(WalTest, EmptyLogOpensCleanAndAppendsReplay) {
  const std::string dir = FreshDir("empty");
  WalReplay replay;
  std::unique_ptr<Wal> wal = MustOpen(OptionsFor(dir), &replay);
  ASSERT_NE(wal, nullptr);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.tail_truncated);
  EXPECT_EQ(wal->next_lsn(), 1u);

  StatusOr<uint64_t> a = wal->Append("alpha");
  StatusOr<uint64_t> b = wal->Append("beta");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  wal.reset();

  WalReplay reopened;
  wal = MustOpen(OptionsFor(dir), &reopened);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(reopened.records.size(), 2u);
  EXPECT_EQ(reopened.records[0].lsn, 1u);
  EXPECT_EQ(reopened.records[0].payload, "alpha");
  EXPECT_EQ(reopened.records[1].payload, "beta");
  EXPECT_EQ(wal->next_lsn(), 3u);
}

TEST(WalTest, TornFinalRecordIsTruncatedWithWarning) {
  const std::string dir = FreshDir("torn");
  {
    WalReplay replay;
    std::unique_ptr<Wal> wal = MustOpen(OptionsFor(dir), &replay);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal->Append("first record").ok());
    ASSERT_TRUE(wal->Append("second record").ok());
  }
  // Cut the last record in half: a crash mid-append.
  const std::string segment = OnlySegment(dir);
  const uint64_t full = std::filesystem::file_size(segment);
  const uint64_t torn = full - 7;
  std::filesystem::resize_file(segment, torn);

  WalReplay replay;
  std::unique_ptr<Wal> wal = MustOpen(OptionsFor(dir), &replay);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, "first record");
  EXPECT_TRUE(replay.tail_truncated);
  EXPECT_NE(replay.warning.find("torn"), std::string::npos) << replay.warning;
  // The tail was truncated *physically*, back to the last intact record.
  EXPECT_LT(std::filesystem::file_size(segment), torn);

  // Double recovery is idempotent: the second open sees a clean log.
  wal.reset();
  WalReplay again;
  wal = MustOpen(OptionsFor(dir), &again);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(again.records.size(), 1u);
  EXPECT_FALSE(again.tail_truncated);
  EXPECT_TRUE(again.warning.empty());
  // The torn record's LSN was never acked, so the next append reuses it.
  StatusOr<uint64_t> lsn = wal->Append("third");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
}

TEST(WalTest, MidLogCorruptionIsAHardError) {
  const std::string dir = FreshDir("midlog");
  {
    WalReplay replay;
    std::unique_ptr<Wal> wal = MustOpen(OptionsFor(dir), &replay);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal->Append("first record").ok());
    ASSERT_TRUE(wal->Append("second record").ok());
  }
  // Flip a payload byte of the *first* record — corruption followed by
  // more data. Dropping the suffix would lose an acked document, so Open
  // must refuse instead of "repairing".
  CorruptByteAt(OnlySegment(dir), 16 + 3);

  WalReplay replay;
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(OptionsFor(dir), 0, &replay);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), Status::Code::kParseError);
}

TEST(WalTest, CorruptionInNonFinalSegmentIsAHardError) {
  const std::string dir = FreshDir("nonfinal");
  WalOptions options = OptionsFor(dir);
  options.segment_bytes = 32;  // every record rotates into a new segment
  std::string first_segment;
  {
    WalReplay replay;
    std::unique_ptr<Wal> wal = MustOpen(options, &replay);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal->Append("record one, long enough to rotate").ok());
    first_segment = OnlySegment(dir);
    ASSERT_TRUE(wal->Append("record two").ok());
    ASSERT_GT(wal->SegmentCount(), 1u);
  }
  // Cutting the tail of a non-final segment guts an *acked* record: the
  // next segment's LSN then skips the victim, and the gap is the proof
  // that refusing to boot is right.
  std::filesystem::resize_file(first_segment,
                               std::filesystem::file_size(first_segment) - 3);

  WalReplay replay;
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(options, 0, &replay);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), Status::Code::kParseError);
  EXPECT_NE(wal.status().message().find("LSN gap"), std::string::npos)
      << wal.status().ToString();
}

TEST(WalTest, RotationBoundaryReplaysAcrossSegmentsAndTruncates) {
  const std::string dir = FreshDir("rotate");
  WalOptions options = OptionsFor(dir);
  options.segment_bytes = 64;
  WalReplay replay;
  std::unique_ptr<Wal> wal = MustOpen(options, &replay);
  ASSERT_NE(wal, nullptr);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wal->Append("payload number " + std::to_string(i)).ok());
  }
  const size_t segments = wal->SegmentCount();
  EXPECT_GT(segments, 2u);
  wal.reset();

  WalReplay reopened;
  wal = MustOpen(options, &reopened);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(reopened.records.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(reopened.records[i].lsn, i + 1);
    EXPECT_EQ(reopened.records[i].payload,
              "payload number " + std::to_string(i));
  }

  // Truncating through a checkpointed LSN drops covered segments —
  // segment-granular, so records at or below the checkpoint may linger,
  // but everything above it must survive.
  ASSERT_TRUE(wal->TruncateThrough(5).ok());
  EXPECT_LT(wal->SegmentCount(), segments);
  wal.reset();
  WalReplay truncated;
  wal = MustOpen(options, &truncated);
  ASSERT_NE(wal, nullptr);
  ASSERT_FALSE(truncated.records.empty());
  EXPECT_EQ(truncated.records.back().lsn, 8u);
  uint64_t expect = truncated.records.front().lsn;
  EXPECT_LE(expect, 6u) << "a record above the checkpoint was dropped";
  for (const WalRecord& record : truncated.records) {
    EXPECT_EQ(record.lsn, expect++) << "replay after truncation has a gap";
  }
}

TEST(WalTest, FailedAppendLeavesLogCleanAndRecovers) {
  const std::string dir = FreshDir("enospc");
  WalReplay replay;
  std::unique_ptr<Wal> wal = MustOpen(OptionsFor(dir), &replay);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->Append("survives").ok());

  {
    // Disk full, half the record persisted — the failed append must
    // truncate its torn bytes back out of the segment.
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kWrite);
    plan.error_code = ENOSPC;
    plan.torn_fraction = 0.5;
    io::ScopedFaultPlan guard(plan);
    StatusOr<uint64_t> lsn = wal->Append("must not surface");
    ASSERT_FALSE(lsn.ok());
  }
  // The next append succeeds and the log replays without the casualty.
  StatusOr<uint64_t> after = wal->Append("after the outage");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  wal.reset();

  WalReplay reopened;
  wal = MustOpen(OptionsFor(dir), &reopened);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(reopened.records.size(), 2u);
  EXPECT_EQ(reopened.records[0].payload, "survives");
  EXPECT_EQ(reopened.records[1].payload, "after the outage");
  EXPECT_FALSE(reopened.tail_truncated);
}

TEST(WalTest, BrokenWalSelfHealsInPlaceWhenTruncateRecovers) {
  const std::string dir = FreshDir("broken_inplace");
  WalReplay replay;
  std::unique_ptr<Wal> wal = MustOpen(OptionsFor(dir), &replay);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->Append("before").ok());

  {
    // The write fails *and* the cleanup truncate fails: the segment may
    // hold torn bytes, so the WAL must refuse to stack records on top.
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kWrite) |
                   static_cast<uint32_t>(io::FaultOp::kTruncate);
    plan.error_code = EIO;
    plan.torn_fraction = 0.25;
    plan.crash = true;  // every later masked op fails too: the truncate
    io::ScopedFaultPlan guard(plan);
    ASSERT_FALSE(wal->Append("torn and stuck").ok());
  }
  // The disk came back: the retry of the cleanup truncate succeeds, so
  // healing needs no new segment and leaves no torn bytes behind.
  StatusOr<uint64_t> healed = wal->Append("after heal");
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(wal->SegmentCount(), 1u);
  wal.reset();

  WalReplay reopened;
  wal = MustOpen(OptionsFor(dir), &reopened);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(reopened.records.size(), 2u);
  EXPECT_EQ(reopened.records[0].payload, "before");
  EXPECT_EQ(reopened.records[1].payload, "after heal");
  EXPECT_FALSE(reopened.tail_truncated);
}

TEST(WalTest, BrokenWalSelfHealsByRotatingWhenTruncateKeepsFailing) {
  const std::string dir = FreshDir("broken_rotate");
  WalReplay replay;
  std::unique_ptr<Wal> wal = MustOpen(OptionsFor(dir), &replay);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->Append("before").ok());

  {
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kWrite) |
                   static_cast<uint32_t>(io::FaultOp::kTruncate);
    plan.error_code = EIO;
    plan.torn_fraction = 0.25;
    plan.crash = true;
    io::ScopedFaultPlan guard(plan);
    ASSERT_FALSE(wal->Append("torn and stuck").ok());
  }
  {
    // The in-place truncate retry still fails — healing falls back to
    // rotating, abandoning the torn bytes in the retired segment.
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kTruncate);
    plan.error_code = EIO;
    io::ScopedFaultPlan guard(plan);
    StatusOr<uint64_t> healed = wal->Append("after heal");
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  }
  EXPECT_EQ(wal->SegmentCount(), 2u);
  wal.reset();

  // Replay tolerates the abandoned torn tail: the failed append never
  // consumed an LSN, so the next segment continues the sequence — the
  // contiguity that separates this from real mid-log corruption.
  WalReplay reopened;
  wal = MustOpen(OptionsFor(dir), &reopened);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(reopened.records.size(), 2u);
  EXPECT_EQ(reopened.records[0].payload, "before");
  EXPECT_EQ(reopened.records[0].lsn, 1u);
  EXPECT_EQ(reopened.records[1].payload, "after heal");
  EXPECT_EQ(reopened.records[1].lsn, 2u);
  EXPECT_TRUE(reopened.tail_truncated);
  EXPECT_NE(reopened.warning.find("torn"), std::string::npos);
}

// --- persist.cc durability regression ---------------------------------------

TEST(WalTest, SnapshotSaveFsyncsTheParentDirectory) {
  const std::string dir = FreshDir("persist_dirsync");
  ASSERT_TRUE(io::CreateDir(dir).ok());
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd("<!ELEMENT a (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  evolve::ExtendedDtd ext(std::move(*dtd));
  const std::string path = dir + "/a.dtdstate";

  {
    // If SaveExtendedDtdFile skipped the parent-directory fsync after its
    // rename, this plan would never fire and the save would "succeed".
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kFsyncDir);
    io::ScopedFaultPlan guard(plan);
    Status saved = evolve::SaveExtendedDtdFile(ext, path);
    ASSERT_FALSE(saved.ok())
        << "save must surface a parent-dir fsync failure";
  }
  Status saved = evolve::SaveExtendedDtdFile(ext, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  StatusOr<evolve::ExtendedDtd> loaded = evolve::LoadExtendedDtdFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

}  // namespace
}  // namespace dtdevolve::store
