#include <gtest/gtest.h>

#include "dtd/content_model.h"
#include "dtd/dtd.h"

namespace dtdevolve::dtd {
namespace {

TEST(ContentModelTest, FactoryKinds) {
  EXPECT_EQ(ContentModel::Name("a")->kind(), ContentModel::Kind::kName);
  EXPECT_EQ(ContentModel::Pcdata()->kind(), ContentModel::Kind::kPcdata);
  EXPECT_EQ(ContentModel::Any()->kind(), ContentModel::Kind::kAny);
  EXPECT_EQ(ContentModel::Empty()->kind(), ContentModel::Kind::kEmpty);
  EXPECT_TRUE(ContentModel::Name("a")->is_leaf());
  EXPECT_TRUE(SeqOfNames({"a", "b"})->is_operator());
  EXPECT_TRUE(ContentModel::Opt(ContentModel::Name("a"))->is_unary());
}

TEST(ContentModelTest, ToStringMatchesDtdSyntax) {
  EXPECT_EQ(SeqOfNames({"b", "c"})->ToString(), "(b,c)");
  EXPECT_EQ(ChoiceOfNames({"d", "e"})->ToString(), "(d|e)");
  EXPECT_EQ(ContentModel::Star(ContentModel::Name("b"))->ToString(), "(b*)");
  EXPECT_EQ(ContentModel::Pcdata()->ToString(), "(#PCDATA)");
  EXPECT_EQ(ContentModel::Any()->ToString(), "ANY");
  EXPECT_EQ(ContentModel::Empty()->ToString(), "EMPTY");
  EXPECT_EQ(ContentModel::Name("a")->ToString(), "(a)");
  // The paper's evolved declaration of Example 5: ((b,c)*,(d|e)).
  std::vector<ContentModel::Ptr> children;
  children.push_back(ContentModel::Star(SeqOfNames({"b", "c"})));
  children.push_back(ChoiceOfNames({"d", "e"}));
  EXPECT_EQ(ContentModel::Seq(std::move(children))->ToString(),
            "((b,c)*,(d|e))");
}

TEST(ContentModelTest, NestedUnaryNeedsParentheses) {
  ContentModel::Ptr model =
      ContentModel::Star(ContentModel::Plus(ContentModel::Name("a")));
  EXPECT_EQ(model->ToString(), "(a+)*");
}

TEST(ContentModelTest, MixedContentRendering) {
  std::vector<ContentModel::Ptr> alts;
  alts.push_back(ContentModel::Pcdata());
  alts.push_back(ContentModel::Name("em"));
  ContentModel::Ptr mixed =
      ContentModel::Star(ContentModel::Choice(std::move(alts)));
  EXPECT_EQ(mixed->ToString(), "(#PCDATA|em)*");
}

TEST(ContentModelTest, CloneAndEquals) {
  ContentModel::Ptr a = SeqOfNames({"x", "y"});
  ContentModel::Ptr b = a->Clone();
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*ChoiceOfNames({"x", "y"})));
  EXPECT_FALSE(a->Equals(*SeqOfNames({"y", "x"})));
  EXPECT_FALSE(a->Equals(*SeqOfNames({"x", "y", "z"})));
}

TEST(ContentModelTest, NodeCountAndSymbols) {
  ContentModel::Ptr model = ContentModel::Seq([] {
    std::vector<ContentModel::Ptr> children;
    children.push_back(ContentModel::Star(SeqOfNames({"b", "c"})));
    children.push_back(ChoiceOfNames({"d", "e"}));
    return children;
  }());
  EXPECT_EQ(model->NodeCount(), 8u);  // AND, *, AND, b, c, OR, d, e
  EXPECT_EQ(model->SymbolSet(), (std::set<std::string>{"b", "c", "d", "e"}));
  EXPECT_TRUE(model->Mentions("b"));
  EXPECT_FALSE(model->Mentions("z"));
}

TEST(ContentModelTest, Nullable) {
  EXPECT_FALSE(ContentModel::Name("a")->Nullable());
  EXPECT_TRUE(ContentModel::Pcdata()->Nullable());
  EXPECT_TRUE(ContentModel::Empty()->Nullable());
  EXPECT_TRUE(ContentModel::Opt(ContentModel::Name("a"))->Nullable());
  EXPECT_TRUE(ContentModel::Star(ContentModel::Name("a"))->Nullable());
  EXPECT_FALSE(ContentModel::Plus(ContentModel::Name("a"))->Nullable());
  EXPECT_TRUE(ContentModel::Plus(ContentModel::Opt(ContentModel::Name("a")))
                  ->Nullable());
  EXPECT_FALSE(SeqOfNames({"a", "b"})->Nullable());
  EXPECT_FALSE(ChoiceOfNames({"a", "b"})->Nullable());
  // A sequence of nullables is nullable; a choice with one nullable is.
  std::vector<ContentModel::Ptr> seq;
  seq.push_back(ContentModel::Opt(ContentModel::Name("a")));
  seq.push_back(ContentModel::Star(ContentModel::Name("b")));
  EXPECT_TRUE(ContentModel::Seq(std::move(seq))->Nullable());
  std::vector<ContentModel::Ptr> choice;
  choice.push_back(ContentModel::Name("a"));
  choice.push_back(ContentModel::Opt(ContentModel::Name("b")));
  EXPECT_TRUE(ContentModel::Choice(std::move(choice))->Nullable());
}

// --- Dtd container -----------------------------------------------------------

TEST(DtdTest, DeclareFindRemove) {
  Dtd dtd;
  dtd.DeclareElement("a", SeqOfNames({"b"}));
  dtd.DeclareElement("b", ContentModel::Pcdata());
  EXPECT_EQ(dtd.size(), 2u);
  EXPECT_EQ(dtd.root_name(), "a");  // first declared
  ASSERT_NE(dtd.FindElement("b"), nullptr);
  EXPECT_TRUE(dtd.RemoveElement("b"));
  EXPECT_FALSE(dtd.RemoveElement("b"));
  EXPECT_EQ(dtd.ElementNames(), (std::vector<std::string>{"a"}));
}

TEST(DtdTest, ExplicitRootOverridesFirst) {
  Dtd dtd("b");
  dtd.DeclareElement("a", ContentModel::Pcdata());
  dtd.DeclareElement("b", ContentModel::Pcdata());
  EXPECT_EQ(dtd.root_name(), "b");
}

TEST(DtdTest, CheckDetectsProblems) {
  Dtd empty;
  EXPECT_FALSE(empty.Check().ok());

  Dtd dangling;
  dangling.DeclareElement("a", SeqOfNames({"missing"}));
  Status status = dangling.Check();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("missing"), std::string::npos);

  Dtd good;
  good.DeclareElement("a", SeqOfNames({"b"}));
  good.DeclareElement("b", ContentModel::Pcdata());
  EXPECT_TRUE(good.Check().ok());
}

TEST(DtdTest, CloneIsIndependent) {
  Dtd dtd;
  dtd.DeclareElement("a", SeqOfNames({"b"}));
  dtd.DeclareElement("b", ContentModel::Pcdata());
  Dtd copy = dtd.Clone();
  copy.SetContent("a", ContentModel::Pcdata());
  EXPECT_EQ(dtd.FindElement("a")->content->ToString(), "(b)");
  EXPECT_EQ(copy.FindElement("a")->content->ToString(), "(#PCDATA)");
}

TEST(DtdTest, TotalNodeCount) {
  Dtd dtd;
  dtd.DeclareElement("a", SeqOfNames({"b", "c"}));  // 3 nodes
  dtd.DeclareElement("b", ContentModel::Pcdata());  // 1
  dtd.DeclareElement("c", ContentModel::Pcdata());  // 1
  EXPECT_EQ(dtd.TotalNodeCount(), 5u);
}

}  // namespace
}  // namespace dtdevolve::dtd
