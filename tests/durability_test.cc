// Durability suite: the crash contract of the ingest server, end to end
// over loopback sockets. An acked `/ingest` must survive a process
// death (WAL recovery), checkpoints must bound replay, a full disk must
// degrade — not lie — and a corrupt snapshot must quarantine, not brick
// the boot. Fault injection (`io/fault.h`) stands in for the dying
// disk. Multi-threaded end to end, so the suite runs under both the
// `durability` and `concurrency` ctest labels.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "evolve/persist.h"
#include "io/fault.h"
#include "server/server.h"

namespace dtdevolve::server {
namespace {

const char* kMailDtd = R"(
  <!ELEMENT mail (envelope, body)>
  <!ELEMENT envelope (from, to, subject)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kConformingDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "</envelope><body>hello</body></mail>";

const char* kDriftedDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "<cc>c</cc></envelope><body>hello</body>"
    "<attachment>x</attachment></mail>";

struct ClientResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// One blocking HTTP exchange; `out->status` stays 0 on transport
/// failure (same framing as server_test.cc: `Connection: close` makes
/// the keep-alive server close after the response).
void HttpRoundTrip(uint16_t port, const std::string& request,
                   ClientResponse* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ADD_FAILURE() << "connect: " << std::strerror(errno);
    ::close(fd);
    return;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.rfind("HTTP/1.1 ", 0) != 0) return;
  out->head = raw.substr(0, split);
  out->body = raw.substr(split + 4);
  out->status = std::atoi(out->head.c_str() + 9);
}

ClientResponse Post(uint16_t port, const std::string& target,
                    const std::string& body) {
  ClientResponse response;
  HttpRoundTrip(port,
                "POST " + target +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body,
                &response);
  return response;
}

ClientResponse Get(uint16_t port, const std::string& target) {
  ClientResponse response;
  HttpRoundTrip(port,
                "GET " + target +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                &response);
  return response;
}

core::SourceOptions EvolvingOptions() {
  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 1;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "durability_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// ServerOptions for a WAL-backed server that simulates a crash on
/// stop: no shutdown checkpoint, so the next boot must replay the log.
ServerOptions CrashSimOptions(const std::string& wal_dir) {
  ServerOptions options;
  options.port = 0;
  options.jobs = 2;
  options.wal_dir = wal_dir;
  options.checkpoint_interval = std::chrono::milliseconds(0);
  options.checkpoint_on_shutdown = false;
  return options;
}

/// Everything recovery must reproduce, read from a stopped server.
struct SourceDigest {
  uint64_t processed = 0;
  uint64_t classified = 0;
  uint64_t evolutions = 0;
  size_t repository = 0;
  std::string mail_dtd;
};

SourceDigest DigestOf(const IngestServer& server) {
  SourceDigest digest;
  digest.processed = server.source().documents_processed();
  digest.classified = server.source().documents_classified();
  digest.evolutions = server.source().evolutions_performed();
  digest.repository = server.source().repository().size();
  const evolve::ExtendedDtd* ext = server.source().FindExtended("mail");
  if (ext != nullptr) digest.mail_dtd = evolve::SerializeExtendedDtd(*ext);
  return digest;
}

TEST(DurabilityTest, WalRecoveryReplaysAckedDocuments) {
  const std::string wal_dir = FreshDir("replay");
  SourceDigest before;
  {
    IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
                200);
      ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kDriftedDoc).status,
                200);
    }
    server.Shutdown();
    server.Wait();
    before = DigestOf(server);
    EXPECT_EQ(before.processed, 8u);
  }

  // "Reboot": a fresh server over the same WAL dir, seeded with the same
  // DTD text, must replay every acked document and land byte-identical.
  IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.recovery_report().checkpoint_lsn, 0u);
  EXPECT_EQ(server.recovery_report().replayed_records, 8u);
  server.Shutdown();
  server.Wait();

  const SourceDigest after = DigestOf(server);
  EXPECT_EQ(after.processed, before.processed);
  EXPECT_EQ(after.classified, before.classified);
  EXPECT_EQ(after.evolutions, before.evolutions);
  EXPECT_EQ(after.repository, before.repository);
  EXPECT_EQ(after.mail_dtd, before.mail_dtd);
}

TEST(DurabilityTest, CheckpointBoundsReplayAndTruncatesWal) {
  const std::string wal_dir = FreshDir("checkpoint");
  SourceDigest before;
  {
    IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kDriftedDoc).status,
                200);
    }
    ASSERT_TRUE(server.CheckpointNow().ok());
    // One more document after the checkpoint: replay resumes mid-log.
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
              200);
    server.Shutdown();
    server.Wait();
    before = DigestOf(server);
  }

  IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.recovery_report().checkpoint_lsn, 3u);
  EXPECT_EQ(server.recovery_report().replayed_records, 1u);
  server.Shutdown();
  server.Wait();

  const SourceDigest after = DigestOf(server);
  EXPECT_EQ(after.processed, before.processed);
  EXPECT_EQ(after.repository, before.repository);
  EXPECT_EQ(after.mail_dtd, before.mail_dtd);
}

TEST(DurabilityTest, WalAppendFailureAnswers503AndDegrades) {
  const std::string wal_dir = FreshDir("degraded");
  IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  {
    // Disk full at the next WAL write. The document must NOT be acked:
    // 503 with Retry-After, and the degraded gauge raised.
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kWrite);
    plan.error_code = ENOSPC;
    io::ScopedFaultPlan guard(plan);
    ClientResponse rejected =
        Post(server.port(), "/ingest?wait=1", kConformingDoc);
    EXPECT_EQ(rejected.status, 503);
    EXPECT_NE(rejected.head.find("Retry-After:"), std::string::npos);
    EXPECT_NE(rejected.body.find("write-ahead log append failed"),
              std::string::npos);
  }
  ClientResponse metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find("dtdevolve_degraded 1"), std::string::npos);

  // The disk came back: the retried ingest is acked and the gauge drops.
  EXPECT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
            200);
  metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find("dtdevolve_degraded 0"), std::string::npos);
  EXPECT_NE(metrics.body.find("dtdevolve_wal_append_errors_total 1"),
            std::string::npos);

  server.Shutdown();
  server.Wait();
  // Only the acked document exists after recovery.
  IngestServer recovered(EvolvingOptions(), CrashSimOptions(wal_dir));
  ASSERT_TRUE(recovered.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(recovered.Start().ok());
  EXPECT_EQ(recovered.recovery_report().replayed_records, 1u);
  recovered.Shutdown();
  recovered.Wait();
  EXPECT_EQ(recovered.source().documents_processed(), 1u);
}

TEST(DurabilityTest, CorruptSnapshotIsQuarantinedNotFatal) {
  const std::string dir = FreshDir("quarantine");
  std::filesystem::create_directories(dir);
  {
    std::ofstream f(dir + "/mail.dtdstate");
    f << "this is not a snapshot\n";
  }
  ServerOptions options;
  options.port = 0;
  options.jobs = 2;
  options.snapshot_dir = dir;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok()) << "a corrupt snapshot must not brick "
                                      "the boot";

  ASSERT_EQ(server.boot_warnings().size(), 1u);
  EXPECT_NE(server.boot_warnings()[0].find("quarantined"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(dir + "/mail.dtdstate"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/mail.dtdstate.corrupt"));
  ClientResponse metrics = Get(server.port(), "/metrics");
  EXPECT_NE(
      metrics.body.find("dtdevolve_snapshots_quarantined_total 1"),
      std::string::npos);
  // The server runs on the seed DTD as if this were a first boot.
  EXPECT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
            200);
  server.Shutdown();
  server.Wait();
}

TEST(DurabilityTest, RecvTimeoutReleasesAStalledConnection) {
  ServerOptions options;
  options.port = 0;
  options.jobs = 1;
  options.recv_timeout_seconds = 1;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // Open a connection, send half a request, then stall. The event
  // loop's read-stall deadline (recv_timeout_seconds) must close the
  // connection — our recv sees EOF (or an error response) — instead of
  // holding it open forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char* partial = "POST /ingest HTTP/1.1\r\nContent-Length: 10\r\n\r\n";
  ASSERT_GT(::send(fd, partial, std::strlen(partial), 0), 0);

  const auto deadline_start = std::chrono::steady_clock::now();
  char chunk[1024];
  while (::recv(fd, chunk, sizeof(chunk), 0) > 0) {
  }
  const auto waited = std::chrono::steady_clock::now() - deadline_start;
  ::close(fd);
  EXPECT_LT(waited, std::chrono::seconds(8))
      << "server did not time the stalled connection out";

  server.Shutdown();
  server.Wait();
}

/// The current value of an unlabeled counter in a /metrics scrape, or
/// -1 when the series is absent.
long MetricValue(const std::string& metrics, const std::string& name) {
  const std::string needle = name + " ";
  size_t pos = metrics.find(needle);
  while (pos != std::string::npos) {
    // Skip HELP/TYPE lines and labeled series; match the sample line.
    if ((pos == 0 || metrics[pos - 1] == '\n')) {
      return std::atol(metrics.c_str() + pos + needle.size());
    }
    pos = metrics.find(needle, pos + 1);
  }
  return -1;
}

TEST(DurabilityTest, CheckpointNowReportsTheCapturedLsn) {
  const std::string wal_dir = FreshDir("captured_lsn");
  IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
              200);
  }
  // The checkpoint must report the LSN it actually captured, not an
  // LSN the caller sampled earlier — the bug that made the periodic
  // thread re-checkpoint unchanged state whenever ingest raced the
  // capture.
  uint64_t captured = 0;
  ASSERT_TRUE(server.CheckpointNow(&captured).ok());
  EXPECT_EQ(captured, 3u);

  ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kDriftedDoc).status, 200);
  ASSERT_TRUE(server.CheckpointNow(&captured).ok());
  EXPECT_EQ(captured, 4u);

  server.Shutdown();
  server.Wait();
}

TEST(DurabilityTest, IdlePeriodsDoNotRewriteCheckpoints) {
  const std::string wal_dir = FreshDir("idle_checkpoints");
  ServerOptions options = CrashSimOptions(wal_dir);
  options.checkpoint_interval = std::chrono::milliseconds(20);
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
              200);
  }

  // Wait for the periodic thread to take the post-ingest checkpoint.
  long count = -1;
  for (int i = 0; i < 200 && count < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    count = MetricValue(Get(server.port(), "/metrics").body,
                        "dtdevolve_checkpoints_total");
  }
  ASSERT_GE(count, 1);

  // Idle now: many intervals pass, and with nothing applied since the
  // captured LSN the thread must not write another checkpoint.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const long after_idle = MetricValue(Get(server.port(), "/metrics").body,
                                      "dtdevolve_checkpoints_total");
  EXPECT_EQ(after_idle, count);

  server.Shutdown();
  server.Wait();
}

}  // namespace
}  // namespace dtdevolve::server
