#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "evolve/rename.h"
#include "xml/parser.h"

namespace dtdevolve::evolve {
namespace {

ExtendedDtd MakeExtended(const char* dtd_text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return ExtendedDtd(std::move(*dtd));
}

void Record(ExtendedDtd& ext, const char* doc_text, int times = 1) {
  Recorder recorder(ext);
  for (int i = 0; i < times; ++i) {
    StatusOr<xml::Document> doc = xml::ParseDocument(doc_text);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    recorder.RecordDocument(*doc);
  }
}

const char* kBookDtd = R"(
  <!ELEMENT book (title, writer)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT writer (name, org?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT org (#PCDATA)>
)";

TEST(DetectRenamesTest, FindsComplementaryThesaurusPair) {
  ExtendedDtd ext = MakeExtended(kBookDtd);
  // Documents consistently use `author` where the DTD says `writer`.
  Record(ext,
         "<book><title>t</title><author><name>n</name></author></book>", 10);

  similarity::Thesaurus thesaurus;
  thesaurus.AddSynonym("writer", "author", 0.9);

  const ElementStats* stats = ext.FindStats("book");
  ASSERT_NE(stats, nullptr);
  std::vector<RenameCandidate> renames = DetectRenames(
      *stats, ext.dtd().FindElement("book")->content->SymbolSet(), thesaurus,
      0.5);
  ASSERT_EQ(renames.size(), 1u);
  EXPECT_EQ(renames[0].from, "writer");
  EXPECT_EQ(renames[0].to, "author");
  EXPECT_DOUBLE_EQ(renames[0].score, 0.9);
  EXPECT_EQ(renames[0].evidence, 10u);
}

TEST(DetectRenamesTest, CoOccurrenceBlocksRename) {
  ExtendedDtd ext = MakeExtended(kBookDtd);
  // writer and author appear together: author is an addition, not a
  // rename.
  Record(ext,
         "<book><title>t</title><writer><name>n</name></writer>"
         "<author>x</author></book>",
         10);
  similarity::Thesaurus thesaurus;
  thesaurus.AddSynonym("writer", "author", 0.9);
  const ElementStats* stats = ext.FindStats("book");
  std::vector<RenameCandidate> renames = DetectRenames(
      *stats, ext.dtd().FindElement("book")->content->SymbolSet(), thesaurus,
      0.5);
  EXPECT_TRUE(renames.empty());
}

TEST(DetectRenamesTest, LowScoreBlocksRename) {
  ExtendedDtd ext = MakeExtended(kBookDtd);
  Record(ext, "<book><title>t</title><author>x</author></book>", 10);
  similarity::Thesaurus thesaurus;
  thesaurus.AddSynonym("writer", "author", 0.3);
  const ElementStats* stats = ext.FindStats("book");
  std::vector<RenameCandidate> renames = DetectRenames(
      *stats, ext.dtd().FindElement("book")->content->SymbolSet(), thesaurus,
      0.5);
  EXPECT_TRUE(renames.empty());
}

TEST(EvolverRenameTest, RenamedElementInheritsDeclaration) {
  ExtendedDtd ext = MakeExtended(kBookDtd);
  Record(ext,
         "<book><title>t</title><author><name>n</name></author></book>",
         20);
  similarity::Thesaurus thesaurus;
  thesaurus.AddSynonym("writer", "author", 0.9);
  EvolutionOptions options;
  options.thesaurus = &thesaurus;
  EvolutionResult result = EvolveDtd(ext, options);

  // The book declaration now uses the new tag name…
  EXPECT_EQ(ext.dtd().FindElement("book")->content->ToString(),
            "(title,author)");
  // …and the author declaration was inherited from writer — including the
  // optional org the instances never showed.
  ASSERT_TRUE(ext.dtd().HasElement("author"));
  EXPECT_EQ(ext.dtd().FindElement("author")->content->ToString(),
            "(name,org?)");
  // The rename is reported.
  bool reported = false;
  for (const ElementEvolution& element : result.elements) {
    for (const RenameCandidate& rename : element.renames) {
      if (rename.from == "writer" && rename.to == "author") reported = true;
    }
  }
  EXPECT_TRUE(reported);
}

TEST(EvolverRenameTest, WithoutThesaurusPlusStructureIsUsed) {
  ExtendedDtd ext = MakeExtended(kBookDtd);
  Record(ext,
         "<book><title>t</title><author><name>n</name></author></book>",
         20);
  EvolutionResult result = EvolveDtd(ext, {});
  (void)result;
  // Extracted from the instances: author holds a single name.
  ASSERT_TRUE(ext.dtd().HasElement("author"));
  EXPECT_EQ(ext.dtd().FindElement("author")->content->ToString(), "(name)");
}

TEST(EvolverRenameTest, OrphanCleanupRemovesOldName) {
  ExtendedDtd ext = MakeExtended(kBookDtd);
  Record(ext,
         "<book><title>t</title><author><name>n</name></author></book>",
         20);
  similarity::Thesaurus thesaurus;
  thesaurus.AddSynonym("writer", "author", 0.9);
  EvolutionOptions options;
  options.thesaurus = &thesaurus;
  options.drop_orphan_declarations = true;
  EvolutionResult result = EvolveDtd(ext, options);
  EXPECT_FALSE(ext.dtd().HasElement("writer"));
  EXPECT_TRUE(ext.dtd().Check().ok());
  ASSERT_FALSE(result.removed_declarations.empty());
  EXPECT_EQ(result.removed_declarations[0], "writer");
}

TEST(DtdTest, UnreachableFromRoot) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT stray (other)>
    <!ELEMENT other (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->UnreachableFromRoot(),
            (std::vector<std::string>{"stray", "other"}));
}

}  // namespace
}  // namespace dtdevolve::evolve
