// Streaming-vs-DOM parse-path differential suite: both parsers must
// accept/reject identical inputs, produce structurally equal trees with
// bit-identical subtree fingerprints, and classify every document
// identically (with the classification memo replaying cached outcomes
// under the set-epoch discipline). Runs over the on-disk xml corpus,
// all four workload scenario streams, and the seeded parse-path oracle.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "classify/classifier.h"
#include "similarity/score_cache.h"
#include "util/string_util.h"
#include "workload/scenarios.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/stream_reader.h"
#include "xml/writer.h"

namespace dtdevolve {
namespace {

std::string Slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Asserts full equivalence of one input across the two parse paths:
/// accept/reject agreement (with the identical error message), equal
/// trees and DOCTYPE fields, and a parse-time root fingerprint
/// bit-identical to the after-the-fact DOM index.
void ExpectPathsAgree(const std::string& input, const std::string& label) {
  StatusOr<xml::Document> dom = xml::ParseDocument(input);
  StatusOr<xml::ArenaDocument> arena = xml::ParseArenaDocument(input);
  ASSERT_EQ(dom.ok(), arena.ok())
      << label << ": accept/reject disagreement — DOM "
      << (dom.ok() ? "accepts" : dom.status().message()) << ", streaming "
      << (arena.ok() ? "accepts" : arena.status().message());
  if (!dom.ok()) {
    EXPECT_EQ(dom.status().message(), arena.status().message()) << label;
    return;
  }
  ASSERT_EQ(dom->has_root(), arena->has_root()) << label;
  EXPECT_EQ(dom->doctype_name(), arena->doctype_name()) << label;
  EXPECT_EQ(dom->internal_subset(), arena->internal_subset()) << label;
  xml::Document converted = arena->ToDocument();
  ASSERT_EQ(dom->has_root(), converted.has_root()) << label;
  if (!dom->has_root()) return;
  EXPECT_TRUE(xml::StructurallyEqual(dom->root(), converted.root())) << label;
  similarity::SubtreeFingerprints fps(dom->root());
  const similarity::SubtreeStats* stats = fps.Find(&dom->root());
  ASSERT_NE(stats, nullptr) << label;
  const xml::ArenaElement& root = arena->root();
  EXPECT_EQ(stats->fp_hi, root.fp_hi) << label;
  EXPECT_EQ(stats->fp_lo, root.fp_lo) << label;
  EXPECT_EQ(stats->element_count, root.element_count) << label;
}

TEST(ParsePathTest, CorpusFilesAgreeAcrossParsers) {
  const std::filesystem::path dir =
      std::filesystem::path(DTDEVOLVE_CORPUS_DIR) / "xml";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    ExpectPathsAgree(Slurp(entry.path()), entry.path().filename().string());
  }
  EXPECT_GE(files, 4u);  // the corpus must actually be there
}

TEST(ParsePathTest, WorkloadStreamsAgreeAcrossParsers) {
  xml::WriteOptions compact;
  compact.indent = false;
  size_t documents = 0;
  for (workload::ScenarioStream& stream : workload::MakeAllScenarios(17, 30)) {
    while (!stream.Done()) {
      xml::Document doc = stream.Next();
      ++documents;
      ExpectPathsAgree(xml::WriteDocument(doc, compact),
                       stream.name() + " #" + std::to_string(documents));
    }
  }
  EXPECT_GE(documents, 120u);
}

TEST(ParsePathTest, TextRunCollapseMatchesDomSemantics) {
  // Comments and CDATA boundaries split text into multiple DOM runs; the
  // arena pre-merges adjacent non-blank runs and drops blank ones, which
  // must be invisible to every structural reader.
  const std::vector<std::string> inputs = {
      "<a>x<!--c-->y</a>",
      "<a>  <b/>  </a>",
      "<a>x<![CDATA[ y ]]>z</a>",
      "<a>x<b>inner</b>y<!--c-->z</a>",
      "<a><![CDATA[]]><b/>tail</a>",
  };
  for (const std::string& input : inputs) {
    ExpectPathsAgree(input, input);
    StatusOr<xml::Document> dom = xml::ParseDocument(input);
    StatusOr<xml::ArenaDocument> arena = xml::ParseArenaDocument(input);
    ASSERT_TRUE(dom.ok() && arena.ok()) << input;
    EXPECT_EQ(StripWhitespace(dom->root().TextContent()),
              StripWhitespace(
                  arena->ToDocument().root().TextContent()))
        << input;
  }
}

TEST(ParsePathTest, ChildElementIteratorsMatchMaterializedVectors) {
  StatusOr<xml::Document> dom =
      xml::ParseDocument("<a>t<b/>u<c><d/></c>v<e/></a>");
  ASSERT_TRUE(dom.ok());
  const xml::Element& root = std::as_const(*dom).root();
  std::vector<const xml::Element*> materialized = root.ChildElements();
  std::vector<const xml::Element*> iterated;
  for (const xml::Element& child : root.child_elements()) {
    iterated.push_back(&child);
  }
  EXPECT_EQ(materialized, iterated);

  StatusOr<xml::ArenaDocument> arena =
      xml::ParseArenaDocument("<a>t<b/>u<c><d/></c>v<e/></a>");
  ASSERT_TRUE(arena.ok());
  std::vector<std::string_view> tags;
  for (const xml::ArenaElement& child : arena->root().child_elements()) {
    tags.push_back(child.tag);
  }
  EXPECT_EQ(tags, (std::vector<std::string_view>{"b", "c", "e"}));
}

/// Lockstep walk asserting the parse-time `has_text` flag equals what
/// `Element::HasTextContent` recomputes by scanning children.
void ExpectTextFlagsMatch(const xml::ArenaElement& arena,
                          const xml::Element& dom) {
  EXPECT_EQ(arena.has_text, dom.HasTextContent())
      << "element <" << arena.tag << ">";
  auto range = arena.child_elements();
  auto it = range.begin();
  for (const xml::Element& child : dom.child_elements()) {
    ASSERT_FALSE(it == range.end());
    ExpectTextFlagsMatch(*it, child);
    ++it;
  }
  EXPECT_TRUE(it == range.end());
}

TEST(ParsePathTest, ArenaAccountsBytesAndKnowsTextAtParseTime) {
  const std::string input =
      "<a>top<b>x</b><c><d/>  </c><e>mixed<f/>tail</e></a>";
  StatusOr<xml::ArenaDocument> arena = xml::ParseArenaDocument(input);
  ASSERT_TRUE(arena.ok());
  EXPECT_GT(arena->arena().bytes_allocated(), 0u);
  EXPECT_GE(arena->arena().bytes_reserved(), arena->arena().bytes_allocated());
  xml::Document converted = arena->ToDocument();
  ExpectTextFlagsMatch(arena->root(), converted.root());
}

/// A classifier seeded with all four workload phase-0 DTDs.
struct ClassifierFixture {
  std::vector<dtd::Dtd> dtds;
  std::vector<std::string> names;
  std::optional<classify::Classifier> classifier;

  explicit ClassifierFixture(classify::ClassifierOptions options) {
    for (workload::ScenarioStream& stream : workload::MakeAllScenarios(5, 1)) {
      names.push_back(stream.name());
      dtds.push_back(stream.InitialDtd());
    }
    classifier.emplace(0.5, similarity::SimilarityOptions{}, options);
    for (size_t i = 0; i < dtds.size(); ++i) {
      classifier->AddDtd(names[i], &dtds[i]);
    }
  }
};

void ExpectOutcomesEqual(const classify::ClassificationOutcome& a,
                         const classify::ClassificationOutcome& b,
                         const std::string& label) {
  EXPECT_EQ(a.classified, b.classified) << label;
  EXPECT_EQ(a.dtd_name, b.dtd_name) << label;
  EXPECT_EQ(a.similarity, b.similarity) << label;
  EXPECT_EQ(a.scores, b.scores) << label;
}

TEST(ParsePathTest, ClassificationOutcomesIdenticalAcrossPaths) {
  classify::ClassifierOptions no_memo;
  no_memo.enable_classification_memo = false;
  ClassifierFixture reference(no_memo);
  ClassifierFixture memoized(classify::ClassifierOptions{});

  xml::WriteOptions compact;
  compact.indent = false;
  size_t documents = 0;
  for (workload::ScenarioStream& stream : workload::MakeAllScenarios(23, 10)) {
    while (!stream.Done()) {
      std::string text = xml::WriteDocument(stream.Next(), compact);
      const std::string label = stream.name() + " #" + std::to_string(documents++);
      StatusOr<xml::Document> dom = xml::ParseDocument(text);
      StatusOr<xml::ArenaDocument> arena = xml::ParseArenaDocument(text);
      ASSERT_TRUE(dom.ok() && arena.ok()) << label;
      classify::ClassificationOutcome want = reference.classifier->Classify(*dom);
      std::optional<xml::Document> materialized;
      classify::ClassificationOutcome got =
          memoized.classifier->ClassifyArena(*arena, &materialized);
      ExpectOutcomesEqual(want, got, label);
      // Second pass: the memo must replay the identical outcome without
      // materializing a DOM.
      std::optional<xml::Document> second_dom;
      classify::ClassificationOutcome replayed =
          memoized.classifier->ClassifyArena(*arena, &second_dom);
      ExpectOutcomesEqual(want, replayed, label + " (replay)");
      EXPECT_FALSE(second_dom.has_value()) << label;
    }
  }
  const classify::ClassificationMemo* memo =
      memoized.classifier->classification_memo();
  ASSERT_NE(memo, nullptr);
  EXPECT_GT(memo->GetStats().hits, 0u);
}

TEST(ParsePathTest, MemoProbeReplaysOnlyAfterClassification) {
  ClassifierFixture fixture(classify::ClassifierOptions{});
  StatusOr<xml::ArenaDocument> arena =
      xml::ParseArenaDocument("<bibliography></bibliography>");
  ASSERT_TRUE(arena.ok());
  EXPECT_FALSE(fixture.classifier->MemoProbe(*arena).has_value());
  std::optional<xml::Document> materialized;
  classify::ClassificationOutcome scored =
      fixture.classifier->ClassifyArena(*arena, &materialized);
  EXPECT_TRUE(materialized.has_value());  // first sight: a miss, DOM built
  std::optional<classify::ClassificationOutcome> probed =
      fixture.classifier->MemoProbe(*arena);
  ASSERT_TRUE(probed.has_value());
  ExpectOutcomesEqual(scored, *probed, "probe");
}

TEST(ParsePathTest, EveryOutcomeRelevantMutationBumpsSetEpoch) {
  ClassifierFixture fixture(classify::ClassifierOptions{});
  classify::Classifier& classifier = *fixture.classifier;
  uint64_t epoch = classifier.set_epoch();

  classifier.set_sigma(0.6);
  EXPECT_NE(classifier.set_epoch(), epoch);
  epoch = classifier.set_epoch();

  dtd::Dtd extra = fixture.dtds.front().Clone();
  classifier.AddDtd("extra", &extra);
  EXPECT_NE(classifier.set_epoch(), epoch);
  epoch = classifier.set_epoch();

  classifier.Invalidate("extra");
  EXPECT_NE(classifier.set_epoch(), epoch);
  epoch = classifier.set_epoch();

  EXPECT_TRUE(classifier.RemoveDtd("extra"));
  EXPECT_NE(classifier.set_epoch(), epoch);
  epoch = classifier.set_epoch();

  classifier.InvalidateAll();
  EXPECT_NE(classifier.set_epoch(), epoch);

  // A memoized outcome from before a mutation must be unreachable after.
  StatusOr<xml::ArenaDocument> arena =
      xml::ParseArenaDocument("<bibliography></bibliography>");
  ASSERT_TRUE(arena.ok());
  std::optional<xml::Document> materialized;
  (void)classifier.ClassifyArena(*arena, &materialized);
  EXPECT_TRUE(classifier.MemoProbe(*arena).has_value());
  classifier.set_sigma(0.4);
  EXPECT_FALSE(classifier.MemoProbe(*arena).has_value());
}

TEST(ParsePathTest, ParsePathOracleHoldsOnSeededScenarios) {
  check::ParsePathOracleOptions options;
  options.scenarios = 25;
  options.seed = 1;
  check::ParsePathOracleReport report = check::RunParsePathOracle(options);
  EXPECT_TRUE(report.ok()) << check::FormatParsePathReport(report);
  EXPECT_EQ(report.scenarios_run, 25u);
  EXPECT_GT(report.documents, 500u);   // must actually exercise the pipeline
  EXPECT_GE(report.wal_replays, 1u);   // the sampled WAL leg must fire
}

TEST(ParsePathTest, ParsePathScenariosAreDeterministic) {
  check::ScenarioResult first = check::RunParsePathScenario(4);
  check::ScenarioResult second = check::RunParsePathScenario(4);
  EXPECT_EQ(first.scenario, second.scenario);
  EXPECT_EQ(first.documents, second.documents);
  EXPECT_EQ(first.violations.size(), second.violations.size());
  EXPECT_TRUE(first.ok()) << check::FormatScenario(first);
}

}  // namespace
}  // namespace dtdevolve
