// End-to-end integration: the full Fig.-1 loop chasing the drift
// scenarios, checking that evolved DTDs describe the population better
// than the originals.

#include <gtest/gtest.h>

#include "classify/classifier.h"
#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "validate/validator.h"
#include "workload/scenarios.h"

namespace dtdevolve {
namespace {

/// Fraction of `docs` valid under `dtd`.
double ValidFraction(const dtd::Dtd& dtd,
                     const std::vector<xml::Document>& docs) {
  if (docs.empty()) return 0.0;
  validate::Validator validator(dtd);
  size_t valid = 0;
  for (const xml::Document& doc : docs) {
    if (validator.Validate(doc).valid) ++valid;
  }
  return static_cast<double>(valid) / static_cast<double>(docs.size());
}

/// Mean similarity of `docs` to `dtd`.
double MeanSimilarity(const dtd::Dtd& dtd,
                      const std::vector<xml::Document>& docs) {
  similarity::SimilarityEvaluator evaluator(dtd);
  double sum = 0.0;
  for (const xml::Document& doc : docs) {
    sum += evaluator.DocumentSimilarity(doc);
  }
  return docs.empty() ? 0.0 : sum / static_cast<double>(docs.size());
}

class ScenarioIntegration : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioIntegration, EvolutionTracksTheDrift) {
  std::vector<workload::ScenarioStream> scenarios =
      workload::MakeAllScenarios(21, 40);
  workload::ScenarioStream& scenario = scenarios[GetParam()];

  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 20;
  core::XmlSource source(options);
  ASSERT_TRUE(source.AddDtd(scenario.name(), scenario.InitialDtd()).ok());

  std::vector<xml::Document> all_docs;
  while (!scenario.Done()) {
    xml::Document doc = scenario.Next();
    all_docs.push_back(doc.Clone());
    source.Process(std::move(doc));
  }

  // The drift must have forced at least one evolution.
  EXPECT_GE(source.evolutions_performed(), 1u) << scenario.name();

  const dtd::Dtd* evolved = source.FindDtd(scenario.name());
  ASSERT_NE(evolved, nullptr);
  EXPECT_TRUE(evolved->Check().ok()) << dtd::WriteDtd(*evolved);

  dtd::Dtd initial = scenario.InitialDtd();
  double initial_similarity = MeanSimilarity(initial, all_docs);
  double evolved_similarity = MeanSimilarity(*evolved, all_docs);
  // The evolved DTD describes the whole population better.
  EXPECT_GT(evolved_similarity, initial_similarity) << scenario.name();

  // And validates strictly more of the late-phase documents.
  std::vector<xml::Document> late;
  for (size_t i = all_docs.size() / 2; i < all_docs.size(); ++i) {
    late.push_back(all_docs[i].Clone());
  }
  EXPECT_GT(ValidFraction(*evolved, late), ValidFraction(initial, late))
      << scenario.name() << "\n"
      << dtd::WriteDtd(*evolved);
}

std::string ScenarioName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"bibliography", "catalog", "news", "forum"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioIntegration,
                         ::testing::Values(0, 1, 2, 3), ScenarioName);

TEST(MultiDtdSourceTest, DocumentsRouteToTheRightDtd) {
  core::SourceOptions options;
  options.sigma = 0.3;
  options.auto_evolve = false;
  core::XmlSource source(options);

  workload::ScenarioStream bib = workload::MakeBibliographyScenario(5, 30);
  workload::ScenarioStream news = workload::MakeNewsScenario(6, 30);
  ASSERT_TRUE(source.AddDtd("bib", bib.InitialDtd()).ok());
  ASSERT_TRUE(source.AddDtd("news", news.InitialDtd()).ok());

  size_t bib_docs = 0, news_docs = 0;
  for (int i = 0; i < 30; ++i) {
    core::XmlSource::ProcessOutcome a = source.Process(bib.Next());
    if (a.classified && a.dtd_name == "bib") ++bib_docs;
    core::XmlSource::ProcessOutcome b = source.Process(news.Next());
    if (b.classified && b.dtd_name == "news") ++news_docs;
  }
  // Phase-0 documents are valid for their own DTD: all classify correctly.
  EXPECT_EQ(bib_docs, 30u);
  EXPECT_EQ(news_docs, 30u);
}

TEST(SigmaSweepTest, LowerSigmaClassifiesMore) {
  // E2's shape in miniature: lower σ keeps more drifted documents out of
  // the repository.
  auto run = [](double sigma) {
    core::SourceOptions options;
    options.sigma = sigma;
    options.auto_evolve = false;
    core::XmlSource source(options);
    workload::ScenarioStream scenario =
        workload::MakeBibliographyScenario(9, 30);
    source.AddDtd("bib", scenario.InitialDtd());
    while (!scenario.Done()) source.Process(scenario.Next());
    return source.documents_classified();
  };
  uint64_t lenient = run(0.2);
  uint64_t strict = run(0.95);
  EXPECT_GT(lenient, strict);
}

}  // namespace
}  // namespace dtdevolve
