#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "evolve/recorder.h"
#include "evolve/trigger.h"
#include "xml/parser.h"

namespace dtdevolve::evolve {
namespace {

ExtendedDtd MakeExtended(const char* dtd_text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return ExtendedDtd(std::move(*dtd));
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

const char* kDtd = R"(
  <!ELEMENT a (b, c)>
  <!ELEMENT b (#PCDATA)>
  <!ELEMENT c (#PCDATA)>
)";

TEST(RecorderTest, ValidDocumentBumpsValidCounters) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  double divergence =
      recorder.RecordDocument(MakeDoc("<a><b>1</b><c>2</c></a>"));
  EXPECT_EQ(divergence, 0.0);
  const ElementStats* a = ext.FindStats("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->valid_instances(), 1u);
  EXPECT_EQ(a->invalid_instances(), 0u);
  EXPECT_EQ(a->docs_with_valid(), 1u);
  EXPECT_EQ(ext.documents_recorded(), 1u);
  EXPECT_DOUBLE_EQ(ext.MeanDivergence(), 0.0);
}

TEST(RecorderTest, InvalidInstanceRecordsSequenceAndLabels) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  double divergence =
      recorder.RecordDocument(MakeDoc("<a><b>1</b><d>x</d></a>"));
  // a is invalid (content mismatch) and d is undeclared: 2 of 3 elements.
  EXPECT_NEAR(divergence, 2.0 / 3.0, 1e-12);
  const ElementStats* a = ext.FindStats("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->invalid_instances(), 1u);
  EXPECT_EQ(a->docs_with_invalid(), 1u);
  ASSERT_EQ(a->sequences().size(), 1u);
  EXPECT_EQ(a->sequences().begin()->first,
            (std::set<std::string>{"b", "d"}));
  // d is a plus label: its structure is recorded for later extraction.
  ASSERT_TRUE(a->labels().count("d"));
  const LabelStats& d = a->labels().at("d");
  ASSERT_NE(d.plus_structure, nullptr);
  EXPECT_EQ(d.plus_structure->invalid_instances(), 1u);
  EXPECT_EQ(d.plus_structure->text_instances(), 1u);
  // b is declared: no plus structure.
  EXPECT_EQ(a->labels().at("b").plus_structure, nullptr);
}

TEST(RecorderTest, PlusStructureRecordsNestedChildren) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  recorder.RecordDocument(
      MakeDoc("<a><b>1</b><c>2</c><new><sub>s</sub><sub>t</sub></new></a>"));
  const ElementStats* a = ext.FindStats("a");
  const LabelStats& entry = a->labels().at("new");
  ASSERT_NE(entry.plus_structure, nullptr);
  const ElementStats& plus = *entry.plus_structure;
  EXPECT_EQ(plus.invalid_instances(), 1u);
  ASSERT_TRUE(plus.labels().count("sub"));
  EXPECT_EQ(plus.labels().at("sub").invalid.repeated, 1u);
  // sub itself is nested once more.
  ASSERT_NE(plus.labels().at("sub").plus_structure, nullptr);
  EXPECT_EQ(plus.labels().at("sub").plus_structure->text_instances(), 2u);
}

TEST(RecorderTest, DivergenceAggregatesOverDocuments) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  recorder.RecordDocument(MakeDoc("<a><b>1</b><c>2</c></a>"));  // 0
  recorder.RecordDocument(MakeDoc("<a><b>1</b></a>"));          // 1/2
  EXPECT_EQ(ext.documents_recorded(), 2u);
  EXPECT_NEAR(ext.MeanDivergence(), 0.25, 1e-12);
  EXPECT_EQ(ext.total_elements_recorded(), 5u);
  EXPECT_EQ(ext.invalid_elements_recorded(), 1u);
}

TEST(RecorderTest, DocsCountersBumpedOncePerDocument) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  // b appears twice (both valid instances) in one document.
  recorder.RecordDocument(MakeDoc("<a><b>1</b><b>2</b></a>"));
  const ElementStats* b = ext.FindStats("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->valid_instances(), 2u);
  EXPECT_EQ(b->docs_with_valid(), 1u);
}

TEST(RecorderTest, ResetStatsClearsEverything) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  recorder.RecordDocument(MakeDoc("<a><b>1</b></a>"));
  EXPECT_GT(ext.MemoryFootprint(), 0u);
  ext.ResetStats();
  EXPECT_EQ(ext.documents_recorded(), 0u);
  EXPECT_EQ(ext.FindStats("a"), nullptr);
  EXPECT_DOUBLE_EQ(ext.MeanDivergence(), 0.0);
}

TEST(RecorderTest, RecordTreeSkipsDocumentAggregates) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  xml::Document doc = MakeDoc("<a><b>1</b><c>2</c></a>");
  recorder.RecordTree(doc.root());
  EXPECT_EQ(ext.documents_recorded(), 0u);
  EXPECT_EQ(ext.FindStats("a")->valid_instances(), 1u);
}

TEST(CheckTriggerTest, FiresAboveTau) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  recorder.RecordDocument(MakeDoc("<a><b>1</b></a>"));  // divergence 1/2
  CheckResult below = CheckEvolutionTrigger(ext, 0.6);
  EXPECT_FALSE(below.should_evolve);
  EXPECT_NEAR(below.divergence, 0.5, 1e-12);
  CheckResult above = CheckEvolutionTrigger(ext, 0.4);
  EXPECT_TRUE(above.should_evolve);
  EXPECT_EQ(above.documents, 1u);
}

TEST(CheckTriggerTest, NoDocumentsNoTrigger) {
  ExtendedDtd ext = MakeExtended(kDtd);
  EXPECT_FALSE(CheckEvolutionTrigger(ext, 0.0).should_evolve);
}

}  // namespace
}  // namespace dtdevolve::evolve
