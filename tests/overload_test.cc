// Overload-oracle regression suite: a reduced sweep of the hostile
// scenarios `dtdevolve check --overload` drives, wired into ctest so the
// overload contract is exercised on every run (the CLI's 100-scenario
// sweep stays the deep audit). One test per scenario kind keeps a
// failure attributable, plus one mixed sweep across all kinds.

#include "check/overload.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace dtdevolve::check {
namespace {

std::string Explain(const OverloadOracleReport& report) {
  std::string out = FormatOverloadReport(report);
  for (const ScenarioResult& failure : report.failures) {
    out += "\n" + FormatScenario(failure);
  }
  return out;
}

// Scenario kinds rotate by `seed % 5`; a kind is pinned by driving
// individual seeds congruent to it.
OverloadOracleReport RunKind(uint64_t kind, int rounds) {
  OverloadOracleReport report;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = 5 * static_cast<uint64_t>(round + 1) + kind;
    ScenarioResult result = RunOverloadScenario(seed, {}, &report);
    ++report.scenarios_run;
    if (!result.ok()) report.failures.push_back(std::move(result));
  }
  return report;
}

TEST(OverloadOracleTest, RateLimitFloodScenariosHold) {
  // Flood one tenant against its token bucket while a victim tenant
  // ingests beside it.
  const OverloadOracleReport report = RunKind(0, 2);
  EXPECT_TRUE(report.ok()) << Explain(report);
  EXPECT_GE(report.rejections, 1u);
}

TEST(OverloadOracleTest, OversizedBodyScenarioHolds) {
  const OverloadOracleReport report = RunKind(1, 1);
  EXPECT_TRUE(report.ok()) << Explain(report);
  EXPECT_GE(report.rejections, 1u);
}

TEST(OverloadOracleTest, ConnectionCapScenarioHolds) {
  const OverloadOracleReport report = RunKind(2, 1);
  EXPECT_TRUE(report.ok()) << Explain(report);
  EXPECT_GE(report.rejections, 1u);
}

TEST(OverloadOracleTest, WalFaultScenarioRecoversReadiness) {
  const OverloadOracleReport report = RunKind(3, 1);
  EXPECT_TRUE(report.ok()) << Explain(report);
  EXPECT_GE(report.recoveries, 1u);
}

TEST(OverloadOracleTest, EvictionRecoveryScenariosHold) {
  // Two rounds (seeds 9 and 14) cover both repository-quota policies
  // (policy = seed % 2).
  const OverloadOracleReport report = RunKind(4, 2);
  EXPECT_TRUE(report.ok()) << Explain(report);
  EXPECT_GE(report.evictions, 1u);
}

TEST(OverloadOracleTest, MixedSweepAcrossAllKinds) {
  OverloadOracleOptions options;
  options.seed = 101;
  options.scenarios = 10;
  options.max_failures = 10;
  const OverloadOracleReport report = RunOverloadOracle(options);
  EXPECT_TRUE(report.ok()) << Explain(report);
  EXPECT_EQ(report.scenarios_run, 10u);
  EXPECT_GE(report.requests, 100u);
}

}  // namespace
}  // namespace dtdevolve::check
