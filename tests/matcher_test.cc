#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "similarity/matcher.h"
#include "similarity/triple.h"

namespace dtdevolve::similarity {
namespace {

/// Exact tag-equality credit.
double EqualityCredit(const std::vector<std::string>& symbols, size_t i,
                      const std::string& label) {
  return symbols[i] == label ? 1.0 : -1.0;
}

MatchResult Align(const char* model_text, std::vector<std::string> symbols,
                  MatchOptions options = {}) {
  auto model = dtd::ParseContentModel(model_text);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  dtd::Automaton automaton = dtd::Automaton::Build(**model);
  return AlignChildren(
      automaton, symbols,
      [&symbols](size_t i, const std::string& label) {
        return EqualityCredit(symbols, i, label);
      },
      options);
}

size_t CountPlus(const MatchResult& result) {
  size_t n = 0;
  for (const ChildAssignment& a : result.assignments) {
    if (a.kind == ChildAssignment::Kind::kPlus) ++n;
  }
  return n;
}

TEST(MatcherTest, ValidContentCostsZero) {
  MatchResult result = Align("(b,c)", {"b", "c"});
  EXPECT_EQ(result.cost, 0.0);
  EXPECT_EQ(CountPlus(result), 0u);
  EXPECT_TRUE(result.minus_labels.empty());
  for (const ChildAssignment& a : result.assignments) {
    EXPECT_EQ(a.kind, ChildAssignment::Kind::kMatched);
    EXPECT_EQ(a.credit, 1.0);
  }
}

TEST(MatcherTest, MissingElementIsMinus) {
  MatchResult result = Align("(b,c)", {"b"});
  EXPECT_EQ(CountPlus(result), 0u);
  ASSERT_EQ(result.minus_labels.size(), 1u);
  EXPECT_EQ(result.minus_labels[0], "c");
  EXPECT_EQ(result.cost, 1.0);
}

TEST(MatcherTest, ExtraElementIsPlus) {
  MatchResult result = Align("(b,c)", {"b", "x", "c"});
  EXPECT_EQ(CountPlus(result), 1u);
  EXPECT_TRUE(result.minus_labels.empty());
  EXPECT_EQ(result.assignments[1].kind, ChildAssignment::Kind::kPlus);
  EXPECT_EQ(result.cost, 1.0);
}

TEST(MatcherTest, EmptyInputAgainstRequiredContent) {
  MatchResult result = Align("(b,c,d)", {});
  EXPECT_EQ(result.minus_labels.size(), 3u);
  EXPECT_EQ(result.cost, 3.0);
}

TEST(MatcherTest, PrefersMatchingOverSkipping) {
  // `c b` against (b,c): the optimal alignment keeps one match.
  MatchResult result = Align("(b,c)", {"c", "b"});
  EXPECT_EQ(result.cost, 2.0);  // one plus + one minus beats 2+2
  EXPECT_EQ(CountPlus(result), 1u);
  EXPECT_EQ(result.minus_labels.size(), 1u);
}

TEST(MatcherTest, RepetitionViolations) {
  MatchResult result = Align("(b)", {"b", "b", "b"});
  EXPECT_EQ(CountPlus(result), 2u);
  EXPECT_EQ(result.cost, 2.0);
}

TEST(MatcherTest, ChoiceTakesTheCheaperBranch) {
  MatchResult result = Align("((a,b)|(c,d))", {"c", "d"});
  EXPECT_EQ(result.cost, 0.0);
}

TEST(MatcherTest, StarAbsorbsRepeats) {
  MatchResult result = Align("((b,c)*)", {"b", "c", "b", "c", "b", "c"});
  EXPECT_EQ(result.cost, 0.0);
}

TEST(MatcherTest, AnyMatchesEverything) {
  auto model = dtd::ParseContentModel("ANY");
  dtd::Automaton automaton = dtd::Automaton::Build(**model);
  std::vector<std::string> symbols = {"x", "y"};
  MatchResult result = AlignChildren(
      automaton, symbols,
      [](size_t, const std::string&) { return -1.0; });
  EXPECT_EQ(result.assignments.size(), 2u);
  EXPECT_EQ(CountPlus(result), 0u);
  EXPECT_EQ(result.assignments[0].credit, 1.0);
}

TEST(MatcherTest, PartialCreditLowersCost) {
  auto model = dtd::ParseContentModel("(b)");
  dtd::Automaton automaton = dtd::Automaton::Build(**model);
  std::vector<std::string> symbols = {"bb"};
  // A thesaurus-like credit: bb ~ b with similarity 0.8.
  MatchResult result = AlignChildren(
      automaton, symbols, [](size_t, const std::string& label) {
        return label == "b" ? 0.8 : -1.0;
      });
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_EQ(result.assignments[0].kind, ChildAssignment::Kind::kMatched);
  EXPECT_DOUBLE_EQ(result.assignments[0].credit, 0.8);
  EXPECT_NEAR(result.cost, 0.2, 1e-9);
}

TEST(MatcherTest, ZeroCreditMatchStillBeatsPlusMinus) {
  auto model = dtd::ParseContentModel("(b)");
  dtd::Automaton automaton = dtd::Automaton::Build(**model);
  std::vector<std::string> symbols = {"b"};
  // Tag matches but the subtree underneath is a total mismatch (credit 0):
  // cost 1 as a match vs cost 2 as plus+minus — match wins.
  MatchResult result = AlignChildren(
      automaton, symbols,
      [](size_t, const std::string&) { return 0.0; });
  EXPECT_EQ(result.assignments[0].kind, ChildAssignment::Kind::kMatched);
  EXPECT_EQ(result.cost, 1.0);
}

TEST(MatcherTest, AsymmetricCosts) {
  MatchOptions options;
  options.plus_cost = 0.25;  // tolerate extra elements
  MatchResult cheap_plus = Align("(b)", {"b", "x", "x"}, options);
  EXPECT_NEAR(cheap_plus.cost, 0.5, 1e-9);
}

TEST(MatcherTest, MinusLabelsInModelOrder) {
  MatchResult result = Align("(b,c,d)", {"c"});
  ASSERT_EQ(result.minus_labels.size(), 2u);
  EXPECT_EQ(result.minus_labels[0], "b");
  EXPECT_EQ(result.minus_labels[1], "d");
}

// --- Evaluation function E ----------------------------------------------------

TEST(TripleTest, EvaluationFunction) {
  EXPECT_EQ(Evaluate(Triple(0, 0, 5)), 1.0);
  EXPECT_EQ(Evaluate(Triple(0, 0, 0)), 1.0);  // empty vs empty
  EXPECT_EQ(Evaluate(Triple(1, 1, 0)), 0.0);
  EXPECT_DOUBLE_EQ(Evaluate(Triple(1, 1, 2)), 0.5);
  EvalWeights weights;
  weights.minus_weight = 2.0;
  EXPECT_DOUBLE_EQ(Evaluate(Triple(0, 1, 2), weights), 0.5);
}

TEST(TripleTest, AccumulationAndFullness) {
  Triple t(1, 0, 2);
  t += Triple(0, 1, 3);
  EXPECT_EQ(t.plus, 1.0);
  EXPECT_EQ(t.minus, 1.0);
  EXPECT_EQ(t.common, 5.0);
  EXPECT_FALSE(IsFull(t));
  EXPECT_TRUE(IsFull(Triple(0, 0, 7)));
  EXPECT_EQ(Triple(1, 2, 3).ToString(), "(p=1.000, m=2.000, c=3.000)");
}

}  // namespace
}  // namespace dtdevolve::similarity
