#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "baseline/xtract.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "induce/cluster.h"
#include "induce/inducer.h"
#include "validate/validator.h"
#include "xml/parser.h"

namespace dtdevolve {
namespace {

xml::Document Doc(const std::string& text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << text;
  return std::move(doc).value();
}

/// Every DTD the inference spits out must survive the write → parse
/// round trip — an induced candidate that the DTD parser rejects can
/// never be served, checkpointed, or diffed.
void ExpectRoundTrips(const dtd::Dtd& dtd) {
  ASSERT_TRUE(dtd.Check().ok());
  const std::string text = dtd::WriteDtd(dtd);
  StatusOr<dtd::Dtd> reparsed = dtd::ParseDtd(text, dtd.root_name());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message() << "\n" << text;
  EXPECT_TRUE(reparsed->Check().ok());
}

/// Validates all documents against the inferred DTD; XTRACT candidates
/// are chosen among models that accept every observed sequence, so the
/// winner must too.
void ExpectAccepts(const dtd::Dtd& dtd,
                   const std::vector<xml::Document>& docs) {
  validate::Validator validator(dtd);
  for (const xml::Document& doc : docs) {
    EXPECT_TRUE(validator.Validate(doc).valid) << dtd::WriteDtd(dtd);
  }
}

TEST(XtractHostileTest, SingleDocumentCluster) {
  std::vector<xml::Document> docs;
  docs.push_back(Doc("<memo><to>a</to><body>b</body></memo>"));
  dtd::Dtd dtd = baseline::InferXtractDtd(docs, "memo");
  ExpectRoundTrips(dtd);
  ExpectAccepts(dtd, docs);
}

TEST(XtractHostileTest, SingleLeafDocument) {
  // Degenerate root: no children at all.
  std::vector<xml::Document> docs;
  docs.push_back(Doc("<note/>"));
  dtd::Dtd dtd = baseline::InferXtractDtd(docs, "note");
  ExpectRoundTrips(dtd);
  ExpectAccepts(dtd, docs);
}

TEST(XtractHostileTest, SharedRootDisjointChildVocabularies) {
  // Two sub-populations share the root tag but have no child tag in
  // common — the enumeration candidate is the only precise model, and
  // the writer must round-trip the resulting OR.
  std::vector<xml::Document> docs;
  docs.push_back(Doc("<rec><alpha>1</alpha><beta>2</beta></rec>"));
  docs.push_back(Doc("<rec><alpha>1</alpha><beta>2</beta></rec>"));
  docs.push_back(Doc("<rec><gamma>3</gamma><delta>4</delta></rec>"));
  docs.push_back(Doc("<rec><gamma>3</gamma><delta>4</delta></rec>"));
  dtd::Dtd dtd = baseline::InferXtractDtd(docs, "rec");
  ExpectRoundTrips(dtd);
  ExpectAccepts(dtd, docs);
}

TEST(XtractHostileTest, DepthCappedTrees) {
  // Nesting chains cut off at different depths: the same tag appears
  // both with children and as a leaf, so its inferred model must admit
  // the empty sequence.
  std::vector<xml::Document> docs;
  docs.push_back(Doc("<part><part><part/></part></part>"));
  docs.push_back(Doc("<part><part/><part/></part>"));
  docs.push_back(Doc("<part/>"));
  dtd::Dtd dtd = baseline::InferXtractDtd(docs, "part");
  ExpectRoundTrips(dtd);
  ExpectAccepts(dtd, docs);
}

TEST(XtractHostileTest, HighFanoutRunsCollapse) {
  // Long homogeneous runs of one tag must not blow the model up: runs
  // collapse before candidate generation, so 64 repeats cost what 2 do.
  std::string text = "<list>";
  for (int i = 0; i < 64; ++i) text += "<item>x</item>";
  text += "</list>";
  std::vector<xml::Document> docs;
  docs.push_back(Doc(text));
  docs.push_back(Doc("<list><item>x</item></list>"));
  dtd::Dtd dtd = baseline::InferXtractDtd(docs, "list");
  ExpectRoundTrips(dtd);
  ExpectAccepts(dtd, docs);
}

TEST(XtractHostileTest, ManyDistinctSequencesFallBackToGeneralModel) {
  // Every document exhibits a different child permutation; enumeration
  // is maximally expensive, so MDL should steer toward a general model —
  // whatever wins must still accept all inputs and round-trip.
  std::vector<xml::Document> docs;
  const std::vector<std::string> tags = {"a", "b", "c", "d"};
  for (size_t i = 0; i < tags.size(); ++i) {
    for (size_t j = 0; j < tags.size(); ++j) {
      if (i == j) continue;
      docs.push_back(Doc("<mix><" + tags[i] + "/><" + tags[j] + "/></mix>"));
    }
  }
  dtd::Dtd dtd = baseline::InferXtractDtd(docs, "mix");
  ExpectRoundTrips(dtd);
  ExpectAccepts(dtd, docs);
}

TEST(XtractHostileTest, RootNameAbsentFromDocumentsFailsCheckCleanly) {
  // The induction pipeline guards on Check() after inference; make sure
  // a bogus root name yields a checkable failure, not a crash.
  std::vector<xml::Document> docs;
  docs.push_back(Doc("<memo><to>a</to></memo>"));
  dtd::Dtd dtd = baseline::InferXtractDtd(docs, "no-such-root");
  EXPECT_FALSE(dtd.Check().ok());
}

TEST(XtractHostileTest, InducedCandidatesFromSingletonClustersRoundTrip) {
  // End to end: min_cluster_size = 1 lets every singleton through, so
  // the inducer runs XTRACT over one-document clusters — each candidate
  // must still parse back and validate its lone member.
  classify::Repository repository;
  induce::InduceOptions options;
  options.cluster.min_cluster_size = 1;
  induce::RepositoryClusterer clusterer(options.cluster);
  const std::vector<std::string> texts = {
      "<memo><to>a</to><body>b</body></memo>",
      "<poll><question>q</question><option>1</option><option>2</option></poll>",
      "<pin/>",
  };
  for (const std::string& text : texts) {
    int id = repository.Add(Doc(text));
    clusterer.Add(id, repository.Get(id));
  }
  clusterer.Consolidate();
  std::vector<induce::Candidate> candidates = induce::InduceClusterCandidates(
      clusterer.Clusters(), repository, /*classifier=*/nullptr, {}, options);
  ASSERT_EQ(candidates.size(), texts.size());
  for (const induce::Candidate& candidate : candidates) {
    ExpectRoundTrips(candidate.ext.dtd());
    validate::Validator validator(candidate.ext.dtd());
    for (int id : candidate.validated) {
      EXPECT_TRUE(validator.Validate(repository.Get(id)).valid);
    }
  }
}

}  // namespace
}  // namespace dtdevolve
