#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "validate/validator.h"
#include "xml/parser.h"

namespace dtdevolve::evolve {
namespace {

ExtendedDtd MakeExtended(const char* dtd_text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return ExtendedDtd(std::move(*dtd));
}

void Record(ExtendedDtd& ext, const char* doc_text, int times = 1) {
  Recorder recorder(ext);
  for (int i = 0; i < times; ++i) {
    StatusOr<xml::Document> doc = xml::ParseDocument(doc_text);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    recorder.RecordDocument(*doc);
  }
}

const dtd::AttributeDecl* FindAttribute(const dtd::Dtd& dtd,
                                        const std::string& element,
                                        const std::string& name) {
  const dtd::ElementDecl* decl = dtd.FindElement(element);
  if (decl == nullptr) return nullptr;
  for (const dtd::AttributeDecl& attribute : decl->attributes) {
    if (attribute.name == name) return &attribute;
  }
  return nullptr;
}

TEST(AttributeEvolutionTest, AlwaysPresentBecomesRequired) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (#PCDATA)>");
  Record(ext, R"(<a id="1">x</a>)", 10);
  EvolutionResult result = EvolveDtd(ext, {});
  const dtd::AttributeDecl* id = FindAttribute(ext.dtd(), "a", "id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->default_kind, dtd::AttributeDecl::DefaultKind::kRequired);
  EXPECT_EQ(id->type, "CDATA");
  EXPECT_TRUE(result.any_change);
  ASSERT_FALSE(result.elements.empty());
  EXPECT_EQ(result.elements[0].added_attributes,
            (std::vector<std::string>{"id"}));
}

TEST(AttributeEvolutionTest, SometimesPresentBecomesImplied) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (#PCDATA)>");
  Record(ext, R"(<a lang="en">x</a>)", 5);
  Record(ext, "<a>x</a>", 5);
  EvolveDtd(ext, {});
  const dtd::AttributeDecl* lang = FindAttribute(ext.dtd(), "a", "lang");
  ASSERT_NE(lang, nullptr);
  EXPECT_EQ(lang->default_kind, dtd::AttributeDecl::DefaultKind::kImplied);
}

TEST(AttributeEvolutionTest, DeclaredAttributesUntouched) {
  ExtendedDtd ext = MakeExtended(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id ID #REQUIRED>
  )");
  Record(ext, R"(<a id="1">x</a>)", 10);
  EvolutionResult result = EvolveDtd(ext, {});
  const dtd::ElementDecl* decl = ext.dtd().FindElement("a");
  ASSERT_EQ(decl->attributes.size(), 1u);
  EXPECT_EQ(decl->attributes[0].type, "ID");  // type not downgraded
  EXPECT_TRUE(result.elements[0].added_attributes.empty());
}

TEST(AttributeEvolutionTest, DisabledByOption) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (#PCDATA)>");
  Record(ext, R"(<a id="1">x</a>)", 10);
  EvolutionOptions options;
  options.evolve_attributes = false;
  EvolveDtd(ext, options);
  EXPECT_EQ(FindAttribute(ext.dtd(), "a", "id"), nullptr);
}

TEST(AttributeEvolutionTest, PlusElementsCarryTheirAttributes) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  Record(ext, R"(<a><b>1</b><img src="u.png"/></a>)", 20);
  EvolveDtd(ext, {});
  ASSERT_TRUE(ext.dtd().HasElement("img"));
  const dtd::AttributeDecl* src = FindAttribute(ext.dtd(), "img", "src");
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->default_kind, dtd::AttributeDecl::DefaultKind::kRequired);
  // The evolved DTD validates the drifted documents, attributes included.
  validate::Validator validator(ext.dtd());
  StatusOr<xml::Document> doc =
      xml::ParseDocument(R"(<a><b>1</b><img src="u.png"/></a>)");
  EXPECT_TRUE(validator.Validate(*doc).valid);
  StatusOr<xml::Document> missing =
      xml::ParseDocument("<a><b>1</b><img/></a>");
  EXPECT_FALSE(validator.Validate(*missing).valid);
}

TEST(AttributeEvolutionTest, StatsRecordAttributeCounts) {
  ExtendedDtd ext = MakeExtended("<!ELEMENT a (#PCDATA)>");
  Record(ext, R"(<a x="1" y="2">t</a>)", 3);
  Record(ext, R"(<a x="1">t</a>)", 2);
  const ElementStats* stats = ext.FindStats("a");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->attribute_counts().at("x"), 5u);
  EXPECT_EQ(stats->attribute_counts().at("y"), 3u);
}

}  // namespace
}  // namespace dtdevolve::evolve
