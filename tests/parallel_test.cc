// Concurrency suite: the thread pool, batch classification, and the
// batch processing pipeline. Every multi-threaded path is asserted to be
// bit-identical to its sequential counterpart, so running this binary
// under ThreadSanitizer (-DDTDEVOLVE_SANITIZE=thread) doubles as the
// data-race regression test for the Classifier / SimilarityEvaluator
// thread-safety contract.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/source.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "util/thread_pool.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "xml/parser.h"

namespace dtdevolve {
namespace {

constexpr size_t kJobsLevels[] = {1, 2, 4, 8};

const char* kMailDtd = R"(
  <!ELEMENT mail (from, to+, subject?, body)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kBookDtd = R"(
  <!ELEMENT book (title, author+, year?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
)";

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

/// A mixed stream: mail and book instances interleaved, each drifted
/// away from its DTD so some documents classify, some evolve the set,
/// and some land in the repository.
std::vector<xml::Document> MixedDocs(size_t n, double drift,
                                     uint64_t seed = 7) {
  dtd::Dtd mail = MakeDtd(kMailDtd);
  dtd::Dtd book = MakeDtd(kBookDtd);
  workload::DocumentGenerator mail_gen(mail, workload::GeneratorOptions(),
                                       seed);
  workload::DocumentGenerator book_gen(book, workload::GeneratorOptions(),
                                       seed + 1);
  workload::MutationOptions mutation;
  mutation.drop_probability = drift * 0.5;
  mutation.insert_probability = drift;
  mutation.duplicate_probability = drift * 0.5;
  mutation.new_tags = {"cc", "priority"};
  workload::Mutator mutator(mutation, seed + 2);
  std::vector<xml::Document> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    xml::Document doc =
        (i % 2 == 0) ? mail_gen.Generate() : book_gen.Generate();
    mutator.Mutate(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<xml::Document> CloneAll(const std::vector<xml::Document>& docs) {
  std::vector<xml::Document> copies;
  copies.reserve(docs.size());
  for (const xml::Document& doc : docs) copies.push_back(doc.Clone());
  return copies;
}

core::SourceOptions EvolvingOptions() {
  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.1;  // low enough that the mixed stream evolves mid-batch
  options.min_documents_before_check = 15;
  return options;
}

void AddTestDtds(core::XmlSource& source) {
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(source.AddDtdText("book", kBookDtd).ok());
}

void ExpectSameOutcome(const core::XmlSource::ProcessOutcome& a,
                       const core::XmlSource::ProcessOutcome& b, size_t i) {
  EXPECT_EQ(a.classified, b.classified) << "doc " << i;
  EXPECT_EQ(a.dtd_name, b.dtd_name) << "doc " << i;
  EXPECT_EQ(a.similarity, b.similarity) << "doc " << i;  // bitwise
  EXPECT_EQ(a.evolved, b.evolved) << "doc " << i;
  EXPECT_EQ(a.reclassified, b.reclassified) << "doc " << i;
}

void ExpectSameState(const core::XmlSource& a, const core::XmlSource& b) {
  EXPECT_EQ(a.documents_processed(), b.documents_processed());
  EXPECT_EQ(a.documents_classified(), b.documents_classified());
  EXPECT_EQ(a.evolutions_performed(), b.evolutions_performed());
  EXPECT_EQ(a.repository().size(), b.repository().size());
  for (const std::string& name : a.DtdNames()) {
    ASSERT_NE(b.FindDtd(name), nullptr);
    // The evolved DTD text must be byte-identical.
    EXPECT_EQ(dtd::WriteDtd(*a.FindDtd(name)), dtd::WriteDtd(*b.FindDtd(name)))
        << "DTD " << name;
  }
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    const core::SourceEvent& ea = a.events()[i];
    const core::SourceEvent& eb = b.events()[i];
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
    EXPECT_EQ(ea.dtd_name, eb.dtd_name) << "event " << i;
    EXPECT_EQ(ea.similarity, eb.similarity) << "event " << i;
    EXPECT_EQ(ea.document_index, eb.document_index) << "event " << i;
    EXPECT_EQ(ea.detail, eb.detail) << "event " << i;
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  util::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDrains) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();  // must drain everything already submitted
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.size(), 0u);
  pool.Shutdown();  // second call is a no-op
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ThreadPoolTest, DoubleWaitIsWellDefined) {
  util::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  pool.Wait();  // no pending work: returns immediately
  EXPECT_EQ(counter.load(), 10);
  pool.Shutdown();
  pool.Wait();  // after shutdown: still well-defined, still a no-op
  EXPECT_EQ(counter.load(), 10);
}

#ifdef NDEBUG
TEST(ThreadPoolTest, SubmitAfterShutdownRunsInlineInRelease) {
  // With assertions disabled, a post-shutdown Submit degrades to inline
  // execution rather than losing the task. (In debug builds it asserts.)
  util::ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 1);
}
#endif

TEST(ThreadPoolTest, ParallelForRunsInlineAfterShutdown) {
  util::ThreadPool pool(2);
  pool.Shutdown();
  std::vector<std::atomic<int>> hits(17);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t jobs : kJobsLevels) {
    const size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    util::ParallelFor(n, jobs,
                      [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
  util::ParallelFor(0, 4, [](size_t) { FAIL() << "no iterations expected"; });
}

TEST(ClassifyBatchTest, MatchesSequentialClassifyAtEveryJobsLevel) {
  dtd::Dtd mail = MakeDtd(kMailDtd);
  dtd::Dtd book = MakeDtd(kBookDtd);
  classify::Classifier classifier(0.3);
  classifier.AddDtd("mail", &mail);
  classifier.AddDtd("book", &book);

  std::vector<xml::Document> docs = MixedDocs(120, 0.4);
  std::vector<classify::ClassificationOutcome> sequential;
  sequential.reserve(docs.size());
  for (const xml::Document& doc : docs) {
    sequential.push_back(classifier.Classify(doc));
  }

  for (size_t jobs : kJobsLevels) {
    std::vector<classify::ClassificationOutcome> batch =
        classifier.ClassifyBatch(docs, jobs);
    ASSERT_EQ(batch.size(), sequential.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].classified, sequential[i].classified) << i;
      EXPECT_EQ(batch[i].dtd_name, sequential[i].dtd_name) << i;
      EXPECT_EQ(batch[i].similarity, sequential[i].similarity) << i;
      EXPECT_EQ(batch[i].scores, sequential[i].scores) << i;
    }
  }
}

TEST(ClassifyBatchTest, SharedEvaluatorScoresConcurrently) {
  // Hammer one evaluator from many threads via ClassifyBatch — under
  // TSan this is the direct regression test for the old lazily-mutated
  // evaluator cache and the shared similarity memo.
  dtd::Dtd mail = MakeDtd(kMailDtd);
  classify::Classifier classifier(0.3);
  classifier.AddDtd("mail", &mail);
  std::vector<xml::Document> docs;
  for (int i = 0; i < 64; ++i) {
    docs.push_back(
        MakeDoc("<mail><from>a</from><to>b</to><body>x</body></mail>"));
  }
  std::vector<classify::ClassificationOutcome> batch =
      classifier.ClassifyBatch(docs, 8);
  for (const classify::ClassificationOutcome& outcome : batch) {
    EXPECT_TRUE(outcome.classified);
    EXPECT_DOUBLE_EQ(outcome.similarity, 1.0);
  }
}

TEST(ClassifyBatchTest, TieBreakMatchesSequentialRule) {
  dtd::Dtd mail = MakeDtd(kMailDtd);
  classify::Classifier classifier(0.0);
  classifier.AddDtd("zz-mail", &mail);
  classifier.AddDtd("aa-mail", &mail);
  std::vector<xml::Document> docs;
  for (int i = 0; i < 32; ++i) {
    docs.push_back(
        MakeDoc("<mail><from>a</from><to>b</to><body>x</body></mail>"));
  }
  for (size_t jobs : kJobsLevels) {
    for (const classify::ClassificationOutcome& outcome :
         classifier.ClassifyBatch(docs, jobs)) {
      EXPECT_EQ(outcome.dtd_name, "aa-mail") << "jobs " << jobs;
    }
  }
}

TEST(ProcessBatchTest, IdenticalToSequentialProcessAtEveryJobsLevel) {
  std::vector<xml::Document> docs = MixedDocs(200, 0.35);
  // Foreign-root outliers score 0 against every DTD and therefore stay
  // in the repository whatever evolution does.
  for (int i = 0; i < 10; ++i) {
    docs.push_back(MakeDoc("<memo><head>h</head><body>b</body></memo>"));
  }

  core::XmlSource sequential(EvolvingOptions());
  AddTestDtds(sequential);
  std::vector<core::XmlSource::ProcessOutcome> expected;
  expected.reserve(docs.size());
  for (const xml::Document& doc : docs) {
    expected.push_back(sequential.Process(doc.Clone()));
  }
  // The stream must actually exercise the interesting paths, or this
  // test proves nothing.
  ASSERT_GT(sequential.evolutions_performed(), 0u);
  ASSERT_GT(sequential.repository().size(), 0u);

  for (size_t jobs : kJobsLevels) {
    core::XmlSource batch(EvolvingOptions());
    AddTestDtds(batch);
    std::vector<core::XmlSource::ProcessOutcome> outcomes =
        batch.ProcessBatch(CloneAll(docs), jobs);
    ASSERT_EQ(outcomes.size(), expected.size()) << "jobs " << jobs;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ExpectSameOutcome(outcomes[i], expected[i], i);
    }
    ExpectSameState(batch, sequential);
  }
}

TEST(ProcessBatchTest, MidBatchEvolutionInvalidatesStaleScores) {
  // Force an evolution almost immediately so the speculative scores of
  // the rest of the chunk are stale and must be recomputed; outcomes
  // still must match the sequential run exactly.
  core::SourceOptions options = EvolvingOptions();
  options.tau = 0.01;
  options.min_documents_before_check = 2;
  std::vector<xml::Document> docs = MixedDocs(80, 0.5, /*seed=*/21);

  core::XmlSource sequential(options);
  AddTestDtds(sequential);
  std::vector<core::XmlSource::ProcessOutcome> expected;
  for (const xml::Document& doc : docs) {
    expected.push_back(sequential.Process(doc.Clone()));
  }
  ASSERT_GT(sequential.evolutions_performed(), 0u);

  core::XmlSource batch(options);
  AddTestDtds(batch);
  std::vector<core::XmlSource::ProcessOutcome> outcomes =
      batch.ProcessBatch(CloneAll(docs), 4);
  ASSERT_EQ(outcomes.size(), expected.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ExpectSameOutcome(outcomes[i], expected[i], i);
  }
  ExpectSameState(batch, sequential);
}

TEST(ProcessBatchTest, ReclassifyRepositoryParallelMatchesSequential) {
  core::SourceOptions options = EvolvingOptions();
  options.auto_evolve = false;  // fill the repository, evolve manually
  std::vector<xml::Document> docs = MixedDocs(100, 0.6, /*seed=*/33);

  auto run = [&](size_t jobs) {
    auto source = std::make_unique<core::XmlSource>(options);
    AddTestDtds(*source);
    source->ProcessBatch(CloneAll(docs), jobs);
    source->ForceEvolve("mail");
    source->ForceEvolve("book");
    size_t recovered = source->ReclassifyRepository(jobs);
    return std::make_pair(std::move(source), recovered);
  };

  auto [seq_source, seq_recovered] = run(1);
  for (size_t jobs : kJobsLevels) {
    auto [par_source, par_recovered] = run(jobs);
    EXPECT_EQ(par_recovered, seq_recovered) << "jobs " << jobs;
    ExpectSameState(*par_source, *seq_source);
  }
}

}  // namespace
}  // namespace dtdevolve
