#include <gtest/gtest.h>

#include "classify/classifier.h"
#include "classify/repository.h"
#include "dtd/dtd_parser.h"
#include "xml/parser.h"

namespace dtdevolve::classify {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

class ClassifierFixture : public ::testing::Test {
 protected:
  ClassifierFixture()
      : mail_(MakeDtd(R"(
          <!ELEMENT mail (from, to, body)>
          <!ELEMENT from (#PCDATA)>
          <!ELEMENT to (#PCDATA)>
          <!ELEMENT body (#PCDATA)>
        )")),
        book_(MakeDtd(R"(
          <!ELEMENT book (title, author+)>
          <!ELEMENT title (#PCDATA)>
          <!ELEMENT author (#PCDATA)>
        )")) {}

  dtd::Dtd mail_;
  dtd::Dtd book_;
};

TEST_F(ClassifierFixture, PicksTheBestDtd) {
  Classifier classifier(0.5);
  classifier.AddDtd("mail", &mail_);
  classifier.AddDtd("book", &book_);
  ClassificationOutcome outcome = classifier.Classify(
      MakeDoc("<mail><from>a</from><to>b</to><body>x</body></mail>"));
  EXPECT_TRUE(outcome.classified);
  EXPECT_EQ(outcome.dtd_name, "mail");
  EXPECT_DOUBLE_EQ(outcome.similarity, 1.0);
  EXPECT_EQ(outcome.scores.size(), 2u);
}

TEST_F(ClassifierFixture, ImperfectDocumentStillClassifies) {
  Classifier classifier(0.5);
  classifier.AddDtd("mail", &mail_);
  classifier.AddDtd("book", &book_);
  // Missing `to`, extra `cc`: similar to mail but not valid — the
  // flexibility the paper's classification requires (§1).
  ClassificationOutcome outcome = classifier.Classify(
      MakeDoc("<mail><from>a</from><cc>c</cc><body>x</body></mail>"));
  EXPECT_TRUE(outcome.classified);
  EXPECT_EQ(outcome.dtd_name, "mail");
  EXPECT_LT(outcome.similarity, 1.0);
  EXPECT_GE(outcome.similarity, 0.5);
}

TEST_F(ClassifierFixture, BelowThresholdIsUnclassified) {
  Classifier classifier(0.9);
  classifier.AddDtd("mail", &mail_);
  ClassificationOutcome outcome =
      classifier.Classify(MakeDoc("<mail><x/><y/><z/></mail>"));
  EXPECT_FALSE(outcome.classified);
  EXPECT_EQ(outcome.dtd_name, "mail");  // best match is still reported
}

TEST_F(ClassifierFixture, SigmaZeroClassifiesEverythingWithAnyDtd) {
  Classifier classifier(0.0);
  classifier.AddDtd("mail", &mail_);
  EXPECT_TRUE(classifier.Classify(MakeDoc("<mail/>")).classified);
  // A root matching no DTD scores 0 everywhere but still passes σ = 0.
  EXPECT_TRUE(classifier.Classify(MakeDoc("<other/>")).classified);
}

TEST_F(ClassifierFixture, EmptySetClassifiesNothing) {
  Classifier classifier(0.0);
  EXPECT_FALSE(classifier.Classify(MakeDoc("<mail/>")).classified);
}

TEST_F(ClassifierFixture, RemoveAndInvalidate) {
  Classifier classifier(0.5);
  classifier.AddDtd("mail", &mail_);
  classifier.AddDtd("book", &book_);
  EXPECT_EQ(classifier.DtdNames().size(), 2u);
  EXPECT_TRUE(classifier.RemoveDtd("book"));
  EXPECT_FALSE(classifier.RemoveDtd("book"));
  EXPECT_EQ(classifier.size(), 1u);

  // Mutate the mail DTD (simulating evolution), then invalidate.
  StatusOr<dtd::ContentModel::Ptr> model =
      dtd::ParseContentModel("(from, to, cc, body)");
  ASSERT_TRUE(model.ok());
  mail_.SetContent("mail", std::move(model).value());
  mail_.DeclareElement("cc", dtd::ContentModel::Pcdata());
  classifier.Invalidate("mail");
  ClassificationOutcome outcome = classifier.Classify(MakeDoc(
      "<mail><from>a</from><to>b</to><cc>c</cc><body>x</body></mail>"));
  EXPECT_DOUBLE_EQ(outcome.similarity, 1.0);
}

TEST_F(ClassifierFixture, SimilarityByName) {
  Classifier classifier(0.5);
  classifier.AddDtd("mail", &mail_);
  xml::Document doc =
      MakeDoc("<mail><from>a</from><to>b</to><body>x</body></mail>");
  std::optional<double> known = classifier.Similarity(doc, "mail");
  ASSERT_TRUE(known.has_value());
  EXPECT_DOUBLE_EQ(*known, 1.0);
  // An unknown DTD name is nullopt, not a genuine zero score.
  EXPECT_EQ(classifier.Similarity(doc, "unknown"), std::nullopt);
}

TEST_F(ClassifierFixture, EqualScoresBreakTiesByLowestName) {
  // Two registrations of the same DTD score identically on any document;
  // the lexicographically smallest name must win regardless of the order
  // they were registered in.
  Classifier classifier(0.0);
  classifier.AddDtd("zz-mail", &mail_);
  classifier.AddDtd("aa-mail", &mail_);
  ClassificationOutcome outcome = classifier.Classify(
      MakeDoc("<mail><from>a</from><to>b</to><body>x</body></mail>"));
  EXPECT_TRUE(outcome.classified);
  EXPECT_EQ(outcome.dtd_name, "aa-mail");
  EXPECT_DOUBLE_EQ(outcome.similarity, 1.0);
  ASSERT_EQ(outcome.scores.size(), 2u);
  EXPECT_DOUBLE_EQ(outcome.scores[0].similarity, outcome.scores[1].similarity);
  EXPECT_FALSE(outcome.scores[0].pruned);
  EXPECT_FALSE(outcome.scores[1].pruned);
}

TEST(RepositoryTest, AddGetTake) {
  Repository repo;
  EXPECT_TRUE(repo.empty());
  int id1 = repo.Add(MakeDoc("<a/>"));
  int id2 = repo.Add(MakeDoc("<b/>"));
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.Ids(), (std::vector<int>{id1, id2}));
  EXPECT_EQ(repo.Get(id2).root().tag(), "b");
  xml::Document taken = repo.Take(id1);
  EXPECT_EQ(taken.root().tag(), "a");
  EXPECT_EQ(repo.size(), 1u);
  repo.Clear();
  EXPECT_TRUE(repo.empty());
}

TEST(RepositoryTest, IdsAreNeverReused) {
  Repository repo;
  int id1 = repo.Add(MakeDoc("<a/>"));
  repo.Take(id1);
  int id2 = repo.Add(MakeDoc("<b/>"));
  EXPECT_NE(id1, id2);
}

}  // namespace
}  // namespace dtdevolve::classify
