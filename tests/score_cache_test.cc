// Fast-path correctness suite: the shared subtree score cache, the
// score-bound pruning layer, and their interaction with classification —
// every test here checks the fast path against the plain evaluation it
// replaces, because the whole contract is "same answers, less work".
// Runs under the `concurrency` ctest label so the TSan leg covers the
// shared-cache hammering.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "classify/classifier.h"
#include "dtd/dtd_parser.h"
#include "similarity/score_cache.h"
#include "similarity/similarity.h"
#include "util/symbol_table.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "workload/scenarios.h"
#include "xml/parser.h"

namespace dtdevolve {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

/// A drifted corpus over all four scenario schemas — documents that hit
/// every DTD, near-misses included.
struct Corpus {
  std::vector<dtd::Dtd> dtds;
  std::vector<std::string> names;
  std::vector<xml::Document> docs;
};

Corpus MakeCorpus(uint64_t seed, uint64_t docs_per_phase) {
  Corpus corpus;
  std::vector<workload::ScenarioStream> scenarios =
      workload::MakeAllScenarios(seed, docs_per_phase);
  for (workload::ScenarioStream& scenario : scenarios) {
    corpus.names.push_back(scenario.name());
    corpus.dtds.push_back(scenario.InitialDtd());
    while (!scenario.Done()) corpus.docs.push_back(scenario.Next());
  }
  return corpus;
}

/// DTDs sharing one root tag but diverging content models. The scenario
/// corpus above has mutually distinct roots, so the root-tag gate zeroes
/// almost every cross-DTD score and a mis-firing cutoff skips only DTDs
/// that would have scored 0 anyway; here every DTD scores non-zero
/// against every document, so pruning decisions discriminate between
/// live scores.
Corpus MakeSharedRootCorpus() {
  Corpus corpus;
  corpus.names = {"article-v1", "article-v2", "article-v3"};
  corpus.dtds.push_back(MakeDtd(R"(
      <!ELEMENT article (title, body)>
      <!ELEMENT title (#PCDATA)> <!ELEMENT body (#PCDATA)>)"));
  corpus.dtds.push_back(MakeDtd(R"(
      <!ELEMENT article (title, author, body)>
      <!ELEMENT title (#PCDATA)> <!ELEMENT author (#PCDATA)>
      <!ELEMENT body (#PCDATA)>)"));
  corpus.dtds.push_back(MakeDtd(R"(
      <!ELEMENT article (title, author+, abstract?, body, ref*)>
      <!ELEMENT title (#PCDATA)> <!ELEMENT author (#PCDATA)>
      <!ELEMENT abstract (#PCDATA)> <!ELEMENT body (#PCDATA)>
      <!ELEMENT ref (#PCDATA)>)"));
  const char* docs[] = {
      // Exact matches for each version.
      "<article><title>t</title><body>b</body></article>",
      "<article><title>t</title><author>a</author><body>b</body></article>",
      "<article><title>t</title><author>a</author><author>c</author>"
      "<abstract>s</abstract><body>b</body><ref>r</ref></article>",
      // Partial / drifted documents: no version fits perfectly.
      "<article><title>t</title><author>a</author></article>",
      "<article><body>b</body><extra>x</extra></article>",
      "<article><title>t</title><note>n</note><body>b</body></article>",
      "<article><author>a</author><abstract>s</abstract><ref>r</ref>"
      "</article>",
  };
  for (const char* text : docs) corpus.docs.push_back(MakeDoc(text));
  return corpus;
}

classify::ClassifierOptions PlainOptions() {
  classify::ClassifierOptions options;
  options.enable_pruning = false;
  options.enable_score_cache = false;
  return options;
}

void ExpectSameOutcome(const classify::ClassificationOutcome& fast,
                       const classify::ClassificationOutcome& plain,
                       const char* where) {
  EXPECT_EQ(fast.classified, plain.classified) << where;
  EXPECT_EQ(fast.dtd_name, plain.dtd_name) << where;
  EXPECT_EQ(fast.similarity, plain.similarity) << where;  // bit-exact
  ASSERT_EQ(fast.scores.size(), plain.scores.size()) << where;
  for (size_t i = 0; i < fast.scores.size(); ++i) {
    EXPECT_EQ(fast.scores[i].dtd_name, plain.scores[i].dtd_name) << where;
    if (fast.scores[i].pruned) {
      // Pruned entries carry the bound: conservative (≥ exact) and
      // strictly below the winner, or they could not have been pruned.
      EXPECT_GE(fast.scores[i].similarity, plain.scores[i].similarity)
          << where << " entry " << i;
      EXPECT_LT(fast.scores[i].similarity, fast.similarity)
          << where << " entry " << i;
    } else {
      EXPECT_EQ(fast.scores[i].similarity, plain.scores[i].similarity)
          << where << " entry " << i;
    }
  }
}

// --- Classification equivalence ---------------------------------------------

TEST(FastPathTest, CachedAndPrunedOutcomesMatchPlainEvaluation) {
  Corpus corpus = MakeCorpus(11, 25);
  classify::Classifier fast(0.5);  // pruning + cache defaults
  classify::Classifier plain(0.5, {}, PlainOptions());
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    fast.AddDtd(corpus.names[i], &corpus.dtds[i]);
    plain.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }
  // Two passes: the second classifies every document against a warm
  // cache, which must not change a single answer.
  for (int pass = 0; pass < 2; ++pass) {
    for (const xml::Document& doc : corpus.docs) {
      ExpectSameOutcome(fast.Classify(doc), plain.Classify(doc),
                        pass == 0 ? "cold pass" : "warm pass");
    }
  }
  ASSERT_NE(fast.score_cache(), nullptr);
  EXPECT_GT(fast.score_cache()->GetStats().hits, 0u);
}

TEST(FastPathTest, PruningAloneIsOutcomeIdentical) {
  Corpus corpus = MakeCorpus(13, 20);
  classify::ClassifierOptions prune_only = PlainOptions();
  prune_only.enable_pruning = true;
  classify::Classifier pruned(0.5, {}, prune_only);
  classify::Classifier plain(0.5, {}, PlainOptions());
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    pruned.AddDtd(corpus.names[i], &corpus.dtds[i]);
    plain.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }
  size_t pruned_entries = 0;
  for (const xml::Document& doc : corpus.docs) {
    classify::ClassificationOutcome fast = pruned.Classify(doc);
    ExpectSameOutcome(fast, plain.Classify(doc), "prune-only");
    for (const classify::ScoreEntry& entry : fast.scores) {
      if (entry.pruned) ++pruned_entries;
    }
  }
  // Distinct scenario roots: most cross-DTD evaluations must be pruned,
  // or the fast path is not actually fast.
  EXPECT_GT(pruned_entries, corpus.docs.size());
}

TEST(FastPathTest, PruningDisabledEvaluatesEveryDtd) {
  // Regression: with pruning off every candidate bound is a meaningless
  // 0.0; an unguarded cutoff skipped everything after the first exact
  // score and returned the lexicographically-first DTD instead of the
  // true match. Shared root tags make the wrong answer visible — with
  // distinct roots the skipped DTDs would have scored 0 anyway.
  Corpus corpus = MakeSharedRootCorpus();
  classify::Classifier plain(0.5, {}, PlainOptions());
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    plain.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }
  // docs[1] matches article-v2 exactly; v1 and v3 score below 1.0.
  classify::ClassificationOutcome outcome = plain.Classify(corpus.docs[1]);
  EXPECT_EQ(outcome.dtd_name, "article-v2");
  EXPECT_DOUBLE_EQ(outcome.similarity, 1.0);
  EXPECT_TRUE(outcome.classified);
  for (const classify::ScoreEntry& entry : outcome.scores) {
    EXPECT_FALSE(entry.pruned) << entry.dtd_name;
    EXPECT_GT(entry.similarity, 0.0) << entry.dtd_name;  // shared root
  }
}

TEST(FastPathTest, SharedRootOutcomesMatchPlainEvaluation) {
  // Every DTD scores non-zero against every document here, so the prune
  // cutoff and the shared cache are exercised on scores that actually
  // discriminate — not hidden behind the root-tag gate.
  Corpus corpus = MakeSharedRootCorpus();
  classify::Classifier fast(0.5);  // pruning + cache defaults
  classify::ClassifierOptions prune_only = PlainOptions();
  prune_only.enable_pruning = true;
  classify::Classifier pruned(0.5, {}, prune_only);
  classify::Classifier plain(0.5, {}, PlainOptions());
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    fast.AddDtd(corpus.names[i], &corpus.dtds[i]);
    pruned.AddDtd(corpus.names[i], &corpus.dtds[i]);
    plain.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }
  size_t pruned_entries = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const xml::Document& doc : corpus.docs) {
      classify::ClassificationOutcome reference = plain.Classify(doc);
      ExpectSameOutcome(fast.Classify(doc), reference, "shared-root fast");
      classify::ClassificationOutcome prune_outcome = pruned.Classify(doc);
      ExpectSameOutcome(prune_outcome, reference, "shared-root prune-only");
      for (const classify::ScoreEntry& entry : prune_outcome.scores) {
        if (entry.pruned) ++pruned_entries;
      }
    }
  }
  // docs[2] (an exact article-v3 match whose vocabulary overhangs v1/v2)
  // must let the cutoff fire on non-zero bounds.
  EXPECT_GT(pruned_entries, 0u);
}

// --- Score bound admissibility ----------------------------------------------

TEST(FastPathTest, ScoreBoundDominatesExactSimilarity) {
  Corpus corpus = MakeCorpus(17, 15);
  classify::Classifier classifier(0.5, {}, PlainOptions());
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    classifier.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }
  // Extra drift beyond what the scenarios produce, so bounds are probed
  // on badly damaged documents too.
  workload::MutationOptions mutation;
  mutation.drop_probability = 0.3;
  mutation.insert_probability = 0.3;
  mutation.duplicate_probability = 0.2;
  mutation.new_tags = {"alien", "intruder"};
  workload::Mutator mutator(mutation, 99);

  size_t checked = 0;
  for (xml::Document& doc : corpus.docs) {
    mutator.Mutate(doc);
    for (const std::string& name : corpus.names) {
      std::optional<double> bound = classifier.ScoreBound(doc, name);
      std::optional<double> exact = classifier.Similarity(doc, name);
      ASSERT_TRUE(bound.has_value());
      ASSERT_TRUE(exact.has_value());
      EXPECT_GE(*bound + 1e-12, *exact)
          << name << ": bound " << *bound << " < exact " << *exact;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(FastPathTest, NegativeWeightsDisableTheBound) {
  // E is not monotone for negative weights, so the bound must degrade to
  // the trivial 1.0 (prune nothing) instead of guessing.
  dtd::Dtd dtd = MakeDtd("<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>");
  similarity::SimilarityOptions options;
  options.weights.plus_weight = -1.0;
  classify::Classifier classifier(0.5, options, PlainOptions());
  classifier.AddDtd("a", &dtd);
  xml::Document doc = MakeDoc("<a><x/><y/></a>");
  EXPECT_DOUBLE_EQ(classifier.ScoreBound(doc, "a").value(), 1.0);
}

// --- Cache behaviour ---------------------------------------------------------

TEST(FastPathTest, InvalidateOrphansStaleCacheEntries) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT mail (from, to, body)>
    <!ELEMENT from (#PCDATA)> <!ELEMENT to (#PCDATA)>
    <!ELEMENT body (#PCDATA)>
  )");
  classify::Classifier classifier(0.5);
  classifier.AddDtd("mail", &dtd);
  xml::Document extended = MakeDoc(
      "<mail><from>a</from><to>b</to><cc>c</cc><body>x</body></mail>");
  const double before = classifier.Classify(extended).similarity;
  EXPECT_LT(before, 1.0);

  // Evolve the DTD in place, then Invalidate: the rebuilt evaluator draws
  // a fresh epoch, so the warm cache entries keyed by the old epoch must
  // be unreachable — the evolved score must be exact, not a stale hit.
  StatusOr<dtd::ContentModel::Ptr> model =
      dtd::ParseContentModel("(from, to, cc, body)");
  ASSERT_TRUE(model.ok());
  dtd.SetContent("mail", std::move(model).value());
  dtd.DeclareElement("cc", dtd::ContentModel::Pcdata());
  classifier.Invalidate("mail");
  EXPECT_DOUBLE_EQ(classifier.Classify(extended).similarity, 1.0);
  // And repeatedly, now against the new evaluator's warm entries.
  EXPECT_DOUBLE_EQ(classifier.Classify(extended).similarity, 1.0);
}

TEST(FastPathTest, TinyCapacityEvictsButStaysCorrect) {
  Corpus corpus = MakeCorpus(19, 20);
  classify::ClassifierOptions tiny;
  tiny.enable_pruning = true;
  tiny.enable_score_cache = true;
  tiny.score_cache_bytes = 1;  // one entry per shard: constant churn
  classify::Classifier small(0.5, {}, tiny);
  classify::Classifier plain(0.5, {}, PlainOptions());
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    small.AddDtd(corpus.names[i], &corpus.dtds[i]);
    plain.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (const xml::Document& doc : corpus.docs) {
      ExpectSameOutcome(small.Classify(doc), plain.Classify(doc),
                        "tiny capacity");
    }
  }
  ASSERT_NE(small.score_cache(), nullptr);
  const similarity::SubtreeScoreCache::Stats stats =
      small.score_cache()->GetStats();
  EXPECT_GT(stats.evictions, 0u);
}

TEST(SubtreeScoreCacheTest, LookupInsertEvictClear) {
  similarity::SubtreeScoreCache::Config config;
  config.capacity_bytes = 16 * 160;  // exactly one entry per shard
  similarity::SubtreeScoreCache cache(config);

  similarity::SubtreeScoreCache::Key key{1, 0xAB, 0xCD, 7};
  similarity::Triple triple;
  EXPECT_FALSE(cache.Lookup(key, &triple));
  similarity::Triple stored;
  stored.common = 3.0;
  cache.Insert(key, stored);
  ASSERT_TRUE(cache.Lookup(key, &triple));
  EXPECT_DOUBLE_EQ(triple.common, 3.0);

  // Same shard (same fp_lo/label), different fingerprint: evicts the
  // first entry under the one-entry capacity.
  similarity::SubtreeScoreCache::Key other{1, 0xEF, 0xCD, 7};
  cache.Insert(other, stored);
  EXPECT_TRUE(cache.Lookup(other, &triple));
  EXPECT_FALSE(cache.Lookup(key, &triple));

  const similarity::SubtreeScoreCache::Stats stats = cache.GetStats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);

  cache.Clear();
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_FALSE(cache.Lookup(other, &triple));
}

TEST(SubtreeFingerprintsTest, StructureDeterminesFingerprint) {
  xml::Document a = MakeDoc("<r><x><y>t</y><z/></x><x><y>u</y><z/></x></r>");
  similarity::SubtreeFingerprints fps(a.root());
  const xml::Element& first = a.root().children()[0]->AsElement();
  const xml::Element& second = a.root().children()[1]->AsElement();
  const similarity::SubtreeStats* s1 = fps.Find(&first);
  const similarity::SubtreeStats* s2 = fps.Find(&second);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  // Same structure (text values don't matter), same fingerprint…
  EXPECT_EQ(s1->fp_hi, s2->fp_hi);
  EXPECT_EQ(s1->fp_lo, s2->fp_lo);
  EXPECT_EQ(s1->element_count, s2->element_count);
  // …different structure, different fingerprint.
  xml::Document b = MakeDoc("<r><x><y>t</y></x></r>");
  similarity::SubtreeFingerprints other(b.root());
  const similarity::SubtreeStats* s3 =
      other.Find(&b.root().children()[0]->AsElement());
  ASSERT_NE(s3, nullptr);
  EXPECT_FALSE(s3->fp_hi == s1->fp_hi && s3->fp_lo == s1->fp_lo);
}

// --- Symbol interning overflow -----------------------------------------------

/// Freezes the global symbol table (no new bounded ids) for one test and
/// restores the default capacity on scope exit, pass or fail.
struct FrozenSymbolsGuard {
  FrozenSymbolsGuard() { util::GlobalSymbols().set_capacity(0, 0); }
  ~FrozenSymbolsGuard() {
    util::GlobalSymbols().set_capacity(util::SymbolTable::kDefaultMaxEntries,
                                       util::SymbolTable::kDefaultMaxBytes);
  }
};

TEST(FastPathTest, OverflowTagsClassifyByStringFallback) {
  // A hostile stream of endless distinct tags eventually fills the
  // bounded table; from then on fresh tags share the kNoSymbol sentinel
  // and classification must degrade to string comparison, not confuse
  // distinct tags whose sentinel ids compare equal.
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT mail (from, body)>
    <!ELEMENT from (#PCDATA)> <!ELEMENT body (#PCDATA)>
  )");
  classify::Classifier fast(0.5);
  classify::Classifier plain(0.5, {}, PlainOptions());
  fast.AddDtd("mail", &dtd);
  plain.AddDtd("mail", &dtd);

  FrozenSymbolsGuard frozen;
  // DTD labels were interned (unbounded) before the freeze: a conforming
  // document still resolves every tag and scores exactly 1.0.
  xml::Document conforming =
      MakeDoc("<mail><from>a</from><body>b</body></mail>");
  EXPECT_DOUBLE_EQ(fast.Classify(conforming).similarity, 1.0);

  // Novel tags overflow to the sentinel…
  xml::Document drifted = MakeDoc(
      "<mail><from>a</from><ovfl-alpha/><body>b</body></mail>");
  ASSERT_EQ(drifted.root().ChildElements()[1]->tag_id(),
            util::SymbolTable::kNoSymbol);
  // …and the fast path still agrees with the plain string-truth path,
  // scoring the overflow child as undeclared drift.
  for (int pass = 0; pass < 2; ++pass) {
    classify::ClassificationOutcome outcome = fast.Classify(drifted);
    ExpectSameOutcome(outcome, plain.Classify(drifted), "overflow drift");
    EXPECT_LT(outcome.similarity, 1.0);
    EXPECT_GT(outcome.similarity, 0.0);
  }

  // Two documents differing only in their overflow tag are distinct
  // inputs; sentinel-id equality must not make one borrow the other's
  // cached or compared identity.
  xml::Document other = MakeDoc(
      "<mail><from>a</from><ovfl-beta/><body>b</body></mail>");
  ExpectSameOutcome(fast.Classify(other), plain.Classify(other),
                    "overflow variant");

  // An overflow *root* shares no tag with the DTD root: score 0.
  xml::Document alien_root = MakeDoc("<ovfl-root><from>a</from></ovfl-root>");
  ASSERT_EQ(alien_root.root().tag_id(), util::SymbolTable::kNoSymbol);
  classify::ClassificationOutcome alien = fast.Classify(alien_root);
  EXPECT_DOUBLE_EQ(alien.similarity, 0.0);
  EXPECT_FALSE(alien.classified);
}

TEST(SubtreeFingerprintsTest, OverflowTagsKeepDistinctFingerprints) {
  // Sentinel ids alone would fingerprint structurally different subtrees
  // identically and alias their cached triples; overflow tags must hash
  // by string instead.
  FrozenSymbolsGuard frozen;
  xml::Document a = MakeDoc("<r><ovfp-one/></r>");
  xml::Document b = MakeDoc("<r><ovfp-two/></r>");
  const xml::Element& child_a = a.root().children()[0]->AsElement();
  const xml::Element& child_b = b.root().children()[0]->AsElement();
  ASSERT_EQ(child_a.tag_id(), util::SymbolTable::kNoSymbol);
  ASSERT_EQ(child_b.tag_id(), util::SymbolTable::kNoSymbol);
  similarity::SubtreeFingerprints fps_a(a.root());
  similarity::SubtreeFingerprints fps_b(b.root());
  const similarity::SubtreeStats* sa = fps_a.Find(&child_a);
  const similarity::SubtreeStats* sb = fps_b.Find(&child_b);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_FALSE(sa->fp_hi == sb->fp_hi && sa->fp_lo == sb->fp_lo);
  // Same overflow tag, same structure: fingerprints still agree, so the
  // cross-document cache keeps working for overflow subtrees.
  xml::Document c = MakeDoc("<r><ovfp-one/></r>");
  similarity::SubtreeFingerprints fps_c(c.root());
  const similarity::SubtreeStats* sc =
      fps_c.Find(&c.root().children()[0]->AsElement());
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sa->fp_hi, sc->fp_hi);
  EXPECT_EQ(sa->fp_lo, sc->fp_lo);
}

// --- Concurrency -------------------------------------------------------------

TEST(FastPathTest, ConcurrentBatchesShareTheCacheSafely) {
  Corpus corpus = MakeCorpus(23, 25);
  classify::Classifier fast(0.5);
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    fast.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }
  // Sequential reference first (also warms the cache — the concurrent
  // batches then mix hits, misses and evictions).
  std::vector<classify::ClassificationOutcome> reference;
  reference.reserve(corpus.docs.size());
  for (const xml::Document& doc : corpus.docs) {
    reference.push_back(fast.Classify(doc));
  }
  // Several concurrent batch rounds over the same shared cache.
  for (int round = 0; round < 3; ++round) {
    std::vector<classify::ClassificationOutcome> batch =
        fast.ClassifyBatch(corpus.docs, 4);
    ASSERT_EQ(batch.size(), reference.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].classified, reference[i].classified);
      EXPECT_EQ(batch[i].dtd_name, reference[i].dtd_name);
      EXPECT_EQ(batch[i].similarity, reference[i].similarity);
      EXPECT_EQ(batch[i].scores, reference[i].scores);
    }
  }
  ASSERT_NE(fast.score_cache(), nullptr);
  EXPECT_GT(fast.score_cache()->GetStats().hits, 0u);
}

// --- Hardened alignment ------------------------------------------------------

TEST(AlignSymbolElementsTest, ToleratesMismatchedSymbolSequences) {
  xml::Document doc = MakeDoc("<r><a/><b/></r>");
  const int32_t a = util::InternSymbol("a");
  const int32_t b = util::InternSymbol("b");
  const int32_t c = util::InternSymbol("c");

  // More symbols than element children: defensive nullptr padding, never
  // an out-of-bounds read — this used to be guarded only by an assert.
  std::vector<const xml::Element*> aligned =
      similarity::AlignSymbolElements(doc.root(), {a, b, c, c});
  ASSERT_EQ(aligned.size(), 4u);
  EXPECT_NE(aligned[0], nullptr);
  EXPECT_NE(aligned[1], nullptr);
  EXPECT_EQ(aligned[2], nullptr);
  EXPECT_EQ(aligned[3], nullptr);

  // Fewer symbols than children: surplus children are left unaligned.
  aligned = similarity::AlignSymbolElements(doc.root(), {a});
  ASSERT_EQ(aligned.size(), 1u);
  EXPECT_NE(aligned[0], nullptr);

  aligned = similarity::AlignSymbolElements(doc.root(), {});
  EXPECT_TRUE(aligned.empty());
}

}  // namespace
}  // namespace dtdevolve
