// HTTP/1.1 conformance suite for the epoll event loop: keep-alive reuse,
// pipelining order, read-stall and idle reaping, oversized-header
// rejection, partial writes under socket-buffer pressure, and the
// graceful-drain promise that an in-flight keep-alive response is
// delivered before the connection closes. Multi-threaded end to end
// (event loop + ingest workers), hence the `concurrency` ctest label.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/http.h"
#include "server/server.h"

namespace dtdevolve::server {
namespace {

const char* kMailDtd = R"(
  <!ELEMENT mail (envelope, body)>
  <!ELEMENT envelope (from, to, subject)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kConformingDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "</envelope><body>hello</body></mail>";

core::SourceOptions DefaultSource() {
  core::SourceOptions options;
  options.min_documents_before_check = 1;
  return options;
}

ServerOptions EphemeralOptions() {
  ServerOptions options;
  options.port = 0;
  options.jobs = 2;
  return options;
}

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << "send: " << std::strerror(errno);
    sent += static_cast<size_t>(n);
  }
}

std::string GetRequest(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

std::string PostRequest(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// Blocks until the peer half-closes (clean EOF) or `max_ms` passes.
bool PeerClosedWithin(int fd, int max_ms) {
  timeval tv = {};
  tv.tv_sec = max_ms / 1000;
  tv.tv_usec = (max_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char ch = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n == 0) return true;  // EOF: server closed
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;  // timeout (EAGAIN) or error
    // Unexpected payload after the final response is a framing bug.
    ADD_FAILURE() << "unexpected byte after response: " << ch;
    return false;
  }
}

/// One complete response off a (possibly reused) connection, framed by
/// Content-Length. Pipelined responses can land in one TCP segment, so
/// bytes past the first response stay in `*buffer` for the next call —
/// `ReadHttpResponse` would discard them with its private buffer.
HttpClientResponse ReadOne(int fd, std::string* buffer) {
  while (true) {
    const size_t header_end = buffer->find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const std::string head = buffer->substr(0, header_end);
      size_t content_length = 0;
      const size_t length_at = head.find("Content-Length: ");
      if (length_at != std::string::npos) {
        content_length =
            std::strtoull(head.c_str() + length_at + 16, nullptr, 10);
      }
      const size_t total = header_end + 4 + content_length;
      if (buffer->size() >= total) {
        HttpClientResponse response;
        response.status = std::atoi(buffer->c_str() + 9);
        size_t line = head.find("\r\n");
        while (line != std::string::npos && line + 2 < head.size()) {
          const size_t next = head.find("\r\n", line + 2);
          const std::string header_line =
              head.substr(line + 2, next == std::string::npos
                                        ? std::string::npos
                                        : next - line - 2);
          const size_t colon = header_line.find(": ");
          if (colon != std::string::npos) {
            std::string name = header_line.substr(0, colon);
            for (char& ch : name) ch = static_cast<char>(std::tolower(ch));
            response.headers.emplace_back(name, header_line.substr(colon + 2));
          }
          line = next;
        }
        response.body = buffer->substr(header_end + 4, content_length);
        buffer->erase(0, total);
        return response;
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ADD_FAILURE() << (n == 0 ? "connection closed before response"
                               : std::strerror(errno));
      return {};
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

TEST(HttpConformanceTest, KeepAliveServesManyRequestsOnOneConnection) {
  IngestServer server(DefaultSource(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 3; ++i) {
    SendAll(fd, GetRequest("/healthz"));
    HttpClientResponse response = ReadOne(fd, &buf);
    EXPECT_EQ(response.status, 200) << i;
    EXPECT_EQ(response.body, "ok\n") << i;
  }
  // Ingest works over the same reused connection too.
  SendAll(fd, PostRequest("/ingest?wait=1", kConformingDoc));
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);

  // The accept counter proves reuse: every request above shared ONE
  // accepted connection, so the scrape (same socket again) reads 1.
  SendAll(fd, GetRequest("/metrics"));
  HttpClientResponse metrics = ReadOne(fd, &buf);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("\ndtdevolve_http_connections_total 1\n"),
            std::string::npos)
      << metrics.body;

  ::close(fd);
  server.Shutdown();
  server.Wait();
}

TEST(HttpConformanceTest, ConnectionCloseAndHttp10AreHonored) {
  IngestServer server(DefaultSource(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  // Explicit Connection: close on HTTP/1.1 — answered, then closed.
  int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  HttpClientResponse closed = ReadOne(fd, &buf);
  EXPECT_EQ(closed.status, 200);
  const std::string* connection = closed.FindHeader("connection");
  ASSERT_NE(connection, nullptr);
  EXPECT_EQ(*connection, "close");
  EXPECT_TRUE(PeerClosedWithin(fd, 2000));
  ::close(fd);

  // HTTP/1.0 defaults to close.
  fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n");
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  EXPECT_TRUE(PeerClosedWithin(fd, 2000));
  ::close(fd);

  // HTTP/1.0 with an explicit keep-alive stays open for a second round.
  fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "GET /healthz HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  SendAll(fd, GetRequest("/healthz"));
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  ::close(fd);

  server.Shutdown();
  server.Wait();
}

TEST(HttpConformanceTest, PipelinedRequestsAreAnsweredInOrder) {
  IngestServer server(DefaultSource(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);

  // One burst: a synchronous ingest (parks the connection on the worker),
  // plain GETs queued behind it, a second ingest, and a 404 — responses
  // must come back strictly in request order.
  SendAll(fd, PostRequest("/ingest?wait=1", kConformingDoc) +
                  GetRequest("/healthz") + GetRequest("/stats") +
                  PostRequest("/ingest?wait=1", kConformingDoc) +
                  GetRequest("/no-such-route"));

  HttpClientResponse first = ReadOne(fd, &buf);
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("\"classified\":true"), std::string::npos)
      << first.body;

  HttpClientResponse second = ReadOne(fd, &buf);
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body, "ok\n");

  HttpClientResponse third = ReadOne(fd, &buf);
  EXPECT_EQ(third.status, 200);
  EXPECT_NE(third.body.find("\"documents_processed\""), std::string::npos);

  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  EXPECT_EQ(ReadOne(fd, &buf).status, 404);

  ::close(fd);
  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source().documents_processed(), 2u);
}

TEST(HttpConformanceTest, SlowLorisIsReapedByTheReadDeadline) {
  ServerOptions options = EphemeralOptions();
  options.recv_timeout_seconds = 1;
  IngestServer server(DefaultSource(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  // A request that trickles in and then stalls mid-header holds buffered
  // input, so the read-stall deadline (not the idle one) applies.
  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Slow: ");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(PeerClosedWithin(fd, 10000));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(8));
  ::close(fd);

  // The reap is visible in the timeout counter.
  const int probe = ConnectTo(server.port());
  ASSERT_GE(probe, 0);
  SendAll(probe, GetRequest("/metrics"));
  HttpClientResponse metrics = ReadOne(probe, &buf);
  EXPECT_NE(
      metrics.body.find("\ndtdevolve_http_connection_timeouts_total 1\n"),
      std::string::npos)
      << metrics.body;
  ::close(probe);

  server.Shutdown();
  server.Wait();
}

TEST(HttpConformanceTest, IdleKeepAliveConnectionTimesOut) {
  ServerOptions options = EphemeralOptions();
  options.idle_timeout_seconds = 1;
  IngestServer server(DefaultSource(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, GetRequest("/healthz"));
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  // The connection is now idle (no buffered input): the idle deadline
  // closes it without a response.
  EXPECT_TRUE(PeerClosedWithin(fd, 10000));
  ::close(fd);

  server.Shutdown();
  server.Wait();
}

TEST(HttpConformanceTest, OversizedRequestLineAndHeadersAnswer431) {
  IngestServer server(DefaultSource(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  // A 20 KB request line blows the 16 KB header-block cap before the
  // blank line ever arrives; the server must answer early, not buffer on.
  int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "GET /" + std::string(20 * 1024, 'a') + " HTTP/1.1\r\n");
  HttpClientResponse oversized_line = ReadOne(fd, &buf);
  EXPECT_EQ(oversized_line.status, 431);
  EXPECT_TRUE(PeerClosedWithin(fd, 2000));
  ::close(fd);

  // Same cap via one huge header value in an otherwise-complete request.
  fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Big: " +
                  std::string(20 * 1024, 'b') + "\r\n\r\n");
  EXPECT_EQ(ReadOne(fd, &buf).status, 431);
  EXPECT_TRUE(PeerClosedWithin(fd, 2000));
  ::close(fd);

  // A malformed request line is a plain 400, then close.
  fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, "NONSENSE\r\n\r\n");
  EXPECT_EQ(ReadOne(fd, &buf).status, 400);
  EXPECT_TRUE(PeerClosedWithin(fd, 2000));
  ::close(fd);

  server.Shutdown();
  server.Wait();
}

TEST(HttpConformanceTest, LargeResponseSurvivesPartialWrites) {
  // A DTD big enough that its text cannot fit any socket buffer: the
  // server's send hits EAGAIN and must finish via writability events.
  std::string big_dtd = "<!ELEMENT big (";
  for (int i = 0; i < 2000; ++i) {
    if (i != 0) big_dtd += ", ";
    big_dtd += "field" + std::to_string(i);
  }
  big_dtd += ")>\n";
  for (int i = 0; i < 2000; ++i) {
    big_dtd += "<!ELEMENT field" + std::to_string(i) + " (#PCDATA)>\n";
  }

  IngestServer server(DefaultSource(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("big", big_dtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  // Reference copy over an unconstrained connection.
  const int plain = ConnectTo(server.port());
  ASSERT_GE(plain, 0);
  SendAll(plain, GetRequest("/dtds/big"));
  HttpClientResponse reference = ReadOne(plain, &buf);
  ASSERT_EQ(reference.status, 200);
  ASSERT_GT(reference.body.size(), 32u * 1024);
  ::close(plain);

  // Tiny receive buffer + a reader that doesn't drain for a while: the
  // server's first send can only flush a few KB, the rest must wait for
  // EPOLLOUT rounds. The bytes must still arrive complete and in order.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 1024;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
            0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  SendAll(fd, GetRequest("/dtds/big"));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  HttpClientResponse throttled = ReadOne(fd, &buf);
  EXPECT_EQ(throttled.status, 200);
  EXPECT_EQ(throttled.body, reference.body);

  // The connection survived the stall: it serves another request.
  SendAll(fd, GetRequest("/healthz"));
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  ::close(fd);

  server.Shutdown();
  server.Wait();
}

TEST(HttpConformanceTest, GracefulDrainDeliversInFlightKeepAliveResponse) {
  IngestServer server(DefaultSource(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  std::string buf;

  // Park a synchronous ingest on the worker queue; the keep-alive
  // connection is now waiting on an apply when the drain starts.
  server.PauseIngest();
  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  SendAll(fd, PostRequest("/ingest?wait=1", kConformingDoc));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  server.Shutdown();
  std::thread waiter([&] { server.Wait(); });

  // The drain must complete the in-flight request — respond 200, then
  // close — not abandon the connection with the response unsent.
  HttpClientResponse response = ReadOne(fd, &buf);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"classified\":true"), std::string::npos)
      << response.body;
  EXPECT_TRUE(PeerClosedWithin(fd, 5000));
  ::close(fd);

  waiter.join();
  EXPECT_EQ(server.source().documents_processed(), 1u);
}

TEST(HttpConformanceTest, ConnectionCapAnswers503AndResumesAfterClose) {
  ServerOptions options = EphemeralOptions();
  options.max_connections = 2;
  IngestServer server(DefaultSource(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // Fill both slots; a request on each proves the connection joined the
  // event loop (connect() alone only proves the kernel backlog).
  const int first = ConnectTo(server.port());
  const int second = ConnectTo(server.port());
  ASSERT_GE(first, 0);
  ASSERT_GE(second, 0);
  std::string buf_first;
  std::string buf_second;
  SendAll(first, GetRequest("/healthz"));
  SendAll(second, GetRequest("/healthz"));
  EXPECT_EQ(ReadOne(first, &buf_first).status, 200);
  EXPECT_EQ(ReadOne(second, &buf_second).status, 200);

  // Over the cap: the 503 arrives unsolicited (no request sent) and the
  // socket is closed — it never enters the loop.
  const int over = ConnectTo(server.port());
  ASSERT_GE(over, 0);
  std::string buf_over;
  HttpClientResponse rejected = ReadOne(over, &buf_over);
  EXPECT_EQ(rejected.status, 503);
  EXPECT_NE(rejected.FindHeader("retry-after"), nullptr);
  EXPECT_TRUE(PeerClosedWithin(over, 2000));
  ::close(over);

  // Established clients keep working at the cap.
  SendAll(first, GetRequest("/healthz"));
  EXPECT_EQ(ReadOne(first, &buf_first).status, 200);

  // Free a slot; accepting must resume (give the loop a few turns to
  // observe the close).
  ::close(second);
  int resumed_status = 0;
  for (int attempt = 0; attempt < 100 && resumed_status != 200; ++attempt) {
    const int fresh = ConnectTo(server.port());
    ASSERT_GE(fresh, 0);
    std::string buf_fresh;
    SendAll(fresh, GetRequest("/healthz"));
    timeval tv = {};
    tv.tv_sec = 2;
    ::setsockopt(fresh, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char probe[512];
    const ssize_t n = ::recv(fresh, probe, sizeof(probe), 0);
    if (n > 9) resumed_status = std::atoi(probe + 9);
    ::close(fresh);
    if (resumed_status != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(resumed_status, 200);

  ::close(first);
  server.Shutdown();
  server.Wait();
}

TEST(HttpConformanceTest, PipelineDepthCapAnswers503ForTheOverflowRequest) {
  ServerOptions options = EphemeralOptions();
  options.max_pipeline_depth = 2;
  IngestServer server(DefaultSource(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  std::string buf;

  // Four requests stuffed into one burst: two are served, the third
  // answers 503 + Retry-After and the connection closes after the
  // flush — the fourth is never parsed.
  SendAll(fd, GetRequest("/healthz") + GetRequest("/healthz") +
                  GetRequest("/healthz") + GetRequest("/healthz"));
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  EXPECT_EQ(ReadOne(fd, &buf).status, 200);
  HttpClientResponse overflow = ReadOne(fd, &buf);
  EXPECT_EQ(overflow.status, 503);
  EXPECT_NE(overflow.FindHeader("retry-after"), nullptr);
  EXPECT_TRUE(PeerClosedWithin(fd, 2000));
  ::close(fd);

  // A polite client on a fresh connection is unaffected.
  const int polite = ConnectTo(server.port());
  ASSERT_GE(polite, 0);
  std::string polite_buf;
  SendAll(polite, GetRequest("/healthz"));
  EXPECT_EQ(ReadOne(polite, &polite_buf).status, 200);
  ::close(polite);

  server.Shutdown();
  server.Wait();
}

}  // namespace
}  // namespace dtdevolve::server
