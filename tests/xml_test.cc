#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/text.h"
#include "xml/writer.h"

namespace dtdevolve::xml {
namespace {

// --- text utilities ---------------------------------------------------------

TEST(TextTest, NameValidation) {
  EXPECT_TRUE(IsValidName("a"));
  EXPECT_TRUE(IsValidName("abc-def.g"));
  EXPECT_TRUE(IsValidName("_x1"));
  EXPECT_TRUE(IsValidName("ns:tag"));
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("1a"));
  EXPECT_FALSE(IsValidName("-a"));
  EXPECT_FALSE(IsValidName("a b"));
}

TEST(TextTest, EscapeRoundTrip) {
  const std::string raw = "a<b>&\"c'";
  StatusOr<std::string> back = UnescapeText(EscapeText(raw));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(TextTest, UnescapePredefinedEntities) {
  StatusOr<std::string> out = UnescapeText("&lt;&gt;&amp;&quot;&apos;");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<>&\"'");
}

TEST(TextTest, UnescapeCharacterReferences) {
  StatusOr<std::string> decimal = UnescapeText("&#65;&#66;");
  ASSERT_TRUE(decimal.ok());
  EXPECT_EQ(*decimal, "AB");
  StatusOr<std::string> hex = UnescapeText("&#x41;");
  ASSERT_TRUE(hex.ok());
  EXPECT_EQ(*hex, "A");
}

TEST(TextTest, UnescapeErrors) {
  EXPECT_FALSE(UnescapeText("&bogus;").ok());
  EXPECT_FALSE(UnescapeText("&amp").ok());
  EXPECT_FALSE(UnescapeText("&#;").ok());
  EXPECT_FALSE(UnescapeText("&#xZZ;").ok());
}

// --- document tree ----------------------------------------------------------

TEST(DocumentTest, BuildAndQueryTree) {
  Element root("a");
  Element& b = root.AddElement("b");
  b.AddText("5");
  root.AddElement("c");
  root.AddElement("b");

  EXPECT_EQ(root.tag(), "a");
  EXPECT_EQ(root.ChildElements().size(), 3u);
  EXPECT_EQ(root.ChildTagSequence(),
            (std::vector<std::string>{"b", "c", "b"}));
  EXPECT_EQ(root.ChildTagSet(), (std::set<std::string>{"b", "c"}));
  EXPECT_EQ(root.SubtreeElementCount(), 4u);
  EXPECT_EQ(root.SubtreeHeight(), 2u);
  EXPECT_FALSE(root.HasTextContent());
  EXPECT_TRUE(b.HasTextContent());
  EXPECT_EQ(b.TextContent(), "5");
}

TEST(DocumentTest, CloneIsDeepAndEqual) {
  Element root("a");
  root.AddAttribute("id", "1");
  root.AddElement("b").AddText("x");
  std::unique_ptr<Element> copy = root.CloneElement();
  EXPECT_TRUE(StructurallyEqual(root, *copy));
  // Mutating the copy must not affect the original.
  copy->AddElement("c");
  EXPECT_FALSE(StructurallyEqual(root, *copy));
  EXPECT_EQ(root.ChildElements().size(), 1u);
}

TEST(DocumentTest, FindAttribute) {
  Element e("x");
  e.AddAttribute("k", "v");
  ASSERT_NE(e.FindAttribute("k"), nullptr);
  EXPECT_EQ(*e.FindAttribute("k"), "v");
  EXPECT_EQ(e.FindAttribute("missing"), nullptr);
}

// --- parser ------------------------------------------------------------------

TEST(ParserTest, ParsesSimpleDocument) {
  StatusOr<Document> doc = ParseDocument("<a><b>5</b><c>7</c></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root().tag(), "a");
  EXPECT_EQ(doc->root().ChildTagSequence(),
            (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(doc->root().ChildElements()[0]->TextContent(), "5");
}

TEST(ParserTest, ParsesAttributesAndSelfClosing) {
  StatusOr<Document> doc =
      ParseDocument(R"(<a x="1" y="two"><b/><c z='3'/></a>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc->root().FindAttribute("x"), "1");
  EXPECT_EQ(*doc->root().FindAttribute("y"), "two");
  EXPECT_EQ(doc->root().ChildElements().size(), 2u);
  EXPECT_EQ(*doc->root().ChildElements()[1]->FindAttribute("z"), "3");
}

TEST(ParserTest, SkipsPrologCommentsAndPis) {
  StatusOr<Document> doc = ParseDocument(
      "<?xml version=\"1.0\"?><!-- c --><a><?pi data?><!-- c2 --><b/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root().ChildElements().size(), 1u);
}

TEST(ParserTest, CapturesDoctypeInternalSubset) {
  StatusOr<Document> doc = ParseDocument(
      "<!DOCTYPE a [<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>]><a><b>x</b></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->doctype_name(), "a");
  EXPECT_NE(doc->internal_subset().find("<!ELEMENT a (b)>"),
            std::string::npos);
}

TEST(ParserTest, DoctypeWithExternalIdOnly) {
  StatusOr<Document> doc =
      ParseDocument(R"(<!DOCTYPE a SYSTEM "a.dtd"><a/>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->doctype_name(), "a");
  EXPECT_TRUE(doc->internal_subset().empty());
}

TEST(ParserTest, CdataBecomesText) {
  StatusOr<Document> doc = ParseDocument("<a><![CDATA[<raw>&]]></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root().TextContent(), "<raw>&");
}

TEST(ParserTest, DecodesEntitiesInTextAndAttributes) {
  StatusOr<Document> doc =
      ParseDocument(R"(<a k="&lt;v&gt;">x &amp; y</a>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc->root().FindAttribute("k"), "<v>");
  EXPECT_EQ(doc->root().TextContent(), "x & y");
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("<a>").ok());
  EXPECT_FALSE(ParseDocument("<a></b>").ok());
  EXPECT_FALSE(ParseDocument("<a></a><b></b>").ok());
  EXPECT_FALSE(ParseDocument("text only").ok());
  EXPECT_FALSE(ParseDocument("<a x=1></a>").ok());
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  StatusOr<Document> doc = ParseDocument("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status().ToString();
}

TEST(ParserTest, WhitespaceOnlyTextIsDropped) {
  StatusOr<Document> doc = ParseDocument("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().children().size(), 2u);
}

// --- writer ------------------------------------------------------------------

TEST(WriterTest, RoundTripThroughParser) {
  const char* input =
      R"(<a id="1"><b>5</b><c><d>x &amp; y</d></c><e/></a>)";
  StatusOr<Document> doc = ParseDocument(input);
  ASSERT_TRUE(doc.ok());
  WriteOptions compact;
  compact.indent = false;
  std::string out = WriteDocument(*doc, compact);
  StatusOr<Document> again = ParseDocument(out);
  ASSERT_TRUE(again.ok()) << out;
  EXPECT_TRUE(StructurallyEqual(doc->root(), again->root()));
}

TEST(WriterTest, EmitsDoctype) {
  Document doc;
  doc.set_doctype_name("a");
  doc.set_internal_subset("<!ELEMENT a EMPTY>");
  doc.set_root(std::make_unique<Element>("a"));
  WriteOptions compact;
  compact.indent = false;
  EXPECT_EQ(WriteDocument(doc, compact),
            "<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>");
}

TEST(WriterTest, IndentedOutputIsReadable) {
  StatusOr<Document> doc = ParseDocument("<a><b><c>x</c></b></a>");
  ASSERT_TRUE(doc.ok());
  std::string out = WriteElement(doc->root());
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
  EXPECT_NE(out.find("\n    <c>x</c>"), std::string::npos);
}

// --- path queries ------------------------------------------------------------

TEST(PathTest, SelectsByPath) {
  StatusOr<Document> doc = ParseDocument(
      "<lib><book><title>t1</title></book><book><title>t2</title></book>"
      "<journal><title>t3</title></journal></lib>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(SelectPath(doc->root(), "lib/book/title").size(), 2u);
  EXPECT_EQ(SelectPath(doc->root(), "lib/*/title").size(), 3u);
  EXPECT_EQ(SelectPath(doc->root(), "nope").size(), 0u);
  const Element* first = SelectFirst(doc->root(), "lib/journal/title");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->TextContent(), "t3");
}

TEST(PathTest, AllElementsAndByTag) {
  StatusOr<Document> doc =
      ParseDocument("<a><b/><c><b/></c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(AllElements(doc->root()).size(), 4u);
  EXPECT_EQ(ElementsByTag(doc->root(), "b").size(), 2u);
}

}  // namespace
}  // namespace dtdevolve::xml
