// Cross-cutting round-trip and language properties over random inputs:
//  * document → write → parse → structurally equal (writer/parser duality);
//  * DTD → write → parse → identical serialization;
//  * random content model: strings sampled from the model are accepted by
//    its automaton; the model's language equals itself and its Simplify;
//    LanguageSubset is consistent with LanguageEquivalent;
//  * extended DTD → serialize → deserialize → identical serialization
//    after random recording.

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "dtd/glushkov.h"
#include "dtd/rewrite.h"
#include "evolve/persist.h"
#include "evolve/recorder.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "workload/rng.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace dtdevolve {
namespace {

/// Random content model over a small alphabet (same shape as
/// property_test's, duplicated deliberately: test files stay
/// self-contained).
dtd::ContentModel::Ptr RandomModel(workload::Rng& rng, int depth) {
  using CM = dtd::ContentModel;
  static const char* kNames[] = {"a", "b", "c"};
  if (depth <= 0 || rng.Chance(0.35)) {
    return CM::Name(kNames[rng.Uniform(3)]);
  }
  switch (rng.Uniform(5)) {
    case 0:
    case 1: {
      std::vector<CM::Ptr> children;
      uint32_t n = 2 + rng.Uniform(2);
      for (uint32_t i = 0; i < n; ++i) {
        children.push_back(RandomModel(rng, depth - 1));
      }
      return rng.Chance(0.5) ? CM::Seq(std::move(children))
                             : CM::Choice(std::move(children));
    }
    case 2:
      return CM::Opt(RandomModel(rng, depth - 1));
    case 3:
      return CM::Star(RandomModel(rng, depth - 1));
    default:
      return CM::Plus(RandomModel(rng, depth - 1));
  }
}

/// Samples a random word from the model's language.
void SampleWord(const dtd::ContentModel& model, workload::Rng& rng,
                std::vector<std::string>& out) {
  using Kind = dtd::ContentModel::Kind;
  switch (model.kind()) {
    case Kind::kName:
      out.push_back(model.name());
      return;
    case Kind::kPcdata:
    case Kind::kAny:
    case Kind::kEmpty:
      return;
    case Kind::kAnd:
      for (const auto& child : model.children()) {
        SampleWord(*child, rng, out);
      }
      return;
    case Kind::kOr:
      SampleWord(*model.children()[rng.Uniform(
                     static_cast<uint32_t>(model.children().size()))],
                 rng, out);
      return;
    case Kind::kOptional:
      if (rng.Chance(0.5)) SampleWord(model.child(), rng, out);
      return;
    case Kind::kStar: {
      uint32_t n = rng.Uniform(3);
      for (uint32_t i = 0; i < n; ++i) SampleWord(model.child(), rng, out);
      return;
    }
    case Kind::kPlus: {
      uint32_t n = 1 + rng.Uniform(2);
      for (uint32_t i = 0; i < n; ++i) SampleWord(model.child(), rng, out);
      return;
    }
  }
}

class RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTrip, DocumentWriteParse) {
  workload::Rng rng(GetParam());
  auto dtd = dtd::ParseDtd(R"(
    <!ELEMENT r (s*, (t | u)+)>
    <!ELEMENT s (#PCDATA)>
    <!ELEMENT t (s?, v*)>
    <!ELEMENT u EMPTY>
    <!ELEMENT v (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok());
  workload::DocumentGenerator generator(*dtd, workload::GeneratorOptions(),
                                        GetParam());
  workload::MutationOptions mutation;
  mutation.insert_probability = 0.3;
  mutation.duplicate_probability = 0.3;
  workload::Mutator mutator(mutation, GetParam() + 5);
  for (int i = 0; i < 20; ++i) {
    xml::Document doc = generator.Generate();
    mutator.Mutate(doc);
    for (bool indent : {true, false}) {
      xml::WriteOptions options;
      options.indent = indent;
      options.declaration = (i % 2) == 0;
      std::string text = xml::WriteDocument(doc, options);
      StatusOr<xml::Document> again = xml::ParseDocument(text);
      ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
      ASSERT_TRUE(xml::StructurallyEqual(doc.root(), again->root()))
          << text;
    }
  }
}

TEST_P(RoundTrip, DtdWriteParse) {
  workload::Rng rng(GetParam() * 17 + 3);
  for (int i = 0; i < 10; ++i) {
    dtd::Dtd dtd;
    dtd.DeclareElement("root", RandomModel(rng, 3));
    for (const char* name : {"a", "b", "c"}) {
      dtd.DeclareElement(name, dtd::ContentModel::Pcdata());
    }
    std::string written = dtd::WriteDtd(dtd);
    StatusOr<dtd::Dtd> again = dtd::ParseDtd(written);
    ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << written;
    ASSERT_EQ(dtd::WriteDtd(*again), written);
    ASSERT_TRUE(dtd.FindElement("root")->content->Equals(
        *again->FindElement("root")->content));
  }
}

TEST_P(RoundTrip, SampledWordsAreAccepted) {
  workload::Rng rng(GetParam() * 29 + 7);
  for (int i = 0; i < 15; ++i) {
    dtd::ContentModel::Ptr model = RandomModel(rng, 3);
    dtd::Automaton automaton = dtd::Automaton::Build(*model);
    for (int w = 0; w < 10; ++w) {
      std::vector<std::string> word;
      SampleWord(*model, rng, word);
      ASSERT_TRUE(automaton.Accepts(word)) << model->ToString();
    }
  }
}

TEST_P(RoundTrip, LanguageRelationsAreConsistent) {
  workload::Rng rng(GetParam() * 41 + 11);
  for (int i = 0; i < 8; ++i) {
    dtd::ContentModel::Ptr a = RandomModel(rng, 2);
    dtd::ContentModel::Ptr b = RandomModel(rng, 2);
    // Equivalence is reflexive and equals two-way subset.
    ASSERT_TRUE(dtd::LanguageEquivalent(*a, *a));
    bool equal = dtd::LanguageEquivalent(*a, *b);
    bool ab = dtd::LanguageSubset(*a, *b);
    bool ba = dtd::LanguageSubset(*b, *a);
    ASSERT_EQ(equal, ab && ba)
        << a->ToString() << " vs " << b->ToString();
    // Simplify preserves subset relations against a third model.
    dtd::ContentModel::Ptr simplified = dtd::Simplify(a->Clone());
    ASSERT_EQ(dtd::LanguageSubset(*a, *b),
              dtd::LanguageSubset(*simplified, *b));
  }
}

TEST_P(RoundTrip, PersistAfterRandomRecording) {
  auto dtd = dtd::ParseDtd(R"(
    <!ELEMENT r (s*, (t | u)+)>
    <!ELEMENT s (#PCDATA)>
    <!ELEMENT t (s?, v*)>
    <!ELEMENT u EMPTY>
    <!ELEMENT v (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok());
  evolve::ExtendedDtd ext(std::move(*dtd));
  evolve::Recorder recorder(ext);
  workload::DocumentGenerator generator(ext.dtd(),
                                        workload::GeneratorOptions(),
                                        GetParam() + 100);
  workload::MutationOptions mutation;
  mutation.insert_probability = 0.4;
  mutation.drop_probability = 0.3;
  workload::Mutator mutator(mutation, GetParam() + 101);
  for (int i = 0; i < 15; ++i) {
    xml::Document doc = generator.Generate();
    mutator.Mutate(doc);
    recorder.RecordDocument(doc);
  }
  std::string once = evolve::SerializeExtendedDtd(ext);
  StatusOr<evolve::ExtendedDtd> restored =
      evolve::DeserializeExtendedDtd(once);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(evolve::SerializeExtendedDtd(*restored), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace dtdevolve
