#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "similarity/similarity.h"
#include "xml/parser.h"

namespace dtdevolve::similarity {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

// Figure 2 of the paper: document <a><b>5</b><c>7</c></a> against
// DTD a:(b,c), b:(#PCDATA), c:(d), d:(#PCDATA).
const char* kFig2Dtd = R"(
  <!ELEMENT a (b, c)>
  <!ELEMENT b (#PCDATA)>
  <!ELEMENT c (d)>
  <!ELEMENT d (#PCDATA)>
)";
const char* kFig2Doc = "<a><b>5</b><c>7</c></a>";

TEST(SimilarityTest, ValidDocumentHasFullGlobalSimilarity) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc("<a><b>5</b><c><d>7</d></c></a>");
  EXPECT_DOUBLE_EQ(evaluator.DocumentSimilarity(doc), 1.0);
}

TEST(SimilarityTest, Example1LocalFullGlobalNotFull) {
  // The paper's Example 1: local similarity of `a` is full (subelements
  // b, c match the declaration), but global similarity is not, because
  // `c` has data content where the DTD requires a `d` element.
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc(kFig2Doc);

  Triple local = evaluator.LocalTriple(doc.root(), "a");
  EXPECT_TRUE(IsFull(local)) << local.ToString();
  EXPECT_DOUBLE_EQ(evaluator.LocalSimilarity(doc.root(), "a"), 1.0);

  double global = evaluator.GlobalSimilarity(doc.root(), "a");
  EXPECT_LT(global, 1.0);
  EXPECT_GT(global, 0.0);
  EXPECT_LT(evaluator.DocumentSimilarity(doc), 1.0);
}

TEST(SimilarityTest, Example1ElementCNotLocallySimilar) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc(kFig2Doc);
  const xml::Element* c = doc.root().ChildElements()[1];
  // c contains #PCDATA where the declaration requires d: plus 1, minus 1.
  Triple local = evaluator.LocalTriple(*c, "c");
  EXPECT_EQ(local.plus, 1.0);
  EXPECT_EQ(local.minus, 1.0);
  EXPECT_EQ(local.common, 0.0);
  EXPECT_DOUBLE_EQ(evaluator.LocalSimilarity(*c, "c"), 0.0);
}

TEST(SimilarityTest, MissingElementLowersSimilarity) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc("<a><b>5</b></a>");
  Triple triple = evaluator.GlobalTriple(doc.root(), "a");
  EXPECT_EQ(triple.minus, 1.0);
  EXPECT_EQ(triple.common, 1.0);
  EXPECT_DOUBLE_EQ(evaluator.DocumentSimilarity(doc), 0.5);
}

TEST(SimilarityTest, ExtraElementLowersSimilarity) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc("<a><b>5</b><c><d>x</d></c><z/></a>");
  Triple triple = evaluator.GlobalTriple(doc.root(), "a");
  EXPECT_EQ(triple.plus, 1.0);
  EXPECT_EQ(triple.common, 2.0);
  EXPECT_DOUBLE_EQ(evaluator.DocumentSimilarity(doc), 2.0 / 3.0);
}

TEST(SimilarityTest, WrongRootGivesZero) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  EXPECT_EQ(evaluator.DocumentSimilarity(MakeDoc("<z><b>5</b></z>")), 0.0);
}

TEST(SimilarityTest, DeepDeviationDiscountsProportionally) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT r (s, t)>
    <!ELEMENT s (u)>
    <!ELEMENT t (#PCDATA)>
    <!ELEMENT u (#PCDATA)>
  )");
  SimilarityEvaluator evaluator(dtd);
  // Perfect document: similarity 1.
  EXPECT_DOUBLE_EQ(evaluator.DocumentSimilarity(
                       MakeDoc("<r><s><u>x</u></s><t>y</t></r>")),
                   1.0);
  // A deviation inside s (u missing) hurts, but less than s missing.
  double deep = evaluator.DocumentSimilarity(MakeDoc("<r><s/><t>y</t></r>"));
  double shallow = evaluator.DocumentSimilarity(MakeDoc("<r><t>y</t></r>"));
  EXPECT_LT(deep, 1.0);
  EXPECT_LT(shallow, deep);
}

TEST(SimilarityTest, GlobalSimilarityMonotoneInDamage) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT mail (from, to, subject, body)>
    <!ELEMENT from (#PCDATA)>
    <!ELEMENT to (#PCDATA)>
    <!ELEMENT subject (#PCDATA)>
    <!ELEMENT body (#PCDATA)>
  )");
  SimilarityEvaluator evaluator(dtd);
  double s0 = evaluator.DocumentSimilarity(MakeDoc(
      "<mail><from>a</from><to>b</to><subject>s</subject><body>t</body>"
      "</mail>"));
  double s1 = evaluator.DocumentSimilarity(MakeDoc(
      "<mail><from>a</from><to>b</to><body>t</body></mail>"));
  double s2 = evaluator.DocumentSimilarity(
      MakeDoc("<mail><from>a</from></mail>"));
  EXPECT_DOUBLE_EQ(s0, 1.0);
  EXPECT_GT(s1, s2);
  EXPECT_GT(s0, s1);
}

TEST(SimilarityTest, EvaluateElementsReportsWholeTree) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc(kFig2Doc);
  std::vector<ElementReport> reports = evaluator.EvaluateElements(doc.root());
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].element->tag(), "a");
  EXPECT_TRUE(reports[0].declared);
  EXPECT_DOUBLE_EQ(reports[0].local_similarity, 1.0);
  EXPECT_LT(reports[0].global_similarity, 1.0);
  EXPECT_EQ(reports[1].element->tag(), "b");
  EXPECT_DOUBLE_EQ(reports[1].global_similarity, 1.0);
  EXPECT_EQ(reports[2].element->tag(), "c");
  EXPECT_DOUBLE_EQ(reports[2].local_similarity, 0.0);
}

TEST(SimilarityTest, UndeclaredElementsInReports) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc("<a><b>5</b><zz/></a>");
  std::vector<ElementReport> reports = evaluator.EvaluateElements(doc.root());
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_FALSE(reports[2].declared);
}

TEST(SimilarityTest, WeightsShiftTheScore) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  SimilarityOptions lenient;
  lenient.weights.plus_weight = 0.1;  // extra elements barely matter
  SimilarityEvaluator strict(dtd);
  SimilarityEvaluator evaluator(dtd, lenient);
  xml::Document doc = MakeDoc("<a><b>5</b><c><d>x</d></c><z/></a>");
  EXPECT_GT(evaluator.DocumentSimilarity(doc),
            strict.DocumentSimilarity(doc));
}

TEST(SimilarityTest, ThesaurusEnablesTagSimilarity) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT book (title, writer)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT writer (#PCDATA)>
  )");
  Thesaurus thesaurus;
  thesaurus.AddSynonym("writer", "author", 0.9);
  SimilarityOptions options;
  options.thesaurus = &thesaurus;
  SimilarityEvaluator with(dtd, options);
  SimilarityEvaluator without(dtd);
  xml::Document doc =
      MakeDoc("<book><title>t</title><author>a</author></book>");
  EXPECT_GT(with.DocumentSimilarity(doc), without.DocumentSimilarity(doc));
  EXPECT_LT(with.DocumentSimilarity(doc), 1.0);
}

TEST(ThesaurusTest, ScoreSemantics) {
  Thesaurus thesaurus;
  EXPECT_EQ(thesaurus.Score("a", "a"), 1.0);
  EXPECT_EQ(thesaurus.Score("a", "b"), 0.0);
  thesaurus.AddSynonym("a", "b", 0.7);
  EXPECT_EQ(thesaurus.Score("a", "b"), 0.7);
  EXPECT_EQ(thesaurus.Score("b", "a"), 0.7);  // symmetric
  thesaurus.AddSynonym("a", "b", 0.4);        // overwrite
  EXPECT_EQ(thesaurus.Score("a", "b"), 0.4);
  thesaurus.AddSynonym("x", "y", 7.0);  // clamped
  EXPECT_EQ(thesaurus.Score("x", "y"), 1.0);
}

/// Property over the weight space: for any (plus, minus) weighting, a
/// valid document scores 1, a damaged one scores strictly less, and
/// raising the penalty of the deviation kind present lowers the score.
class WeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(WeightSweep, WeightsActDirectionally) {
  dtd::Dtd dtd = MakeDtd(kFig2Dtd);
  const double w = GetParam();

  SimilarityOptions penalize_plus;
  penalize_plus.weights.plus_weight = w;
  SimilarityOptions penalize_minus;
  penalize_minus.weights.minus_weight = w;

  SimilarityEvaluator plus_heavy(dtd, penalize_plus);
  SimilarityEvaluator minus_heavy(dtd, penalize_minus);
  SimilarityEvaluator neutral(dtd);

  xml::Document valid = MakeDoc("<a><b>5</b><c><d>7</d></c></a>");
  EXPECT_DOUBLE_EQ(plus_heavy.DocumentSimilarity(valid), 1.0);
  EXPECT_DOUBLE_EQ(minus_heavy.DocumentSimilarity(valid), 1.0);

  xml::Document with_extra = MakeDoc("<a><b>5</b><c><d>7</d></c><z/></a>");
  xml::Document with_missing = MakeDoc("<a><b>5</b></a>");
  if (w > 1.0) {
    EXPECT_LT(plus_heavy.DocumentSimilarity(with_extra),
              neutral.DocumentSimilarity(with_extra));
    EXPECT_LT(minus_heavy.DocumentSimilarity(with_missing),
              neutral.DocumentSimilarity(with_missing));
  } else if (w < 1.0) {
    EXPECT_GT(plus_heavy.DocumentSimilarity(with_extra),
              neutral.DocumentSimilarity(with_extra));
    EXPECT_GT(minus_heavy.DocumentSimilarity(with_missing),
              neutral.DocumentSimilarity(with_missing));
  }
  // Bounds hold everywhere.
  for (const SimilarityEvaluator* evaluator :
       {&plus_heavy, &minus_heavy, &neutral}) {
    double extra = evaluator->DocumentSimilarity(with_extra);
    double missing = evaluator->DocumentSimilarity(with_missing);
    EXPECT_GT(extra, 0.0);
    EXPECT_LT(extra, 1.0);
    EXPECT_GT(missing, 0.0);
    EXPECT_LT(missing, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, WeightSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

TEST(SimilarityTest, AnyDeclarationGivesFullCredit) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT box ANY><!ELEMENT x (#PCDATA)>");
  SimilarityEvaluator evaluator(dtd);
  xml::Document doc = MakeDoc("<box><x>1</x><x>2</x>text</box>");
  EXPECT_DOUBLE_EQ(evaluator.DocumentSimilarity(doc), 1.0);
}

}  // namespace
}  // namespace dtdevolve::similarity
