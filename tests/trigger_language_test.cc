#include <gtest/gtest.h>

#include "core/source.h"
#include "core/trigger_language.h"

namespace dtdevolve::core {
namespace {

TriggerRule MustParse(const char* text) {
  StatusOr<TriggerRule> rule = TriggerRule::Parse(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return std::move(*rule);
}

TEST(TriggerRuleParseTest, BasicRule) {
  TriggerRule rule = MustParse("ON mail WHEN divergence > 0.25 EVOLVE");
  EXPECT_EQ(rule.target(), "mail");
  EXPECT_TRUE(rule.AppliesTo("mail"));
  EXPECT_FALSE(rule.AppliesTo("news"));
  EXPECT_EQ(rule.ToString(), "ON mail WHEN divergence > 0.25 EVOLVE");
}

TEST(TriggerRuleParseTest, WildcardAndWith) {
  TriggerRule rule = MustParse(
      "ON * WHEN divergence >= 0.3 AND documents >= 50 "
      "EVOLVE WITH psi = 0.05, min_support = 0.2, enable_or = 0");
  EXPECT_TRUE(rule.AppliesTo("anything"));
  evolve::EvolutionOptions base;
  evolve::EvolutionOptions overlaid = rule.OptionsOver(base);
  EXPECT_DOUBLE_EQ(overlaid.psi, 0.05);
  EXPECT_DOUBLE_EQ(overlaid.min_support, 0.2);
  EXPECT_FALSE(overlaid.enable_or_policies);
  EXPECT_EQ(base.psi, 0.1);  // base untouched
}

TEST(TriggerRuleParseTest, RoundTripsThroughToString) {
  const char* rules[] = {
      "ON mail WHEN divergence > 0.25 EVOLVE",
      "ON * WHEN documents >= 100 EVOLVE WITH psi = 0.2",
      "ON a WHEN invalid_fraction != 0 AND documents > 5 EVOLVE",
  };
  for (const char* text : rules) {
    TriggerRule rule = MustParse(text);
    TriggerRule again = MustParse(rule.ToString().c_str());
    EXPECT_EQ(rule.ToString(), again.ToString()) << text;
  }
}

TEST(TriggerRuleParseTest, Errors) {
  EXPECT_FALSE(TriggerRule::Parse("").ok());
  EXPECT_FALSE(TriggerRule::Parse("WHEN divergence > 1 EVOLVE").ok());
  EXPECT_FALSE(TriggerRule::Parse("ON x EVOLVE").ok());
  EXPECT_FALSE(TriggerRule::Parse("ON x WHEN bogus > 1 EVOLVE").ok());
  EXPECT_FALSE(TriggerRule::Parse("ON x WHEN divergence >> 1 EVOLVE").ok());
  EXPECT_FALSE(TriggerRule::Parse("ON x WHEN divergence > 1").ok());
  EXPECT_FALSE(
      TriggerRule::Parse("ON x WHEN divergence > 1 EVOLVE WITH nope = 2")
          .ok());
  EXPECT_FALSE(
      TriggerRule::Parse("ON x WHEN divergence > 1 EVOLVE garbage").ok());
}

TEST(TriggerRuleEvaluateTest, Comparisons) {
  TriggerMetrics metrics;
  metrics.divergence = 0.4;
  metrics.documents = 10;
  metrics.invalid_fraction = 0.25;

  EXPECT_TRUE(MustParse("ON * WHEN divergence > 0.3 EVOLVE").Evaluate(metrics));
  EXPECT_FALSE(
      MustParse("ON * WHEN divergence > 0.5 EVOLVE").Evaluate(metrics));
  EXPECT_TRUE(
      MustParse("ON * WHEN documents >= 10 EVOLVE").Evaluate(metrics));
  EXPECT_TRUE(
      MustParse("ON * WHEN invalid_fraction == 0.25 EVOLVE").Evaluate(metrics));
  EXPECT_TRUE(
      MustParse("ON * WHEN invalid_fraction != 0.3 EVOLVE").Evaluate(metrics));
}

TEST(TriggerRuleEvaluateTest, BooleanStructure) {
  TriggerMetrics metrics;
  metrics.divergence = 0.4;
  metrics.documents = 10;

  // AND binds tighter than OR.
  EXPECT_TRUE(MustParse("ON * WHEN documents > 100 AND divergence > 0.1 "
                        "OR divergence > 0.3 EVOLVE")
                  .Evaluate(metrics));
  EXPECT_FALSE(MustParse("ON * WHEN documents > 100 AND (divergence > 0.1 "
                         "OR divergence > 0.3) EVOLVE")
                   .Evaluate(metrics));
  EXPECT_TRUE(MustParse("ON * WHEN divergence > 0.3 AND documents >= 10 "
                        "EVOLVE")
                  .Evaluate(metrics));
}

TEST(ParseTriggerRulesTest, MultiLineWithComments) {
  StatusOr<std::vector<TriggerRule>> rules = ParseTriggerRules(R"(
    # high-drift fast path
    ON mail WHEN divergence > 0.5 EVOLVE WITH psi = 0.02

    ON * WHEN documents >= 200 AND divergence > 0.1 EVOLVE
  )");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].target(), "mail");
  EXPECT_EQ((*rules)[1].target(), "*");
}

TEST(ParseTriggerRulesTest, ErrorNamesTheRule) {
  StatusOr<std::vector<TriggerRule>> rules =
      ParseTriggerRules("ON x WHEN nope > 1 EVOLVE");
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("nope"), std::string::npos);
}

// --- Integration with XmlSource ----------------------------------------------

const char* kMailDtd = R"(
  <!ELEMENT mail (from, to, body)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

TEST(SourceTriggerTest, RuleFiresEvolution) {
  SourceOptions options;
  options.sigma = 0.3;
  options.tau = 10.0;  // the plain check would never fire
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(source
                  .AddTriggerRule("ON mail WHEN divergence > 0.1 AND "
                                  "documents >= 5 EVOLVE WITH psi = 0.05")
                  .ok());
  EXPECT_EQ(source.trigger_rules().size(), 1u);

  bool evolved = false;
  for (int i = 0; i < 8 && !evolved; ++i) {
    auto outcome = source.ProcessText(
        "<mail><from>a</from><to>b</to><cc>c</cc><body>x</body></mail>");
    ASSERT_TRUE(outcome.ok());
    evolved = outcome->evolved;
  }
  EXPECT_TRUE(evolved);
  EXPECT_TRUE(source.FindDtd("mail")->HasElement("cc"));
}

TEST(SourceTriggerTest, NonMatchingTargetNeverFires) {
  SourceOptions options;
  options.sigma = 0.3;
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(
      source.AddTriggerRule("ON other WHEN divergence > 0 EVOLVE").ok());
  for (int i = 0; i < 30; ++i) {
    auto outcome = source.ProcessText(
        "<mail><from>a</from><to>b</to><cc>c</cc><body>x</body></mail>");
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->evolved);
  }
  EXPECT_EQ(source.evolutions_performed(), 0u);
}

TEST(SourceTriggerTest, MetricsSnapshot) {
  SourceOptions options;
  options.sigma = 0.3;
  options.auto_evolve = false;
  XmlSource source(options);
  ASSERT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(source
                  .ProcessText("<mail><from>a</from><to>b</to>"
                               "<cc>c</cc><body>x</body></mail>")
                  .ok());
  TriggerMetrics metrics = source.MetricsFor("mail");
  EXPECT_EQ(metrics.documents, 1u);
  EXPECT_GT(metrics.divergence, 0.0);
  EXPECT_EQ(metrics.total_elements, 5u);
  EXPECT_EQ(metrics.invalid_elements, 2u);  // mail content + undeclared cc
  EXPECT_DOUBLE_EQ(metrics.invalid_fraction, 0.4);
  // Unknown DTD gives zeros.
  EXPECT_EQ(source.MetricsFor("nope").documents, 0u);
}

TEST(SourceTriggerTest, BadRuleRejected) {
  XmlSource source;
  EXPECT_FALSE(source.AddTriggerRule("EVOLVE NOW").ok());
  EXPECT_TRUE(source.trigger_rules().empty());
}

}  // namespace
}  // namespace dtdevolve::core
