#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "evolve/restriction.h"
#include "evolve/windows.h"

namespace dtdevolve::evolve {
namespace {

/// Builds stats where `label` appeared in `present` of `total` valid
/// instances and was repeated in `repeated` of them.
ElementStats StatsWith(const std::string& label, uint64_t total,
                       uint64_t present, uint64_t repeated) {
  ElementStats stats;
  for (uint64_t i = 0; i < total; ++i) {
    std::vector<std::string> tags;
    if (i < present) {
      tags.push_back(label);
      if (i < repeated) tags.push_back(label);
    }
    stats.RecordInstance(tags, /*locally_valid=*/true, false);
  }
  return stats;
}

std::string Restrict(const char* model_text, const ElementStats& stats,
                     bool* changed = nullptr) {
  auto model = dtd::ParseContentModel(model_text);
  EXPECT_TRUE(model.ok());
  RestrictionResult result = RestrictOperators(std::move(*model), stats);
  if (changed != nullptr) *changed = result.changed;
  return result.model->ToString();
}

TEST(RestrictionTest, StarToPlainWhenAlwaysOnce) {
  ElementStats stats = StatsWith("b", 10, 10, 0);
  bool changed = false;
  EXPECT_EQ(Restrict("(b*)", stats, &changed), "(b)");
  EXPECT_TRUE(changed);
}

TEST(RestrictionTest, StarToPlusWhenAlwaysPresentRepeated) {
  // The paper's own example: every `a` contained at least one `b` — the
  // `*` operator is restricted to `+` (§4.1).
  ElementStats stats = StatsWith("b", 10, 10, 4);
  EXPECT_EQ(Restrict("(b*)", stats), "(b+)");
}

TEST(RestrictionTest, StarToOptionalWhenNeverRepeated) {
  ElementStats stats = StatsWith("b", 10, 6, 0);
  EXPECT_EQ(Restrict("(b*)", stats), "(b?)");
}

TEST(RestrictionTest, PlusToPlainWhenNeverRepeated) {
  ElementStats stats = StatsWith("b", 10, 10, 0);
  EXPECT_EQ(Restrict("(b+)", stats), "(b)");
}

TEST(RestrictionTest, OptionalToPlainWhenAlwaysPresent) {
  ElementStats stats = StatsWith("b", 10, 10, 0);
  EXPECT_EQ(Restrict("(b?)", stats), "(b)");
}

TEST(RestrictionTest, NoEvidenceNoChange) {
  ElementStats stats;  // nothing recorded
  bool changed = true;
  EXPECT_EQ(Restrict("(b*)", stats, &changed), "(b*)");
  EXPECT_FALSE(changed);

  // Label never seen in any valid instance: also untouched.
  ElementStats absent = StatsWith("b", 10, 0, 0);
  EXPECT_EQ(Restrict("(b*)", absent, &changed), "(b*)");
  EXPECT_FALSE(changed);
}

TEST(RestrictionTest, SometimesAbsentStaysLoose) {
  ElementStats stats = StatsWith("b", 10, 6, 3);  // absent + repeated
  bool changed = true;
  EXPECT_EQ(Restrict("(b*)", stats, &changed), "(b*)");
  EXPECT_FALSE(changed);
}

TEST(RestrictionTest, RestrictsInsideSequences) {
  ElementStats stats;
  for (int i = 0; i < 5; ++i) {
    stats.RecordInstance({"a", "b"}, true, false);
  }
  EXPECT_EQ(Restrict("(a?, b*)", stats), "(a,b)");
}

TEST(RestrictionTest, OrAlternativesAreProtected) {
  // Half the instances chose a, half b — neither is always present, so
  // nothing under the OR is restricted.
  ElementStats stats;
  for (int i = 0; i < 5; ++i) stats.RecordInstance({"a"}, true, false);
  for (int i = 0; i < 5; ++i) stats.RecordInstance({"b"}, true, false);
  bool changed = true;
  EXPECT_EQ(Restrict("((a?)|(b?))", stats, &changed), "(a?|b?)");
  EXPECT_FALSE(changed);
}

TEST(RestrictionTest, OnlyUnaryOverNamesAreTouched) {
  ElementStats stats = StatsWith("b", 10, 10, 0);
  bool changed = true;
  // `(b,c)*` is a group operator — out of scope for restriction.
  EXPECT_EQ(Restrict("((b,c)*)", stats, &changed), "(b,c)*");
  EXPECT_FALSE(changed);
}

TEST(WindowTest, Boundaries) {
  EXPECT_EQ(ClassifyWindow(0.0, 0.1), Window::kOld);
  EXPECT_EQ(ClassifyWindow(0.1, 0.1), Window::kOld);
  EXPECT_EQ(ClassifyWindow(0.100001, 0.1), Window::kMisc);
  EXPECT_EQ(ClassifyWindow(0.5, 0.1), Window::kMisc);
  EXPECT_EQ(ClassifyWindow(0.899999, 0.1), Window::kMisc);
  EXPECT_EQ(ClassifyWindow(0.9, 0.1), Window::kNew);
  EXPECT_EQ(ClassifyWindow(1.0, 0.1), Window::kNew);
}

TEST(WindowTest, PsiHalfLeavesNoMiscWindow) {
  EXPECT_EQ(ClassifyWindow(0.49, 0.5), Window::kOld);
  EXPECT_EQ(ClassifyWindow(0.5, 0.5), Window::kOld);
  EXPECT_EQ(ClassifyWindow(0.51, 0.5), Window::kNew);
}

TEST(WindowTest, PsiClampedAndNames) {
  EXPECT_EQ(ClassifyWindow(0.2, 2.0), ClassifyWindow(0.2, 0.5));
  EXPECT_EQ(WindowName(Window::kOld), "old");
  EXPECT_EQ(WindowName(Window::kMisc), "misc");
  EXPECT_EQ(WindowName(Window::kNew), "new");
}

}  // namespace
}  // namespace dtdevolve::evolve
