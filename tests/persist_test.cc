#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "evolve/evolver.h"
#include "evolve/persist.h"
#include "evolve/recorder.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "xml/parser.h"

namespace dtdevolve::evolve {
namespace {

ExtendedDtd MakeExtended(const char* dtd_text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return ExtendedDtd(std::move(*dtd));
}

const char* kDtd = R"(
  <!ELEMENT a (b, c)>
  <!ELEMENT b (#PCDATA)>
  <!ELEMENT c (#PCDATA)>
)";

TEST(PersistTest, EmptyRoundTrip) {
  ExtendedDtd ext = MakeExtended(kDtd);
  std::string data = SerializeExtendedDtd(ext);
  StatusOr<ExtendedDtd> restored = DeserializeExtendedDtd(data);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(dtd::WriteDtd(restored->dtd()), dtd::WriteDtd(ext.dtd()));
  EXPECT_EQ(restored->documents_recorded(), 0u);
  EXPECT_TRUE(restored->all_stats().empty());
}

TEST(PersistTest, RoundTripPreservesEverything) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  auto record = [&](const char* text, int times) {
    for (int i = 0; i < times; ++i) {
      StatusOr<xml::Document> doc = xml::ParseDocument(text);
      ASSERT_TRUE(doc.ok());
      recorder.RecordDocument(*doc);
    }
  };
  record("<a><b>1</b><c>2</c></a>", 5);
  record("<a><b>1</b><c>2</c><b>3</b><c>4</c><d><e>x</e></d></a>", 7);

  std::string data = SerializeExtendedDtd(ext);
  StatusOr<ExtendedDtd> restored = DeserializeExtendedDtd(data);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->documents_recorded(), 12u);
  EXPECT_EQ(restored->total_elements_recorded(),
            ext.total_elements_recorded());
  EXPECT_DOUBLE_EQ(restored->MeanDivergence(), ext.MeanDivergence());

  const ElementStats* original = ext.FindStats("a");
  const ElementStats* copy = restored->FindStats("a");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->valid_instances(), original->valid_instances());
  EXPECT_EQ(copy->invalid_instances(), original->invalid_instances());
  EXPECT_EQ(copy->sequences(), original->sequences());
  EXPECT_EQ(copy->labels().size(), original->labels().size());
  EXPECT_EQ(copy->labels().at("b").invalid.count_histogram,
            original->labels().at("b").invalid.count_histogram);
  EXPECT_DOUBLE_EQ(copy->labels().at("b").invalid.position_sum,
                   original->labels().at("b").invalid.position_sum);
  // Groups round-trip.
  EXPECT_EQ(copy->groups().size(), original->groups().size());
  // The nested plus structure of d (containing e) round-trips.
  ASSERT_NE(copy->labels().at("d").plus_structure, nullptr);
  const ElementStats& d = *copy->labels().at("d").plus_structure;
  EXPECT_EQ(d.invalid_instances(), 7u);
  ASSERT_NE(d.labels().at("e").plus_structure, nullptr);
  EXPECT_EQ(d.labels().at("e").plus_structure->text_instances(), 7u);
}

TEST(PersistTest, SerializationIsDeterministic) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  StatusOr<xml::Document> doc =
      xml::ParseDocument("<a><b>1</b><z>2</z></a>");
  ASSERT_TRUE(doc.ok());
  recorder.RecordDocument(*doc);
  std::string once = SerializeExtendedDtd(ext);
  StatusOr<ExtendedDtd> restored = DeserializeExtendedDtd(once);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(SerializeExtendedDtd(*restored), once);
}

TEST(PersistTest, EvolutionAfterRestoreMatchesDirectEvolution) {
  // The load-bearing property: save/load must not change what evolution
  // produces.
  auto populate = [](ExtendedDtd& ext) {
    Recorder recorder(ext);
    workload::DocumentGenerator generator(
        ext.dtd(), workload::GeneratorOptions(), 404);
    workload::MutationOptions mutation;
    mutation.insert_probability = 0.5;
    mutation.duplicate_probability = 0.3;
    workload::Mutator mutator(mutation, 405);
    for (int i = 0; i < 40; ++i) {
      xml::Document doc = generator.Generate();
      mutator.Mutate(doc);
      recorder.RecordDocument(doc);
    }
  };

  ExtendedDtd direct = MakeExtended(kDtd);
  populate(direct);
  std::string snapshot = SerializeExtendedDtd(direct);
  EvolveDtd(direct, {});

  StatusOr<ExtendedDtd> restored = DeserializeExtendedDtd(snapshot);
  ASSERT_TRUE(restored.ok());
  EvolveDtd(*restored, {});

  EXPECT_EQ(dtd::WriteDtd(restored->dtd()), dtd::WriteDtd(direct.dtd()));
}

TEST(PersistTest, RejectsCorruptedInput) {
  EXPECT_FALSE(DeserializeExtendedDtd("").ok());
  EXPECT_FALSE(DeserializeExtendedDtd("bogus 1").ok());
  EXPECT_FALSE(DeserializeExtendedDtd("dtdevolve-stats 99").ok());

  ExtendedDtd ext = MakeExtended(kDtd);
  std::string data = SerializeExtendedDtd(ext);
  // Truncation anywhere must be detected, not crash.
  for (size_t cut : {data.size() / 4, data.size() / 2, data.size() - 3}) {
    StatusOr<ExtendedDtd> restored =
        DeserializeExtendedDtd(data.substr(0, cut));
    EXPECT_FALSE(restored.ok()) << "cut at " << cut;
  }
}

TEST(PersistFileTest, SaveThenLoadRoundTrips) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  StatusOr<xml::Document> doc =
      xml::ParseDocument("<a><b>1</b><c>2</c><d>3</d></a>");
  ASSERT_TRUE(doc.ok());
  recorder.RecordDocument(*doc);

  const std::string path = testing::TempDir() + "persist_file_test.dtdstate";
  Status saved = SaveExtendedDtdFile(ext, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  // The write is atomic (tmp + rename): no temp file may survive.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  StatusOr<ExtendedDtd> restored = LoadExtendedDtdFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->documents_recorded(), 1u);
  EXPECT_EQ(SerializeExtendedDtd(*restored), SerializeExtendedDtd(ext));
  std::remove(path.c_str());
}

TEST(PersistFileTest, SaveReplacesExistingSnapshot) {
  const std::string path = testing::TempDir() + "persist_file_replace.dtdstate";
  ExtendedDtd first = MakeExtended(kDtd);
  ASSERT_TRUE(SaveExtendedDtdFile(first, path).ok());

  ExtendedDtd second = MakeExtended(kDtd);
  Recorder recorder(second);
  StatusOr<xml::Document> doc = xml::ParseDocument("<a><b>1</b><c>2</c></a>");
  ASSERT_TRUE(doc.ok());
  recorder.RecordDocument(*doc);
  ASSERT_TRUE(SaveExtendedDtdFile(second, path).ok());

  StatusOr<ExtendedDtd> restored = LoadExtendedDtdFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->documents_recorded(), 1u);
  std::remove(path.c_str());
}

TEST(PersistFileTest, LoadMissingFileIsNotFound) {
  StatusOr<ExtendedDtd> restored =
      LoadExtendedDtdFile(testing::TempDir() + "no_such_snapshot.dtdstate");
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), Status::Code::kNotFound);
}

TEST(PersistFileTest, TruncatedSnapshotRejectedWithCleanStatus) {
  ExtendedDtd ext = MakeExtended(kDtd);
  Recorder recorder(ext);
  StatusOr<xml::Document> doc =
      xml::ParseDocument("<a><b>1</b><c>2</c><z>3</z></a>");
  ASSERT_TRUE(doc.ok());
  recorder.RecordDocument(*doc);

  const std::string path = testing::TempDir() + "persist_file_trunc.dtdstate";
  ASSERT_TRUE(SaveExtendedDtdFile(ext, path).ok());

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    data = buffer.str();
  }
  ASSERT_GT(data.size(), 8u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }

  StatusOr<ExtendedDtd> restored = LoadExtendedDtdFile(path);
  EXPECT_FALSE(restored.ok());
  EXPECT_NE(restored.status().code(), Status::Code::kNotFound);
  std::remove(path.c_str());
}

TEST(PersistTest, PreservesAttlists) {
  ExtendedDtd ext = MakeExtended(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id ID #REQUIRED>
  )");
  std::string data = SerializeExtendedDtd(ext);
  StatusOr<ExtendedDtd> restored = DeserializeExtendedDtd(data);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->dtd().FindElement("a")->attributes.size(), 1u);
}

}  // namespace
}  // namespace dtdevolve::evolve
