#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "validate/validator.h"
#include "xml/parser.h"

namespace dtdevolve::validate {
namespace {

dtd::Dtd MakeDtd(const char* text, std::string root = "") {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text, std::move(root));
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

xml::Document MakeDoc(const char* text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

const char* kMailDtd = R"(
  <!ELEMENT mail (from, to+, subject?, body)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

TEST(ValidatorTest, AcceptsValidDocument) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  ValidationResult result = validator.Validate(MakeDoc(
      "<mail><from>a</from><to>b</to><to>c</to><body>hi</body></mail>"));
  EXPECT_TRUE(result.valid) << result.errors[0].message;
  EXPECT_EQ(result.invalid_elements, 0u);
  EXPECT_EQ(result.total_elements, 5u);
  EXPECT_EQ(result.InvalidFraction(), 0.0);
}

TEST(ValidatorTest, RejectsMissingRequiredElement) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  ValidationResult result =
      validator.Validate(MakeDoc("<mail><from>a</from><to>b</to></mail>"));
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.invalid_elements, 1u);  // only the mail element itself
  EXPECT_EQ(result.total_elements, 3u);
}

TEST(ValidatorTest, RejectsUndeclaredElement) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  ValidationResult result = validator.Validate(
      MakeDoc("<mail><from>a</from><to>b</to><cc>x</cc><body>h</body>"
              "</mail>"));
  EXPECT_FALSE(result.valid);
  // mail's content no longer matches AND cc itself is undeclared.
  EXPECT_EQ(result.invalid_elements, 2u);
}

TEST(ValidatorTest, RejectsWrongRootName) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  ValidationResult result = validator.Validate(MakeDoc("<from>a</from>"));
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.errors[0].message.find("root"), std::string::npos);
}

TEST(ValidatorTest, SubtreeValidationSkipsRootCheck) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  xml::Document doc = MakeDoc("<from>a</from>");
  EXPECT_TRUE(validator.ValidateSubtree(doc.root()).valid);
}

TEST(ValidatorTest, LocalValidityIgnoresDescendants) {
  // `mail` content is fine, but `body` contains a rogue element.
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  xml::Document doc = MakeDoc(
      "<mail><from>a</from><to>b</to><body><rogue/></body></mail>");
  EXPECT_TRUE(validator.ElementLocallyValid(doc.root()));
  ValidationResult result = validator.Validate(doc);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.invalid_elements, 2u);  // body + rogue
}

TEST(ValidatorTest, OrderViolationDetected) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  ValidationResult result = validator.Validate(MakeDoc(
      "<mail><to>b</to><from>a</from><body>h</body></mail>"));
  EXPECT_FALSE(result.valid);
}

TEST(ValidatorTest, EmptyContentModel) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT br EMPTY>");
  Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(MakeDoc("<br/>")).valid);
  EXPECT_FALSE(validator.Validate(MakeDoc("<br>text</br>")).valid);
  EXPECT_FALSE(validator.Validate(MakeDoc("<br><x/></br>")).valid);
}

TEST(ValidatorTest, AnyContentModel) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT box ANY><!ELEMENT x (#PCDATA)>");
  Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(MakeDoc("<box><x>1</x>text</box>")).valid);
  // Undeclared children under ANY are still flagged.
  EXPECT_FALSE(validator.Validate(MakeDoc("<box><y/></box>")).valid);
}

TEST(ValidatorTest, MixedContent) {
  dtd::Dtd dtd = MakeDtd(
      "<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)>");
  Validator validator(dtd);
  EXPECT_TRUE(
      validator.Validate(MakeDoc("<p>a<em>b</em>c</p>")).valid);
  EXPECT_TRUE(validator.Validate(MakeDoc("<p/>")).valid);
}

TEST(ValidatorTest, RequiredAttribute) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id CDATA #REQUIRED kind (x|y) "x">
  )");
  Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(MakeDoc(R"(<a id="1">t</a>)")).valid);
  EXPECT_FALSE(validator.Validate(MakeDoc("<a>t</a>")).valid);
  EXPECT_FALSE(
      validator.Validate(MakeDoc(R"(<a id="1" kind="z">t</a>)")).valid);
  EXPECT_TRUE(
      validator.Validate(MakeDoc(R"(<a id="1" kind="y">t</a>)")).valid);
}

TEST(ValidatorTest, FixedAttribute) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a v CDATA #FIXED "1">
  )");
  Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(MakeDoc(R"(<a v="1">t</a>)")).valid);
  EXPECT_TRUE(validator.Validate(MakeDoc("<a>t</a>")).valid);
  EXPECT_FALSE(validator.Validate(MakeDoc(R"(<a v="2">t</a>)")).valid);
}

TEST(ValidatorTest, DocumentWithoutRootIsInvalid) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  ValidationResult result = validator.Validate(xml::Document());
  EXPECT_FALSE(result.valid);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].message.find("no root"), std::string::npos);
  EXPECT_EQ(result.total_elements, 0u);
  EXPECT_EQ(result.InvalidFraction(), 0.0);
}

TEST(ValidatorTest, EmptyDtdRejectsEveryDocument) {
  dtd::Dtd dtd = MakeDtd("");
  Validator validator(dtd);
  ValidationResult result = validator.Validate(MakeDoc("<a/>"));
  EXPECT_FALSE(result.valid);
  // Root mismatch plus the undeclared element itself.
  EXPECT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.invalid_elements, 1u);
  EXPECT_FALSE(validator.ElementLocallyValid(MakeDoc("<a/>").root()));
}

TEST(ValidatorTest, ErrorPathsLocateNestedViolations) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  // body is the third element child (index 2) and holds a rogue element.
  ValidationResult result = validator.Validate(MakeDoc(
      "<mail><from>a</from><to>b</to><body><rogue/></body></mail>"));
  EXPECT_FALSE(result.valid);
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0].path, "mail/body[2]");
  EXPECT_EQ(result.errors[1].path, "mail/body[2]/rogue[0]");
  EXPECT_NE(result.errors[1].message.find("not declared"), std::string::npos);
}

TEST(ValidatorTest, ContentErrorNamesTheViolatedDeclaration) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  ValidationResult result =
      validator.Validate(MakeDoc("<mail><from>a</from></mail>"));
  EXPECT_FALSE(result.valid);
  ASSERT_FALSE(result.errors.empty());
  // The message carries the declaration so the report is actionable.
  EXPECT_NE(result.errors[0].message.find("does not match declaration"),
            std::string::npos);
  EXPECT_NE(result.errors[0].message.find("from"), std::string::npos);
}

TEST(ValidatorTest, AttributeErrorsDoNotCountAsInvalidElements) {
  // Attribute violations fail the document but are deliberately excluded
  // from the invalid-element ratio that feeds the evolution trigger — the
  // paper's divergence measure is structural only.
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id CDATA #REQUIRED>
  )");
  Validator validator(dtd);
  ValidationResult result = validator.Validate(MakeDoc("<a>t</a>"));
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.invalid_elements, 0u);
  EXPECT_EQ(result.InvalidFraction(), 0.0);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].message.find("missing required attribute"),
            std::string::npos);
}

TEST(ValidatorTest, EnumeratedImpliedAttributeOnlyCheckedWhenPresent) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a kind (x|y) #IMPLIED>
  )");
  Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(MakeDoc("<a>t</a>")).valid);
  EXPECT_TRUE(validator.Validate(MakeDoc(R"(<a kind="y">t</a>)")).valid);
  ValidationResult bad = validator.Validate(MakeDoc(R"(<a kind="z">t</a>)"));
  EXPECT_FALSE(bad.valid);
  ASSERT_EQ(bad.errors.size(), 1u);
  EXPECT_NE(bad.errors[0].message.find("not in enumeration"),
            std::string::npos);
}

TEST(ValidatorTest, UndeclaredAttributesAreIgnored) {
  // The DTD only constrains declared attributes; extra ones pass (the
  // recorder is what notices them and proposes evolution).
  dtd::Dtd dtd = MakeDtd("<!ELEMENT a (#PCDATA)>");
  Validator validator(dtd);
  EXPECT_TRUE(validator.Validate(MakeDoc(R"(<a novel="1">t</a>)")).valid);
}

TEST(ValidatorTest, InvalidFractionAggregatesOverSubtree) {
  dtd::Dtd dtd = MakeDtd(kMailDtd);
  Validator validator(dtd);
  // mail itself invalid (bad order) + the undeclared cc = 2 of 4 elements.
  ValidationResult result = validator.Validate(
      MakeDoc("<mail><to>b</to><from>a</from><cc>x</cc></mail>"));
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.total_elements, 4u);
  EXPECT_EQ(result.invalid_elements, 2u);
  EXPECT_DOUBLE_EQ(result.InvalidFraction(), 0.5);
}

TEST(ContentSymbolsTest, CollapsesTextRuns) {
  xml::Document doc = MakeDoc("<a>one<b/>two three<c/></a>");
  std::vector<std::string> symbols = ContentSymbols(doc.root());
  EXPECT_EQ(symbols, (std::vector<std::string>{"#PCDATA", "b", "#PCDATA",
                                               "c"}));
}

TEST(ContentSymbolsTest, SkipsBlankText) {
  xml::Document doc = MakeDoc("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(ContentSymbols(doc.root()),
            (std::vector<std::string>{"b", "c"}));
}

}  // namespace
}  // namespace dtdevolve::validate
