// Server suite: drives a real IngestServer over loopback sockets —
// ephemeral ports, so suites can run in parallel. Covers the endpoint
// surface, queue backpressure, and the graceful-shutdown snapshot
// round-trip. Multi-threaded end to end, hence under the `concurrency`
// ctest label for TSan runs.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "io/fault.h"
#include "server/server.h"

namespace dtdevolve::server {
namespace {

const char* kMailDtd = R"(
  <!ELEMENT mail (envelope, body)>
  <!ELEMENT envelope (from, to, subject)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kConformingDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "</envelope><body>hello</body></mail>";

// Drifted: extra cc + attachment push divergence past τ and evolve the
// DTD once enough instances accumulate.
const char* kDriftedDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "<cc>c</cc></envelope><body>hello</body>"
    "<attachment>x</attachment></mail>";

struct ClientResponse {
  int status = 0;
  std::string head;  // status line + headers
  std::string body;
};

/// One blocking HTTP exchange against 127.0.0.1:port. The request must
/// carry `Connection: close` so the (keep-alive by default) server
/// closes after the response and "read to EOF" frames it. On any
/// transport failure `out->status` stays 0, which every caller's status
/// expectation then reports.
void HttpRoundTrip(uint16_t port, const std::string& request,
                   ClientResponse* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ADD_FAILURE() << "connect: " << std::strerror(errno);
    ::close(fd);
    return;
  }

  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ADD_FAILURE() << "send: " << std::strerror(errno);
      ::close(fd);
      return;
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.rfind("HTTP/1.1 ", 0) != 0) {
    ADD_FAILURE() << "unframed response: " << raw;
    return;
  }
  out->head = raw.substr(0, split);
  out->body = raw.substr(split + 4);
  out->status = std::atoi(out->head.c_str() + 9);
}

ClientResponse Get(uint16_t port, const std::string& target) {
  ClientResponse response;
  HttpRoundTrip(port,
                "GET " + target +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                &response);
  return response;
}

ClientResponse Post(uint16_t port, const std::string& target,
                    const std::string& body) {
  ClientResponse response;
  HttpRoundTrip(port,
                "POST " + target +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body,
                &response);
  return response;
}

core::SourceOptions EvolvingOptions() {
  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 1;
  return options;
}

ServerOptions EphemeralOptions() {
  ServerOptions options;
  options.port = 0;  // the kernel picks; tests read server.port()
  options.jobs = 2;
  return options;
}

/// A raw connected socket, or -1 (socket/connect failure — e.g. the fd
/// table is exhausted, which the EMFILE regression test relies on).
int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServerTest, HealthzRoutesAndMethodChecks) {
  IngestServer server(EvolvingOptions(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(server.port(), 0);

  ClientResponse health = Get(server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  EXPECT_EQ(Get(server.port(), "/no-such-route").status, 404);
  EXPECT_EQ(Get(server.port(), "/ingest").status, 405);
  EXPECT_EQ(Post(server.port(), "/dtds", "x").status, 405);

  server.Shutdown();
  server.Wait();
}

TEST(ServerTest, IngestClassifiesAndServesState) {
  IngestServer server(EvolvingOptions(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // Synchronous ingest reports the classification outcome.
  ClientResponse outcome =
      Post(server.port(), "/ingest?wait=1", kConformingDoc);
  EXPECT_EQ(outcome.status, 200);
  EXPECT_NE(outcome.body.find("\"classified\":true"), std::string::npos);
  EXPECT_NE(outcome.body.find("\"dtd\":\"mail\""), std::string::npos);

  // Fire-and-forget ingest is accepted immediately.
  EXPECT_EQ(Post(server.port(), "/ingest", kConformingDoc).status, 202);
  // Malformed XML is rejected on the connection thread.
  EXPECT_EQ(Post(server.port(), "/ingest?wait=1", "<mail>").status, 400);

  ClientResponse list = Get(server.port(), "/dtds");
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("\"mail\""), std::string::npos);

  ClientResponse dtd = Get(server.port(), "/dtds/mail");
  EXPECT_EQ(dtd.status, 200);
  EXPECT_NE(dtd.body.find("<!ELEMENT mail"), std::string::npos);
  EXPECT_EQ(Get(server.port(), "/dtds/nope").status, 404);

  server.Shutdown();
  server.Wait();
}

TEST(ServerTest, MetricsScrapeExposesPipelineCounters) {
  IngestServer server(EvolvingOptions(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
            200);
  ClientResponse metrics = Get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("dtdevolve_documents_processed_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("dtdevolve_documents_classified_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE dtdevolve_ingest_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("dtdevolve_documents_scored_total"),
            std::string::npos);

  server.Shutdown();
  server.Wait();
}

TEST(ServerTest, FullQueueAnswers503WithRetryAfter) {
  ServerOptions options = EphemeralOptions();
  options.queue_capacity = 2;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // With the worker paused the queue fills deterministically.
  server.PauseIngest();
  EXPECT_EQ(Post(server.port(), "/ingest", kConformingDoc).status, 202);
  EXPECT_EQ(Post(server.port(), "/ingest", kConformingDoc).status, 202);

  ClientResponse rejected = Post(server.port(), "/ingest", kConformingDoc);
  EXPECT_EQ(rejected.status, 503);
  EXPECT_NE(rejected.head.find("Retry-After:"), std::string::npos);

  server.ResumeIngest();
  // The worker drains asynchronously, so the next ingest may still find
  // the queue full — retry until a slot frees up. wait=1 proves the path
  // end to end and leaves no in-flight work behind.
  ClientResponse after;
  for (int attempt = 0; attempt < 200 && after.status != 200; ++attempt) {
    after = Post(server.port(), "/ingest?wait=1", kConformingDoc);
    if (after.status != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(after.status, 200);

  ClientResponse metrics = Get(server.port(), "/metrics");
  // Line-anchored: a bare find() would land on the `# HELP` line.
  const std::string metric_name = "\ndtdevolve_ingest_rejected_total ";
  const size_t pos = metrics.body.find(metric_name);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GE(std::atoi(metrics.body.c_str() + pos + metric_name.size()), 1);

  server.Shutdown();
  server.Wait();
}

TEST(ServerTest, ConcurrentClientsAllGetServed) {
  IngestServer server(EvolvingOptions(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<int> statuses(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      statuses[i] =
          Post(server.port(), "/ingest?wait=1", kConformingDoc).status;
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(statuses[i], 200) << i;

  ClientResponse stats = Get(server.port(), "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"documents_processed\":8"), std::string::npos);

  server.Shutdown();
  server.Wait();
}

TEST(ServerTest, GracefulShutdownSnapshotsAndRestartRestores) {
  const std::string dir = testing::TempDir() + "server_snapshots";
  std::remove((dir + "/mail.dtdstate").c_str());
  ::rmdir(dir.c_str());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << std::strerror(errno);

  std::string evolved_dtd;
  {
    ServerOptions options = EphemeralOptions();
    options.snapshot_dir = dir;
    IngestServer server(EvolvingOptions(), options);
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());

    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
              200);
    ClientResponse drifted =
        Post(server.port(), "/ingest?wait=1", kDriftedDoc);
    ASSERT_EQ(drifted.status, 200);
    EXPECT_NE(drifted.body.find("\"evolved\":true"), std::string::npos);

    ClientResponse metrics = Get(server.port(), "/metrics");
    EXPECT_NE(metrics.body.find("dtdevolve_evolutions_total 1"),
              std::string::npos);

    ClientResponse dtd = Get(server.port(), "/dtds/mail");
    EXPECT_NE(dtd.body.find("attachment"), std::string::npos);
    evolved_dtd = dtd.body;

    server.Shutdown();
    server.Wait();
  }

  // A fresh server seeded with the ORIGINAL DTD restores the evolved
  // extended state from the snapshot.
  {
    ServerOptions options = EphemeralOptions();
    options.snapshot_dir = dir;
    IngestServer restarted(EvolvingOptions(), options);
    ASSERT_TRUE(restarted.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(restarted.Start().ok());

    ClientResponse dtd = Get(restarted.port(), "/dtds/mail");
    EXPECT_EQ(dtd.status, 200);
    EXPECT_EQ(dtd.body, evolved_dtd);

    restarted.Shutdown();
    restarted.Wait();
  }
  std::remove((dir + "/mail.dtdstate").c_str());
  ::rmdir(dir.c_str());
}

TEST(ServerTest, ShutdownDrainsQueuedDocumentsBeforeStopping) {
  ServerOptions options = EphemeralOptions();
  options.snapshot_dir = "";
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  server.PauseIngest();
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(Post(server.port(), "/ingest", kConformingDoc).status, 202);
  }
  // Shutdown overrides the pause: all five queued documents must be
  // applied before Wait returns.
  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source().documents_processed(), 5u);
}

/// Open descriptors of this process, via /proc. The opendir handle
/// itself is one of them, but it is one of them on every call, so
/// equality comparisons between two counts are exact.
size_t OpenFdCount() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (std::strcmp(entry->d_name, ".") == 0 ||
        std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    ++count;
  }
  ::closedir(dir);
  return count;
}

TEST(ServerTest, FailedStartReleasesFdsAndCanRetry) {
  // Occupy a concrete port so a second server's bind deterministically
  // fails *after* its wake pipe and listen socket were created.
  IngestServer occupant(EvolvingOptions(), EphemeralOptions());
  ASSERT_TRUE(occupant.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(occupant.Start().ok());

  ServerOptions conflicting = EphemeralOptions();
  conflicting.port = occupant.port();
  IngestServer server(EvolvingOptions(), conflicting);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());

  ASSERT_FALSE(server.Start().ok());
  const size_t baseline = OpenFdCount();
  for (int i = 0; i < 8; ++i) {
    ASSERT_FALSE(server.Start().ok());
  }
  // Before the fix each failed Start leaked the wake pipe (and, on the
  // listen-failure path, the socket): 8 retries grew the fd table.
  EXPECT_EQ(OpenFdCount(), baseline);

  occupant.Shutdown();
  occupant.Wait();

  // The port is free now; the very same server object starts cleanly
  // and serves — a failed Start left no half-initialized state behind.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status, 200);
  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source().documents_processed(), 1u);
}

TEST(ServerTest, ConflictingContentLengthHeadersAreRejected) {
  IngestServer server(EvolvingOptions(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  const std::string body = kConformingDoc;
  const std::string length = std::to_string(body.size());

  // Two Content-Length headers that disagree is the classic
  // request-smuggling shape: reject, never pick one.
  ClientResponse conflicting;
  HttpRoundTrip(server.port(),
                "POST /ingest?wait=1 HTTP/1.1\r\nHost: t\r\n"
                "Connection: close\r\n"
                "Content-Length: " + length + "\r\n"
                "Content-Length: 5\r\n\r\n" + body,
                &conflicting);
  EXPECT_EQ(conflicting.status, 400);

  // Duplicates that agree are harmless; the request is served.
  ClientResponse agreeing;
  HttpRoundTrip(server.port(),
                "POST /ingest?wait=1 HTTP/1.1\r\nHost: t\r\n"
                "Connection: close\r\n"
                "Content-Length: " + length + "\r\n"
                "Content-Length: " + length + "\r\n\r\n" + body,
                &agreeing);
  EXPECT_EQ(agreeing.status, 200);

  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source().documents_processed(), 1u);
}

TEST(ServerTest, CollidingDtdNamesKeepDistinctSnapshots) {
  const char* kNoteDtd = R"(
    <!ELEMENT note (heading, text)>
    <!ELEMENT heading (#PCDATA)>
    <!ELEMENT text (#PCDATA)>
  )";
  std::string dir = ::testing::TempDir() + "server_test_colliding_names";
  ::mkdir(dir.c_str(), 0755);

  // "a/b" and "a_b" sanitize to the same file stem; before the fix the
  // second snapshot overwrote the first and a restart restored the
  // wrong DTD's state under both names.
  {
    ServerOptions options = EphemeralOptions();
    options.snapshot_dir = dir;
    IngestServer server(EvolvingOptions(), options);
    ASSERT_TRUE(server.AddDtdText("a/b", kMailDtd).ok());
    ASSERT_TRUE(server.AddDtdText("a_b", kNoteDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    // Evolve "a/b" so its state is unmistakably the mail lineage.
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kConformingDoc).status,
              200);
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kDriftedDoc).status, 200);
    server.Shutdown();
    server.Wait();
  }

  size_t snapshots = 0;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.size() > 9 && name.rfind(".dtdstate") == name.size() - 9) {
        ++snapshots;
      }
    }
    ::closedir(d);
  }
  EXPECT_EQ(snapshots, 2u);

  {
    ServerOptions options = EphemeralOptions();
    options.snapshot_dir = dir;
    IngestServer restarted(EvolvingOptions(), options);
    ASSERT_TRUE(restarted.AddDtdText("a/b", kMailDtd).ok());
    ASSERT_TRUE(restarted.AddDtdText("a_b", kNoteDtd).ok());
    ASSERT_TRUE(restarted.Start().ok());

    ClientResponse mail = Get(restarted.port(), "/dtds/a/b");
    EXPECT_EQ(mail.status, 200);
    EXPECT_NE(mail.body.find("<!ELEMENT mail"), std::string::npos);
    EXPECT_NE(mail.body.find("attachment"), std::string::npos)
        << "evolved mail state lost: " << mail.body;

    ClientResponse note = Get(restarted.port(), "/dtds/a_b");
    EXPECT_EQ(note.status, 200);
    EXPECT_NE(note.body.find("<!ELEMENT note"), std::string::npos)
        << "note state clobbered by the colliding name: " << note.body;

    restarted.Shutdown();
    restarted.Wait();
  }

  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        std::remove((dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

// Two foreign families that can never classify against the mail DTD —
// repeated verbatim so each family clusters into one structural group.
const char* kInvoiceDoc =
    "<invoice><customer>c</customer><item><sku>s</sku><qty>1</qty></item>"
    "<total>9</total></invoice>";
const char* kPlaylistDoc =
    "<playlist><owner>o</owner><track><artist>a</artist><song>t</song>"
    "</track></playlist>";

TEST(ServerTest, InductionLifecycleOverHttp) {
  core::SourceOptions source_options = EvolvingOptions();
  source_options.sigma = 0.5;
  source_options.auto_evolve = false;
  IngestServer server(source_options, EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // Two unclassifiable families pile up in the repository.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kInvoiceDoc).status, 200);
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kPlaylistDoc).status, 200);
  }

  // /stats now shows the repository section with two clusters.
  ClientResponse stats = Get(server.port(), "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"repository\":{\"size\":8,\"clusters\":2"),
            std::string::npos)
      << stats.body;

  // Induce: one candidate per family.
  ClientResponse induced = Post(server.port(), "/dtds/induce", "");
  ASSERT_EQ(induced.status, 200);
  EXPECT_NE(induced.body.find("\"candidates\":2"), std::string::npos)
      << induced.body;

  ClientResponse candidates = Get(server.port(), "/dtds/candidates");
  ASSERT_EQ(candidates.status, 200);
  EXPECT_NE(candidates.body.find("\"name\":\"induced-invoice\""),
            std::string::npos)
      << candidates.body;
  EXPECT_NE(candidates.body.find("\"name\":\"induced-playlist\""),
            std::string::npos);
  EXPECT_NE(candidates.body.find("\"coverage\":1"), std::string::npos);

  // Parse the first candidate id out of the listing.
  const size_t id_pos = candidates.body.find("\"id\":");
  ASSERT_NE(id_pos, std::string::npos);
  const uint64_t id = std::strtoull(candidates.body.c_str() + id_pos + 5,
                                    nullptr, 10);

  // Accept it: the DTD joins the live set and its members drain.
  ClientResponse accepted = Post(
      server.port(), "/dtds/candidates/" + std::to_string(id) + "/accept", "");
  ASSERT_EQ(accepted.status, 200) << accepted.body;
  EXPECT_NE(accepted.body.find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(accepted.body.find("\"reclassified\":4"), std::string::npos)
      << accepted.body;

  ClientResponse dtds = Get(server.port(), "/dtds");
  EXPECT_NE(dtds.body.find("induced-"), std::string::npos) << dtds.body;

  // The other candidate was retired with the set change; re-induce and
  // reject the remaining family's proposal.
  ClientResponse re_induced = Post(server.port(), "/dtds/induce", "");
  ASSERT_EQ(re_induced.status, 200);
  EXPECT_NE(re_induced.body.find("\"candidates\":1"), std::string::npos);
  ClientResponse listing = Get(server.port(), "/dtds/candidates");
  const size_t pos2 = listing.body.find("\"id\":");
  ASSERT_NE(pos2, std::string::npos);
  const uint64_t id2 =
      std::strtoull(listing.body.c_str() + pos2 + 5, nullptr, 10);
  EXPECT_GT(id2, id);  // candidate ids are never reused
  ClientResponse rejected = Post(
      server.port(), "/dtds/candidates/" + std::to_string(id2) + "/reject",
      "");
  EXPECT_EQ(rejected.status, 200);
  EXPECT_NE(rejected.body.find("\"rejected\":true"), std::string::npos);

  // Unknown ids and bad verbs answer with clean errors.
  EXPECT_EQ(Post(server.port(), "/dtds/candidates/99999/accept", "").status,
            404);
  EXPECT_EQ(Post(server.port(), "/dtds/candidates/x/accept", "").status, 400);
  EXPECT_EQ(Post(server.port(), "/dtds/candidates/1/promote", "").status, 404);
  EXPECT_EQ(Get(server.port(), "/dtds/induce").status, 405);

  // Lifecycle counters reached /metrics.
  ClientResponse metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find("dtdevolve_candidates_accepted_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("dtdevolve_candidates_rejected_total 1"),
            std::string::npos);

  // New arrivals of the accepted family now classify instead of queueing
  // in the repository.
  ClientResponse fresh = Post(server.port(), "/ingest?wait=1", kInvoiceDoc);
  ASSERT_EQ(fresh.status, 200);
  EXPECT_NE(fresh.body.find("\"classified\":true"), std::string::npos)
      << fresh.body;

  server.Shutdown();
  server.Wait();
}

TEST(ServerTest, AutoInduceThresholdProposesCandidates) {
  core::SourceOptions source_options = EvolvingOptions();
  source_options.sigma = 0.5;
  source_options.auto_evolve = false;
  ServerOptions options = EphemeralOptions();
  options.auto_induce_threshold = 3;
  IngestServer server(source_options, options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(Post(server.port(), "/ingest?wait=1", kInvoiceDoc).status, 200);
  }
  // The threshold batch already ran induction — candidates are pending
  // without any POST /dtds/induce.
  ClientResponse candidates = Get(server.port(), "/dtds/candidates");
  ASSERT_EQ(candidates.status, 200);
  EXPECT_NE(candidates.body.find("\"name\":\"induced-invoice\""),
            std::string::npos)
      << candidates.body;

  server.Shutdown();
  server.Wait();
}

TEST(ServerTest, ReadinessAnswers503WhileWalFailsAndRecoversAfterward) {
  const std::string dir = testing::TempDir() + "server_readiness_wal";
  std::filesystem::remove_all(dir);

  ServerOptions options = EphemeralOptions();
  options.wal_dir = dir;
  options.fsync_policy = store::FsyncPolicy::kNone;
  options.checkpoint_interval = std::chrono::milliseconds(0);
  options.health_probe_interval = std::chrono::milliseconds(25);
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // Healthy: liveness and readiness both 200, ingest acks.
  EXPECT_EQ(Get(server.port(), "/healthz").status, 200);
  EXPECT_EQ(Get(server.port(), "/healthz?ready=1").status, 200);
  ASSERT_EQ(Post(server.port(), "/ingest", kConformingDoc).status, 202);

  {
    // Every WAL write now fails — writes get 503, readiness flips to
    // 503 with the shard breakdown, liveness stays 200.
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kWrite);
    plan.crash = true;
    io::ScopedFaultPlan fault(plan);

    EXPECT_EQ(Post(server.port(), "/ingest", kConformingDoc).status, 503);
    ClientResponse not_ready = Get(server.port(), "/healthz?ready=1");
    EXPECT_EQ(not_ready.status, 503);
    EXPECT_NE(not_ready.body.find("\"ready\":false"), std::string::npos)
        << not_ready.body;
    EXPECT_EQ(Get(server.port(), "/healthz").status, 200);
  }

  // Fault cleared: the recovery probe reopens the shard without any
  // client traffic.
  int ready_status = 0;
  for (int attempt = 0; attempt < 200 && ready_status != 200; ++attempt) {
    ready_status = Get(server.port(), "/healthz?ready=1").status;
    if (ready_status != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(ready_status, 200);
  EXPECT_EQ(Post(server.port(), "/ingest", kConformingDoc).status, 202);

  server.Shutdown();
  server.Wait();
  std::filesystem::remove_all(dir);
}

TEST(ServerTest, AcceptRecoversAfterFdExhaustion) {
  IngestServer server(EvolvingOptions(), EphemeralOptions());
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(Get(server.port(), "/healthz").status, 200);

  // Starve the process fd table (shared with the server) so accept()
  // fails with EMFILE. Before the listener-backoff fix this busy-looped
  // the level-triggered epoll thread forever.
  struct rlimit saved = {};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit low = saved;
  low.rlim_cur = 64;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);

  // Fill the table completely with /dev/null handles, then free exactly
  // one slot: our client socket takes it, the handshake completes in
  // the kernel backlog, and the server's accept() has no fd left.
  std::vector<int> hogs;
  for (int i = 0; i < 256; ++i) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    hogs.push_back(fd);
  }
  ASSERT_FALSE(hogs.empty());
  ::close(hogs.back());
  hogs.pop_back();
  const int client = ConnectTo(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  if (client >= 0) ::close(client);
  for (int fd : hogs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // With fds free again the timed re-arm must restore accepting.
  int status = 0;
  for (int attempt = 0; attempt < 200 && status != 200; ++attempt) {
    status = Get(server.port(), "/healthz").status;
    if (status != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(status, 200);

  ClientResponse metrics = Get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  // Leading newline keeps the match off the `# HELP` line.
  const size_t at =
      metrics.body.find("\ndtdevolve_http_accept_stalls_total ");
  ASSERT_NE(at, std::string::npos) << metrics.body;
  EXPECT_GE(std::atoi(metrics.body.c_str() + at + 36), 1) << metrics.body;

  server.Shutdown();
  server.Wait();
}

}  // namespace
}  // namespace dtdevolve::server
