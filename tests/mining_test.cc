#include <gtest/gtest.h>

#include <algorithm>

#include "mining/apriori.h"
#include "mining/transactions.h"

namespace dtdevolve::mining {
namespace {

TEST(ItemDictionaryTest, InternAndFind) {
  ItemDictionary dict;
  int a = dict.Intern("a", true);
  int not_a = dict.Intern("a", false);
  EXPECT_NE(a, not_a);
  EXPECT_EQ(dict.Intern("a", true), a);  // idempotent
  EXPECT_EQ(dict.Find("a", false), not_a);
  EXPECT_EQ(dict.Find("zzz", true), -1);
  EXPECT_EQ(dict.Get(a).ToString(), "a");
  EXPECT_EQ(dict.Get(not_a).ToString(), "!a");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(TransactionSetTest, AbsentCompletion) {
  // Example 4 of the paper: universe {a,b,c,d}; the sequence {a,b} is
  // completed to {a, b, c̄, d̄}.
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b", "c", "d"};
  transactions.Add({"a", "b", "c"}, universe);
  transactions.Add({"a", "b"}, universe);
  transactions.Add({"b", "c", "d"}, universe);
  EXPECT_EQ(transactions.total_count(), 3u);

  const ItemDictionary& dict = transactions.dictionary();
  // 4 present items plus absent items for a, c, d (b occurs everywhere).
  EXPECT_EQ(dict.size(), 7u);
  EXPECT_EQ(dict.Find("b", false), -1);

  int a = dict.Find("a", true);
  int c_absent = dict.Find("c", false);
  ASSERT_GE(a, 0);
  ASSERT_GE(c_absent, 0);
  EXPECT_EQ(transactions.CountContaining({a}), 2u);
  EXPECT_EQ(transactions.CountContaining({c_absent}), 1u);
  EXPECT_EQ(transactions.CountContaining({a, c_absent}), 1u);
}

TEST(TransactionSetTest, WeightedCounts) {
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b"};
  transactions.Add({"a"}, universe, 10);
  transactions.Add({"a", "b"}, universe, 5);
  EXPECT_EQ(transactions.total_count(), 15u);
  int b = transactions.dictionary().Find("b", true);
  EXPECT_EQ(transactions.CountContaining({b}), 5u);
  EXPECT_DOUBLE_EQ(transactions.Support({b}), 5.0 / 15.0);
}

TEST(TransactionTest, ContainsAll) {
  Transaction t;
  t.items = {1, 3, 5, 7};
  EXPECT_TRUE(t.Contains(3));
  EXPECT_FALSE(t.Contains(4));
  EXPECT_TRUE(t.ContainsAll({1, 5}));
  EXPECT_TRUE(t.ContainsAll({}));
  EXPECT_FALSE(t.ContainsAll({1, 4}));
}

// --- Apriori -----------------------------------------------------------------

TEST(AprioriTest, Example3Support) {
  // Example 3: S = {{a,b,c},{a,b},{b,c,d}}; support({a,b,c}) = 1/3.
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b", "c", "d"};
  transactions.Add({"a", "b", "c"}, universe);
  transactions.Add({"a", "b"}, universe);
  transactions.Add({"b", "c", "d"}, universe);

  AprioriOptions options;
  options.min_support = 0.3;  // keeps 1/3 itemsets
  std::vector<FrequentItemset> itemsets =
      MineFrequentItemsets(transactions, options);

  const ItemDictionary& dict = transactions.dictionary();
  std::vector<int> abc = {dict.Find("a", true), dict.Find("b", true),
                          dict.Find("c", true)};
  std::sort(abc.begin(), abc.end());
  bool found = false;
  for (const FrequentItemset& fis : itemsets) {
    if (fis.items == abc) {
      found = true;
      EXPECT_NEAR(fis.support, 1.0 / 3.0, 1e-12);
      EXPECT_EQ(fis.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, DownwardClosureHolds) {
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b", "c"};
  for (int i = 0; i < 8; ++i) transactions.Add({"a", "b"}, universe);
  for (int i = 0; i < 2; ++i) transactions.Add({"c"}, universe);

  AprioriOptions options;
  options.min_support = 0.5;
  std::vector<FrequentItemset> itemsets =
      MineFrequentItemsets(transactions, options);
  // Every subset of a frequent itemset must be in the result.
  std::set<std::vector<int>> keys;
  for (const FrequentItemset& fis : itemsets) keys.insert(fis.items);
  for (const FrequentItemset& fis : itemsets) {
    if (fis.items.size() < 2) continue;
    for (size_t skip = 0; skip < fis.items.size(); ++skip) {
      std::vector<int> subset;
      for (size_t i = 0; i < fis.items.size(); ++i) {
        if (i != skip) subset.push_back(fis.items[i]);
      }
      EXPECT_TRUE(keys.count(subset)) << "missing subset";
    }
  }
  // And supports are monotone: support(superset) <= support(subset).
  for (const FrequentItemset& fis : itemsets) {
    if (fis.items.size() < 2) continue;
    for (size_t skip = 0; skip < fis.items.size(); ++skip) {
      std::vector<int> subset;
      for (size_t i = 0; i < fis.items.size(); ++i) {
        if (i != skip) subset.push_back(fis.items[i]);
      }
      for (const FrequentItemset& sub : itemsets) {
        if (sub.items == subset) {
          EXPECT_GE(sub.support, fis.support);
        }
      }
    }
  }
}

TEST(AprioriTest, MaxSizeCapsItemsets) {
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b", "c", "d"};
  for (int i = 0; i < 4; ++i) transactions.Add({"a", "b", "c", "d"}, universe);
  AprioriOptions options;
  options.min_support = 0.5;
  options.max_size = 2;
  for (const FrequentItemset& fis :
       MineFrequentItemsets(transactions, options)) {
    EXPECT_LE(fis.items.size(), 2u);
  }
}

TEST(AprioriTest, EmptyInput) {
  TransactionSet transactions;
  EXPECT_TRUE(MineFrequentItemsets(transactions).empty());
}

TEST(AprioriTest, BitsetCountingMatchesSubsetScan) {
  // The bitset support counter must be count-for-count identical to the
  // reference subset scan on a population wide enough to need more than
  // one mask word (>64 item ids once absent items are added).
  for (uint64_t seed : {1u, 7u, 23u}) {
    TransactionSet transactions;
    std::set<std::string> universe;
    for (int l = 0; l < 40; ++l) universe.insert("t" + std::to_string(l));
    uint64_t state = seed;
    auto next = [&state]() {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return state >> 33;
    };
    for (int i = 0; i < 200; ++i) {
      std::set<std::string> present;
      for (int l = 0; l < 40; ++l) {
        if (next() % 4 != 0) present.insert("t" + std::to_string(l));
      }
      transactions.Add(present, universe,
                       static_cast<uint32_t>(1 + next() % 3));
    }

    AprioriOptions scan;
    scan.min_support = 0.4;
    scan.max_size = 3;
    scan.bitset_counting = false;
    AprioriOptions bitset = scan;
    bitset.bitset_counting = true;

    std::vector<FrequentItemset> a = MineFrequentItemsets(transactions, scan);
    std::vector<FrequentItemset> b =
        MineFrequentItemsets(transactions, bitset);
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].items, b[i].items) << "seed " << seed;
      EXPECT_EQ(a[i].count, b[i].count) << "seed " << seed;
      EXPECT_DOUBLE_EQ(a[i].support, b[i].support) << "seed " << seed;
    }
  }
}

TEST(AprioriTest, FullSupportItemsetsSurviveHighThreshold) {
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b"};
  for (int i = 0; i < 5; ++i) transactions.Add({"a", "b"}, universe);
  AprioriOptions options;
  options.min_support = 1.0;
  std::vector<FrequentItemset> itemsets =
      MineFrequentItemsets(transactions, options);
  // {a}, {b}, {a,b} all have support 1.
  EXPECT_EQ(itemsets.size(), 3u);
  for (const FrequentItemset& fis : itemsets) {
    EXPECT_DOUBLE_EQ(fis.support, 1.0);
  }
}

}  // namespace
}  // namespace dtdevolve::mining
