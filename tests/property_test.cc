// Property-based suites over randomized inputs (seeded, reproducible):
//  * generator documents are always valid for their DTD;
//  * global similarity is 1 exactly for valid documents, in [0,1] always,
//    and monotonically degrades under mutation;
//  * Simplify preserves the language of randomly built content models;
//  * the evolver always produces a consistent DTD that validates the
//    dominant recorded shape.

#include <gtest/gtest.h>

#include "dtd/glushkov.h"
#include "dtd/rewrite.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "similarity/similarity.h"
#include "validate/validator.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "workload/rng.h"

namespace dtdevolve {
namespace {

/// Builds a random content model over a small alphabet.
dtd::ContentModel::Ptr RandomModel(workload::Rng& rng, int depth) {
  using CM = dtd::ContentModel;
  static const char* kNames[] = {"a", "b", "c", "d"};
  if (depth <= 0 || rng.Chance(0.4)) {
    return CM::Name(kNames[rng.Uniform(4)]);
  }
  switch (rng.Uniform(5)) {
    case 0: {
      std::vector<CM::Ptr> children;
      uint32_t n = 2 + rng.Uniform(2);
      for (uint32_t i = 0; i < n; ++i) {
        children.push_back(RandomModel(rng, depth - 1));
      }
      return CM::Seq(std::move(children));
    }
    case 1: {
      std::vector<CM::Ptr> children;
      uint32_t n = 2 + rng.Uniform(2);
      for (uint32_t i = 0; i < n; ++i) {
        children.push_back(RandomModel(rng, depth - 1));
      }
      return CM::Choice(std::move(children));
    }
    case 2:
      return CM::Opt(RandomModel(rng, depth - 1));
    case 3:
      return CM::Star(RandomModel(rng, depth - 1));
    default:
      return CM::Plus(RandomModel(rng, depth - 1));
  }
}

/// A random flat DTD: root with a random model over leaves a..d.
dtd::Dtd RandomDtd(uint64_t seed) {
  workload::Rng rng(seed);
  dtd::Dtd dtd;
  dtd.DeclareElement("root", RandomModel(rng, 3));
  for (const char* name : {"a", "b", "c", "d"}) {
    dtd.DeclareElement(name, dtd::ContentModel::Pcdata());
  }
  return dtd;
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, SimplifyPreservesRandomModelLanguage) {
  workload::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    dtd::ContentModel::Ptr model = RandomModel(rng, 3);
    dtd::ContentModel::Ptr original = model->Clone();
    dtd::ContentModel::Ptr simplified = dtd::Simplify(std::move(model));
    ASSERT_TRUE(dtd::LanguageEquivalent(*original, *simplified))
        << original->ToString() << " vs " << simplified->ToString();
    ASSERT_LE(simplified->NodeCount(), original->NodeCount());
  }
}

TEST_P(SeededProperty, GeneratedDocumentsAreValidAndFullySimilar) {
  dtd::Dtd dtd = RandomDtd(GetParam());
  validate::Validator validator(dtd);
  similarity::SimilarityEvaluator evaluator(dtd);
  workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                        GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 20; ++i) {
    xml::Document doc = generator.Generate();
    ASSERT_TRUE(validator.Validate(doc).valid)
        << dtd.FindElement("root")->content->ToString();
    ASSERT_DOUBLE_EQ(evaluator.DocumentSimilarity(doc), 1.0);
  }
}

TEST_P(SeededProperty, SimilarityBoundedAndOneIffValid) {
  dtd::Dtd dtd = RandomDtd(GetParam());
  validate::Validator validator(dtd);
  similarity::SimilarityEvaluator evaluator(dtd);
  workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                        GetParam() + 99);
  workload::MutationOptions mutation;
  mutation.drop_probability = 0.4;
  mutation.insert_probability = 0.4;
  mutation.duplicate_probability = 0.3;
  mutation.swap_probability = 0.3;
  workload::Mutator mutator(mutation, GetParam() + 7);
  for (int i = 0; i < 20; ++i) {
    xml::Document doc = generator.Generate();
    mutator.Mutate(doc);
    double sim = evaluator.DocumentSimilarity(doc);
    ASSERT_GE(sim, 0.0);
    ASSERT_LE(sim, 1.0);
    bool valid = validator.Validate(doc).valid;
    if (valid) {
      ASSERT_DOUBLE_EQ(sim, 1.0);
    } else {
      ASSERT_LT(sim, 1.0);
    }
  }
}

TEST_P(SeededProperty, MutationNeverRaisesMeanSimilarity) {
  dtd::Dtd dtd = RandomDtd(GetParam());
  similarity::SimilarityEvaluator evaluator(dtd);
  workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                        GetParam() + 1);
  auto mean_at = [&](double rate) {
    workload::MutationOptions mutation;
    mutation.drop_probability = rate;
    mutation.insert_probability = rate;
    workload::Mutator mutator(mutation, 1234);
    double sum = 0.0;
    workload::DocumentGenerator local(dtd, workload::GeneratorOptions(),
                                      GetParam() + 1);
    for (int i = 0; i < 30; ++i) {
      xml::Document doc = local.Generate();
      mutator.Mutate(doc);
      sum += evaluator.DocumentSimilarity(doc);
    }
    return sum / 30.0;
  };
  double clean = mean_at(0.0);
  double damaged = mean_at(0.8);
  ASSERT_DOUBLE_EQ(clean, 1.0);
  ASSERT_LE(damaged, clean);
}

TEST_P(SeededProperty, EvolverProducesConsistentDtdForAnyShape) {
  // Feed the evolver a uniform drifted shape and demand: consistent DTD,
  // and the shape validates afterwards.
  workload::Rng rng(GetParam());
  dtd::Dtd dtd = RandomDtd(GetParam() * 3 + 1);
  workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                        GetParam());
  // The "true" new shape: generated from a different random DTD.
  dtd::Dtd target = RandomDtd(GetParam() * 7 + 5);
  workload::DocumentGenerator target_generator(
      target, workload::GeneratorOptions(), GetParam() + 2);

  evolve::ExtendedDtd ext(dtd.Clone());
  evolve::Recorder recorder(ext);
  std::vector<xml::Document> docs;
  for (int i = 0; i < 30; ++i) {
    xml::Document doc = target_generator.Generate();
    recorder.RecordDocument(doc);
    docs.push_back(std::move(doc));
  }
  evolve::EvolutionOptions options;
  options.min_support = 0.05;
  evolve::EvolveDtd(ext, options);
  ASSERT_TRUE(ext.dtd().Check().ok());

  // The dominant shapes should now be far more similar than before.
  similarity::SimilarityEvaluator before(dtd);
  similarity::SimilarityEvaluator after(ext.dtd());
  double before_sum = 0.0, after_sum = 0.0;
  for (const xml::Document& doc : docs) {
    before_sum += before.DocumentSimilarity(doc);
    after_sum += after.DocumentSimilarity(doc);
  }
  ASSERT_GE(after_sum, before_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace dtdevolve
