// Multi-tenant crash-recovery suite: every tenant shard keeps its own
// WAL + checkpoint lineage, and a reboot must restore each shard to the
// fingerprint of replaying its acked documents sequentially through a
// fresh XmlSource — the same oracle the single-tenant durability suite
// uses, applied per shard. A fault-injected crash-point sweep
// (`io/fault.h`) covers deaths mid-append. Multi-threaded end to end,
// so the suite runs under both the `durability` and `concurrency`
// ctest labels.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/source.h"
#include "evolve/persist.h"
#include "io/fault.h"
#include "server/server.h"

namespace dtdevolve::server {
namespace {

const char* kMailDtd = R"(
  <!ELEMENT mail (envelope, body)>
  <!ELEMENT envelope (from, to, subject)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kConformingDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "</envelope><body>hello</body></mail>";

const char* kDriftedDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "<cc>c</cc></envelope><body>hello</body>"
    "<attachment>x</attachment></mail>";

struct ClientResponse {
  int status = 0;
  std::string head;
  std::string body;
};

void HttpRoundTrip(uint16_t port, const std::string& request,
                   ClientResponse* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ADD_FAILURE() << "connect: " << std::strerror(errno);
    ::close(fd);
    return;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ADD_FAILURE() << "send: " << std::strerror(errno);
      ::close(fd);
      return;
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.rfind("HTTP/1.1 ", 0) != 0) {
    ADD_FAILURE() << "unframed response: " << raw;
    return;
  }
  out->head = raw.substr(0, split);
  out->body = raw.substr(split + 4);
  out->status = std::atoi(out->head.c_str() + 9);
}

ClientResponse Post(uint16_t port, const std::string& target,
                    const std::string& body) {
  ClientResponse response;
  HttpRoundTrip(port,
                "POST " + target +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body,
                &response);
  return response;
}

core::SourceOptions EvolvingOptions() {
  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 1;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      testing::TempDir() + "multitenant_recovery_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Two tenant shards over independent WAL lineages; stops simulate a
/// crash (no shutdown checkpoint), so the next boot must replay.
ServerOptions CrashSimOptions(const std::string& wal_dir) {
  ServerOptions options;
  options.port = 0;
  options.jobs = 2;
  options.tenants = {"alpha", "beta"};
  options.wal_dir = wal_dir;
  options.checkpoint_interval = std::chrono::milliseconds(0);
  options.checkpoint_on_shutdown = false;
  return options;
}

struct ShardDigest {
  uint64_t processed = 0;
  uint64_t classified = 0;
  uint64_t evolutions = 0;
  size_t repository = 0;
  std::string mail_dtd;
};

ShardDigest DigestOf(const core::XmlSource& source) {
  ShardDigest digest;
  digest.processed = source.documents_processed();
  digest.classified = source.documents_classified();
  digest.evolutions = source.evolutions_performed();
  digest.repository = source.repository().size();
  const evolve::ExtendedDtd* ext = source.FindExtended("mail");
  if (ext != nullptr) digest.mail_dtd = evolve::SerializeExtendedDtd(*ext);
  return digest;
}

/// The recovery oracle: a fresh single-threaded XmlSource fed the same
/// documents in ack order. Whatever it computes is, by definition, the
/// state an acked history must restore to.
ShardDigest SequentialReplay(const std::vector<std::string>& docs) {
  core::XmlSource source(EvolvingOptions());
  EXPECT_TRUE(source.AddDtdText("mail", kMailDtd).ok());
  for (const std::string& doc : docs) {
    EXPECT_TRUE(source.ProcessText(doc).ok());
  }
  return DigestOf(source);
}

void ExpectDigestEq(const ShardDigest& got, const ShardDigest& want,
                    const std::string& label) {
  EXPECT_EQ(got.processed, want.processed) << label;
  EXPECT_EQ(got.classified, want.classified) << label;
  EXPECT_EQ(got.evolutions, want.evolutions) << label;
  EXPECT_EQ(got.repository, want.repository) << label;
  EXPECT_EQ(got.mail_dtd, want.mail_dtd) << label;
}

size_t WalSegmentCount(const std::string& dir) {
  size_t count = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) ++count;
  }
  return count;
}

TEST(MultitenantRecoveryTest, EveryShardRecoversToItsSequentialReplay) {
  const std::string wal_dir = FreshDir("replay");
  const std::vector<std::pair<std::string, std::string>> workload = {
      {"alpha", kConformingDoc}, {"beta", kConformingDoc},
      {"alpha", kDriftedDoc},    {"alpha", kDriftedDoc},
      {"beta", kConformingDoc},  {"alpha", kConformingDoc},
  };
  std::map<std::string, std::vector<std::string>> acked;
  {
    IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    for (const auto& [tenant, doc] : workload) {
      ASSERT_EQ(
          Post(server.port(), "/ingest/" + tenant + "?wait=1", doc).status,
          200);
      acked[tenant].push_back(doc);
    }
    server.Shutdown();
    server.Wait();
  }

  // Independent lineages on disk: one WAL subdirectory per tenant.
  EXPECT_GE(WalSegmentCount(wal_dir + "/alpha"), 1u);
  EXPECT_GE(WalSegmentCount(wal_dir + "/beta"), 1u);

  IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.recovery_report("alpha").replayed_records, 4u);
  EXPECT_EQ(server.recovery_report("beta").replayed_records, 2u);
  server.Shutdown();
  server.Wait();

  for (const auto& [tenant, docs] : acked) {
    ExpectDigestEq(DigestOf(server.source(tenant)), SequentialReplay(docs),
                   tenant);
  }
}

TEST(MultitenantRecoveryTest, CheckpointingOneTenantLeavesTheOtherReplaying) {
  const std::string wal_dir = FreshDir("per_tenant_checkpoint");
  {
    IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(
          Post(server.port(), "/ingest/alpha?wait=1", kConformingDoc).status,
          200);
    }
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(
          Post(server.port(), "/ingest/beta?wait=1", kConformingDoc).status,
          200);
    }
    uint64_t captured = 0;
    ASSERT_TRUE(server.manager().CheckpointTenant("alpha", &captured).ok());
    EXPECT_EQ(captured, 3u);
    server.Shutdown();
    server.Wait();
  }

  IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());
  // alpha boots from its checkpoint; beta — never checkpointed — must
  // replay its whole log. Shard lineages do not bleed into each other.
  EXPECT_EQ(server.recovery_report("alpha").checkpoint_lsn, 3u);
  EXPECT_EQ(server.recovery_report("alpha").replayed_records, 0u);
  EXPECT_EQ(server.recovery_report("beta").checkpoint_lsn, 0u);
  EXPECT_EQ(server.recovery_report("beta").replayed_records, 2u);
  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source("alpha").documents_processed(), 3u);
  EXPECT_EQ(server.source("beta").documents_processed(), 2u);
}

TEST(MultitenantRecoveryTest, CrashPointSweepRestoresEveryAckedDocument) {
  // Kill the disk at the k-th WAL write, mid-record (torn tail), with
  // every later write failing too — then reboot and require each shard
  // to equal the sequential replay of exactly its acked documents.
  const std::vector<std::pair<std::string, std::string>> workload = {
      {"alpha", kConformingDoc}, {"beta", kConformingDoc},
      {"alpha", kDriftedDoc},    {"beta", kDriftedDoc},
      {"alpha", kDriftedDoc},    {"beta", kConformingDoc},
  };
  for (const uint64_t crash_at : {1u, 2u, 3u, 5u, 8u}) {
    const std::string wal_dir =
        FreshDir("sweep_" + std::to_string(crash_at));
    std::map<std::string, std::vector<std::string>> acked;
    {
      IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
      ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
      ASSERT_TRUE(server.Start().ok());

      io::FaultPlan plan;
      plan.fail_at = crash_at;
      plan.op_mask = static_cast<uint32_t>(io::FaultOp::kWrite);
      plan.error_code = EIO;
      plan.torn_fraction = 0.5;
      plan.crash = true;
      io::ScopedFaultPlan armed(plan);

      for (const auto& [tenant, doc] : workload) {
        ClientResponse response =
            Post(server.port(), "/ingest/" + tenant + "?wait=1", doc);
        if (response.status == 200) {
          acked[tenant].push_back(doc);
        } else {
          // The dead disk answers 503 — degraded, never a false ack.
          EXPECT_EQ(response.status, 503) << "crash_at=" << crash_at;
        }
      }
      server.Shutdown();
      server.Wait();
    }
    io::FaultInjector::Instance().Disarm();

    IngestServer server(EvolvingOptions(), CrashSimOptions(wal_dir));
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    server.Shutdown();
    server.Wait();

    for (const std::string tenant : {"alpha", "beta"}) {
      ExpectDigestEq(
          DigestOf(server.source(tenant)), SequentialReplay(acked[tenant]),
          "crash_at=" + std::to_string(crash_at) + " tenant=" + tenant);
    }
  }
}

}  // namespace
}  // namespace dtdevolve::server
