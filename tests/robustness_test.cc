// Robustness: the parsers must reject (never crash, hang, or leak via
// assert) arbitrary mangled input — truncations, splices and random byte
// flips of valid documents, DTDs, trigger rules and schema files.

#include <gtest/gtest.h>

#include "core/trigger_language.h"
#include "dtd/dtd_parser.h"
#include "evolve/persist.h"
#include "workload/rng.h"
#include "xml/parser.h"
#include "xsd/parser.h"

namespace dtdevolve {
namespace {

const char* kSeedXml =
    "<!DOCTYPE a [<!ELEMENT a (b)>]><a x=\"1\"><b>t &amp; u</b>"
    "<!--c--><![CDATA[<z>]]></a>";
const char* kSeedDtd =
    "<!ELEMENT a ((b,c)*|d+)?><!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY>"
    "<!ELEMENT d ANY><!ATTLIST a k (x|y) \"x\" i ID #REQUIRED>";
const char* kSeedRule =
    "ON mail WHEN divergence > 0.25 AND (documents >= 50 OR "
    "invalid_fraction > 0.5) EVOLVE WITH psi = 0.05, enable_or = 0";

std::string Mangle(const std::string& seed, workload::Rng& rng) {
  std::string out = seed;
  switch (rng.Uniform(4)) {
    case 0: {  // truncate
      out.resize(rng.Uniform(static_cast<uint32_t>(out.size()) + 1));
      break;
    }
    case 1: {  // flip bytes
      for (int i = 0; i < 4 && !out.empty(); ++i) {
        out[rng.Uniform(static_cast<uint32_t>(out.size()))] =
            static_cast<char>(rng.Uniform(256));
      }
      break;
    }
    case 2: {  // splice a random chunk of itself somewhere
      if (!out.empty()) {
        size_t from = rng.Uniform(static_cast<uint32_t>(out.size()));
        size_t len = rng.Uniform(16);
        size_t to = rng.Uniform(static_cast<uint32_t>(out.size()));
        out.insert(to, out.substr(from, len));
      }
      break;
    }
    default: {  // duplicate the whole text
      out += out;
      break;
    }
  }
  return out;
}

class Robustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Robustness, XmlParserNeverCrashes) {
  workload::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(kSeedXml, rng);
    StatusOr<xml::Document> doc = xml::ParseDocument(input);
    if (doc.ok()) {
      // Whatever parsed must serialize and re-parse.
      ASSERT_TRUE(doc->has_root());
    }
  }
}

TEST_P(Robustness, DtdParserNeverCrashes) {
  workload::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(kSeedDtd, rng);
    StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(input);
    (void)dtd;  // empty input parses to an empty (OK) DTD by design
  }
}

TEST_P(Robustness, TriggerRuleParserNeverCrashes) {
  workload::Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(kSeedRule, rng);
    StatusOr<core::TriggerRule> rule = core::TriggerRule::Parse(input);
    if (rule.ok()) {
      // Whatever parsed must render and re-parse to the same form.
      std::string rendered = rule->ToString();
      StatusOr<core::TriggerRule> again = core::TriggerRule::Parse(rendered);
      ASSERT_TRUE(again.ok()) << rendered;
    }
  }
}

TEST_P(Robustness, SchemaParserNeverCrashes) {
  const std::string seed =
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
      "<xs:element name=\"a\"><xs:complexType mixed=\"true\">"
      "<xs:sequence><xs:element ref=\"b\" minOccurs=\"0\" "
      "maxOccurs=\"unbounded\"/></xs:sequence></xs:complexType>"
      "</xs:element><xs:element name=\"b\" type=\"xs:string\"/></xs:schema>";
  workload::Rng rng(GetParam() + 3000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(seed, rng);
    StatusOr<xsd::Schema> schema = xsd::ParseSchema(input);
    (void)schema;
  }
}

TEST_P(Robustness, StatsDeserializerNeverCrashes) {
  // Start from a real serialization, then mangle.
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd("<!ELEMENT a (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  evolve::ExtendedDtd ext(std::move(*dtd));
  std::string seed = evolve::SerializeExtendedDtd(ext);
  workload::Rng rng(GetParam() + 4000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(seed, rng);
    StatusOr<evolve::ExtendedDtd> restored =
        evolve::DeserializeExtendedDtd(input);
    (void)restored;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Robustness, ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace dtdevolve
