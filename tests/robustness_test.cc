// Robustness: the parsers must reject (never crash, hang, or leak via
// assert) arbitrary mangled input — truncations, splices and random byte
// flips of valid documents, DTDs, trigger rules and schema files.

#include <gtest/gtest.h>

#include "core/trigger_language.h"
#include "dtd/dtd_parser.h"
#include "evolve/persist.h"
#include "workload/rng.h"
#include "xml/parser.h"
#include "xsd/parser.h"

namespace dtdevolve {
namespace {

const char* kSeedXml =
    "<!DOCTYPE a [<!ELEMENT a (b)>]><a x=\"1\"><b>t &amp; u</b>"
    "<!--c--><![CDATA[<z>]]></a>";
const char* kSeedDtd =
    "<!ELEMENT a ((b,c)*|d+)?><!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY>"
    "<!ELEMENT d ANY><!ATTLIST a k (x|y) \"x\" i ID #REQUIRED>";
const char* kSeedRule =
    "ON mail WHEN divergence > 0.25 AND (documents >= 50 OR "
    "invalid_fraction > 0.5) EVOLVE WITH psi = 0.05, enable_or = 0";

std::string Mangle(const std::string& seed, workload::Rng& rng) {
  std::string out = seed;
  switch (rng.Uniform(4)) {
    case 0: {  // truncate
      out.resize(rng.Uniform(static_cast<uint32_t>(out.size()) + 1));
      break;
    }
    case 1: {  // flip bytes
      for (int i = 0; i < 4 && !out.empty(); ++i) {
        out[rng.Uniform(static_cast<uint32_t>(out.size()))] =
            static_cast<char>(rng.Uniform(256));
      }
      break;
    }
    case 2: {  // splice a random chunk of itself somewhere
      if (!out.empty()) {
        size_t from = rng.Uniform(static_cast<uint32_t>(out.size()));
        size_t len = rng.Uniform(16);
        size_t to = rng.Uniform(static_cast<uint32_t>(out.size()));
        out.insert(to, out.substr(from, len));
      }
      break;
    }
    default: {  // duplicate the whole text
      out += out;
      break;
    }
  }
  return out;
}

class Robustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Robustness, XmlParserNeverCrashes) {
  workload::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(kSeedXml, rng);
    StatusOr<xml::Document> doc = xml::ParseDocument(input);
    if (doc.ok()) {
      // Whatever parsed must serialize and re-parse.
      ASSERT_TRUE(doc->has_root());
    }
  }
}

TEST_P(Robustness, DtdParserNeverCrashes) {
  workload::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(kSeedDtd, rng);
    StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(input);
    (void)dtd;  // empty input parses to an empty (OK) DTD by design
  }
}

TEST_P(Robustness, TriggerRuleParserNeverCrashes) {
  workload::Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(kSeedRule, rng);
    StatusOr<core::TriggerRule> rule = core::TriggerRule::Parse(input);
    if (rule.ok()) {
      // Whatever parsed must render and re-parse to the same form.
      std::string rendered = rule->ToString();
      StatusOr<core::TriggerRule> again = core::TriggerRule::Parse(rendered);
      ASSERT_TRUE(again.ok()) << rendered;
    }
  }
}

TEST_P(Robustness, SchemaParserNeverCrashes) {
  const std::string seed =
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
      "<xs:element name=\"a\"><xs:complexType mixed=\"true\">"
      "<xs:sequence><xs:element ref=\"b\" minOccurs=\"0\" "
      "maxOccurs=\"unbounded\"/></xs:sequence></xs:complexType>"
      "</xs:element><xs:element name=\"b\" type=\"xs:string\"/></xs:schema>";
  workload::Rng rng(GetParam() + 3000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(seed, rng);
    StatusOr<xsd::Schema> schema = xsd::ParseSchema(input);
    (void)schema;
  }
}

TEST_P(Robustness, StatsDeserializerNeverCrashes) {
  // Start from a real serialization, then mangle.
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd("<!ELEMENT a (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  evolve::ExtendedDtd ext(std::move(*dtd));
  std::string seed = evolve::SerializeExtendedDtd(ext);
  workload::Rng rng(GetParam() + 4000);
  for (int i = 0; i < 200; ++i) {
    std::string input = Mangle(seed, rng);
    StatusOr<evolve::ExtendedDtd> restored =
        evolve::DeserializeExtendedDtd(input);
    (void)restored;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Robustness, ::testing::Range<uint64_t>(1, 7));

// Deterministic regressions for hardening fixes: each of these inputs
// once crashed, read out of bounds, or recursed without bound.

TEST(HardeningRegression, TruncatedAttlistRejected) {
  // ParseAttlistDecl used to read past the end of these.
  for (const char* input :
       {"<!ATTLIST", "<!ATTLIST a", "<!ATTLIST a b", "<!ATTLIST a b CDATA",
        "<!ATTLIST a b (x", "<!ATTLIST a b (x|y)", "<!ATTLIST a b CDATA #"}) {
    StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(input);
    EXPECT_FALSE(dtd.ok()) << input;
  }
}

TEST(HardeningRegression, DuplicateElementDeclarationRejected) {
  StatusOr<dtd::Dtd> dtd =
      dtd::ParseDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)><!ELEMENT a (c)>");
  ASSERT_FALSE(dtd.ok());
  EXPECT_NE(dtd.status().ToString().find("duplicate"), std::string::npos);
}

TEST(HardeningRegression, DeeplyNestedXmlRejected) {
  // 512 is the element-depth cap; one past it must be a clean parse error.
  std::string open, close;
  for (int i = 0; i < 600; ++i) {
    open += "<a>";
    close += "</a>";
  }
  EXPECT_FALSE(xml::ParseDocument(open + close).ok());

  std::string ok_open, ok_close;
  for (int i = 0; i < 100; ++i) {
    ok_open += "<a>";
    ok_close += "</a>";
  }
  EXPECT_TRUE(xml::ParseDocument(ok_open + ok_close).ok());
}

TEST(HardeningRegression, DeeplyNestedDtdGroupsRejected) {
  // 200 is the content-model group-depth cap.
  std::string deep = "<!ELEMENT a " + std::string(300, '(') + "b" +
                     std::string(300, ')') + ">";
  EXPECT_FALSE(dtd::ParseDtd(deep).ok());

  std::string fine = "<!ELEMENT a " + std::string(50, '(') + "b" +
                     std::string(50, ')') + "><!ELEMENT b (#PCDATA)>";
  EXPECT_TRUE(dtd::ParseDtd(fine).ok());
}

TEST(HardeningRegression, DeeplyNestedSnapshotPlusStructuresRejected) {
  // A snapshot can nest ElementStats through `plus 1` markers; 512 is the
  // cap. Build one level per iteration, never closing — the parser must
  // stop at the depth limit rather than recurse through all 600 levels.
  std::string input =
      "dtdevolve-stats 1\n"
      "dtd a 1\n"
      "<!ELEMENT a (#PCDATA)>\n"
      "aggregates 0 0 0 0\n"
      "stats 1\n"
      "element a\n";
  for (int i = 0; i < 600; ++i) {
    input +=
        "counters 0 0 0 0 0 0\n"
        "labels 1\n"
        "label x\n"
        "occ 0 0 0 0 0\n"
        "occ 0 0 0 0 0\n"
        "plus 1\n";
  }
  StatusOr<evolve::ExtendedDtd> restored =
      evolve::DeserializeExtendedDtd(input);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("nested deeper"),
            std::string::npos);
}

TEST(HardeningRegression, SnapshotRoundTripSurvivesLongNames) {
  // Found by fuzz_extended_dtd_load: the serializer routed the root and
  // attribute names through a fixed 160-byte snprintf buffer, so names
  // longer than that truncated and serialize(deserialize(x)) was no
  // longer a deserialization fixed point.
  std::string long_root(300, 'r');
  std::string long_attr(300, 'k');
  std::string input =
      "dtdevolve-stats 1\n"
      "dtd " + long_root + " 1\n" +
      "<!ELEMENT a (#PCDATA)>\n"
      "aggregates 0 0 0 0\n"
      "stats 1\n"
      "element a\n"
      "counters 0 0 0 0 0 0\n"
      "labels 0\n"
      "sequences 0\n"
      "groups 0\n"
      "attrs 1\n"
      "attr " + long_attr + " 3\n";
  StatusOr<evolve::ExtendedDtd> restored =
      evolve::DeserializeExtendedDtd(input);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->dtd().root_name(), long_root);
  std::string first = evolve::SerializeExtendedDtd(*restored);
  StatusOr<evolve::ExtendedDtd> again =
      evolve::DeserializeExtendedDtd(first);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(evolve::SerializeExtendedDtd(*again), first);
}

TEST(HardeningRegression, SnapshotRoundTripSurvivesNulBytesInNames) {
  // Found by fuzz_extended_dtd_load (tests/corpus/extended_dtd/
  // nul_in_root_name.snapshot): a byte flip put a NUL inside the root
  // name token. The serializer's snprintf("%s", name.c_str()) stopped at
  // the NUL, mangling the header line, so the re-serialization failed to
  // parse. Names must round-trip byte-exactly, NULs included.
  std::string root = std::string("\0rticle", 7);
  std::string input = "dtdevolve-stats 1\ndtd ";
  input += root;
  input +=
      " 1\n"
      "<!ELEMENT a (#PCDATA)>\n"
      "aggregates 0 0 0 0\n"
      "stats 0\n";
  StatusOr<evolve::ExtendedDtd> restored =
      evolve::DeserializeExtendedDtd(input);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->dtd().root_name(), root);
  std::string first = evolve::SerializeExtendedDtd(*restored);
  StatusOr<evolve::ExtendedDtd> again =
      evolve::DeserializeExtendedDtd(first);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(evolve::SerializeExtendedDtd(*again), first);
}

TEST(HardeningRegression, ShallowSnapshotPlusStructuresAccepted) {
  // The same shape within the limit parses and round-trips.
  std::string input =
      "dtdevolve-stats 1\n"
      "dtd a 1\n"
      "<!ELEMENT a (#PCDATA)>\n"
      "aggregates 0 0 0 0\n"
      "stats 1\n"
      "element a\n";
  const int kDepth = 8;
  for (int i = 0; i < kDepth; ++i) {
    input +=
        "counters 0 0 0 0 0 0\n"
        "labels 1\n"
        "label x\n"
        "occ 0 0 0 0 0\n"
        "occ 0 0 0 0 0\n"
        "plus 1\n";
  }
  input +=
      "counters 0 0 0 0 0 0\n"
      "labels 0\n"
      "sequences 0\n"
      "groups 0\n"
      "attrs 0\n";
  for (int i = 0; i < kDepth; ++i) {
    input +=
        "sequences 0\n"
        "groups 0\n"
        "attrs 0\n";
  }
  StatusOr<evolve::ExtendedDtd> restored =
      evolve::DeserializeExtendedDtd(input);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::string serialized = evolve::SerializeExtendedDtd(*restored);
  StatusOr<evolve::ExtendedDtd> again =
      evolve::DeserializeExtendedDtd(serialized);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(evolve::SerializeExtendedDtd(*again), serialized);
}

}  // namespace
}  // namespace dtdevolve
