// Durability of the induce-accept lifecycle: the WAL record round-trips,
// replay reproduces a live accept exactly (registration + event +
// repository drain), and a checkpoint taken after an accept restores the
// induced DTD even though the seed set never knew its name. Under both
// the `induction` and `durability` ctest labels.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "store/checkpoint.h"
#include "store/induce_record.h"
#include "store/wal.h"
#include "workload/scenarios.h"
#include "xml/writer.h"

namespace dtdevolve::store {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "induction_recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

WalOptions OptionsFor(const std::string& dir) {
  WalOptions options;
  options.dir = dir;
  options.fsync_policy = FsyncPolicy::kNone;  // speed; no crash here
  return options;
}

core::SourceOptions SeedOptions() {
  core::SourceOptions options;
  options.sigma = 0.5;
  options.auto_evolve = false;
  return options;
}

std::unique_ptr<core::XmlSource> MakeSeededSource() {
  auto source = std::make_unique<core::XmlSource>(SeedOptions());
  workload::ScenarioStream seed = workload::MakeBibliographyScenario(1);
  EXPECT_TRUE(source->AddDtd("bibliography", seed.InitialDtd()).ok());
  return source;
}

/// The ingest loop of a durable server: every document is appended to
/// the WAL, then applied. Returns the document texts in order.
std::vector<std::string> IngestMixedPopulation(core::XmlSource& source,
                                               Wal& wal, uint64_t seed,
                                               size_t families,
                                               uint64_t docs_per_family) {
  std::vector<std::string> texts;
  workload::ScenarioStream stream =
      workload::MakeMixedPopulationScenario(seed, families, docs_per_family);
  while (!stream.Done()) {
    std::string text = xml::WriteDocument(stream.Next());
    EXPECT_TRUE(wal.Append(text).ok());
    EXPECT_TRUE(source.ProcessText(text).ok());
    texts.push_back(std::move(text));
  }
  return texts;
}

/// Induces, accepts the first candidate, and logs the accept — the live
/// half of the durability contract under test.
std::string AcceptFirstCandidate(core::XmlSource& source, Wal& wal) {
  EXPECT_GT(source.InduceCandidates(), 0u);
  const induce::Candidate& first = source.candidates().front();
  const std::string record =
      EncodeInduceAcceptRecord(first.name, first.ext);
  EXPECT_TRUE(wal.Append(record).ok());
  StatusOr<core::XmlSource::AcceptOutcome> outcome =
      source.AcceptCandidate(first.id);
  EXPECT_TRUE(outcome.ok());
  return outcome.ok() ? outcome->dtd_name : "";
}

TEST(InduceRecordTest, EncodeDecodeRoundTrip) {
  evolve::ExtendedDtd ext(workload::MixedPopulationFamilyDtd(0));
  const std::string payload = EncodeInduceAcceptRecord("induced-invoice", ext);
  ASSERT_TRUE(IsInduceAcceptRecord(payload));
  StatusOr<InduceAcceptRecord> decoded = DecodeInduceAcceptRecord(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->name, "induced-invoice");
  EXPECT_EQ(dtd::WriteDtd(decoded->ext.dtd()), dtd::WriteDtd(ext.dtd()));
}

TEST(InduceRecordTest, XmlPayloadsAreNotInduceRecords) {
  // Document payloads always start with '<'; the dispatch must never
  // mistake one for an accept record (or vice versa).
  EXPECT_FALSE(IsInduceAcceptRecord("<mail><body>x</body></mail>"));
  evolve::ExtendedDtd ext(workload::MixedPopulationFamilyDtd(1));
  EXPECT_NE(EncodeInduceAcceptRecord("n", ext).front(), '<');
}

TEST(InduceRecordTest, DecodeRejectsCorruptPayloads) {
  evolve::ExtendedDtd ext(workload::MixedPopulationFamilyDtd(2));
  const std::string good = EncodeInduceAcceptRecord("induced-recipe", ext);
  // Truncation anywhere in the body must fail, not misparse.
  EXPECT_FALSE(DecodeInduceAcceptRecord(good.substr(0, good.size() / 2)).ok());
  EXPECT_FALSE(
      DecodeInduceAcceptRecord(std::string(kInduceAcceptHeader)).ok());
  EXPECT_FALSE(DecodeInduceAcceptRecord("dtdevolve-induce-accept 2\n").ok());
}

TEST(InductionRecoveryTest, ReplayReproducesALiveAccept) {
  const std::string dir = FreshDir("replay");
  std::string induced_name;
  uint64_t live_processed = 0;
  size_t live_repository = 0;
  std::string live_dtd_text;
  {
    WalReplay replay;
    StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(OptionsFor(dir), 0, &replay);
    ASSERT_TRUE(wal.ok());
    std::unique_ptr<core::XmlSource> live = MakeSeededSource();
    IngestMixedPopulation(*live, **wal, 31, 2, 12);
    induced_name = AcceptFirstCandidate(*live, **wal);
    ASSERT_FALSE(induced_name.empty());
    live_processed = live->documents_processed();
    live_repository = live->repository().size();
    live_dtd_text = dtd::WriteDtd(*live->FindDtd(induced_name));
  }

  // Boot a fresh process: seed DTDs only, then recovery.
  std::unique_ptr<core::XmlSource> recovered = MakeSeededSource();
  RecoveryReport report;
  StatusOr<std::unique_ptr<Wal>> wal =
      RecoverSource(*recovered, OptionsFor(dir), &report);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(report.replayed_records, 2 * 12 + 1u);

  // Same DTD set (including the induced one, declaration-identical),
  // same counters, same drained repository, same event.
  ASSERT_NE(recovered->FindDtd(induced_name), nullptr);
  EXPECT_EQ(dtd::WriteDtd(*recovered->FindDtd(induced_name)), live_dtd_text);
  EXPECT_EQ(recovered->documents_processed(), live_processed);
  EXPECT_EQ(recovered->repository().size(), live_repository);
  EXPECT_EQ(recovered->candidates_accepted(), 1u);
  bool induced_event = false;
  for (const core::SourceEvent& event : recovered->events()) {
    if (event.kind == core::SourceEvent::Kind::kDtdInduced) {
      induced_event = true;
      EXPECT_EQ(event.dtd_name, induced_name);
    }
  }
  EXPECT_TRUE(induced_event);

  // New members of the induced family classify on the recovered source.
  workload::ScenarioStream fresh =
      workload::MakeMixedPopulationScenario(77, 2, 2);
  size_t classified = 0;
  while (!fresh.Done()) {
    if (recovered->Process(fresh.Next()).classified) ++classified;
  }
  EXPECT_GT(classified, 0u);
}

TEST(InductionRecoveryTest, CheckpointRestoresInducedDtdByRegistration) {
  const std::string dir = FreshDir("checkpoint");
  std::string induced_name;
  size_t live_repository = 0;
  std::string live_dtd_text;
  {
    WalReplay replay;
    StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(OptionsFor(dir), 0, &replay);
    ASSERT_TRUE(wal.ok());
    std::unique_ptr<core::XmlSource> live = MakeSeededSource();
    IngestMixedPopulation(*live, **wal, 41, 2, 10);
    induced_name = AcceptFirstCandidate(*live, **wal);
    ASSERT_FALSE(induced_name.empty());
    live_repository = live->repository().size();
    live_dtd_text = dtd::WriteDtd(*live->FindDtd(induced_name));

    // Checkpoint covering everything, then truncate the WAL: the accept
    // now survives *only* inside the checkpoint.
    CheckpointData data = CaptureCheckpoint(*live, (*wal)->next_lsn() - 1);
    ASSERT_TRUE(WriteCheckpoint(dir, data).ok());
    ASSERT_TRUE((*wal)->TruncateThrough(data.lsn).ok());
  }

  // The fresh boot registers only the seed DTDs; the checkpoint's
  // induced snapshot has no seed to restore over, so recovery must
  // create it (RegisterInducedDtd fallback) rather than fail kNotFound.
  std::unique_ptr<core::XmlSource> recovered = MakeSeededSource();
  RecoveryReport report;
  StatusOr<std::unique_ptr<Wal>> wal =
      RecoverSource(*recovered, OptionsFor(dir), &report);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(report.replayed_records, 0u);
  EXPECT_EQ(report.checkpoint_dtds, 2u);

  ASSERT_NE(recovered->FindDtd(induced_name), nullptr);
  EXPECT_EQ(dtd::WriteDtd(*recovered->FindDtd(induced_name)), live_dtd_text);
  EXPECT_EQ(recovered->repository().size(), live_repository);

  // And the restored evaluator works: induced-family documents classify.
  workload::ScenarioStream fresh =
      workload::MakeMixedPopulationScenario(78, 2, 2);
  size_t classified = 0;
  while (!fresh.Done()) {
    if (recovered->Process(fresh.Next()).classified) ++classified;
  }
  EXPECT_GT(classified, 0u);
}

}  // namespace
}  // namespace dtdevolve::store
