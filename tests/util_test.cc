#include <gtest/gtest.h>

#include "util/status.h"
#include "util/string_util.h"
#include "util/symbol_table.h"

namespace dtdevolve {
namespace {

TEST(SymbolTableTest, BoundedInterningStopsAtCapacity) {
  util::SymbolTable table;
  table.set_capacity(/*max_entries=*/2, /*max_bytes=*/1024);
  EXPECT_EQ(table.InternBounded("a"), 0);
  EXPECT_EQ(table.InternBounded("b"), 1);
  // At capacity: new names overflow to the sentinel without inserting.
  EXPECT_EQ(table.InternBounded("c"), util::SymbolTable::kNoSymbol);
  EXPECT_EQ(table.Find("c"), util::SymbolTable::kNoSymbol);
  EXPECT_EQ(table.size(), 2u);
  // Names interned before the cap was hit still resolve.
  EXPECT_EQ(table.InternBounded("a"), 0);
  // Trusted interning ignores the cap (DTD labels must always get ids)…
  EXPECT_EQ(table.Intern("c"), 2);
  // …and the bounded path then resolves the existing entry.
  EXPECT_EQ(table.InternBounded("c"), 2);
}

TEST(SymbolTableTest, BoundedInterningRespectsByteBudget) {
  util::SymbolTable table;
  table.set_capacity(/*max_entries=*/100, /*max_bytes=*/8);
  EXPECT_EQ(table.InternBounded("abcd"), 0);
  EXPECT_EQ(table.InternBounded("efgh"), 1);  // budget now exhausted
  EXPECT_EQ(table.InternBounded("x"), util::SymbolTable::kNoSymbol);
  EXPECT_EQ(table.InternBounded("abcd"), 0);  // existing entries unaffected
}

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    Status::Code code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), Status::Code::kInvalidArgument,
       "InvalidArgument"},
      {Status::ParseError("m"), Status::Code::kParseError, "ParseError"},
      {Status::NotFound("m"), Status::Code::kNotFound, "NotFound"},
      {Status::AlreadyExists("m"), Status::Code::kAlreadyExists,
       "AlreadyExists"},
      {Status::FailedPrecondition("m"), Status::Code::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("m"), Status::Code::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
  }
}

TEST(StatusOrTest, ValueAndStatusPaths) {
  StatusOr<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value(), 42);

  StatusOr<int> bad = Status::NotFound("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(7);
  ASSERT_TRUE(holder.ok());
  EXPECT_EQ(**holder, 7);
  std::unique_ptr<int> taken = std::move(holder).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> text = std::string("hello");
  EXPECT_EQ(text->size(), 5u);
}

TEST(ReturnIfErrorTest, PropagatesAndPasses) {
  auto fails = []() -> Status {
    DTDEVOLVE_RETURN_IF_ERROR(Status::Internal("boom"));
    return Status::Ok();
  };
  EXPECT_EQ(fails().code(), Status::Code::kInternal);
  auto passes = []() -> Status {
    DTDEVOLVE_RETURN_IF_ERROR(Status::Ok());
    return Status::NotFound("reached");
  };
  EXPECT_EQ(passes().code(), Status::Code::kNotFound);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string original = "x|y||z";
  EXPECT_EQ(Join(Split(original, '|'), "|"), original);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\n x \r\n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_TRUE(StartsWith("hello", "hello"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(StringUtilTest, IsBlank) {
  EXPECT_TRUE(IsBlank(""));
  EXPECT_TRUE(IsBlank(" \t\r\n"));
  EXPECT_FALSE(IsBlank(" x "));
}

}  // namespace
}  // namespace dtdevolve
