// The crash-recovery oracle itself (src/check): a small fault-injection
// sweep must hold the crash-recovery and recovery-idempotence
// invariants, enumerate a sensible number of crash points, and surface
// violations with a replay command. Kept small — the durable pipeline
// re-runs once per crash point — while `dtdevolve check
// --crash-recovery` runs the full-width sweep.

#include <gtest/gtest.h>

#include <string>

#include "check/oracle.h"

namespace dtdevolve::check {
namespace {

TEST(CrashOracleTest, RecoveryMatchesAckedPrefixAcrossCrashPoints) {
  CrashOracleOptions options;
  options.scenarios = 2;
  options.seed = 1;
  options.max_documents = 12;
  options.max_crash_points = 16;
  options.checkpoint_every = 5;  // the sweep crosses checkpoint writes
  CrashOracleReport report = RunCrashOracle(options);
  EXPECT_TRUE(report.ok()) << FormatCrashReport(report);
  EXPECT_EQ(report.scenarios_run, 2u);
  // Vacuity guard: the sweep must have injected real crashes.
  EXPECT_GE(report.crash_points, 16u);
  EXPECT_GT(report.documents, 0u);
}

TEST(CrashOracleTest, InductionSweepCoversInduceAcceptRecords) {
  CrashOracleOptions options;
  options.induction = true;
  options.scenarios = 2;
  options.seed = 1;
  options.max_documents = 16;
  options.max_crash_points = 20;
  options.checkpoint_every = 7;  // checkpoints land between accepts too
  CrashOracleReport report = RunCrashOracle(options);
  EXPECT_TRUE(report.ok()) << FormatCrashReport(report);
  EXPECT_EQ(report.scenarios_run, 2u);
  EXPECT_GE(report.crash_points, 20u);
}

TEST(CrashOracleTest, SweepIsDeterministic) {
  CrashOracleOptions options;
  options.scenarios = 1;
  options.seed = 5;
  options.max_documents = 8;
  options.max_crash_points = 6;
  uint64_t points_first = 0;
  uint64_t points_second = 0;
  ScenarioResult first = RunCrashScenario(5, options, &points_first);
  ScenarioResult second = RunCrashScenario(5, options, &points_second);
  EXPECT_TRUE(first.ok()) << FormatScenario(first);
  EXPECT_EQ(first.documents, second.documents);
  EXPECT_EQ(points_first, points_second);
  EXPECT_EQ(first.violations.size(), second.violations.size());
}

TEST(CrashOracleTest, ReportCarriesReplayCommand) {
  CrashOracleReport failing;
  failing.scenarios_run = 1;
  failing.crash_points = 4;
  ScenarioResult scenario;
  scenario.seed = 42;
  scenario.scenario = "synthetic";
  scenario.violations.push_back(
      {"crash-recovery", "mail", 3, "state diverged"});
  failing.failures.push_back(scenario);

  const std::string text = FormatCrashReport(failing);
  EXPECT_NE(text.find("--crash-recovery"), std::string::npos);
  EXPECT_NE(text.find("--seed 42"), std::string::npos);

  CrashOracleReport clean;
  clean.scenarios_run = 2;
  clean.crash_points = 64;
  EXPECT_NE(FormatCrashReport(clean).find("matched"), std::string::npos);
}

}  // namespace
}  // namespace dtdevolve::check
