// Multi-tenant suite: the SourceManager shard fabric behind the ingest
// server — tenant routing over the HTTP surface, shard isolation,
// consistent anonymous routing, per-tenant metrics labels, and
// concurrent cross-tenant ingest over a shared thread pool. Heavily
// multi-threaded, so the suite runs under the `concurrency` ctest
// label for TSan runs.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "server/source_manager.h"

namespace dtdevolve::server {
namespace {

const char* kMailDtd = R"(
  <!ELEMENT mail (envelope, body)>
  <!ELEMENT envelope (from, to, subject)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kConformingDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "</envelope><body>hello</body></mail>";

const char* kDriftedDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "<cc>c</cc></envelope><body>hello</body>"
    "<attachment>x</attachment></mail>";

struct ClientResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// One blocking HTTP exchange; `out->status` stays 0 on transport
/// failure (same framing as server_test.cc).
void HttpRoundTrip(uint16_t port, const std::string& request,
                   ClientResponse* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ADD_FAILURE() << "connect: " << std::strerror(errno);
    ::close(fd);
    return;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ADD_FAILURE() << "send: " << std::strerror(errno);
      ::close(fd);
      return;
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.rfind("HTTP/1.1 ", 0) != 0) {
    ADD_FAILURE() << "unframed response: " << raw;
    return;
  }
  out->head = raw.substr(0, split);
  out->body = raw.substr(split + 4);
  out->status = std::atoi(out->head.c_str() + 9);
}

ClientResponse Get(uint16_t port, const std::string& target) {
  ClientResponse response;
  HttpRoundTrip(port,
                "GET " + target +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                &response);
  return response;
}

ClientResponse Post(uint16_t port, const std::string& target,
                    const std::string& body) {
  ClientResponse response;
  HttpRoundTrip(port,
                "POST " + target +
                    " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body,
                &response);
  return response;
}

core::SourceOptions EvolvingOptions() {
  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 1;
  return options;
}

ServerOptions TenantOptions(std::vector<std::string> tenants) {
  ServerOptions options;
  options.port = 0;
  options.jobs = 2;
  options.tenants = std::move(tenants);
  return options;
}

/// The `"tenant":"..."` value of an ingest response body.
std::string TenantOf(const ClientResponse& response) {
  const std::string key = "\"tenant\":\"";
  const size_t start = response.body.find(key);
  if (start == std::string::npos) return "";
  const size_t from = start + key.size();
  return response.body.substr(from, response.body.find('"', from) - from);
}

TEST(SourceManagerTest, SafeFileComponentKeepsCollidingNamesDistinct) {
  // Clean names pass through untouched — the single-tenant snapshot
  // layout (`mail.dtdstate`) must not change.
  EXPECT_EQ(SafeFileComponent("mail"), "mail");
  EXPECT_EQ(SafeFileComponent("invoice-v2"), "invoice-v2");
  // Names that sanitize to the same stem must stay distinct files.
  EXPECT_NE(SafeFileComponent("a/b"), SafeFileComponent("a_b"));
  EXPECT_NE(SafeFileComponent("a/b"), SafeFileComponent("a\\b"));
  EXPECT_NE(SafeFileComponent("../x"), SafeFileComponent("__/x"));
  // Sanitized output never re-introduces path separators.
  EXPECT_EQ(SafeFileComponent("a/b").find('/'), std::string::npos);
}

TEST(SourceManagerTest, TenantRoutingAndEndpointSurface) {
  IngestServer server(EvolvingOptions(), TenantOptions({"alpha", "beta"}));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  ClientResponse tenants = Get(server.port(), "/tenants");
  EXPECT_EQ(tenants.status, 200);
  EXPECT_NE(tenants.body.find("\"alpha\""), std::string::npos);
  EXPECT_NE(tenants.body.find("\"beta\""), std::string::npos);

  // Path routing: evolve alpha's DTD only.
  ASSERT_EQ(Post(server.port(), "/ingest/alpha?wait=1", kConformingDoc).status,
            200);
  ClientResponse drifted =
      Post(server.port(), "/ingest/alpha?wait=1", kDriftedDoc);
  ASSERT_EQ(drifted.status, 200);
  EXPECT_EQ(TenantOf(drifted), "alpha");
  EXPECT_NE(drifted.body.find("\"evolved\":true"), std::string::npos);

  // Query routing is the equivalent spelling.
  ClientResponse beta_post =
      Post(server.port(), "/ingest?tenant=beta&wait=1", kConformingDoc);
  ASSERT_EQ(beta_post.status, 200);
  EXPECT_EQ(TenantOf(beta_post), "beta");

  // Unknown tenants are a routing 404, not a silent default.
  EXPECT_EQ(Post(server.port(), "/ingest/nope", kConformingDoc).status, 404);
  EXPECT_EQ(Get(server.port(), "/stats?tenant=nope").status, 404);

  // Shard isolation: alpha evolved, beta's DTD is still the seed.
  ClientResponse alpha_dtd = Get(server.port(), "/dtds/mail?tenant=alpha");
  EXPECT_EQ(alpha_dtd.status, 200);
  EXPECT_NE(alpha_dtd.body.find("attachment"), std::string::npos);
  ClientResponse beta_dtd = Get(server.port(), "/dtds/mail?tenant=beta");
  EXPECT_EQ(beta_dtd.status, 200);
  EXPECT_EQ(beta_dtd.body.find("attachment"), std::string::npos);

  // Per-tenant stats, and the multi-tenant aggregate with rollup.
  ClientResponse alpha_stats = Get(server.port(), "/stats?tenant=alpha");
  EXPECT_NE(alpha_stats.body.find("\"tenant\":\"alpha\""), std::string::npos);
  EXPECT_NE(alpha_stats.body.find("\"documents_processed\":2"),
            std::string::npos);
  ClientResponse aggregate = Get(server.port(), "/stats");
  EXPECT_NE(aggregate.body.find("\"documents_processed\":3"),
            std::string::npos);
  EXPECT_NE(aggregate.body.find("\"tenants\":{"), std::string::npos);
  EXPECT_NE(aggregate.body.find("\"beta\":{"), std::string::npos);

  // /dtds with no tenant rolls up every shard's list.
  ClientResponse dtds = Get(server.port(), "/dtds");
  EXPECT_NE(dtds.body.find("\"alpha\":[\"mail\"]"), std::string::npos);
  EXPECT_NE(dtds.body.find("\"beta\":[\"mail\"]"), std::string::npos);

  // Shard series carry the tenant label; the shard-count gauge is
  // process-wide.
  ClientResponse metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find(
                "dtdevolve_documents_processed_total{tenant=\"alpha\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(
                "dtdevolve_documents_processed_total{tenant=\"beta\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("dtdevolve_tenants 2"), std::string::npos);

  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source("alpha").evolutions_performed(), 1u);
  EXPECT_EQ(server.source("beta").evolutions_performed(), 0u);
}

TEST(SourceManagerTest, AnonymousTrafficRoutesConsistently) {
  // Without a "default" shard, anonymous documents ride the consistent
  // hash of their root tag: the same document class always lands on the
  // same shard.
  {
    IngestServer server(EvolvingOptions(), TenantOptions({"a", "b", "c"}));
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    ClientResponse first = Post(server.port(), "/ingest?wait=1",
                                kConformingDoc);
    ClientResponse second = Post(server.port(), "/ingest?wait=1",
                                 kConformingDoc);
    ASSERT_EQ(first.status, 200);
    ASSERT_EQ(second.status, 200);
    EXPECT_FALSE(TenantOf(first).empty());
    EXPECT_EQ(TenantOf(first), TenantOf(second));
    server.Shutdown();
    server.Wait();
  }
  // With a "default" shard, anonymous traffic goes there — the
  // backward-compatible contract.
  {
    IngestServer server(EvolvingOptions(),
                        TenantOptions({"default", "other"}));
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());
    ClientResponse anonymous =
        Post(server.port(), "/ingest?wait=1", kConformingDoc);
    ASSERT_EQ(anonymous.status, 200);
    EXPECT_EQ(TenantOf(anonymous), "default");
    server.Shutdown();
    server.Wait();
  }
}

TEST(SourceManagerTest, ConcurrentCrossTenantIngestIsolatesShards) {
  const std::vector<std::string> tenants = {"t0", "t1", "t2", "t3"};
  IngestServer server(EvolvingOptions(), TenantOptions(tenants));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // One client per tenant, hammering its own shard; t0's client sends
  // drifted documents so exactly one shard evolves under contention.
  constexpr int kDocsPerTenant = 6;
  std::vector<std::thread> clients;
  clients.reserve(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    clients.emplace_back([&, t] {
      const std::string target = "/ingest/" + tenants[t] + "?wait=1";
      const char* doc = (t == 0) ? kDriftedDoc : kConformingDoc;
      for (int i = 0; i < kDocsPerTenant; ++i) {
        ClientResponse response = Post(server.port(), target, doc);
        EXPECT_EQ(response.status, 200) << tenants[t] << " doc " << i;
        EXPECT_EQ(TenantOf(response), tenants[t]);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  server.Shutdown();
  server.Wait();

  uint64_t total = 0;
  for (const std::string& tenant : tenants) {
    EXPECT_EQ(server.source(tenant).documents_processed(),
              static_cast<uint64_t>(kDocsPerTenant))
        << tenant;
    total += server.source(tenant).documents_processed();
  }
  EXPECT_EQ(total, tenants.size() * kDocsPerTenant);
  // Drift stayed inside t0: the other shards never evolved.
  EXPECT_GE(server.source("t0").evolutions_performed(), 1u);
  for (size_t t = 1; t < tenants.size(); ++t) {
    EXPECT_EQ(server.source(tenants[t]).evolutions_performed(), 0u)
        << tenants[t];
  }
}

TEST(SourceManagerTest, PerTenantSeedsStayPerTenant) {
  const char* kNoteDtd = R"(
    <!ELEMENT note (heading, text)>
    <!ELEMENT heading (#PCDATA)>
    <!ELEMENT text (#PCDATA)>
  )";
  IngestServer server(EvolvingOptions(), TenantOptions({"alpha", "beta"}));
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.AddTenantDtdText("beta", "note", kNoteDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  EXPECT_EQ(Get(server.port(), "/dtds/note?tenant=beta").status, 200);
  EXPECT_EQ(Get(server.port(), "/dtds/note?tenant=alpha").status, 404);

  server.Shutdown();
  server.Wait();
}

TEST(SourceManagerTest, TenantInductionIsIsolatedAndSurvivesRestart) {
  const char* kInvoiceDoc =
      "<invoice><customer>c</customer><item><sku>s</sku><qty>1</qty></item>"
      "<total>9</total></invoice>";
  const std::string wal_root =
      ::testing::TempDir() + "source_manager_induction_wal";
  std::system(("rm -rf '" + wal_root + "'").c_str());

  core::SourceOptions source_options = EvolvingOptions();
  source_options.sigma = 0.5;
  source_options.auto_evolve = false;

  std::string candidate_id;
  {
    ServerOptions options = TenantOptions({"alpha", "beta"});
    options.wal_dir = wal_root;
    options.checkpoint_on_shutdown = false;  // leave only the WAL behind
    IngestServer server(source_options, options);
    ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(server.Start().ok());

    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(
          Post(server.port(), "/ingest/alpha?wait=1", kInvoiceDoc).status,
          200);
    }
    // Induction is per tenant: alpha proposes, beta has nothing.
    ClientResponse induced =
        Post(server.port(), "/dtds/induce?tenant=alpha", "");
    ASSERT_EQ(induced.status, 200);
    EXPECT_NE(induced.body.find("\"candidates\":1"), std::string::npos);
    ClientResponse beta = Post(server.port(), "/dtds/induce?tenant=beta", "");
    ASSERT_EQ(beta.status, 200);
    EXPECT_NE(beta.body.find("\"candidates\":0"), std::string::npos);
    // Multi-tenant mode requires the tenant on admin calls.
    EXPECT_EQ(Post(server.port(), "/dtds/induce", "").status, 400);

    ClientResponse listing =
        Get(server.port(), "/dtds/candidates?tenant=alpha");
    const size_t pos = listing.body.find("\"id\":");
    ASSERT_NE(pos, std::string::npos) << listing.body;
    candidate_id = std::to_string(
        std::strtoull(listing.body.c_str() + pos + 5, nullptr, 10));

    ClientResponse accepted =
        Post(server.port(),
             "/dtds/candidates/" + candidate_id + "/accept?tenant=alpha", "");
    ASSERT_EQ(accepted.status, 200) << accepted.body;
    server.Shutdown();
    server.Wait();
  }

  // Restart: the accept lives in alpha's WAL lineage only.
  {
    ServerOptions options = TenantOptions({"alpha", "beta"});
    options.wal_dir = wal_root;
    IngestServer restarted(source_options, options);
    ASSERT_TRUE(restarted.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(restarted.Start().ok());

    EXPECT_EQ(
        Get(restarted.port(), "/dtds/induced-invoice?tenant=alpha").status,
        200);
    EXPECT_EQ(
        Get(restarted.port(), "/dtds/induced-invoice?tenant=beta").status,
        404);
    // Alpha's repository drained through the replayed accept.
    ClientResponse stats = Get(restarted.port(), "/stats?tenant=alpha");
    EXPECT_NE(stats.body.find("\"repository\":{\"size\":0"),
              std::string::npos)
        << stats.body;

    restarted.Shutdown();
    restarted.Wait();
  }
  std::system(("rm -rf '" + wal_root + "'").c_str());
}

TEST(SourceManagerTest, TokenBucketRateLimitAnswers429PerTenant) {
  ServerOptions options = TenantOptions({"fast", "slow"});
  TenantQuota quota;
  quota.rate = 1.0;  // refills far slower than the test posts
  quota.burst = 2.0;
  options.tenant_quotas["slow"] = quota;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  int slow_ok = 0;
  int slow_limited = 0;
  for (int i = 0; i < 6; ++i) {
    ClientResponse response =
        Post(server.port(), "/ingest/slow", kConformingDoc);
    if (response.status == 202) {
      ++slow_ok;
    } else {
      ASSERT_EQ(response.status, 429) << response.head;
      EXPECT_NE(response.head.find("Retry-After:"), std::string::npos);
      ++slow_limited;
    }
  }
  // The burst admits the first two; the 1/s refill cannot keep up with
  // six back-to-back posts.
  EXPECT_GE(slow_ok, 2);
  EXPECT_GE(slow_limited, 1);

  // The unquota'd neighbor is untouched by the slow tenant's bucket.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(Post(server.port(), "/ingest/fast", kConformingDoc).status,
              202);
  }

  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source("fast").documents_processed(), 6u);
  EXPECT_EQ(server.source("slow").documents_processed(),
            static_cast<uint64_t>(slow_ok));

  // The tenant-labeled counter matches what the client observed.
  const std::string metrics = server.metrics().RenderPrometheus();
  EXPECT_NE(metrics.find(
                "dtdevolve_ingest_rate_limited_total{tenant=\"slow\"} " +
                std::to_string(slow_limited)),
            std::string::npos)
      << metrics;
}

TEST(SourceManagerTest, DocSizeQuotaAnswers413BeforeTheParse) {
  ServerOptions options = TenantOptions({"tiny", "roomy"});
  TenantQuota quota;
  quota.max_doc_bytes = 64;
  options.tenant_quotas["tiny"] = quota;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // Oversized AND malformed: a 413 (not a 400) proves the quota fired
  // before the parser ever saw the body.
  const std::string oversized = "<mail>" + std::string(200, 'x');
  EXPECT_EQ(Post(server.port(), "/ingest/tiny", oversized).status, 413);
  // In-quota documents still flow.
  EXPECT_EQ(Post(server.port(), "/ingest/tiny", "<mail>s</mail>").status,
            202);
  // The quota is tiny's alone — the same oversized body is merely a 400
  // (parse error) for the unquota'd tenant.
  EXPECT_EQ(Post(server.port(), "/ingest/roomy?wait=1", oversized).status,
            400);

  server.Shutdown();
  server.Wait();
}

TEST(SourceManagerTest, RepositoryQuotaEvictOldestKeepsTheNewestDocs) {
  ServerOptions options = TenantOptions({});
  options.max_repository_docs = 3;
  options.repository_policy = RepositoryQuotaPolicy::kEvictOldest;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // Unclassifiable documents land in the repository; wait=1 makes each
  // its own batch so enforcement runs after every overflow.
  for (int i = 0; i < 6; ++i) {
    const std::string doc =
        "<junk><payload>p" + std::to_string(i) + "</payload></junk>";
    EXPECT_EQ(Post(server.port(), "/ingest?wait=1", doc).status, 200);
  }

  server.Shutdown();
  server.Wait();
  const std::vector<int> ids = server.source().repository().Ids();
  ASSERT_EQ(ids.size(), 3u);
  // Oldest evicted: the survivors are the three newest insertions.
  EXPECT_EQ(ids.front(), 3);
  EXPECT_EQ(ids.back(), 5);
}

TEST(SourceManagerTest, RepositoryQuotaRejectNewKeepsTheEstablishedDocs) {
  ServerOptions options = TenantOptions({});
  options.max_repository_docs = 3;
  options.repository_policy = RepositoryQuotaPolicy::kRejectNew;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 6; ++i) {
    const std::string doc =
        "<junk><payload>p" + std::to_string(i) + "</payload></junk>";
    EXPECT_EQ(Post(server.port(), "/ingest?wait=1", doc).status, 200);
  }

  server.Shutdown();
  server.Wait();
  const std::vector<int> ids = server.source().repository().Ids();
  ASSERT_EQ(ids.size(), 3u);
  // Newcomers evicted: the established first three stay.
  EXPECT_EQ(ids.front(), 0);
  EXPECT_EQ(ids.back(), 2);
}

TEST(SourceManagerTest, FloodedTenantCannotStarveItsNeighbor) {
  ServerOptions options = TenantOptions({"victim", "flood"});
  TenantQuota quota;
  quota.rate = 5.0;
  quota.burst = 2.0;
  options.tenant_quotas["flood"] = quota;
  IngestServer server(EvolvingOptions(), options);
  ASSERT_TRUE(server.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(server.Start().ok());

  // The flood hammers its shard from two threads while the victim
  // ingests synchronously — every victim document must land.
  std::thread flooders[2];
  for (std::thread& flooder : flooders) {
    flooder = std::thread([&] {
      for (int i = 0; i < 20; ++i) {
        ClientResponse response =
            Post(server.port(), "/ingest/flood", kConformingDoc);
        EXPECT_TRUE(response.status == 202 || response.status == 429)
            << response.status;
      }
    });
  }
  constexpr int kVictimDocs = 8;
  for (int i = 0; i < kVictimDocs; ++i) {
    EXPECT_EQ(
        Post(server.port(), "/ingest/victim?wait=1", kConformingDoc).status,
        200)
        << "victim doc " << i;
  }
  for (std::thread& flooder : flooders) flooder.join();

  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.source("victim").documents_processed(),
            static_cast<uint64_t>(kVictimDocs));
  // The bucket held: far fewer flood documents were admitted than sent.
  EXPECT_LT(server.source("flood").documents_processed(), 40u);
}

}  // namespace
}  // namespace dtdevolve::server
