#include <gtest/gtest.h>

#include "baseline/naive_infer.h"
#include "baseline/xtract.h"
#include "validate/validator.h"
#include "xml/parser.h"

namespace dtdevolve::baseline {
namespace {

std::vector<xml::Document> MakeDocs(std::vector<const char*> texts) {
  std::vector<xml::Document> docs;
  for (const char* text : texts) {
    StatusOr<xml::Document> doc = xml::ParseDocument(text);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    docs.push_back(std::move(*doc));
  }
  return docs;
}

/// Every inferred DTD must validate the documents it was inferred from
/// ("precise" in XTRACT's sense) — for the generalizing inferencers.
void ExpectValidatesAll(const dtd::Dtd& dtd,
                        const std::vector<xml::Document>& docs) {
  validate::Validator validator(dtd);
  for (const xml::Document& doc : docs) {
    validate::ValidationResult result = validator.Validate(doc);
    EXPECT_TRUE(result.valid) << (result.errors.empty()
                                      ? "?"
                                      : result.errors[0].message);
  }
}

TEST(CollectTest, GroupsContentByTag) {
  std::vector<xml::Document> docs = MakeDocs({
      "<a><b>1</b><c>2</c></a>",
      "<a><b>3</b></a>",
  });
  std::map<std::string, TagContent> content = CollectTagContent(docs);
  EXPECT_EQ(content.size(), 3u);
  EXPECT_EQ(content["a"].instances, 2u);
  EXPECT_EQ(content["a"].sequences.size(), 2u);
  EXPECT_EQ(content["b"].instances, 2u);
  EXPECT_EQ(content["b"].text_instances, 2u);
}

TEST(NaiveInferTest, UniformDocuments) {
  std::vector<xml::Document> docs = MakeDocs({
      "<a><b>1</b><c>2</c></a>",
      "<a><b>3</b><c>4</c></a>",
  });
  dtd::Dtd dtd = InferNaiveDtd(docs, "a");
  EXPECT_EQ(dtd.FindElement("a")->content->ToString(), "(b,c)");
  EXPECT_EQ(dtd.FindElement("b")->content->ToString(), "(#PCDATA)");
  ExpectValidatesAll(dtd, docs);
  EXPECT_TRUE(dtd.Check().ok());
}

TEST(NaiveInferTest, OptionalAndRepeatedChildren) {
  std::vector<xml::Document> docs = MakeDocs({
      "<a><b>1</b></a>",
      "<a><b>1</b><b>2</b><c>3</c></a>",
  });
  dtd::Dtd dtd = InferNaiveDtd(docs, "a");
  EXPECT_EQ(dtd.FindElement("a")->content->ToString(), "(b+,c?)");
  ExpectValidatesAll(dtd, docs);
}

TEST(NaiveInferTest, CannotExpressAlternatives) {
  // The §5 contrast: a union-based inferencer has no OR operator, so
  // mutually exclusive children become independent optionals — less
  // precise than the evolution approach.
  std::vector<xml::Document> docs = MakeDocs({
      "<a><d>1</d></a>",
      "<a><e>2</e></a>",
  });
  dtd::Dtd dtd = InferNaiveDtd(docs, "a");
  EXPECT_EQ(dtd.FindElement("a")->content->ToString(), "(d?,e?)");
  ExpectValidatesAll(dtd, docs);
  // …and consequently also accepts the never-seen combinations.
  validate::Validator validator(dtd);
  StatusOr<xml::Document> both = xml::ParseDocument("<a><d>1</d><e>2</e></a>");
  EXPECT_TRUE(validator.Validate(*both).valid);
}

TEST(NaiveInferTest, MixedAndEmptyContent) {
  std::vector<xml::Document> docs = MakeDocs({
      "<a>text <b>x</b> more</a>",
      "<a><b>y</b></a>",
      "<a><b/></a>",
  });
  dtd::Dtd dtd = InferNaiveDtd(docs, "a");
  EXPECT_EQ(dtd.FindElement("a")->content->ToString(), "(#PCDATA|b)*");
  // b was empty once and texty twice: text wins (#PCDATA admits empty).
  EXPECT_EQ(dtd.FindElement("b")->content->ToString(), "(#PCDATA)");
  ExpectValidatesAll(dtd, docs);
}

TEST(XtractTest, EnumerationBeatsStarOnHomogeneousData) {
  std::vector<xml::Document> docs = MakeDocs({
      "<a><b>1</b><c>2</c></a>",
      "<a><b>3</b><c>4</c></a>",
      "<a><b>5</b><c>6</c></a>",
  });
  dtd::Dtd dtd = InferXtractDtd(docs, "a");
  EXPECT_EQ(dtd.FindElement("a")->content->ToString(), "(b,c)");
  ExpectValidatesAll(dtd, docs);
}

TEST(XtractTest, GeneralizesRunsToPlus) {
  std::vector<xml::Document> docs = MakeDocs({
      "<a><b>1</b><b>2</b><c>3</c></a>",
      "<a><b>4</b><c>5</c></a>",
  });
  dtd::Dtd dtd = InferXtractDtd(docs, "a");
  ExpectValidatesAll(dtd, docs);
  EXPECT_TRUE(dtd.FindElement("a")->content->Mentions("b"));
}

TEST(XtractTest, CanProduceAlternatives) {
  // Unlike the naive baseline, the enumeration candidate captures
  // exclusive shapes with an OR.
  std::vector<xml::Document> docs = MakeDocs({
      "<a><d>1</d></a>", "<a><d>1</d></a>", "<a><e>2</e></a>",
      "<a><e>2</e></a>",
  });
  dtd::Dtd dtd = InferXtractDtd(docs, "a");
  ExpectValidatesAll(dtd, docs);
  const std::string model = dtd.FindElement("a")->content->ToString();
  EXPECT_NE(model.find('|'), std::string::npos) << model;
  // The never-seen combination is rejected.
  validate::Validator validator(dtd);
  StatusOr<xml::Document> both = xml::ParseDocument("<a><d>1</d><e>2</e></a>");
  EXPECT_FALSE(validator.Validate(*both).valid);
}

TEST(XtractTest, HighModelWeightPrefersTinyModels) {
  // With the model cost dominating, the star-of-choice candidate wins.
  std::vector<const char*> texts;
  std::vector<xml::Document> docs = MakeDocs({
      "<a><b>1</b><c>2</c></a>",
      "<a><c>2</c><b>1</b></a>",
      "<a><b>1</b></a>",
      "<a><c>2</c><c>3</c></a>",
  });
  XtractOptions options;
  options.model_weight = 1000.0;
  dtd::Dtd dtd = InferXtractDtd(docs, "a", options);
  ExpectValidatesAll(dtd, docs);
  const std::string model = dtd.FindElement("a")->content->ToString();
  EXPECT_NE(model.find('*'), std::string::npos) << model;
}

TEST(XtractTest, MdlPrefersConciseOverEnumerationOnNoisyData) {
  // Many distinct shapes: enumerating them all costs more than (b|c)*.
  std::vector<xml::Document> docs = MakeDocs({
      "<a><b>1</b></a>",
      "<a><b>1</b><b>2</b></a>",
      "<a><c>1</c><b>2</b></a>",
      "<a><b>1</b><c>2</c><b>3</b></a>",
      "<a><c>1</c></a>",
      "<a><c>1</c><c>2</c><b>3</b></a>",
      "<a><b>9</b><c>8</c><c>7</c></a>",
      "<a><c>6</c><b>5</b><c>4</c></a>",
  });
  dtd::Dtd dtd = InferXtractDtd(docs, "a");
  ExpectValidatesAll(dtd, docs);
  size_t nodes = dtd.FindElement("a")->content->NodeCount();
  EXPECT_LE(nodes, 6u) << dtd.FindElement("a")->content->ToString();
}

TEST(XtractTest, EmptyAndTextTags) {
  std::vector<xml::Document> docs = MakeDocs({
      "<a><hr/><p>t</p></a>",
  });
  dtd::Dtd dtd = InferXtractDtd(docs, "a");
  EXPECT_EQ(dtd.FindElement("hr")->content->ToString(), "EMPTY");
  EXPECT_EQ(dtd.FindElement("p")->content->ToString(), "(#PCDATA)");
  ExpectValidatesAll(dtd, docs);
}

}  // namespace
}  // namespace dtdevolve::baseline
