#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "validate/validator.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "workload/rng.h"
#include "workload/scenarios.h"

namespace dtdevolve::workload {
namespace {

dtd::Dtd MakeDtd(const char* text) {
  StatusOr<dtd::Dtd> dtd = dtd::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

TEST(RngTest, DeterministicAndBounded) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  for (int i = 0; i < 1000; ++i) {
    double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(a.Uniform(7), 7u);
  }
  // Chance respects extremes.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(a.Chance(0.0));
    EXPECT_TRUE(a.Chance(1.0));
  }
}

TEST(GeneratorTest, DocumentsAreValidForTheirDtd) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a ((b,c)*, (d|e), f?)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e EMPTY>
    <!ELEMENT f (g+)>
    <!ELEMENT g (#PCDATA)>
  )");
  validate::Validator validator(dtd);
  DocumentGenerator generator(dtd, GeneratorOptions(), 7);
  for (int i = 0; i < 50; ++i) {
    xml::Document doc = generator.Generate();
    validate::ValidationResult result = validator.Validate(doc);
    EXPECT_TRUE(result.valid)
        << (result.errors.empty() ? "?" : result.errors[0].message);
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (b*, c?)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
  )");
  DocumentGenerator g1(dtd, GeneratorOptions(), 5);
  DocumentGenerator g2(dtd, GeneratorOptions(), 5);
  for (int i = 0; i < 10; ++i) {
    xml::Document d1 = g1.Generate();
    xml::Document d2 = g2.Generate();
    EXPECT_TRUE(xml::StructurallyEqual(d1.root(), d2.root()));
  }
}

TEST(GeneratorTest, RecursionGuardTerminates) {
  // A recursive DTD: sections nest sections.
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT section (title, section*)>
    <!ELEMENT title (#PCDATA)>
  )");
  GeneratorOptions options;
  options.max_depth = 4;
  DocumentGenerator generator(dtd, options, 11);
  for (int i = 0; i < 20; ++i) {
    xml::Document doc = generator.Generate();
    EXPECT_LE(doc.root().SubtreeHeight(), 6u);
  }
}

TEST(MutatorTest, DropRemovesElements) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (b, c, d)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d (#PCDATA)>
  )");
  DocumentGenerator generator(dtd, GeneratorOptions(), 3);
  MutationOptions options;
  options.drop_probability = 1.0;
  options.recursive = false;
  Mutator mutator(options, 9);
  xml::Document doc = generator.Generate();
  size_t before = doc.root().ChildElements().size();
  size_t mutations = mutator.Mutate(doc);
  EXPECT_EQ(mutations, 1u);
  EXPECT_EQ(doc.root().ChildElements().size(), before - 1);
}

TEST(MutatorTest, InsertAddsNewTags) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  DocumentGenerator generator(dtd, GeneratorOptions(), 3);
  MutationOptions options;
  options.insert_probability = 1.0;
  options.new_tags = {"cc", "bcc"};
  options.recursive = false;
  Mutator mutator(options, 9);
  xml::Document d1 = generator.Generate();
  xml::Document d2 = generator.Generate();
  mutator.Mutate(d1);
  mutator.Mutate(d2);
  // The new tags cycle deterministically.
  EXPECT_EQ(d1.root().ChildTagSet().count("cc") +
                d2.root().ChildTagSet().count("bcc"),
            2u);
}

TEST(MutatorTest, DuplicateRepeatsAChild) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  DocumentGenerator generator(dtd, GeneratorOptions(), 3);
  MutationOptions options;
  options.duplicate_probability = 1.0;
  options.recursive = false;
  Mutator mutator(options, 9);
  xml::Document doc = generator.Generate();
  mutator.Mutate(doc);
  EXPECT_EQ(doc.root().ChildTagSequence(),
            (std::vector<std::string>{"b", "b"}));
}

TEST(MutatorTest, SwapViolatesOrder) {
  dtd::Dtd dtd = MakeDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
  )");
  DocumentGenerator generator(dtd, GeneratorOptions(), 3);
  MutationOptions options;
  options.swap_probability = 1.0;
  options.recursive = false;
  Mutator mutator(options, 9);
  xml::Document doc = generator.Generate();
  mutator.Mutate(doc);
  EXPECT_EQ(doc.root().ChildTagSequence(),
            (std::vector<std::string>{"c", "b"}));
}

TEST(MutatorTest, ZeroProbabilitiesChangeNothing) {
  dtd::Dtd dtd = MakeDtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>");
  DocumentGenerator generator(dtd, GeneratorOptions(), 3);
  Mutator mutator(MutationOptions(), 9);
  xml::Document doc = generator.Generate();
  xml::Document copy = doc.Clone();
  EXPECT_EQ(mutator.Mutate(doc), 0u);
  EXPECT_TRUE(xml::StructurallyEqual(doc.root(), copy.root()));
}

TEST(ScenarioTest, StreamsProduceValidPhaseDocuments) {
  for (ScenarioStream& scenario : MakeAllScenarios(17, 5)) {
    size_t produced = 0;
    while (!scenario.Done()) {
      size_t phase = scenario.current_phase();
      xml::Document doc = scenario.Next();
      validate::Validator validator(scenario.TrueDtdAt(phase));
      EXPECT_TRUE(validator.Validate(doc).valid)
          << scenario.name() << " phase " << phase;
      ++produced;
    }
    EXPECT_EQ(produced, scenario.total_documents());
  }
}

TEST(ScenarioTest, PhasesAdvance) {
  ScenarioStream scenario = MakeBibliographyScenario(3, 2);
  EXPECT_EQ(scenario.num_phases(), 3u);
  EXPECT_EQ(scenario.total_documents(), 6u);
  EXPECT_EQ(scenario.current_phase(), 0u);
  scenario.Next();
  scenario.Next();
  EXPECT_EQ(scenario.current_phase(), 1u);
}

TEST(ScenarioTest, LaterPhasesDivergeFromInitialDtd) {
  ScenarioStream scenario = MakeBibliographyScenario(3, 2);
  dtd::Dtd initial = scenario.InitialDtd();
  validate::Validator validator(initial);
  // Skip phase 0.
  scenario.Next();
  scenario.Next();
  // Phase 1 documents carry `doi`, unknown to the initial DTD.
  xml::Document drifted = scenario.Next();
  EXPECT_FALSE(validator.Validate(drifted).valid);
}

}  // namespace
}  // namespace dtdevolve::workload
