#include <gtest/gtest.h>

#include "evolve/stats.h"

namespace dtdevolve::evolve {
namespace {

TEST(OccurrenceStatsTest, RecordAndHistogram) {
  OccurrenceStats stats;
  stats.RecordInstance(1);
  stats.RecordInstance(3);
  stats.RecordInstance(3);
  stats.RecordInstance(0);  // not containing — ignored
  EXPECT_EQ(stats.instances, 3u);
  EXPECT_EQ(stats.repeated, 2u);
  EXPECT_EQ(stats.occurrences, 7u);
  EXPECT_EQ(stats.count_histogram.at(1), 1u);
  EXPECT_EQ(stats.count_histogram.at(3), 2u);
  EXPECT_EQ(stats.UniformCount(), 0u);  // mixed counts
}

TEST(OccurrenceStatsTest, UniformCount) {
  OccurrenceStats stats;
  EXPECT_EQ(stats.UniformCount(), 0u);  // nothing recorded
  stats.RecordInstance(2);
  stats.RecordInstance(2);
  EXPECT_EQ(stats.UniformCount(), 2u);
  stats.RecordInstance(3);
  EXPECT_EQ(stats.UniformCount(), 0u);
}

TEST(OccurrenceStatsTest, Merge) {
  OccurrenceStats a, b;
  a.RecordInstance(1);
  b.RecordInstance(2);
  a.MergeFrom(b);
  EXPECT_EQ(a.instances, 2u);
  EXPECT_EQ(a.occurrences, 3u);
  EXPECT_EQ(a.count_histogram.size(), 2u);
}

TEST(ElementStatsTest, ValidInstanceOnlyBumpsCounters) {
  ElementStats stats;
  stats.RecordInstance({"b", "c"}, /*locally_valid=*/true, false);
  EXPECT_EQ(stats.valid_instances(), 1u);
  EXPECT_EQ(stats.invalid_instances(), 0u);
  EXPECT_TRUE(stats.sequences().empty());  // sequences only for invalid
  EXPECT_EQ(stats.labels().at("b").valid.instances, 1u);
  EXPECT_EQ(stats.labels().at("b").invalid.instances, 0u);
  EXPECT_DOUBLE_EQ(stats.InvalidityRatio(), 0.0);
}

TEST(ElementStatsTest, InvalidInstanceRecordsEverything) {
  ElementStats stats;
  stats.RecordInstance({"b", "c", "b", "c", "d"}, /*locally_valid=*/false,
                       false);
  EXPECT_EQ(stats.invalid_instances(), 1u);
  EXPECT_DOUBLE_EQ(stats.InvalidityRatio(), 1.0);
  // The sequence is the set of tags, order and repetition disregarded.
  ASSERT_EQ(stats.sequences().size(), 1u);
  EXPECT_EQ(stats.sequences().begin()->first,
            (std::set<std::string>{"b", "c", "d"}));
  // Per-label repetition stats.
  EXPECT_EQ(stats.labels().at("b").invalid.instances, 1u);
  EXPECT_EQ(stats.labels().at("b").invalid.repeated, 1u);
  EXPECT_EQ(stats.labels().at("d").invalid.repeated, 0u);
  // The group {b, c} with repetition 2 is recorded (§3.2).
  GroupKey key;
  key.labels = {"b", "c"};
  key.repeat_count = 2;
  ASSERT_TRUE(stats.groups().count(key));
  EXPECT_EQ(stats.groups().at(key), 1u);
}

TEST(ElementStatsTest, GroupsSplitByRepeatCount) {
  ElementStats stats;
  // b twice, c twice, d three times.
  stats.RecordInstance({"b", "c", "b", "c", "d", "d", "d"}, false, false);
  GroupKey bc{{"b", "c"}, 2};
  GroupKey d3{{"d"}, 3};
  EXPECT_TRUE(stats.groups().count(bc));
  EXPECT_TRUE(stats.groups().count(d3));
}

TEST(ElementStatsTest, MeanPositionTracksOrder) {
  ElementStats stats;
  stats.RecordInstance({"first", "second"}, false, false);
  stats.RecordInstance({"first", "second"}, false, false);
  EXPECT_LT(stats.labels().at("first").invalid.MeanPosition(),
            stats.labels().at("second").invalid.MeanPosition());
}

TEST(ElementStatsTest, TextAndEmptyCounters) {
  ElementStats stats;
  stats.RecordInstance({}, false, /*has_text=*/true);
  stats.RecordInstance({}, false, /*has_text=*/false);
  stats.RecordInstance({"a"}, false, false);
  EXPECT_EQ(stats.text_instances(), 1u);
  EXPECT_EQ(stats.empty_instances(), 1u);
}

TEST(ElementStatsTest, SequenceMultiplicity) {
  ElementStats stats;
  for (int i = 0; i < 7; ++i) stats.RecordInstance({"x", "y"}, false, false);
  for (int i = 0; i < 3; ++i) stats.RecordInstance({"x"}, false, false);
  auto list = stats.SequenceList();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(stats.LabelUniverse(), (std::set<std::string>{"x", "y"}));
  uint32_t total = 0;
  for (const auto& [labels, count] : list) total += count;
  EXPECT_EQ(total, 10u);
}

TEST(ElementStatsTest, PlusStructureNesting) {
  ElementStats stats;
  ElementStats& plus = stats.PlusStructureFor("new_child");
  plus.RecordInstance({"inner"}, false, true);
  EXPECT_EQ(&stats.PlusStructureFor("new_child"), &plus);  // same object
  EXPECT_EQ(stats.labels().at("new_child").plus_structure->invalid_instances(),
            1u);
}

TEST(ElementStatsTest, InvalidityRatioMixes) {
  ElementStats stats;
  for (int i = 0; i < 3; ++i) stats.RecordInstance({"a"}, true, false);
  stats.RecordInstance({"b"}, false, false);
  EXPECT_DOUBLE_EQ(stats.InvalidityRatio(), 0.25);
  EXPECT_EQ(stats.total_instances(), 4u);
}

TEST(ElementStatsTest, DocsCountersAndClear) {
  ElementStats stats;
  stats.RecordInstance({"a"}, true, false);
  stats.BumpDocsWithValid();
  stats.BumpDocsWithInvalid();
  EXPECT_EQ(stats.docs_with_valid(), 1u);
  EXPECT_EQ(stats.docs_with_invalid(), 1u);
  EXPECT_GT(stats.MemoryFootprint(), 0u);
  stats.Clear();
  EXPECT_EQ(stats.total_instances(), 0u);
  EXPECT_TRUE(stats.labels().empty());
}

}  // namespace
}  // namespace dtdevolve::evolve
