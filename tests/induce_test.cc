#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/source.h"
#include "induce/cluster.h"
#include "induce/inducer.h"
#include "validate/validator.h"
#include "workload/scenarios.h"

namespace dtdevolve {
namespace {

/// A source seeded with the bibliography DTD; every mixed-population
/// document has a foreign root tag, so the whole stream lands in the
/// repository.
std::unique_ptr<core::XmlSource> MakeSeededSource() {
  core::SourceOptions options;
  options.sigma = 0.5;
  options.auto_evolve = false;
  auto source = std::make_unique<core::XmlSource>(options);
  workload::ScenarioStream seed_stream = workload::MakeBibliographyScenario(1);
  EXPECT_TRUE(source->AddDtd("bibliography", seed_stream.InitialDtd()).ok());
  return source;
}

void FeedMixedPopulation(core::XmlSource& source, uint64_t seed,
                         size_t families, uint64_t docs_per_family) {
  workload::ScenarioStream stream =
      workload::MakeMixedPopulationScenario(seed, families, docs_per_family);
  while (!stream.Done()) {
    core::XmlSource::ProcessOutcome outcome = source.Process(stream.Next());
    ASSERT_FALSE(outcome.classified);
  }
}

TEST(RepositoryClustererTest, RecoversFamiliesAsClusters) {
  constexpr size_t kFamilies = 3;
  std::unique_ptr<core::XmlSource> owned = MakeSeededSource();
  core::XmlSource& source = *owned;
  FeedMixedPopulation(source, 7, kFamilies, 20);
  ASSERT_EQ(source.repository().size(), kFamilies * 20);

  induce::ClusterStats stats = source.cluster_stats();
  EXPECT_EQ(stats.clusters, kFamilies);
  EXPECT_EQ(stats.documents, kFamilies * 20);
  EXPECT_GE(stats.largest_cluster, 20u);
}

TEST(RepositoryClustererTest, IdenticalStructuresCollapseBeforeScoring) {
  induce::RepositoryClusterer clusterer;
  workload::ScenarioStream stream =
      workload::MakeMixedPopulationScenario(3, 1, 8);
  std::vector<xml::Document> docs;
  while (!stream.Done()) docs.push_back(stream.Next());
  for (size_t i = 0; i < docs.size(); ++i) {
    clusterer.Add(static_cast<int>(i), docs[i]);
  }
  induce::ClusterStats stats = clusterer.GetStats();
  EXPECT_EQ(stats.documents, docs.size());
  // One structural family: everything in one cluster, with fewer
  // distinct structures than documents (repeated structures dedup).
  EXPECT_EQ(stats.clusters, 1u);
  EXPECT_LE(stats.distinct_structures, stats.documents);

  // Removal untracks without disturbing the clustering.
  clusterer.Remove(0);
  EXPECT_EQ(clusterer.GetStats().documents, docs.size() - 1);
}

TEST(RepositoryClustererTest, MinClusterSizeFloorSuppressesSingletons) {
  induce::ClusterOptions options;
  options.min_cluster_size = 2;
  induce::RepositoryClusterer clusterer(options);
  workload::ScenarioStream a = workload::MakeMixedPopulationScenario(5, 1, 3);
  workload::ScenarioStream b =
      workload::MakeMixedPopulationScenario(6, 2, 1);  // 1 doc per family
  int id = 0;
  while (!a.Done()) clusterer.Add(id++, a.Next());
  b.Next();  // skip family 0 (already populated by `a`)
  clusterer.Add(id++, b.Next());  // single family-1 document
  std::vector<induce::Cluster> clusters = clusterer.Clusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 3u);
}

TEST(InduceTest, OneCandidatePerFamilyValidatingItsCluster) {
  constexpr size_t kFamilies = 4;
  std::unique_ptr<core::XmlSource> owned = MakeSeededSource();
  core::XmlSource& source = *owned;
  FeedMixedPopulation(source, 11, kFamilies, 25);

  ASSERT_EQ(source.InduceCandidates(), kFamilies);
  std::set<std::string> names;
  size_t covered_members = 0;
  for (const induce::Candidate& candidate : source.candidates()) {
    EXPECT_GE(candidate.coverage, 0.95)
        << candidate.name << " coverage " << candidate.coverage;
    EXPECT_GT(candidate.margin, 0.0) << candidate.name;
    EXPECT_TRUE(candidate.ext.dtd().Check().ok());
    names.insert(candidate.name);
    covered_members += candidate.members.size();

    // The claim is honest: every claimed member really validates.
    validate::Validator validator(candidate.ext.dtd());
    for (int id : candidate.validated) {
      EXPECT_TRUE(validator.Validate(source.repository().Get(id)).valid)
          << candidate.name << " claimed member " << id;
    }
  }
  EXPECT_EQ(names.size(), kFamilies);            // collision-free names
  EXPECT_EQ(covered_members, kFamilies * 25);    // partition of the repo
}

TEST(InduceTest, AcceptPromotesDrainsAndRetiresCandidates) {
  std::unique_ptr<core::XmlSource> owned = MakeSeededSource();
  core::XmlSource& source = *owned;
  FeedMixedPopulation(source, 13, 2, 20);
  ASSERT_EQ(source.InduceCandidates(), 2u);

  const induce::Candidate& first = source.candidates().front();
  const uint64_t id = first.id;
  const size_t claimed = first.validated.size();
  const size_t repo_before = source.repository().size();

  StatusOr<core::XmlSource::AcceptOutcome> outcome =
      source.AcceptCandidate(id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_GE(outcome->reclassified, claimed);
  EXPECT_EQ(source.repository().size(), repo_before - outcome->reclassified);
  EXPECT_NE(source.FindDtd(outcome->dtd_name), nullptr);
  EXPECT_EQ(source.candidates_accepted(), 1u);
  // The set changed: every other pending candidate was retired.
  EXPECT_TRUE(source.candidates().empty());
  // The promotion shows in the event log.
  bool induced_event = false;
  for (const core::SourceEvent& event : source.events()) {
    if (event.kind == core::SourceEvent::Kind::kDtdInduced) {
      EXPECT_EQ(event.dtd_name, outcome->dtd_name);
      induced_event = true;
    }
  }
  EXPECT_TRUE(induced_event);

  // Re-induction over the remaining family proposes again with a fresh,
  // never-reused id.
  ASSERT_EQ(source.InduceCandidates(), 1u);
  EXPECT_GT(source.candidates().front().id, id);

  // New arrivals of the accepted family now classify directly.
  workload::ScenarioStream fresh =
      workload::MakeMixedPopulationScenario(99, 2, 3);
  size_t classified = 0;
  while (!fresh.Done()) {
    if (source.Process(fresh.Next()).classified) ++classified;
  }
  EXPECT_GT(classified, 0u);
}

TEST(InduceTest, RejectDropsOnlyThatCandidate) {
  std::unique_ptr<core::XmlSource> owned = MakeSeededSource();
  core::XmlSource& source = *owned;
  FeedMixedPopulation(source, 17, 3, 15);
  ASSERT_EQ(source.InduceCandidates(), 3u);
  const uint64_t id = source.candidates()[1].id;
  ASSERT_TRUE(source.RejectCandidate(id).ok());
  EXPECT_EQ(source.candidates().size(), 2u);
  EXPECT_EQ(source.FindCandidate(id), nullptr);
  EXPECT_EQ(source.candidates_rejected(), 1u);
  EXPECT_TRUE(source.RejectCandidate(id).code() ==
              Status::Code::kNotFound);
  EXPECT_TRUE(source.AcceptCandidate(id).status().code() ==
              Status::Code::kNotFound);
}

TEST(InduceTest, InductionIsDeterministic) {
  auto fingerprint = [](core::XmlSource& source) {
    std::string out;
    for (const induce::Candidate& candidate : source.candidates()) {
      out += candidate.name + ":" +
             std::to_string(candidate.members.size()) + ":" +
             std::to_string(candidate.validated.size()) + ";";
    }
    return out;
  };
  std::unique_ptr<core::XmlSource> pa = MakeSeededSource();
  std::unique_ptr<core::XmlSource> pb = MakeSeededSource();
  core::XmlSource& a = *pa;
  core::XmlSource& b = *pb;
  FeedMixedPopulation(a, 23, 3, 18);
  FeedMixedPopulation(b, 23, 3, 18);
  a.InduceCandidates();
  b.InduceCandidates();
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace dtdevolve
