// Replication suite (`replication` ctest label): the WAL stream's
// torn-frame tolerance at decode and export level, the replication
// oracle's fault-injected sweep, and an end-to-end primary → follower
// pair over real sockets — bootstrap from the checkpoint blob, WAL
// streaming, read-only enforcement, lag reaching zero, and a follower
// restart converging onto the same bytes after the primary truncated
// its log.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "check/oracle.h"
#include "server/server.h"
#include "store/wal.h"

namespace dtdevolve {
namespace {

// --- Oracle sweep -----------------------------------------------------------

TEST(ReplicationTest, OracleSweepIsCleanAndExercisesFaults) {
  check::ReplicationOracleOptions options;
  options.scenarios = 30;
  options.seed = 11;
  check::ReplicationOracleReport report = check::RunReplicationOracle(options);
  EXPECT_TRUE(report.ok()) << check::FormatReplicationReport(report);
  EXPECT_EQ(report.scenarios_run, 30u);
  EXPECT_GT(report.polls, 0u);
  // The sweep is only meaningful if the fault injector actually tore
  // pages / re-delivered records and forced post-gap re-bootstraps.
  EXPECT_GT(report.faults, 0u);
  EXPECT_GE(report.bootstraps, 30u);  // at least the initial one each
}

TEST(ReplicationTest, OracleScenarioReplaysDeterministically) {
  check::ReplicationOracleOptions options;
  options.scenarios = 1;
  options.max_documents = 24;
  check::ScenarioResult first = check::RunReplicationScenario(5, options);
  check::ScenarioResult second = check::RunReplicationScenario(5, options);
  EXPECT_TRUE(first.ok()) << check::FormatScenario(first);
  EXPECT_EQ(first.scenario, second.scenario);
  EXPECT_EQ(first.documents, second.documents);
  EXPECT_EQ(first.violations.size(), second.violations.size());
}

// --- Torn frames ------------------------------------------------------------

TEST(ReplicationTest, DecodeWalStreamStopsCleanlyAtAnyTruncation) {
  std::string stream;
  std::vector<store::WalRecord> expected;
  std::vector<size_t> boundaries;  // cumulative frame ends
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    std::string payload(17 * lsn, static_cast<char>('a' + lsn));
    stream += store::EncodeWalRecord(lsn, payload);
    expected.push_back({lsn, payload});
    boundaries.push_back(stream.size());
  }

  size_t consumed = 0;
  EXPECT_EQ(store::DecodeWalStream(stream, &consumed).size(), 3u);
  EXPECT_EQ(consumed, stream.size());

  // A disconnect can cut the stream at ANY byte: the decoder must yield
  // exactly the complete frames before the cut and report a consumed
  // offset the next poll can resume from.
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    size_t complete = 0;
    while (complete < boundaries.size() && boundaries[complete] <= cut) {
      ++complete;
    }
    size_t head_consumed = 0;
    std::vector<store::WalRecord> head = store::DecodeWalStream(
        std::string_view(stream).substr(0, cut), &head_consumed);
    ASSERT_EQ(head.size(), complete) << "cut at byte " << cut;
    EXPECT_LE(head_consumed, cut);
    for (size_t i = 0; i < head.size(); ++i) {
      EXPECT_EQ(head[i].lsn, expected[i].lsn);
      EXPECT_EQ(head[i].payload, expected[i].payload);
    }
    // Resuming exactly at the consumed offset recovers the tail.
    size_t tail_consumed = 0;
    std::vector<store::WalRecord> tail = store::DecodeWalStream(
        std::string_view(stream).substr(head_consumed), &tail_consumed);
    EXPECT_EQ(head.size() + tail.size(), 3u) << "cut at byte " << cut;
  }

  // A flipped byte inside the second frame stops decoding before it —
  // the CRC framing rejects the record instead of applying garbage.
  std::string corrupt = stream;
  corrupt[boundaries[0] + 9] ^= 0x40;
  size_t corrupt_consumed = 0;
  EXPECT_EQ(store::DecodeWalStream(corrupt, &corrupt_consumed).size(), 1u);
  EXPECT_EQ(corrupt_consumed, boundaries[0]);
}

TEST(ReplicationTest, ExportServesCommittedRecordsPastATornTail) {
  const std::string dir = ::testing::TempDir() + "replication_export_wal";
  ::mkdir(dir.c_str(), 0755);

  {
    store::WalOptions options;
    options.dir = dir;
    options.fsync_policy = store::FsyncPolicy::kNone;
    store::WalReplay replay;
    StatusOr<std::unique_ptr<store::Wal>> wal =
        store::Wal::Open(options, 0, &replay);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
      StatusOr<uint64_t> appended =
          (*wal)->Append("payload-" + std::to_string(lsn));
      ASSERT_TRUE(appended.ok());
      EXPECT_EQ(*appended, lsn);
    }
  }

  // Simulate the primary dying mid-append: a torn frame at the tail of
  // the last segment. Export must serve the five committed records and
  // simply stop at the tear (it is the in-flight append, never acked).
  std::string last_segment;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.rfind("wal-", 0) == 0 && name > last_segment) {
        last_segment = name;
      }
    }
    ::closedir(d);
  }
  ASSERT_FALSE(last_segment.empty());
  const std::string torn = store::EncodeWalRecord(6, "torn").substr(0, 9);
  std::FILE* f = std::fopen((dir + "/" + last_segment).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(torn.data(), 1, torn.size(), f), torn.size());
  std::fclose(f);

  StatusOr<store::WalExport> full =
      store::ExportWalRecords(dir, 1, 1 << 20);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  size_t consumed = 0;
  std::vector<store::WalRecord> records =
      store::DecodeWalStream(full->bytes, &consumed);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(consumed, full->bytes.size());  // the page itself is clean
  EXPECT_EQ(records.front().lsn, 1u);
  EXPECT_EQ(records.back().lsn, 5u);
  EXPECT_EQ(full->next_lsn, 6u);
  EXPECT_EQ(full->oldest_lsn, 1u);

  // Resume mid-stream, the follower's steady state.
  StatusOr<store::WalExport> page = store::ExportWalRecords(dir, 4, 1 << 20);
  ASSERT_TRUE(page.ok());
  records = store::DecodeWalStream(page->bytes, &consumed);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.front().lsn, 4u);

  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        std::remove((dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

// --- End to end over sockets ------------------------------------------------

const char* kMailDtd = R"(
  <!ELEMENT mail (envelope, body)>
  <!ELEMENT envelope (from, to, subject)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kConformingDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "</envelope><body>hello</body></mail>";

const char* kDriftedDoc =
    "<mail><envelope><from>a</from><to>b</to><subject>s</subject>"
    "<cc>c</cc></envelope><body>hello</body>"
    "<attachment>x</attachment></mail>";

struct ClientResponse {
  int status = 0;
  std::string body;
};

ClientResponse RoundTrip(uint16_t port, const std::string& request) {
  ClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.rfind("HTTP/1.1 ", 0) != 0) return out;
  out.status = std::atoi(raw.c_str() + 9);
  out.body = raw.substr(split + 4);
  return out;
}

ClientResponse Get(uint16_t port, const std::string& target) {
  return RoundTrip(port, "GET " + target +
                             " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
}

ClientResponse Post(uint16_t port, const std::string& target,
                    const std::string& body) {
  return RoundTrip(port, "POST " + target +
                             " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                             "Content-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body);
}

/// Polls `fetch` until `want(body)` or ~10 s pass; returns the last body.
template <typename Fetch, typename Want>
std::string PollUntil(Fetch fetch, Want want) {
  std::string body;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    body = fetch();
    if (want(body)) return body;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return body;
}

void RemoveTree(const std::string& path) {
  if (DIR* d = ::opendir(path.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st = {};
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(child);
      } else {
        std::remove(child.c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(path.c_str());
}

core::SourceOptions EvolvingOptions() {
  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 1;
  return options;
}

TEST(ReplicationTest, FollowerBootstrapsStreamsAndStaysReadOnly) {
  const std::string wal_dir = ::testing::TempDir() + "replication_primary_a";
  RemoveTree(wal_dir);

  server::ServerOptions primary_options;
  primary_options.port = 0;
  primary_options.jobs = 2;
  primary_options.wal_dir = wal_dir;
  primary_options.fsync_policy = store::FsyncPolicy::kNone;
  server::IngestServer primary(EvolvingOptions(), primary_options);
  ASSERT_TRUE(primary.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(primary.Start().ok());

  ASSERT_EQ(Post(primary.port(), "/ingest?wait=1", kConformingDoc).status, 200);
  ClientResponse drifted = Post(primary.port(), "/ingest?wait=1", kDriftedDoc);
  ASSERT_EQ(drifted.status, 200);
  EXPECT_NE(drifted.body.find("\"evolved\":true"), std::string::npos);
  const std::string primary_dtd = Get(primary.port(), "/dtds/mail").body;
  ASSERT_NE(primary_dtd.find("attachment"), std::string::npos);

  server::ServerOptions follower_options;
  follower_options.port = 0;
  follower_options.jobs = 2;
  follower_options.follow_url =
      "http://127.0.0.1:" + std::to_string(primary.port());
  follower_options.follow_poll_interval = std::chrono::milliseconds(20);
  server::IngestServer follower(EvolvingOptions(), follower_options);
  ASSERT_TRUE(follower.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(follower.Start().ok());

  // The follower streams the primary's WAL and lands on the evolved DTD.
  const std::string follower_dtd =
      PollUntil([&] { return Get(follower.port(), "/dtds/mail").body; },
                [&](const std::string& body) { return body == primary_dtd; });
  EXPECT_EQ(follower_dtd, primary_dtd);

  // Reads serve; writes are refused — this replica has no WAL of its own.
  EXPECT_EQ(Get(follower.port(), "/stats").status, 200);
  ClientResponse refused = Post(follower.port(), "/ingest", kConformingDoc);
  EXPECT_EQ(refused.status, 403);
  EXPECT_NE(refused.body.find("read-only replica"), std::string::npos)
      << refused.body;
  EXPECT_EQ(Post(follower.port(), "/dtds/induce", "").status, 403);

  // Once caught up the lag gauge reads zero.
  const std::string metrics = PollUntil(
      [&] { return Get(follower.port(), "/metrics").body; },
      [](const std::string& body) {
        return body.find("\ndtdevolve_replication_lag_lsn 0\n") !=
               std::string::npos;
      });
  EXPECT_NE(metrics.find("\ndtdevolve_replication_lag_lsn 0\n"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("dtdevolve_replication_records_applied_total"),
            std::string::npos);

  // New primary writes keep flowing.
  ASSERT_EQ(Post(primary.port(), "/ingest?wait=1", kConformingDoc).status, 200);
  const std::string stats = PollUntil(
      [&] { return Get(follower.port(), "/stats").body; },
      [](const std::string& body) {
        return body.find("\"documents_processed\":3") != std::string::npos;
      });
  EXPECT_NE(stats.find("\"documents_processed\":3"), std::string::npos)
      << stats;

  follower.Shutdown();
  follower.Wait();
  primary.Shutdown();
  primary.Wait();
  RemoveTree(wal_dir);
}

TEST(ReplicationTest, FollowerRestartConvergesAfterCheckpointTruncation) {
  const std::string wal_dir = ::testing::TempDir() + "replication_primary_b";
  RemoveTree(wal_dir);

  server::ServerOptions primary_options;
  primary_options.port = 0;
  primary_options.jobs = 2;
  primary_options.wal_dir = wal_dir;
  primary_options.fsync_policy = store::FsyncPolicy::kNone;
  server::IngestServer primary(EvolvingOptions(), primary_options);
  ASSERT_TRUE(primary.AddDtdText("mail", kMailDtd).ok());
  ASSERT_TRUE(primary.Start().ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(Post(primary.port(), "/ingest?wait=1", kConformingDoc).status,
              200);
  }
  // Checkpoint + truncate: history before the checkpoint is gone, so any
  // follower from here on MUST take the bootstrap path, not LSN 1.
  uint64_t captured_lsn = 0;
  ASSERT_TRUE(primary.CheckpointNow(&captured_lsn).ok());
  EXPECT_GE(captured_lsn, 3u);
  ASSERT_EQ(Post(primary.port(), "/ingest?wait=1", kDriftedDoc).status, 200);
  const std::string primary_dtd = Get(primary.port(), "/dtds/mail").body;

  server::ServerOptions follower_options;
  follower_options.port = 0;
  follower_options.jobs = 2;
  follower_options.follow_url =
      "http://127.0.0.1:" + std::to_string(primary.port());
  follower_options.follow_poll_interval = std::chrono::milliseconds(20);

  // First follower lifetime: converge, then stop.
  {
    server::IngestServer follower(EvolvingOptions(), follower_options);
    ASSERT_TRUE(follower.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(follower.Start().ok());
    const std::string body =
        PollUntil([&] { return Get(follower.port(), "/dtds/mail").body; },
                  [&](const std::string& b) { return b == primary_dtd; });
    EXPECT_EQ(body, primary_dtd);
    follower.Shutdown();
    follower.Wait();
  }

  // The primary moves on while no follower is attached.
  ASSERT_EQ(Post(primary.port(), "/ingest?wait=1", kConformingDoc).status, 200);

  // A fresh follower (a restart: no retained state) bootstraps from the
  // checkpoint, streams the suffix, and matches the primary byte for
  // byte — applying records it would have seen in its first life again
  // is impossible because the bootstrap already carries their effects.
  {
    server::IngestServer follower(EvolvingOptions(), follower_options);
    ASSERT_TRUE(follower.AddDtdText("mail", kMailDtd).ok());
    ASSERT_TRUE(follower.Start().ok());
    const std::string stats = PollUntil(
        [&] { return Get(follower.port(), "/stats").body; },
        [](const std::string& b) {
          return b.find("\"documents_processed\":5") != std::string::npos;
        });
    EXPECT_NE(stats.find("\"documents_processed\":5"), std::string::npos)
        << stats;
    EXPECT_EQ(Get(follower.port(), "/dtds/mail").body, primary_dtd);

    const std::string metrics = Get(follower.port(), "/metrics").body;
    EXPECT_NE(metrics.find("dtdevolve_replication_bootstraps_total"),
              std::string::npos);
    follower.Shutdown();
    follower.Wait();
  }

  primary.Shutdown();
  primary.Wait();
  RemoveTree(wal_dir);
}

}  // namespace
}  // namespace dtdevolve
