#include <gtest/gtest.h>

#include "mining/rules.h"

namespace dtdevolve::mining {
namespace {

using Sequences = std::vector<std::pair<std::set<std::string>, uint32_t>>;

// --- Generic rule generation ---------------------------------------------------

TEST(GenerateRulesTest, Example3SupportAndConfidence) {
  // Example 3: S = {{a,b,c},{a,b},{b,c,d}}, rule R = c → a,b.
  // Support(R) = 1/3, Confidence(R) = 1/2.
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b", "c", "d"};
  transactions.Add({"a", "b", "c"}, universe);
  transactions.Add({"a", "b"}, universe);
  transactions.Add({"b", "c", "d"}, universe);

  AprioriOptions options;
  options.min_support = 0.3;
  std::vector<FrequentItemset> itemsets =
      MineFrequentItemsets(transactions, options);
  std::vector<AssociationRule> rules = GenerateRules(itemsets, 0.0);

  const ItemDictionary& dict = transactions.dictionary();
  int a = dict.Find("a", true), b = dict.Find("b", true),
      c = dict.Find("c", true);
  bool found = false;
  for (const AssociationRule& rule : rules) {
    if (rule.lhs == std::vector<int>{c} &&
        rule.rhs == std::vector<int>{std::min(a, b), std::max(a, b)}) {
      found = true;
      EXPECT_NEAR(rule.support, 1.0 / 3.0, 1e-12);
      EXPECT_NEAR(rule.confidence, 1.0 / 2.0, 1e-12);
      EXPECT_EQ(RuleToString(rule, dict), "c -> a,b");
    }
  }
  EXPECT_TRUE(found);
}

TEST(GenerateRulesTest, ConfidenceThresholdFilters) {
  TransactionSet transactions;
  std::set<std::string> universe = {"a", "b"};
  for (int i = 0; i < 3; ++i) transactions.Add({"a", "b"}, universe);
  transactions.Add({"a"}, universe);

  AprioriOptions options;
  options.min_support = 0.5;
  std::vector<AssociationRule> all =
      GenerateRules(MineFrequentItemsets(transactions, options), 0.0);
  std::vector<AssociationRule> strict =
      GenerateRules(MineFrequentItemsets(transactions, options), 1.0);
  EXPECT_GT(all.size(), strict.size());
  // b → a has confidence 1 (every b-transaction contains a).
  const ItemDictionary& dict = transactions.dictionary();
  int a = dict.Find("a", true), b = dict.Find("b", true);
  bool found = false;
  for (const AssociationRule& rule : strict) {
    if (rule.lhs == std::vector<int>{b} && rule.rhs == std::vector<int>{a}) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

// --- SequenceRuleOracle (the paper's 4-step pipeline) --------------------------

class OracleFixture : public ::testing::Test {
 protected:
  // The Example 2 / Figure 3 population: sequences {b,c,d} (docs in D1)
  // and {b,c,e} (docs in D2).
  SequenceRuleOracle MakeExample2Oracle(double mu = 0.0) {
    Sequences sequences = {{{"b", "c", "d"}, 10}, {{"b", "c", "e"}, 10}};
    return SequenceRuleOracle(sequences, {"b", "c", "d", "e"}, mu);
  }
};

TEST_F(OracleFixture, Example5Rules) {
  SequenceRuleOracle oracle = MakeExample2Oracle();
  // The paper's Rules set contains {b → c, c → b, d → ē, ē → d}.
  EXPECT_TRUE(oracle.Implies({"b"}, {}, "c", true));
  EXPECT_TRUE(oracle.Implies({"c"}, {}, "b", true));
  EXPECT_TRUE(oracle.Implies({"d"}, {}, "e", false));
  EXPECT_TRUE(oracle.Implies({}, {"e"}, "d", true));
  EXPECT_TRUE(oracle.Implies({"e"}, {}, "d", false));
  EXPECT_TRUE(oracle.Implies({}, {"d"}, "e", true));
  // And not, e.g., d → e.
  EXPECT_FALSE(oracle.Implies({"d"}, {}, "e", true));
  EXPECT_FALSE(oracle.Implies({"b"}, {}, "d", true));  // only half the docs
}

TEST_F(OracleFixture, AtomicAndExclusiveSets) {
  SequenceRuleOracle oracle = MakeExample2Oracle();
  EXPECT_TRUE(oracle.AtomicSet({"b", "c"}));
  EXPECT_FALSE(oracle.AtomicSet({"b", "d"}));
  EXPECT_TRUE(oracle.ExactlyOneOf({"d", "e"}));
  EXPECT_FALSE(oracle.ExactlyOneOf({"b", "c"}));
  EXPECT_FALSE(oracle.ExactlyOneOf({"b", "d"}));  // both present in D1
  EXPECT_FALSE(oracle.ExactlyOneOf({"d"}));       // needs at least two
}

TEST_F(OracleFixture, PresenceQueries) {
  SequenceRuleOracle oracle = MakeExample2Oracle();
  EXPECT_TRUE(oracle.AlwaysPresent("b"));
  EXPECT_FALSE(oracle.AlwaysPresent("d"));
  EXPECT_DOUBLE_EQ(oracle.PresenceFraction("d"), 0.5);
  EXPECT_DOUBLE_EQ(oracle.Support({"b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(oracle.Support({"d"}, {"e"}), 0.5);
  EXPECT_DOUBLE_EQ(oracle.Support({"d", "e"}), 0.0);
}

TEST_F(OracleFixture, ConfidenceValues) {
  SequenceRuleOracle oracle = MakeExample2Oracle();
  EXPECT_DOUBLE_EQ(oracle.Confidence({"b"}, {}, "d", true), 0.5);
  EXPECT_DOUBLE_EQ(oracle.Confidence({"b"}, {}, "c", true), 1.0);
  // Unsatisfiable antecedent ⇒ confidence 0 (and Implies false).
  EXPECT_DOUBLE_EQ(oracle.Confidence({"d", "e"}, {}, "b", true), 0.0);
  EXPECT_FALSE(oracle.Implies({"d", "e"}, {}, "b", true));
}

TEST(OracleTest, MinSupportFiltersRareSequences) {
  // 95 regular sequences and 5 noise ones; with µ = 0.1 the noise is
  // discarded ("not representative enough", §4.2 step 2).
  Sequences sequences = {{{"a", "b"}, 95}, {{"z"}, 5}};
  SequenceRuleOracle oracle(sequences, {"a", "b", "z"}, 0.1);
  ASSERT_EQ(oracle.frequent_sequences().size(), 1u);
  EXPECT_TRUE(oracle.AlwaysPresent("a"));
  // z does not occur in any frequent sequence.
  EXPECT_DOUBLE_EQ(oracle.PresenceFraction("z"), 0.0);
}

TEST(OracleTest, AllSequencesRareMeansNoRules) {
  Sequences sequences = {{{"a"}, 1}, {{"b"}, 1}, {{"c"}, 1}};
  SequenceRuleOracle oracle(sequences, {"a", "b", "c"}, 0.5);
  EXPECT_FALSE(oracle.HasFrequentSequences());
  EXPECT_FALSE(oracle.Implies({"a"}, {}, "b", true));
  EXPECT_FALSE(oracle.AtomicSet({"a", "b"}));
}

TEST(OracleTest, EmptySequenceParticipates) {
  // Elements that are sometimes empty make everything optional.
  Sequences sequences = {{{"a"}, 5}, {{}, 5}};
  SequenceRuleOracle oracle(sequences, {"a"}, 0.0);
  EXPECT_FALSE(oracle.AlwaysPresent("a"));
  EXPECT_DOUBLE_EQ(oracle.PresenceFraction("a"), 0.5);
}

TEST(OracleTest, EmptyInput) {
  SequenceRuleOracle oracle({}, {}, 0.1);
  EXPECT_FALSE(oracle.HasFrequentSequences());
  EXPECT_DOUBLE_EQ(oracle.Support({"a"}), 0.0);
}

}  // namespace
}  // namespace dtdevolve::mining
