// Quickstart: the paper's running example (Figures 2, 3 and 5) driven
// through the public API.
//
//   $ ./quickstart
//
// A source starts with the DTD  a:(b,c)  and receives documents shaped
// (b,c,b,c,d…)  and  (b,c,b,c,e).  The check phase notices the divergence
// and the evolution phase rebuilds the declaration to  ((b,c)*,(d+|e)),
// adding declarations for the new elements d and e.

#include <cstdio>

#include "core/source.h"
#include "dtd/dtd_writer.h"

int main() {
  using dtdevolve::core::SourceOptions;
  using dtdevolve::core::XmlSource;

  SourceOptions options;
  options.sigma = 0.3;                    // classification threshold σ
  options.tau = 0.2;                      // evolution trigger τ
  options.evolution.psi = 0.1;            // window threshold ψ
  options.evolution.min_support = 0.1;    // sequence support µ
  options.min_documents_before_check = 10;

  XmlSource source(options);
  dtdevolve::Status status = source.AddDtdText("paper", R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
  )");
  if (!status.ok()) {
    std::fprintf(stderr, "AddDtdText: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("== initial DTD ==\n%s\n",
              dtdevolve::dtd::WriteDtd(*source.FindDtd("paper")).c_str());

  const char* d1 =
      "<a><b>1</b><c>2</c><b>3</b><c>4</c><d>5</d><d>6</d></a>";
  const char* d2 = "<a><b>1</b><c>2</c><b>3</b><c>4</c><e>7</e></a>";

  for (int i = 0; i < 10; ++i) {
    for (const char* text : {d1, d2}) {
      auto outcome = source.ProcessText(text);
      if (!outcome.ok()) {
        std::fprintf(stderr, "Process: %s\n",
                     outcome.status().ToString().c_str());
        return 1;
      }
      if (outcome->evolved) {
        std::printf("-- document %llu triggered an evolution --\n",
                    static_cast<unsigned long long>(
                        source.documents_processed()));
      }
    }
  }

  std::printf("\n== evolution log ==\n");
  for (const auto& event : source.events()) {
    if (event.kind == dtdevolve::core::SourceEvent::Kind::kEvolved) {
      std::printf("%s", event.detail.c_str());
    }
  }

  std::printf("\n== evolved DTD ==\n%s\n",
              dtdevolve::dtd::WriteDtd(*source.FindDtd("paper")).c_str());
  std::printf("documents processed: %llu, classified: %llu, evolutions: %llu\n",
              static_cast<unsigned long long>(source.documents_processed()),
              static_cast<unsigned long long>(source.documents_classified()),
              static_cast<unsigned long long>(source.evolutions_performed()));
  return 0;
}
