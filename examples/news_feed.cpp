// News feed scenario: demonstrates why similarity-based classification
// beats boolean validation (the paper's §1 motivation), and the §6
// thesaurus extension — stories from another agency tag their author
// `writer`, which a synonym entry maps onto `author`.
//
//   $ ./news_feed [docs_per_phase]

#include <cstdio>
#include <cstdlib>

#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "similarity/thesaurus.h"
#include "validate/validator.h"
#include "workload/scenarios.h"

int main(int argc, char** argv) {
  uint64_t docs_per_phase =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100;

  dtdevolve::workload::ScenarioStream scenario =
      dtdevolve::workload::MakeNewsScenario(99, docs_per_phase);

  // A validator-only "classifier": accept iff valid.
  dtdevolve::dtd::Dtd initial = scenario.InitialDtd();
  dtdevolve::validate::Validator validator(initial);

  // The similarity-based source, with a thesaurus mapping writer→author.
  dtdevolve::similarity::Thesaurus thesaurus;
  thesaurus.AddSynonym("writer", "author", 0.9);
  dtdevolve::core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 25;
  options.similarity.thesaurus = &thesaurus;
  dtdevolve::core::XmlSource source(options);
  if (!source.AddDtd("news", scenario.InitialDtd()).ok()) return 1;

  uint64_t validator_accepted = 0;
  uint64_t total = 0;
  while (!scenario.Done()) {
    dtdevolve::xml::Document doc = scenario.Next();
    ++total;
    if (validator.Validate(doc).valid) ++validator_accepted;
    source.Process(std::move(doc));
  }

  std::printf("== rigid (validator) classification against the initial "
              "DTD ==\n");
  std::printf("accepted %llu of %llu documents (%.1f%%) — the rest would "
              "be lost\n\n",
              static_cast<unsigned long long>(validator_accepted),
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(validator_accepted) /
                  static_cast<double>(total));

  std::printf("== similarity classification (σ = %.2f) ==\n",
              source.options().sigma);
  std::printf("classified %llu of %llu documents, %zu in the repository, "
              "%llu evolutions\n\n",
              static_cast<unsigned long long>(source.documents_classified()),
              static_cast<unsigned long long>(total),
              source.repository().size(),
              static_cast<unsigned long long>(source.evolutions_performed()));

  std::printf("== evolved news DTD ==\n%s",
              dtdevolve::dtd::WriteDtd(*source.FindDtd("news")).c_str());
  return 0;
}
