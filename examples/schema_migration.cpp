// Schema migration: the complete §6 loop through the public API.
//
//  1. A source ingests an XML *Schema* (converted to a DTD internally).
//  2. Drifted documents are classified and recorded; a trigger-language
//     rule fires the evolution.
//  3. The already-stored documents are *adapted* to the evolved DTD.
//  4. The evolved DTD is exported back as an XML Schema.
//
//   $ ./schema_migration

#include <cstdio>

#include "adapt/adapter.h"
#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "validate/validator.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xsd/from_dtd.h"
#include "xsd/parser.h"
#include "xsd/to_dtd.h"
#include "xsd/writer.h"

int main() {
  using namespace dtdevolve;  // example code; the library never does this

  // 1. The incoming contract is an XML Schema.
  const char* schema_text = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="customer"/>
        <xs:element ref="item" maxOccurs="unbounded"/>
        <xs:element ref="total"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="customer" type="xs:string"/>
  <xs:element name="item" type="xs:string"/>
  <xs:element name="total" type="xs:string"/>
</xs:schema>)";

  StatusOr<xsd::Schema> schema = xsd::ParseSchema(schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  StatusOr<dtd::Dtd> initial = xsd::ToDtd(*schema);
  if (!initial.ok()) return 1;
  std::printf("== ingested schema as DTD ==\n%s\n",
              dtd::WriteDtd(*initial).c_str());

  // 2. Feed drifted documents; a trigger rule governs evolution.
  core::SourceOptions options;
  options.sigma = 0.3;
  core::XmlSource source(options);
  if (!source.AddDtd("order", std::move(*initial)).ok()) return 1;
  if (!source
           .AddTriggerRule("ON order WHEN divergence > 0.15 AND "
                           "documents >= 10 EVOLVE WITH psi = 0.05")
           .ok()) {
    return 1;
  }

  // New reality: orders carry a shipping block and an optional coupon.
  const char* drifted[] = {
      "<order><customer>c</customer><item>i1</item><item>i2</item>"
      "<shipping><address>a</address></shipping><total>9</total></order>",
      "<order><customer>c</customer><item>i1</item>"
      "<shipping><address>a</address></shipping><coupon>X</coupon>"
      "<total>5</total></order>",
  };
  for (int round = 0; round < 8; ++round) {
    for (const char* text : drifted) {
      auto outcome = source.ProcessText(text);
      if (outcome.ok() && outcome->evolved) {
        std::printf("-- trigger rule fired at document %llu --\n",
                    static_cast<unsigned long long>(
                        source.documents_processed()));
      }
    }
  }
  const dtd::Dtd& evolved = *source.FindDtd("order");
  std::printf("\n== evolved DTD ==\n%s\n", dtd::WriteDtd(evolved).c_str());

  // 3. Adapt a legacy document (no shipping block) to the evolved DTD.
  StatusOr<xml::Document> legacy = xml::ParseDocument(
      "<order><customer>old</customer><item>i</item><total>1</total>"
      "</order>");
  adapt::AdaptOptions adapt_options;
  adapt_options.placeholder_text = "TBD";
  adapt::AdaptReport report;
  if (!adapt::AdaptDocument(*legacy, evolved, adapt_options, &report).ok()) {
    return 1;
  }
  validate::Validator validator(evolved);
  std::printf("== legacy document adapted (%llu inserted) — now %s ==\n%s\n",
              static_cast<unsigned long long>(report.children_inserted),
              validator.Validate(*legacy).valid ? "valid" : "INVALID",
              xml::WriteElement(legacy->root()).c_str());

  // 4. Export the evolved DTD back as an XML Schema.
  std::printf("\n== evolved schema ==\n%s",
              xsd::WriteSchema(xsd::FromDtd(evolved)).c_str());
  return 0;
}
