// Web catalog scenario: demonstrates the repository of unclassified
// documents and its re-classification after evolution, plus the incremental
// advantage over batch re-inference (the XTRACT-style baseline).
//
// The catalog's product records drift hard (a sale alternative and
// repeatable images). With a strict σ, the early drifted documents are
// rejected into the repository; once the mild drift forces an evolution,
// the evolved DTD recovers them.
//
//   $ ./web_catalog [docs_per_phase]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "baseline/xtract.h"
#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "workload/scenarios.h"

int main(int argc, char** argv) {
  uint64_t docs_per_phase =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;

  dtdevolve::workload::ScenarioStream scenario =
      dtdevolve::workload::MakeCatalogScenario(7, docs_per_phase);

  dtdevolve::core::SourceOptions options;
  options.sigma = 0.55;  // strict: heavy drift is rejected at first
  options.tau = 0.1;
  options.min_documents_before_check = 30;
  dtdevolve::core::XmlSource source(options);
  if (!source.AddDtd("catalog", scenario.InitialDtd()).ok()) return 1;

  size_t max_repository = 0;
  while (!scenario.Done()) {
    auto outcome = source.Process(scenario.Next());
    max_repository = std::max(max_repository, source.repository().size());
    if (outcome.evolved) {
      std::printf(
          "evolution at document %llu; repository recovered %zu document(s)\n",
          static_cast<unsigned long long>(source.documents_processed()),
          outcome.reclassified);
    }
  }

  std::printf("\n== evolved catalog DTD ==\n%s\n",
              dtdevolve::dtd::WriteDtd(*source.FindDtd("catalog")).c_str());
  std::printf("repository high-water mark: %zu, final size: %zu\n",
              max_repository, source.repository().size());

  // Contrast with batch re-inference over the retained instances: XTRACT
  // must re-read every document each time; the evolution phase only reads
  // the recorded aggregates.
  const std::vector<dtdevolve::xml::Document>& instances =
      source.InstancesOf("catalog");
  auto start = std::chrono::steady_clock::now();
  dtdevolve::dtd::Dtd xtract =
      dtdevolve::baseline::InferXtractDtd(instances, "catalog");
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  std::printf("\n== XTRACT-style batch inference over %zu documents "
              "(%lld us) ==\n%s\n",
              instances.size(), static_cast<long long>(elapsed.count()),
              dtdevolve::dtd::WriteDtd(xtract).c_str());
  return 0;
}
