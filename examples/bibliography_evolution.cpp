// Bibliography scenario: a source of article records whose hidden schema
// drifts twice — records gain doi/url fields, then conference papers
// introduce a (journal | booktitle) alternative. The source chases the
// drift; after every evolution the DTD is printed together with how well
// it describes the documents seen so far.
//
//   $ ./bibliography_evolution [docs_per_phase]

#include <cstdio>
#include <cstdlib>

#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "similarity/similarity.h"
#include "validate/validator.h"
#include "workload/scenarios.h"

namespace {

double MeanSimilarity(const dtdevolve::dtd::Dtd& dtd,
                      const std::vector<dtdevolve::xml::Document>& docs) {
  dtdevolve::similarity::SimilarityEvaluator evaluator(dtd);
  double sum = 0.0;
  for (const auto& doc : docs) sum += evaluator.DocumentSimilarity(doc);
  return docs.empty() ? 0.0 : sum / static_cast<double>(docs.size());
}

double ValidFraction(const dtdevolve::dtd::Dtd& dtd,
                     const std::vector<dtdevolve::xml::Document>& docs) {
  dtdevolve::validate::Validator validator(dtd);
  size_t valid = 0;
  for (const auto& doc : docs) {
    if (validator.Validate(doc).valid) ++valid;
  }
  return docs.empty() ? 0.0
                      : static_cast<double>(valid) /
                            static_cast<double>(docs.size());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t docs_per_phase = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;

  dtdevolve::workload::ScenarioStream scenario =
      dtdevolve::workload::MakeBibliographyScenario(2024, docs_per_phase);

  dtdevolve::core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 25;
  dtdevolve::core::XmlSource source(options);
  if (!source.AddDtd("bib", scenario.InitialDtd()).ok()) return 1;

  std::printf("== initial DTD (phase 0 truth) ==\n%s\n",
              dtdevolve::dtd::WriteDtd(*source.FindDtd("bib")).c_str());

  std::vector<dtdevolve::xml::Document> seen;
  size_t last_phase = 0;
  while (!scenario.Done()) {
    size_t phase = scenario.current_phase();
    if (phase != last_phase) {
      std::printf("--- drift: entering phase %zu ---\n", phase);
      last_phase = phase;
    }
    dtdevolve::xml::Document doc = scenario.Next();
    seen.push_back(doc.Clone());
    auto outcome = source.Process(std::move(doc));
    if (outcome.evolved) {
      const dtdevolve::dtd::Dtd& dtd = *source.FindDtd("bib");
      std::printf(
          "\n== evolution after document %llu ==\n%s"
          "mean similarity over all %zu docs: %.3f   valid: %.1f%%\n\n",
          static_cast<unsigned long long>(source.documents_processed()),
          dtdevolve::dtd::WriteDtd(dtd).c_str(), seen.size(),
          MeanSimilarity(dtd, seen), 100.0 * ValidFraction(dtd, seen));
    }
  }

  const dtdevolve::dtd::Dtd& final_dtd = *source.FindDtd("bib");
  dtdevolve::dtd::Dtd initial = scenario.InitialDtd();
  std::printf("== final comparison over the whole stream ==\n");
  std::printf("initial DTD: similarity %.3f, valid %.1f%%\n",
              MeanSimilarity(initial, seen),
              100.0 * ValidFraction(initial, seen));
  std::printf("evolved DTD: similarity %.3f, valid %.1f%%\n",
              MeanSimilarity(final_dtd, seen),
              100.0 * ValidFraction(final_dtd, seen));
  std::printf("evolutions performed: %llu, repository leftovers: %zu\n",
              static_cast<unsigned long long>(source.evolutions_performed()),
              source.repository().size());
  return 0;
}
