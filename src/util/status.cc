#include "util/status.h"

namespace dtdevolve {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dtdevolve
