#include "util/thread_pool.h"

#include <cassert>

namespace dtdevolve::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  size_ = threads;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  std::vector<std::thread> workers;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) return;  // idempotent
    stopping_ = true;
    workers.swap(workers_);
  }
  task_ready_.notify_all();
  // Workers drain the queue before exiting, so every submitted task
  // still runs.
  for (std::thread& worker : workers) worker.join();
  size_ = 0;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      lock.unlock();
      assert(false && "ThreadPool::Submit after Shutdown");
      task();  // release builds: run inline rather than drop the work
      return;
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::DefaultJobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t workers = size() < n ? size() : n;
  if (workers == 0) {  // pool already shut down: degrade to inline
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Per-call completion tracking instead of the pool-wide Wait():
  // several callers (one per tenant shard) share one pool, and a global
  // drain barrier would let one caller's batch block on another's.
  std::atomic<size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t remaining = workers;
  for (size_t w = 0; w < workers; ++w) {
    Submit([&next, &body, n, &done_mutex, &done_cv, &remaining] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
      std::unique_lock<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

void ParallelFor(size_t n, size_t jobs,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (jobs > n) jobs = n;
  if (jobs <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(jobs);
  pool.ParallelFor(n, body);
}

}  // namespace dtdevolve::util
