#ifndef DTDEVOLVE_UTIL_THREAD_POOL_H_
#define DTDEVOLVE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtdevolve::util {

/// A small fixed-size worker pool for data-parallel sections (batch
/// classification is the first user). Tasks are plain `void()` closures;
/// exceptions escaping a task terminate (tasks are expected to capture
/// and report their own errors).
///
/// Thread-safety: `Submit` and `Wait` may be called from any thread;
/// destruction waits for queued tasks to finish. One pool can be shared
/// across many rounds of work (the ingest server reuses a single pool
/// for every batch): `Wait` is reusable and idempotent.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count; 0 once `Shutdown` has run.
  size_t size() const { return size_; }

  /// Enqueues a task for execution on some worker. Submitting after
  /// `Shutdown` is a programming error: it asserts in debug builds and
  /// degrades to running the task inline on the caller in release
  /// builds, so work is never silently dropped.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed. Safe to
  /// call repeatedly (a second `Wait` with no new work returns
  /// immediately) and after `Shutdown` (no-op).
  void Wait();

  /// Drains every queued task, joins the workers and leaves the pool
  /// empty (`size() == 0`). Idempotent; called by the destructor. After
  /// shutdown the pool degrades gracefully: `Submit` runs inline (see
  /// above), `ParallelFor` runs inline, `Wait` returns immediately.
  void Shutdown();

  /// Runs `body(i)` for every i in [0, n) on this pool's workers and
  /// blocks until all iterations finished. Completion is tracked per
  /// call (not via the pool-wide `Wait`), so several threads may run
  /// independent `ParallelFor`s on one shared pool concurrently without
  /// blocking on each other's work. Iterations are claimed dynamically
  /// from a shared counter; `body` must be safe to call concurrently
  /// for distinct `i`.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// A sensible default worker count: the hardware concurrency, with a
  /// floor of 1 (hardware_concurrency may report 0).
  static size_t DefaultJobs();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::atomic<size_t> size_{0};  // drops to 0 on Shutdown
  std::vector<std::thread> workers_;
};

/// One-shot convenience: runs `body(i)` for every i in [0, n) across
/// `jobs` freshly spawned threads and blocks until all iterations
/// finished. `jobs <= 1` (or n <= 1) runs inline on the calling thread —
/// no pool is created, so the sequential path has zero threading
/// overhead. Callers with several rounds of work should keep one
/// `ThreadPool` alive and use its `ParallelFor` member instead.
void ParallelFor(size_t n, size_t jobs,
                 const std::function<void(size_t)>& body);

}  // namespace dtdevolve::util

#endif  // DTDEVOLVE_UTIL_THREAD_POOL_H_
