#ifndef DTDEVOLVE_UTIL_STATUS_H_
#define DTDEVOLVE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dtdevolve {

/// Lightweight operation outcome, in the style of database libraries:
/// the library never throws; fallible operations return a `Status` (or a
/// `StatusOr<T>`), and the caller is expected to check `ok()`.
class Status {
 public:
  /// Machine-inspectable failure category.
  enum class Code {
    kOk = 0,
    kInvalidArgument,   // caller passed something malformed
    kParseError,        // XML / DTD text could not be parsed
    kNotFound,          // named entity (element, DTD, document) missing
    kAlreadyExists,     // duplicate insertion
    kFailedPrecondition,// operation called in the wrong state
    kInternal,          // invariant violation inside the library
    kUnavailable,       // transient I/O failure (peer down); retryable
  };

  /// Successful status.
  Status() : code_(Code::kOk) {}

  /// Factory helpers; each carries a human-readable message.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" for logs and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
/// `*` / `->` / `value()` must only be used when `ok()` is true.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return parsed;` / `return Status::ParseError(...)`).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dtdevolve

/// Early-return helper: propagate a non-OK Status from the current function.
#define DTDEVOLVE_RETURN_IF_ERROR(expr)              \
  do {                                               \
    ::dtdevolve::Status _st = (expr);                \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // DTDEVOLVE_UTIL_STATUS_H_
