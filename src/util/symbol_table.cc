#include "util/symbol_table.h"

#include <mutex>

namespace dtdevolve::util {

int32_t SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  bytes_ += name.size();
  return id;
}

int32_t SymbolTable::InternBounded(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    if (names_.size() >= max_entries_ || bytes_ + name.size() > max_bytes_) {
      return kNoSymbol;
    }
  }
  std::unique_lock lock(mutex_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  if (names_.size() >= max_entries_ || bytes_ + name.size() > max_bytes_) {
    return kNoSymbol;
  }
  int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  bytes_ += name.size();
  return id;
}

int32_t SymbolTable::Find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const std::string& SymbolTable::NameOf(int32_t id) const {
  std::shared_lock lock(mutex_);
  return names_[static_cast<size_t>(id)];
}

size_t SymbolTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

void SymbolTable::set_capacity(size_t max_entries, size_t max_bytes) {
  std::unique_lock lock(mutex_);
  max_entries_ = max_entries;
  max_bytes_ = max_bytes;
}

SymbolTable& GlobalSymbols() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

int32_t InternSymbol(std::string_view name) {
  return GlobalSymbols().Intern(name);
}

int32_t InternSymbolBounded(std::string_view name) {
  return GlobalSymbols().InternBounded(name);
}

}  // namespace dtdevolve::util
