#ifndef DTDEVOLVE_UTIL_STRING_UTIL_H_
#define DTDEVOLVE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dtdevolve {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` consists only of ASCII whitespace (or is empty).
bool IsBlank(std::string_view text);

}  // namespace dtdevolve

#endif  // DTDEVOLVE_UTIL_STRING_UTIL_H_
