#include "util/string_util.h"

#include <cctype>

namespace dtdevolve {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool IsBlank(std::string_view text) {
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace dtdevolve
