#ifndef DTDEVOLVE_UTIL_SYMBOL_TABLE_H_
#define DTDEVOLVE_UTIL_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dtdevolve::util {

/// Interns strings to dense, process-stable `int32` ids. Element tags and
/// DTD labels come from a small vocabulary, so comparing interned ids
/// replaces string comparison and string-keyed map lookups on the
/// classification hot path.
///
/// Ids are append-only: once assigned, an id never changes and its name is
/// never freed, so `NameOf` results stay valid for the process lifetime.
/// All entry points are thread-safe (readers share, interning excludes).
class SymbolTable {
 public:
  SymbolTable() = default;

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id of `name`, assigning the next dense id on first sight.
  int32_t Intern(std::string_view name);

  /// Returns the id of `name`, or -1 when it was never interned.
  int32_t Find(std::string_view name) const;

  /// Name of an interned id. `id` must come from `Intern`.
  const std::string& NameOf(int32_t id) const;

  size_t size() const;

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, int32_t, Hash, Eq> index_;
  /// Deque: growth never moves existing strings, so `NameOf` references
  /// stay stable without copying.
  std::deque<std::string> names_;
};

/// The process-wide table interning element tags and DTD labels. Shared by
/// `xml::Element`, `dtd::Automaton` and the similarity evaluator so their
/// ids agree.
SymbolTable& GlobalSymbols();

/// Shorthand for `GlobalSymbols().Intern(name)`.
int32_t InternSymbol(std::string_view name);

}  // namespace dtdevolve::util

#endif  // DTDEVOLVE_UTIL_SYMBOL_TABLE_H_
