#ifndef DTDEVOLVE_UTIL_SYMBOL_TABLE_H_
#define DTDEVOLVE_UTIL_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dtdevolve::util {

/// Interns strings to dense, process-stable `int32` ids. Element tags and
/// DTD labels come from a small vocabulary, so comparing interned ids
/// replaces string comparison and string-keyed map lookups on the
/// classification hot path.
///
/// Ids are append-only: once assigned, an id never changes and its name is
/// never freed, so `NameOf` results stay valid for the process lifetime.
/// That permanence is also an exposure: the ingest server parses untrusted
/// XML, and a stream of documents with unbounded distinct tag names would
/// grow an uncapped table without bound. Untrusted callers therefore use
/// `InternBounded`, which stops assigning ids once the capacity is reached
/// and returns `kNoSymbol` instead; consumers treat `kNoSymbol` as "no
/// dense id" and fall back to string comparison (two distinct overflow
/// tags share the sentinel, so the sentinel must never be compared for
/// equality as if it were an id). `Intern` stays unbounded and is
/// reserved for trusted bounded-vocabulary callers (DTD declarations,
/// automaton labels) whose ids must exist for correctness.
/// All entry points are thread-safe (readers share, interning excludes).
class SymbolTable {
 public:
  /// Sentinel returned by `InternBounded`/`Find` when no id exists.
  static constexpr int32_t kNoSymbol = -1;
  /// Default capacity: far above any legitimate tag vocabulary, small
  /// enough that a hostile stream cannot exhaust process memory.
  static constexpr size_t kDefaultMaxEntries = size_t{1} << 20;
  static constexpr size_t kDefaultMaxBytes = size_t{64} << 20;

  SymbolTable() = default;

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id of `name`, assigning the next dense id on first sight.
  /// Unbounded — trusted, bounded-vocabulary callers only.
  int32_t Intern(std::string_view name);

  /// Returns the id of `name` if it is already interned; otherwise assigns
  /// the next dense id unless the table is at capacity, in which case it
  /// returns `kNoSymbol` without inserting. The untrusted-input entry
  /// point: names already interned (e.g. DTD labels) always resolve.
  int32_t InternBounded(std::string_view name);

  /// Returns the id of `name`, or `kNoSymbol` when it was never interned.
  int32_t Find(std::string_view name) const;

  /// Name of an interned id. `id` must come from `Intern`.
  const std::string& NameOf(int32_t id) const;

  size_t size() const;

  /// Caps future `InternBounded` growth (existing entries are kept even if
  /// over the new cap). Primarily a test hook for forcing overflow.
  void set_capacity(size_t max_entries, size_t max_bytes);

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, int32_t, Hash, Eq> index_;
  /// Deque: growth never moves existing strings, so `NameOf` references
  /// stay stable without copying.
  std::deque<std::string> names_;
  size_t bytes_ = 0;  // total bytes of interned names
  size_t max_entries_ = kDefaultMaxEntries;
  size_t max_bytes_ = kDefaultMaxBytes;
};

/// The process-wide table interning element tags and DTD labels. Shared by
/// `xml::Element`, `dtd::Automaton` and the similarity evaluator so their
/// ids agree.
SymbolTable& GlobalSymbols();

/// Shorthand for `GlobalSymbols().Intern(name)`.
int32_t InternSymbol(std::string_view name);

/// Shorthand for `GlobalSymbols().InternBounded(name)` — the entry point
/// for names originating in untrusted documents.
int32_t InternSymbolBounded(std::string_view name);

}  // namespace dtdevolve::util

#endif  // DTDEVOLVE_UTIL_SYMBOL_TABLE_H_
