#ifndef DTDEVOLVE_UTIL_CRC32_H_
#define DTDEVOLVE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dtdevolve::util {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
/// used by zlib, gzip and most write-ahead-log formats. Dependency-free
/// table-driven implementation; `seed` allows incremental computation
/// over scattered buffers (`Crc32(b, nb, Crc32(a, na))`).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace dtdevolve::util

#endif  // DTDEVOLVE_UTIL_CRC32_H_
