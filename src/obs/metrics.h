#ifndef DTDEVOLVE_OBS_METRICS_H_
#define DTDEVOLVE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dtdevolve::obs {

/// Dependency-free process metrics: monotonic counters, gauges and
/// fixed-bucket histograms behind a registry with a Prometheus
/// text-format renderer.
///
/// Thread-safety: every mutation entry point (`Counter::Increment`,
/// `Gauge::Set/Add`, `Histogram::Observe`) is lock-free and safe to call
/// from any thread — in particular from `util::ThreadPool` workers inside
/// a scoring fan-out. Series lookup in the `Registry` is lock-striped:
/// sixteen independent shards, each behind its own mutex, so concurrent
/// lookups of unrelated series never contend. Hot paths are expected to
/// look a series up once and keep the returned reference (references are
/// stable for the registry's lifetime; series are never removed).

/// A monotonically increasing counter. Increments are striped over
/// cache-line-sized cells indexed by the calling thread so concurrent
/// writers do not bounce one cache line; `Value()` sums the stripes.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1);
  uint64_t Value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  static constexpr size_t kStripes = 8;
  std::array<Cell, kStripes> cells_;
};

/// A value that can go up and down (queue depths, worker counts, …).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  void Add(double delta);
  double Value() const;

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram (Prometheus semantics): `bounds` are the
/// inclusive upper bounds of the finite buckets, in strictly ascending
/// order; an implicit +Inf bucket catches the rest. Bucket counts, the
/// running sum and the observation count are all atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative per-bucket counts; size is `bounds().size() + 1`
  /// (the final entry is the +Inf bucket).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const;

  /// Latency buckets from 100µs to 10s, suitable for ingest timing.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Label set of one series, e.g. `{{"dtd", "mail"}}`. Order is
/// normalized (sorted by key) when the series is created.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Owns every metric series and renders them in the Prometheus text
/// exposition format. `Get*` returns the existing series when the
/// (name, labels) pair is already registered — the `help` of the first
/// registration wins — and creates it otherwise. Registering the same
/// name with two different metric types is a programming error
/// (asserted in debug builds; the first type wins in release builds and
/// a fresh unrendered series is handed back so callers stay safe).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge& GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  Histogram& GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, Labels labels = {});

  /// The full Prometheus text exposition: `# HELP` / `# TYPE` once per
  /// family, series sorted by name then label set, histograms expanded
  /// into cumulative `_bucket{le=…}` plus `_sum` / `_count`.
  std::string RenderPrometheus() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    std::string name;
    std::string help;
    Labels labels;
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    // Keyed by name + rendered label set; values are stable pointers.
    std::vector<std::pair<std::string, std::unique_ptr<Series>>> series;
  };

  Series& GetSeries(std::string_view name, std::string_view help, Type type,
                    Labels labels, std::vector<double> bounds);

  std::array<Shard, kShards> shards_;
};

}  // namespace dtdevolve::obs

#endif  // DTDEVOLVE_OBS_METRICS_H_
