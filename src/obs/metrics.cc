#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>
#include <thread>

namespace dtdevolve::obs {

namespace {

size_t ThreadStripe(size_t stripes) {
  // One hash per thread; cached so the hot increment path is a single
  // relaxed fetch_add on a thread-stable cell.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe % stripes;
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, or the empty string for an unlabeled series.
/// `extra` (used for histogram `le`) is appended last.
std::string RenderLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  cells_[ThreadStripe(kStripes)].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Set(double value) {
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::Add(double delta) { AtomicAddDouble(value_, delta); }

double Gauge::Value() const { return value_.load(std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // Buckets are inclusive on the upper edge: the first bound >= value.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
          0.025,  0.05,    0.1,    0.25,  0.5,    1.0,   2.5,
          5.0,    10.0};
}

Registry::Series& Registry::GetSeries(std::string_view name,
                                      std::string_view help, Type type,
                                      Labels labels,
                                      std::vector<double> bounds) {
  std::sort(labels.begin(), labels.end());
  std::string key(name);
  key += RenderLabels(labels);

  Shard& shard = shards_[std::hash<std::string>{}(key) % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (auto& [existing_key, series] : shard.series) {
    if (existing_key != key) continue;
    assert(series->type == type && "metric re-registered with another type");
    if (series->type == type) return *series;
    break;  // type clash in a release build: fall through to a fresh series
  }
  auto series = std::make_unique<Series>();
  series->name = std::string(name);
  series->help = std::string(help);
  series->labels = std::move(labels);
  series->type = type;
  switch (type) {
    case Type::kCounter:
      series->counter = std::make_unique<Counter>();
      break;
    case Type::kGauge:
      series->gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      series->histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  shard.series.emplace_back(std::move(key), std::move(series));
  return *shard.series.back().second;
}

Counter& Registry::GetCounter(std::string_view name, std::string_view help,
                              Labels labels) {
  return *GetSeries(name, help, Type::kCounter, std::move(labels), {})
              .counter;
}

Gauge& Registry::GetGauge(std::string_view name, std::string_view help,
                          Labels labels) {
  return *GetSeries(name, help, Type::kGauge, std::move(labels), {}).gauge;
}

Histogram& Registry::GetHistogram(std::string_view name, std::string_view help,
                                  std::vector<double> bounds, Labels labels) {
  return *GetSeries(name, help, Type::kHistogram, std::move(labels),
                    std::move(bounds))
              .histogram;
}

std::string Registry::RenderPrometheus() const {
  // Snapshot pointers under the shard locks, then render lock-free;
  // series are never removed so the pointers stay valid.
  std::vector<const Series*> all;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, series] : shard.series) all.push_back(series.get());
  }
  std::sort(all.begin(), all.end(), [](const Series* a, const Series* b) {
    if (a->name != b->name) return a->name < b->name;
    return a->labels < b->labels;
  });

  std::string out;
  const std::string* last_family = nullptr;
  for (const Series* series : all) {
    if (last_family == nullptr || *last_family != series->name) {
      out += "# HELP " + series->name + " " + series->help + "\n";
      out += "# TYPE " + series->name + " ";
      switch (series->type) {
        case Type::kCounter:
          out += "counter\n";
          break;
        case Type::kGauge:
          out += "gauge\n";
          break;
        case Type::kHistogram:
          out += "histogram\n";
          break;
      }
      last_family = &series->name;
    }
    const std::string labels = RenderLabels(series->labels);
    switch (series->type) {
      case Type::kCounter:
        out += series->name + labels + " " +
               std::to_string(series->counter->Value()) + "\n";
        break;
      case Type::kGauge:
        out += series->name + labels + " " +
               FormatDouble(series->gauge->Value()) + "\n";
        break;
      case Type::kHistogram: {
        const Histogram& hist = *series->histogram;
        const std::vector<uint64_t> counts = hist.BucketCounts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          const std::string le =
              i < hist.bounds().size()
                  ? "le=\"" + FormatDouble(hist.bounds()[i]) + "\""
                  : std::string("le=\"+Inf\"");
          out += series->name + "_bucket" + RenderLabels(series->labels, le) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += series->name + "_sum" + labels + " " +
               FormatDouble(hist.Sum()) + "\n";
        out += series->name + "_count" + labels + " " +
               std::to_string(hist.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace dtdevolve::obs
