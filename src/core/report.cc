#include "core/report.h"

#include <cstdio>

#include "evolve/windows.h"

namespace dtdevolve::core {

std::string FormatEvolution(const evolve::EvolutionResult& result) {
  std::string out;
  char line[256];
  for (const evolve::ElementEvolution& element : result.elements) {
    std::snprintf(line, sizeof(line), "%-12s window=%-4s I=%.3f n=%llu %s",
                  element.name.c_str(),
                  evolve::WindowName(element.window).c_str(),
                  element.invalidity,
                  static_cast<unsigned long long>(element.instances),
                  element.changed ? "CHANGED" : "kept");
    out += line;
    out += '\n';
    if (element.changed) {
      out += "  old: " + element.old_model + "\n";
      out += "  new: " + element.new_model + "\n";
    }
    for (const evolve::PolicyTrace& trace : element.trace) {
      std::snprintf(line, sizeof(line), "  policy %2d: %s", trace.policy,
                    trace.description.c_str());
      out += line;
      out += '\n';
    }
  }
  if (!result.added_declarations.empty()) {
    out += "  added declarations:";
    for (const std::string& name : result.added_declarations) {
      out += ' ';
      out += name;
    }
    out += '\n';
  }
  return out;
}

std::string EventKindName(SourceEvent::Kind kind) {
  switch (kind) {
    case SourceEvent::Kind::kClassified:
      return "classified";
    case SourceEvent::Kind::kUnclassified:
      return "unclassified";
    case SourceEvent::Kind::kEvolved:
      return "evolved";
    case SourceEvent::Kind::kReclassified:
      return "reclassified";
    case SourceEvent::Kind::kDtdInduced:
      return "induced";
  }
  return "?";
}

}  // namespace dtdevolve::core
