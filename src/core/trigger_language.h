#ifndef DTDEVOLVE_CORE_TRIGGER_LANGUAGE_H_
#define DTDEVOLVE_CORE_TRIGGER_LANGUAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "evolve/evolver.h"
#include "util/status.h"

namespace dtdevolve::core {

/// Metrics a trigger rule may test, snapshot from one extended DTD.
struct TriggerMetrics {
  double divergence = 0.0;        // mean per-document divergence (the τ LHS)
  uint64_t documents = 0;         // documents recorded since last evolution
  uint64_t total_elements = 0;    // elements recorded
  uint64_t invalid_elements = 0;  // locally invalid elements recorded
  double invalid_fraction = 0.0;  // invalid_elements / total_elements
};

/// The §6 extension made concrete: "the development of an evolution
/// trigger language, by using which applications can specify and
/// automatically activate DTD evolution". One rule per line:
///
///   ON <dtd-name|*> WHEN <condition> EVOLVE [WITH k = v, ...]
///
///   condition   := disjunction of conjunctions of comparisons
///                  (AND binds tighter than OR; parentheses allowed)
///   comparison  := metric (> | >= | < | <= | == | !=) number
///   metric      := divergence | documents | total_elements |
///                  invalid_elements | invalid_fraction
///   WITH keys   := psi, min_support, rename_min_score,
///                  restrict_operators, enable_or, simplify,
///                  drop_orphans   (flags take 0/1)
///
/// Example:
///   ON mail WHEN divergence > 0.25 AND documents >= 50
///     EVOLVE WITH psi = 0.05, min_support = 0.2
///   ON * WHEN invalid_fraction > 0.5 EVOLVE
class TriggerRule {
 public:
  /// AST of the WHEN condition.
  struct Condition {
    enum class Kind { kComparison, kAnd, kOr };
    Kind kind = Kind::kComparison;
    // kComparison:
    std::string metric;
    std::string op;
    double value = 0.0;
    // kAnd / kOr:
    std::unique_ptr<Condition> lhs;
    std::unique_ptr<Condition> rhs;
  };

  /// Parses a single rule. Returns ParseError with position info on
  /// malformed input.
  static StatusOr<TriggerRule> Parse(std::string_view text);

  TriggerRule(TriggerRule&&) = default;
  TriggerRule& operator=(TriggerRule&&) = default;

  /// Target DTD name, or "*" for every DTD.
  const std::string& target() const { return target_; }
  bool AppliesTo(std::string_view dtd_name) const {
    return target_ == "*" || target_ == dtd_name;
  }

  /// Evaluates the WHEN condition against a metric snapshot.
  bool Evaluate(const TriggerMetrics& metrics) const;

  /// The base evolution options overlaid with this rule's WITH clause.
  evolve::EvolutionOptions OptionsOver(
      const evolve::EvolutionOptions& base) const;

  /// Canonical rendering (round-trips through Parse).
  std::string ToString() const;

 private:
  TriggerRule() = default;

  std::string target_;
  std::unique_ptr<Condition> condition_;
  std::vector<std::pair<std::string, double>> assignments_;
};

/// Parses a rule set: one rule per line; blank lines and `#` comments are
/// skipped.
StatusOr<std::vector<TriggerRule>> ParseTriggerRules(std::string_view text);

}  // namespace dtdevolve::core

#endif  // DTDEVOLVE_CORE_TRIGGER_LANGUAGE_H_
