#include "core/source.h"

#include <algorithm>
#include <utility>

#include "dtd/dtd_parser.h"
#include "util/thread_pool.h"
#include "xml/parser.h"
#include "xml/stream_reader.h"

namespace dtdevolve::core {

namespace {

/// The clusterer scores with the same similarity knobs as the
/// classifier, so cluster geometry matches classification geometry.
SourceOptions SyncInduceOptions(SourceOptions options) {
  options.induce.cluster.similarity = options.similarity;
  return options;
}

}  // namespace

XmlSource::XmlSource(SourceOptions options)
    : options_(SyncInduceOptions(std::move(options))),
      classifier_(options_.sigma, options_.similarity, options_.classifier),
      clusterer_(options_.induce.cluster) {}

Status XmlSource::AddDtd(const std::string& name, dtd::Dtd dtd) {
  if (dtds_.find(name) != dtds_.end()) {
    return Status::AlreadyExists("DTD '" + name + "' already registered");
  }
  DTDEVOLVE_RETURN_IF_ERROR(dtd.Check());
  auto [it, inserted] =
      dtds_.emplace(name, evolve::ExtendedDtd(std::move(dtd)));
  classifier_.AddDtd(name, &it->second.dtd());
  auto recorder = std::make_unique<evolve::Recorder>(it->second);
  recorder->set_metrics(metrics_.documents_recorded,
                        metrics_.elements_recorded);
  recorders_.emplace(name, std::move(recorder));
  instances_.emplace(name, std::vector<xml::Document>());
  return Status::Ok();
}

Status XmlSource::RestoreExtended(const std::string& name,
                                  evolve::ExtendedDtd ext) {
  auto it = dtds_.find(name);
  if (it == dtds_.end()) {
    return Status::NotFound("DTD '" + name + "' is not registered");
  }
  DTDEVOLVE_RETURN_IF_ERROR(ext.dtd().Check());
  it->second = std::move(ext);
  // The DTD object moved: re-point the classifier (rebuilding the
  // evaluator) and rebuild the recorder over the restored state.
  classifier_.AddDtd(name, &it->second.dtd());
  auto recorder = std::make_unique<evolve::Recorder>(it->second);
  recorder->set_metrics(metrics_.documents_recorded,
                        metrics_.elements_recorded);
  recorders_[name] = std::move(recorder);
  return Status::Ok();
}

void XmlSource::RestoreCounters(uint64_t processed, uint64_t classified,
                                uint64_t evolutions) {
  documents_processed_ = processed;
  documents_classified_ = classified;
  evolutions_performed_ = evolutions;
}

void XmlSource::RestoreRepositoryDoc(int id, xml::Document doc) {
  repository_.Restore(id, std::move(doc));
  if (options_.cluster_repository) {
    clusterer_.Add(id, repository_.Get(id));
  }
}

void XmlSource::set_metrics(const SourceMetrics& metrics) {
  metrics_ = metrics;
  classify::ClassifierMetrics classifier_metrics;
  classifier_metrics.documents_scored = metrics.documents_scored;
  classifier_metrics.similarity_evaluations = metrics.similarity_evaluations;
  classifier_metrics.evaluations_pruned = metrics.evaluations_pruned;
  classifier_metrics.cache_hits = metrics.score_cache_hits;
  classifier_metrics.cache_misses = metrics.score_cache_misses;
  classifier_metrics.cache_evictions = metrics.score_cache_evictions;
  classifier_metrics.score_seconds = metrics.score_seconds;
  classifier_.set_metrics(classifier_metrics);
  for (auto& [name, recorder] : recorders_) {
    recorder->set_metrics(metrics.documents_recorded,
                          metrics.elements_recorded);
  }
}

Status XmlSource::AddDtdText(const std::string& name,
                             std::string_view dtd_text, std::string root) {
  StatusOr<dtd::Dtd> parsed = dtd::ParseDtd(dtd_text, std::move(root));
  if (!parsed.ok()) return parsed.status();
  return AddDtd(name, std::move(parsed).value());
}

XmlSource::ProcessOutcome XmlSource::Process(xml::Document doc) {
  classify::ClassificationOutcome classification = classifier_.Classify(doc);
  PendingDocument pending;
  pending.dom.emplace(std::move(doc));
  return ApplyClassification(std::move(pending), classification, /*jobs=*/1);
}

XmlSource::ProcessOutcome XmlSource::Process(xml::ArenaDocument doc) {
  PendingDocument pending;
  pending.arena = &doc;
  classify::ClassificationOutcome classification =
      classifier_.ClassifyArena(doc, &pending.dom);
  return ApplyClassification(std::move(pending), classification, /*jobs=*/1);
}

XmlSource::ProcessOutcome XmlSource::ApplyClassification(
    PendingDocument doc,
    const classify::ClassificationOutcome& classification, size_t jobs) {
  ProcessOutcome outcome;
  const uint64_t index = documents_processed_++;
  if (metrics_.documents_processed != nullptr) {
    metrics_.documents_processed->Increment();
  }

  outcome.dtd_name = classification.dtd_name;
  outcome.similarity = classification.similarity;

  if (!classification.classified) {
    const int repo_id = repository_.Add(doc.TakeDom());
    if (options_.cluster_repository) {
      clusterer_.Add(repo_id, repository_.Get(repo_id));
    }
    if (metrics_.documents_unclassified != nullptr) {
      metrics_.documents_unclassified->Increment();
    }
    events_.push_back({SourceEvent::Kind::kUnclassified,
                       classification.dtd_name, classification.similarity,
                       index, ""});
    return outcome;
  }

  outcome.classified = true;
  ++documents_classified_;
  if (metrics_.documents_classified != nullptr) {
    metrics_.documents_classified->Increment();
  }
  const std::string& name = classification.dtd_name;
  evolve::ExtendedDtd& ext = dtds_.at(name);
  if (doc.dom.has_value()) {
    recorders_.at(name)->RecordDocument(*doc.dom);
  } else {
    // Memo-hit streaming path: record straight off the arena tree —
    // the recorder extracts identical statistics from either
    // representation of the same document.
    recorders_.at(name)->RecordDocument(*doc.arena);
  }
  if (options_.keep_documents) {
    instances_.at(name).push_back(doc.TakeDom());
  }
  events_.push_back({SourceEvent::Kind::kClassified, name,
                     classification.similarity, index, ""});

  if (!trigger_rules_.empty()) {
    // The trigger language replaces the plain τ check.
    if (metrics_.trigger_checks != nullptr) {
      metrics_.trigger_checks->Increment();
    }
    TriggerMetrics metrics = MetricsFor(name);
    for (const TriggerRule& rule : trigger_rules_) {
      if (!rule.AppliesTo(name) || !rule.Evaluate(metrics)) continue;
      evolve::EvolutionResult result =
          evolve::EvolveDtd(ext, rule.OptionsOver(options_.evolution));
      AfterEvolution(name, result);
      outcome.evolved = true;
      if (options_.reclassify_after_evolution) {
        outcome.reclassified = ReclassifyRepository(jobs);
      }
      break;
    }
  } else if (options_.auto_evolve &&
             ext.documents_recorded() >=
                 options_.min_documents_before_check) {
    if (metrics_.trigger_checks != nullptr) {
      metrics_.trigger_checks->Increment();
    }
    evolve::CheckResult check =
        evolve::CheckEvolutionTrigger(ext, options_.tau);
    if (check.should_evolve) {
      evolve::EvolutionResult result =
          evolve::EvolveDtd(ext, options_.evolution);
      AfterEvolution(name, result);
      outcome.evolved = true;
      if (options_.reclassify_after_evolution) {
        outcome.reclassified = ReclassifyRepository(jobs);
      }
    }
  }
  return outcome;
}

std::vector<XmlSource::ProcessOutcome> XmlSource::ProcessBatch(
    std::vector<xml::Document> docs, size_t jobs) {
  if (jobs == 0) jobs = util::ThreadPool::DefaultJobs();
  // One pool for the whole batch; chunks reuse its workers.
  std::optional<util::ThreadPool> pool;
  if (jobs > 1 && docs.size() > 1) pool.emplace(jobs);
  return ProcessBatch(std::move(docs), pool ? &*pool : nullptr);
}

std::vector<XmlSource::ProcessOutcome> XmlSource::ProcessBatch(
    std::vector<xml::Document> docs, util::ThreadPool* pool) {
  const size_t jobs = pool != nullptr && pool->size() > 1 ? pool->size() : 1;
  std::vector<ProcessOutcome> outcomes;
  outcomes.reserve(docs.size());
  // Score a chunk in parallel, then apply serially in input order. The
  // chunk bounds the speculation: an evolution invalidates the scores of
  // the documents after it, which are then re-scored against the evolved
  // DTD set — exactly what sequential `Process` would have seen.
  const size_t chunk = std::max<size_t>(32, 16 * jobs);
  size_t i = 0;
  while (i < docs.size()) {
    const size_t end = std::min(docs.size(), i + chunk);
    std::vector<const xml::Document*> pending;
    pending.reserve(end - i);
    for (size_t j = i; j < end; ++j) pending.push_back(&docs[j]);
    std::vector<classify::ClassificationOutcome> classifications =
        classifier_.ClassifyBatch(pending, pool);
    size_t applied = 0;
    for (size_t j = i; j < end; ++j) {
      PendingDocument pending;
      pending.dom.emplace(std::move(docs[j]));
      outcomes.push_back(ApplyClassification(std::move(pending),
                                             classifications[j - i], jobs));
      ++applied;
      if (outcomes.back().evolved) break;  // remaining scores are stale
    }
    i += applied;
  }
  return outcomes;
}

StatusOr<XmlSource::ProcessOutcome> XmlSource::ProcessText(
    std::string_view xml_text) {
  if (options_.streaming_parse) {
    StatusOr<xml::ArenaDocument> doc = xml::ParseArenaDocument(xml_text);
    if (!doc.ok()) return doc.status();
    return Process(std::move(doc).value());
  }
  StatusOr<xml::Document> doc = xml::ParseDocument(xml_text);
  if (!doc.ok()) return doc.status();
  return Process(std::move(doc).value());
}

std::vector<XmlSource::ProcessOutcome> XmlSource::ProcessBatch(
    std::vector<xml::ArenaDocument> docs, util::ThreadPool* pool) {
  const size_t jobs = pool != nullptr && pool->size() > 1 ? pool->size() : 1;
  std::vector<ProcessOutcome> outcomes;
  outcomes.reserve(docs.size());
  // Same chunked speculation as the DOM batch, with a memo split in
  // front: hits replay their outcome with no DOM and no scoring, and
  // only the misses of the chunk are materialized and batch-scored.
  // An evolution bumps the set-epoch, so the re-probed remainder of the
  // chunk correctly misses against the evolved set.
  const size_t chunk = std::max<size_t>(32, 16 * jobs);
  std::vector<std::optional<classify::ClassificationOutcome>> replayed;
  std::vector<std::optional<xml::Document>> materialized;
  size_t i = 0;
  while (i < docs.size()) {
    const size_t end = std::min(docs.size(), i + chunk);
    replayed.clear();
    replayed.resize(end - i);
    materialized.clear();
    materialized.resize(end - i);
    std::vector<const xml::Document*> pending;
    std::vector<size_t> pending_index;
    for (size_t j = i; j < end; ++j) {
      replayed[j - i] = classifier_.MemoProbe(docs[j]);
      if (!replayed[j - i].has_value()) {
        materialized[j - i].emplace(docs[j].ToDocument());
        pending.push_back(&*materialized[j - i]);
        pending_index.push_back(j - i);
      }
    }
    std::vector<classify::ClassificationOutcome> scored =
        classifier_.ClassifyBatch(pending, pool);
    for (size_t k = 0; k < pending_index.size(); ++k) {
      replayed[pending_index[k]] = std::move(scored[k]);
    }
    size_t applied = 0;
    for (size_t j = i; j < end; ++j) {
      PendingDocument doc;
      doc.arena = &docs[j];
      doc.dom = std::move(materialized[j - i]);
      outcomes.push_back(
          ApplyClassification(std::move(doc), *replayed[j - i], jobs));
      ++applied;
      if (outcomes.back().evolved) break;  // remaining scores are stale
    }
    i += applied;
  }
  return outcomes;
}

void XmlSource::AfterEvolution(const std::string& name,
                               const evolve::EvolutionResult& result) {
  ++evolutions_performed_;
  if (metrics_.evolutions != nullptr) metrics_.evolutions->Increment();
  classifier_.Invalidate(name);
  auto recorder = std::make_unique<evolve::Recorder>(dtds_.at(name));
  recorder->set_metrics(metrics_.documents_recorded,
                        metrics_.elements_recorded);
  recorders_[name] = std::move(recorder);
  events_.push_back({SourceEvent::Kind::kEvolved, name, 0.0,
                     documents_processed_ == 0 ? 0 : documents_processed_ - 1,
                     FormatEvolution(result)});
}

std::vector<std::string> XmlSource::DtdNames() const {
  std::vector<std::string> names;
  names.reserve(dtds_.size());
  for (const auto& [name, ext] : dtds_) names.push_back(name);
  return names;
}

const dtd::Dtd* XmlSource::FindDtd(const std::string& name) const {
  auto it = dtds_.find(name);
  return it == dtds_.end() ? nullptr : &it->second.dtd();
}

const evolve::ExtendedDtd* XmlSource::FindExtended(
    const std::string& name) const {
  auto it = dtds_.find(name);
  return it == dtds_.end() ? nullptr : &it->second;
}

const std::vector<xml::Document>& XmlSource::InstancesOf(
    const std::string& name) const {
  static const std::vector<xml::Document>* const kEmpty =
      new std::vector<xml::Document>();
  auto it = instances_.find(name);
  return it == instances_.end() ? *kEmpty : it->second;
}

Status XmlSource::AddTriggerRule(std::string_view rule_text) {
  StatusOr<TriggerRule> rule = TriggerRule::Parse(rule_text);
  if (!rule.ok()) return rule.status();
  trigger_rules_.push_back(std::move(*rule));
  return Status::Ok();
}

Status XmlSource::AddTriggerRules(std::string_view rules_text) {
  StatusOr<std::vector<TriggerRule>> rules = ParseTriggerRules(rules_text);
  if (!rules.ok()) return rules.status();
  for (TriggerRule& rule : *rules) {
    trigger_rules_.push_back(std::move(rule));
  }
  return Status::Ok();
}

TriggerMetrics XmlSource::MetricsFor(const std::string& name) const {
  TriggerMetrics metrics;
  auto it = dtds_.find(name);
  if (it == dtds_.end()) return metrics;
  const evolve::ExtendedDtd& ext = it->second;
  metrics.divergence = ext.MeanDivergence();
  metrics.documents = ext.documents_recorded();
  metrics.total_elements = ext.total_elements_recorded();
  metrics.invalid_elements = ext.invalid_elements_recorded();
  metrics.invalid_fraction =
      metrics.total_elements == 0
          ? 0.0
          : static_cast<double>(metrics.invalid_elements) /
                static_cast<double>(metrics.total_elements);
  return metrics;
}

evolve::CheckResult XmlSource::Check(const std::string& name) const {
  auto it = dtds_.find(name);
  if (it == dtds_.end()) return {};
  return evolve::CheckEvolutionTrigger(it->second, options_.tau);
}

std::optional<evolve::EvolutionResult> XmlSource::ForceEvolve(
    const std::string& name) {
  auto it = dtds_.find(name);
  if (it == dtds_.end()) return std::nullopt;
  evolve::EvolutionResult result =
      evolve::EvolveDtd(it->second, options_.evolution);
  AfterEvolution(name, result);
  return result;
}

size_t XmlSource::InduceCandidates() {
  if (options_.cluster_repository) clusterer_.Consolidate();
  candidates_.clear();
  std::vector<induce::Candidate> induced = induce::InduceClusterCandidates(
      clusterer_.Clusters(), repository_, &classifier_, DtdNames(),
      options_.induce);
  for (induce::Candidate& candidate : induced) {
    candidate.id = next_candidate_id_++;
    ++candidates_proposed_;
    if (metrics_.candidates_proposed != nullptr) {
      metrics_.candidates_proposed->Increment();
    }
    candidates_.push_back(std::move(candidate));
  }
  return candidates_.size();
}

const induce::Candidate* XmlSource::FindCandidate(uint64_t id) const {
  for (const induce::Candidate& candidate : candidates_) {
    if (candidate.id == id) return &candidate;
  }
  return nullptr;
}

StatusOr<XmlSource::AcceptOutcome> XmlSource::AcceptCandidate(uint64_t id,
                                                              size_t jobs) {
  auto it = std::find_if(candidates_.begin(), candidates_.end(),
                         [id](const induce::Candidate& candidate) {
                           return candidate.id == id;
                         });
  if (it == candidates_.end()) {
    return Status::NotFound("no pending candidate with id " +
                            std::to_string(id));
  }
  AcceptOutcome outcome;
  outcome.dtd_name = it->name;
  outcome.members = it->members.size();
  outcome.validated = it->validated.size();
  evolve::ExtendedDtd ext = std::move(it->ext);
  // The accepted candidate changes the DTD set under every other pending
  // candidate (memberships and margins go stale), so the whole list is
  // retired; ids are never reused.
  candidates_.clear();
  DTDEVOLVE_RETURN_IF_ERROR(
      AdoptInducedDtd(outcome.dtd_name, std::move(ext), jobs,
                      &outcome.reclassified));
  return outcome;
}

Status XmlSource::RejectCandidate(uint64_t id) {
  auto it = std::find_if(candidates_.begin(), candidates_.end(),
                         [id](const induce::Candidate& candidate) {
                           return candidate.id == id;
                         });
  if (it == candidates_.end()) {
    return Status::NotFound("no pending candidate with id " +
                            std::to_string(id));
  }
  candidates_.erase(it);
  ++candidates_rejected_;
  if (metrics_.candidates_rejected != nullptr) {
    metrics_.candidates_rejected->Increment();
  }
  return Status::Ok();
}

Status XmlSource::AdoptInducedDtd(const std::string& name,
                                  evolve::ExtendedDtd ext, size_t jobs,
                                  size_t* reclassified) {
  DTDEVOLVE_RETURN_IF_ERROR(RegisterInducedDtd(name, std::move(ext)));
  ++candidates_accepted_;
  if (metrics_.candidates_accepted != nullptr) {
    metrics_.candidates_accepted->Increment();
  }
  events_.push_back({SourceEvent::Kind::kDtdInduced, name, 0.0,
                     documents_processed_ == 0 ? 0 : documents_processed_ - 1,
                     ""});
  const size_t recovered = ReclassifyRepository(jobs);
  if (reclassified != nullptr) *reclassified = recovered;
  return Status::Ok();
}

Status XmlSource::RegisterInducedDtd(const std::string& name,
                                     evolve::ExtendedDtd ext) {
  if (dtds_.find(name) != dtds_.end()) {
    return Status::AlreadyExists("DTD '" + name + "' already registered");
  }
  DTDEVOLVE_RETURN_IF_ERROR(ext.dtd().Check());
  auto [it, inserted] = dtds_.emplace(name, std::move(ext));
  classifier_.AddDtd(name, &it->second.dtd());
  auto recorder = std::make_unique<evolve::Recorder>(it->second);
  recorder->set_metrics(metrics_.documents_recorded,
                        metrics_.elements_recorded);
  recorders_.emplace(name, std::move(recorder));
  instances_.emplace(name, std::vector<xml::Document>());
  return Status::Ok();
}

size_t XmlSource::ReclassifyRepository(size_t jobs) {
  // The classifier does not change while we record, so all repository
  // documents can be scored up front — in parallel when jobs > 1 — and
  // the serial recording pass below matches the sequential behavior.
  const std::vector<int> ids = repository_.Ids();
  std::vector<const xml::Document*> docs;
  docs.reserve(ids.size());
  for (int id : ids) docs.push_back(&repository_.Get(id));
  const std::vector<classify::ClassificationOutcome> classifications =
      classifier_.ClassifyBatch(docs, jobs);

  size_t recovered = 0;
  for (size_t k = 0; k < ids.size(); ++k) {
    const classify::ClassificationOutcome& classification = classifications[k];
    if (!classification.classified) continue;
    xml::Document doc = repository_.Take(ids[k]);
    clusterer_.Remove(ids[k]);
    const std::string& name = classification.dtd_name;
    recorders_.at(name)->RecordDocument(doc);
    ++documents_classified_;
    if (options_.keep_documents) {
      instances_.at(name).push_back(std::move(doc));
    }
    events_.push_back({SourceEvent::Kind::kReclassified, name,
                       classification.similarity, 0, ""});
    if (metrics_.documents_reclassified != nullptr) {
      metrics_.documents_reclassified->Increment();
    }
    ++recovered;
  }
  return recovered;
}

size_t XmlSource::EvictRepositoryDocs(const std::vector<int>& ids) {
  size_t evicted = 0;
  for (int id : ids) {
    if (!repository_.Has(id)) continue;
    repository_.Take(id);
    clusterer_.Remove(id);
    ++evicted;
  }
  return evicted;
}

}  // namespace dtdevolve::core
