#include "core/trigger_language.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/string_util.h"

namespace dtdevolve::core {

namespace {

const std::set<std::string>& KnownMetrics() {
  static const auto* metrics = new std::set<std::string>{
      "divergence", "documents", "total_elements", "invalid_elements",
      "invalid_fraction"};
  return *metrics;
}

const std::set<std::string>& KnownAssignments() {
  static const auto* keys = new std::set<std::string>{
      "psi",        "min_support", "rename_min_score", "restrict_operators",
      "enable_or",  "simplify",    "drop_orphans"};
  return *keys;
}

/// Token scanner over one rule line.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Consumes `word` (case-sensitive keyword) if next.
  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t end = pos_ + word.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;  // prefix of a longer identifier
    }
    pos_ = end;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Identifier: [A-Za-z_][A-Za-z0-9_-]* or '*'.
  StatusOr<std::string> Identifier() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '*') {
      ++pos_;
      return std::string("*");
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected an identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<std::string> Comparator() {
    SkipSpace();
    for (std::string_view op : {">=", "<=", "==", "!=", ">", "<"}) {
      if (text_.substr(pos_, op.size()) == op) {
        pos_ += op.size();
        return std::string(op);
      }
    }
    return Error("expected a comparison operator");
  }

  StatusOr<double> Number() {
    SkipSpace();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    double value = std::strtod(begin, &end);
    if (end == begin) return Error("expected a number");
    pos_ += static_cast<size_t>(end - begin);
    return value;
  }

  Status Error(std::string message) const {
    return Status::ParseError("trigger rule, column " +
                              std::to_string(pos_ + 1) + ": " +
                              std::move(message));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

using Condition = TriggerRule::Condition;

StatusOr<std::unique_ptr<Condition>> ParseOr(Scanner& scanner);

StatusOr<std::unique_ptr<Condition>> ParsePrimary(Scanner& scanner) {
  if (scanner.ConsumeChar('(')) {
    StatusOr<std::unique_ptr<Condition>> inner = ParseOr(scanner);
    if (!inner.ok()) return inner.status();
    if (!scanner.ConsumeChar(')')) return scanner.Error("expected ')'");
    return inner;
  }
  StatusOr<std::string> metric = scanner.Identifier();
  if (!metric.ok()) return metric.status();
  if (KnownMetrics().count(*metric) == 0) {
    return scanner.Error("unknown metric '" + *metric + "'");
  }
  StatusOr<std::string> op = scanner.Comparator();
  if (!op.ok()) return op.status();
  StatusOr<double> value = scanner.Number();
  if (!value.ok()) return value.status();
  auto condition = std::make_unique<Condition>();
  condition->kind = Condition::Kind::kComparison;
  condition->metric = std::move(*metric);
  condition->op = std::move(*op);
  condition->value = *value;
  return condition;
}

StatusOr<std::unique_ptr<Condition>> ParseAnd(Scanner& scanner) {
  StatusOr<std::unique_ptr<Condition>> lhs = ParsePrimary(scanner);
  if (!lhs.ok()) return lhs.status();
  std::unique_ptr<Condition> result = std::move(*lhs);
  while (scanner.ConsumeWord("AND")) {
    StatusOr<std::unique_ptr<Condition>> rhs = ParsePrimary(scanner);
    if (!rhs.ok()) return rhs.status();
    auto node = std::make_unique<Condition>();
    node->kind = Condition::Kind::kAnd;
    node->lhs = std::move(result);
    node->rhs = std::move(*rhs);
    result = std::move(node);
  }
  return result;
}

StatusOr<std::unique_ptr<Condition>> ParseOr(Scanner& scanner) {
  StatusOr<std::unique_ptr<Condition>> lhs = ParseAnd(scanner);
  if (!lhs.ok()) return lhs.status();
  std::unique_ptr<Condition> result = std::move(*lhs);
  while (scanner.ConsumeWord("OR")) {
    StatusOr<std::unique_ptr<Condition>> rhs = ParseAnd(scanner);
    if (!rhs.ok()) return rhs.status();
    auto node = std::make_unique<Condition>();
    node->kind = Condition::Kind::kOr;
    node->lhs = std::move(result);
    node->rhs = std::move(*rhs);
    result = std::move(node);
  }
  return result;
}

double MetricValue(const TriggerMetrics& metrics, const std::string& name) {
  if (name == "divergence") return metrics.divergence;
  if (name == "documents") return static_cast<double>(metrics.documents);
  if (name == "total_elements") {
    return static_cast<double>(metrics.total_elements);
  }
  if (name == "invalid_elements") {
    return static_cast<double>(metrics.invalid_elements);
  }
  return metrics.invalid_fraction;
}

bool EvaluateCondition(const Condition& condition,
                       const TriggerMetrics& metrics) {
  switch (condition.kind) {
    case Condition::Kind::kAnd:
      return EvaluateCondition(*condition.lhs, metrics) &&
             EvaluateCondition(*condition.rhs, metrics);
    case Condition::Kind::kOr:
      return EvaluateCondition(*condition.lhs, metrics) ||
             EvaluateCondition(*condition.rhs, metrics);
    case Condition::Kind::kComparison: {
      double lhs = MetricValue(metrics, condition.metric);
      if (condition.op == ">") return lhs > condition.value;
      if (condition.op == ">=") return lhs >= condition.value;
      if (condition.op == "<") return lhs < condition.value;
      if (condition.op == "<=") return lhs <= condition.value;
      if (condition.op == "==") return lhs == condition.value;
      return lhs != condition.value;
    }
  }
  return false;
}

void RenderCondition(const Condition& condition, std::string& out) {
  switch (condition.kind) {
    case Condition::Kind::kComparison: {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%s %s %g",
                    condition.metric.c_str(), condition.op.c_str(),
                    condition.value);
      out += buffer;
      return;
    }
    case Condition::Kind::kAnd:
      RenderCondition(*condition.lhs, out);
      out += " AND ";
      RenderCondition(*condition.rhs, out);
      return;
    case Condition::Kind::kOr:
      out += '(';
      RenderCondition(*condition.lhs, out);
      out += " OR ";
      RenderCondition(*condition.rhs, out);
      out += ')';
      return;
  }
}

}  // namespace

StatusOr<TriggerRule> TriggerRule::Parse(std::string_view text) {
  Scanner scanner(text);
  if (!scanner.ConsumeWord("ON")) return scanner.Error("expected 'ON'");
  StatusOr<std::string> target = scanner.Identifier();
  if (!target.ok()) return target.status();
  if (!scanner.ConsumeWord("WHEN")) return scanner.Error("expected 'WHEN'");
  StatusOr<std::unique_ptr<Condition>> condition = ParseOr(scanner);
  if (!condition.ok()) return condition.status();
  if (!scanner.ConsumeWord("EVOLVE")) {
    return scanner.Error("expected 'EVOLVE'");
  }
  TriggerRule rule;
  rule.target_ = std::move(*target);
  rule.condition_ = std::move(*condition);
  if (scanner.ConsumeWord("WITH")) {
    while (true) {
      StatusOr<std::string> key = scanner.Identifier();
      if (!key.ok()) return key.status();
      if (KnownAssignments().count(*key) == 0) {
        return scanner.Error("unknown option '" + *key + "'");
      }
      if (!scanner.ConsumeChar('=')) return scanner.Error("expected '='");
      StatusOr<double> value = scanner.Number();
      if (!value.ok()) return value.status();
      rule.assignments_.emplace_back(std::move(*key), *value);
      if (!scanner.ConsumeChar(',')) break;
    }
  }
  if (!scanner.AtEnd()) {
    return scanner.Error("unexpected trailing input");
  }
  return rule;
}

bool TriggerRule::Evaluate(const TriggerMetrics& metrics) const {
  return condition_ != nullptr && EvaluateCondition(*condition_, metrics);
}

evolve::EvolutionOptions TriggerRule::OptionsOver(
    const evolve::EvolutionOptions& base) const {
  evolve::EvolutionOptions options = base;
  for (const auto& [key, value] : assignments_) {
    if (key == "psi") {
      options.psi = value;
    } else if (key == "min_support") {
      options.min_support = value;
    } else if (key == "rename_min_score") {
      options.rename_min_score = value;
    } else if (key == "restrict_operators") {
      options.restrict_operators = value != 0.0;
    } else if (key == "enable_or") {
      options.enable_or_policies = value != 0.0;
    } else if (key == "simplify") {
      options.simplify = value != 0.0;
    } else if (key == "drop_orphans") {
      options.drop_orphan_declarations = value != 0.0;
    }
  }
  return options;
}

std::string TriggerRule::ToString() const {
  std::string out = "ON " + target_ + " WHEN ";
  if (condition_ != nullptr) RenderCondition(*condition_, out);
  out += " EVOLVE";
  for (size_t i = 0; i < assignments_.size(); ++i) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s%s = %g",
                  i == 0 ? " WITH " : ", ", assignments_[i].first.c_str(),
                  assignments_[i].second);
    out += buffer;
  }
  return out;
}

StatusOr<std::vector<TriggerRule>> ParseTriggerRules(std::string_view text) {
  std::vector<TriggerRule> rules;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    StatusOr<TriggerRule> rule = TriggerRule::Parse(stripped);
    if (!rule.ok()) {
      return Status::ParseError("in rule '" + std::string(stripped) +
                                "': " + rule.status().message());
    }
    rules.push_back(std::move(*rule));
  }
  return rules;
}

}  // namespace dtdevolve::core
