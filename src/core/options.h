#ifndef DTDEVOLVE_CORE_OPTIONS_H_
#define DTDEVOLVE_CORE_OPTIONS_H_

#include <cstddef>

#include "classify/classifier.h"
#include "evolve/evolver.h"
#include "induce/inducer.h"
#include "similarity/similarity.h"

namespace dtdevolve::core {

/// All thresholds and knobs of the evolution process (Fig. 1), gathered
/// in one place:
///   σ — classification threshold (initialization phase),
///   τ — evolution activation threshold (check phase),
///   ψ — window threshold and µ — minimum sequence support (evolution
///       phase, inside `evolution`).
struct SourceOptions {
  /// Similarity a document must reach against some DTD to be classified;
  /// below it the document goes to the repository.
  double sigma = 0.5;
  /// Mean per-document divergence that triggers evolution of a DTD.
  double tau = 0.2;
  /// Run the check phase after every classification and evolve
  /// automatically when it fires.
  bool auto_evolve = true;
  /// The check phase never fires before this many documents were
  /// classified into the DTD ("after a certain number of documents").
  size_t min_documents_before_check = 10;
  /// Keep classified documents in memory (experiments re-validate them
  /// after evolution; a production deployment would store them in the
  /// database instead).
  bool keep_documents = true;
  /// Re-classify repository documents automatically after an evolution.
  bool reclassify_after_evolution = true;
  /// Keep the incremental repository clusterer in sync with every
  /// repository mutation, so `InduceCandidates` (and the `/stats`
  /// cluster section) is always ready. Costs one similarity pass per
  /// *new structural fingerprint* entering the repository; identical
  /// structures join in O(1).
  bool cluster_repository = true;

  /// Parse incoming text through the single-pass streaming reader into
  /// an arena tree (`xml::ParseArenaDocument`) instead of the two-pass
  /// DOM parser. Outcome-equivalent — the streaming path accepts and
  /// rejects exactly the same inputs and classifies every document
  /// identically (the parse-path differential oracle enforces this) —
  /// but skips DOM materialization entirely on classification-memo hits.
  bool streaming_parse = true;

  evolve::EvolutionOptions evolution;
  /// Repository clustering → candidate-DTD induction knobs.
  induce::InduceOptions induce;
  similarity::SimilarityOptions similarity;
  /// Classification fast-path knobs (score-bound pruning, shared subtree
  /// score cache). Both layers are score-equivalent; the knobs only trade
  /// memory for speed.
  classify::ClassifierOptions classifier;
};

}  // namespace dtdevolve::core

#endif  // DTDEVOLVE_CORE_OPTIONS_H_
