#ifndef DTDEVOLVE_CORE_SOURCE_H_
#define DTDEVOLVE_CORE_SOURCE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "classify/classifier.h"
#include "classify/repository.h"
#include "core/options.h"
#include "core/report.h"
#include "core/trigger_language.h"
#include "evolve/extended_dtd.h"
#include "evolve/recorder.h"
#include "evolve/trigger.h"
#include "induce/cluster.h"
#include "induce/inducer.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dtdevolve::core {

/// Optional instrumentation of the whole classify → record → check →
/// evolve loop. All pointers may be null; the pointees must outlive the
/// source. Scoring hooks fire from batch worker threads (the metric
/// types are internally atomic); everything else fires on the serial
/// apply path.
struct SourceMetrics {
  // Loop outcomes.
  obs::Counter* documents_processed = nullptr;
  obs::Counter* documents_classified = nullptr;
  obs::Counter* documents_unclassified = nullptr;
  obs::Counter* documents_reclassified = nullptr;
  obs::Counter* trigger_checks = nullptr;
  obs::Counter* evolutions = nullptr;
  // Classification hot path (forwarded to the Classifier).
  obs::Counter* documents_scored = nullptr;
  obs::Counter* similarity_evaluations = nullptr;
  obs::Counter* evaluations_pruned = nullptr;
  obs::Counter* score_cache_hits = nullptr;
  obs::Counter* score_cache_misses = nullptr;
  obs::Counter* score_cache_evictions = nullptr;
  obs::Histogram* score_seconds = nullptr;
  // Recording hot path (forwarded to every Recorder).
  obs::Counter* documents_recorded = nullptr;
  obs::Counter* elements_recorded = nullptr;
  // Candidate-DTD induction lifecycle.
  obs::Counter* candidates_proposed = nullptr;
  obs::Counter* candidates_accepted = nullptr;
  obs::Counter* candidates_rejected = nullptr;
};

/// The source of XML documents of Fig. 1 — the library's main entry
/// point. It owns the set of (extended) DTDs, the repository of
/// unclassified documents, and drives the whole loop:
///
///   initialization → [ classification → recording → check ]* → evolution
///   → repository re-classification → …
///
/// ```
///   XmlSource source;
///   source.AddDtdText("mail", "<!ELEMENT mail (from,to,body)> …");
///   for (const std::string& xml : incoming) source.ProcessText(xml);
///   // DTDs have evolved to match the stream:
///   std::string dtd = dtd::WriteDtd(*source.FindDtd("mail"));
/// ```
class XmlSource {
 public:
  explicit XmlSource(SourceOptions options = {});

  XmlSource(const XmlSource&) = delete;
  XmlSource& operator=(const XmlSource&) = delete;

  // --- Initialization phase -----------------------------------------------

  /// Registers a DTD under `name`. Fails when the name is taken or the
  /// DTD does not pass its consistency check.
  Status AddDtd(const std::string& name, dtd::Dtd dtd);
  /// Convenience: parses `dtd_text` and registers it. `root` overrides
  /// the root element (defaults to the first declaration).
  Status AddDtdText(const std::string& name, std::string_view dtd_text,
                    std::string root = "");

  /// Replaces the extended DTD registered under `name` — declarations
  /// *and* recording state — with `ext`, rebuilding the classifier
  /// evaluator and the recorder. This is how a server restores a
  /// persisted snapshot (`evolve/persist.h`) over the freshly registered
  /// seed DTD at startup. Fails with `kNotFound` when `name` is unknown
  /// and with the DTD's own error when `ext` fails its consistency check.
  Status RestoreExtended(const std::string& name, evolve::ExtendedDtd ext);

  /// Recovery hooks (store/checkpoint.h): reinstate the loop counters
  /// and the repository contents captured in a checkpoint, so replaying
  /// the WAL tail continues from exactly the persisted state. Counters
  /// feed event indices and the min-documents gate; repository ids feed
  /// the re-classification order — both must survive a restart for
  /// recovery to be replay-equivalent. Neither hook touches the
  /// installed metrics (the restored work was counted by the previous
  /// process).
  void RestoreCounters(uint64_t processed, uint64_t classified,
                       uint64_t evolutions);
  void RestoreRepositoryDoc(int id, xml::Document doc);
  /// Raises the repository's id counter to `next`. An eviction leaves
  /// the counter ahead of max(id)+1, so restoring docs alone would
  /// re-issue ids the live run already assigned — and WAL eviction
  /// records name explicit ids.
  void RestoreRepositoryNextId(int next) { repository_.SetNextId(next); }

  /// Installs (or clears) loop instrumentation; forwarded to the
  /// classifier and to every recorder, including ones created by later
  /// evolutions. Do not call while a batch is in flight.
  void set_metrics(const SourceMetrics& metrics);

  // --- Feeding documents --------------------------------------------------

  struct ProcessOutcome {
    bool classified = false;
    std::string dtd_name;     // best match (also when unclassified)
    double similarity = 0.0;
    bool evolved = false;     // this document triggered an evolution
    size_t reclassified = 0;  // repository documents recovered afterwards
  };

  /// Classifies, records and (when the check phase fires) evolves.
  ProcessOutcome Process(xml::Document doc);
  /// Streaming twin: classifies memo-first from the arena's parse-time
  /// root fingerprint. On a memo hit the whole classify → record tail
  /// runs on the arena representation — no DOM is ever built (unless
  /// the document is unclassified or `keep_documents` needs a copy); on
  /// a miss the document is materialized once and takes the DOM path.
  /// Outcome-equivalent to converting and calling the DOM overload.
  ProcessOutcome Process(xml::ArenaDocument doc);
  /// Parses then processes — through the streaming reader when
  /// `options().streaming_parse` (the default), else the DOM parser.
  /// Both parsers accept/reject identical inputs with identical errors.
  StatusOr<ProcessOutcome> ProcessText(std::string_view xml_text);

  /// Batch variant of `Process`: scores documents against the DTD set
  /// concurrently on `jobs` threads (0 ⇒ hardware concurrency, ≤ 1 ⇒
  /// inline), then applies recording / check / evolution serially in
  /// input order. Scoring is speculative: when an evolution fires
  /// mid-batch the not-yet-applied scores are stale and the remainder of
  /// the batch is re-scored against the evolved set, so the outcomes —
  /// classifications, events, evolved DTDs — are identical to feeding
  /// every document through `Process` one at a time, at any jobs level.
  ///
  /// `XmlSource` itself is single-writer: no other method may run while
  /// `ProcessBatch` is in flight. The internal fan-out only ever calls
  /// the const, non-mutating scoring path of `Classifier`.
  std::vector<ProcessOutcome> ProcessBatch(std::vector<xml::Document> docs,
                                           size_t jobs = 0);

  /// `ProcessBatch` on a caller-owned pool, so a long-running server can
  /// share one pool across every ingest batch instead of respawning
  /// threads. `pool == nullptr` (or a pool of one worker) scores inline;
  /// outcomes are identical either way.
  std::vector<ProcessOutcome> ProcessBatch(std::vector<xml::Document> docs,
                                           util::ThreadPool* pool);

  /// Arena batch: memo hits replay without DOM materialization or
  /// scoring; only the misses of each chunk are materialized and scored
  /// (in parallel on `pool`). Outcomes are identical — entry by entry —
  /// to converting every document and calling the DOM `ProcessBatch`.
  std::vector<ProcessOutcome> ProcessBatch(
      std::vector<xml::ArenaDocument> docs, util::ThreadPool* pool);

  // --- Inspection ----------------------------------------------------------

  std::vector<std::string> DtdNames() const;
  /// The current (possibly evolved) DTD; nullptr when unknown.
  const dtd::Dtd* FindDtd(const std::string& name) const;
  /// The extended DTD with its recording structures; nullptr when unknown.
  const evolve::ExtendedDtd* FindExtended(const std::string& name) const;

  const classify::Repository& repository() const { return repository_; }
  /// Documents classified into `name` (empty unless keep_documents).
  const std::vector<xml::Document>& InstancesOf(const std::string& name) const;

  const std::vector<SourceEvent>& events() const { return events_; }
  uint64_t documents_processed() const { return documents_processed_; }
  uint64_t documents_classified() const { return documents_classified_; }
  uint64_t evolutions_performed() const { return evolutions_performed_; }

  const SourceOptions& options() const { return options_; }

  // --- Trigger language (§6 extension) --------------------------------------

  /// Installs a trigger rule (see core/trigger_language.h). When any
  /// rules are installed they replace the plain τ check: after every
  /// classification the first applicable rule whose condition holds
  /// fires an evolution with its WITH-overlaid options (the
  /// `min_documents_before_check` gate does not apply — rules express
  /// their own document thresholds).
  Status AddTriggerRule(std::string_view rule_text);
  /// Installs a whole rule set (one rule per line, `#` comments).
  Status AddTriggerRules(std::string_view rules_text);
  const std::vector<TriggerRule>& trigger_rules() const {
    return trigger_rules_;
  }

  /// Metric snapshot for `name`, as the trigger rules see it.
  TriggerMetrics MetricsFor(const std::string& name) const;

  // --- Candidate-DTD induction (repository clustering) ---------------------

  /// Consolidates the repository clusters and rebuilds the candidate
  /// list: one candidate DTD per cluster meeting the size floor and the
  /// coverage floor (options().induce). Replaces any previous candidates
  /// (their ids are retired, never reused). Returns how many candidates
  /// are now pending. Deterministic in the repository contents.
  size_t InduceCandidates();

  /// Candidates pending an accept/reject decision, ascending id.
  const std::vector<induce::Candidate>& candidates() const {
    return candidates_;
  }
  const induce::Candidate* FindCandidate(uint64_t id) const;

  struct AcceptOutcome {
    std::string dtd_name;
    size_t members = 0;
    size_t validated = 0;
    /// Repository documents recovered by the re-classification pass that
    /// follows the promotion.
    size_t reclassified = 0;
  };

  /// Promotes candidate `id` into the live DTD set and re-classifies the
  /// repository against the grown set (`jobs` threads for scoring; the
  /// outcome is jobs-independent). Every other pending candidate is
  /// discarded — the set changed under them, so their membership and
  /// margins are stale; run `InduceCandidates` again for fresh ones.
  /// Fails with `kNotFound` for an unknown id.
  StatusOr<AcceptOutcome> AcceptCandidate(uint64_t id, size_t jobs = 1);

  /// Drops candidate `id`; `kNotFound` when unknown.
  Status RejectCandidate(uint64_t id);

  /// Registers an induced DTD (name must be free) and re-classifies the
  /// repository — the state transition of an accept, factored out so WAL
  /// replay (store/checkpoint.cc) reproduces an accept record exactly:
  /// same event, same counters, same repository drain.
  Status AdoptInducedDtd(const std::string& name, evolve::ExtendedDtd ext,
                         size_t jobs = 1, size_t* reclassified = nullptr);

  /// Registration half of `AdoptInducedDtd` only — no event, no
  /// re-classification. Checkpoint recovery uses this to reinstate an
  /// induced DTD whose name the seed set does not know (the repository
  /// and counters are restored separately from the same checkpoint).
  Status RegisterInducedDtd(const std::string& name, evolve::ExtendedDtd ext);

  /// Live view of the incremental repository clustering (zeros when
  /// options().cluster_repository is off).
  induce::ClusterStats cluster_stats() const { return clusterer_.GetStats(); }

  uint64_t candidates_proposed() const { return candidates_proposed_; }
  uint64_t candidates_accepted() const { return candidates_accepted_; }
  uint64_t candidates_rejected() const { return candidates_rejected_; }

  // --- Manual control (used by experiments) --------------------------------

  /// The check phase for one DTD (τ from the options).
  evolve::CheckResult Check(const std::string& name) const;
  /// Runs the evolution phase for `name` unconditionally; returns nullopt
  /// when the name is unknown.
  std::optional<evolve::EvolutionResult> ForceEvolve(const std::string& name);
  /// Re-classifies repository documents against the current DTD set;
  /// returns how many were recovered. Scoring runs on `jobs` threads
  /// (≤ 1 ⇒ inline); recording is applied serially in ascending-id order
  /// either way, so the result does not depend on `jobs`.
  size_t ReclassifyRepository(size_t jobs = 1);

  /// Drops the given documents from the repository (quota enforcement
  /// and replay of the eviction WAL record). Ids not present are skipped
  /// — re-applying an eviction after a checkpoint that already folded it
  /// in must be a no-op. Returns how many documents were removed.
  size_t EvictRepositoryDocs(const std::vector<int>& ids);

 private:
  /// A document on its way through the apply tail, in whichever
  /// representation it still has: the DOM path fills `dom` only; the
  /// streaming path points `arena` at the caller's arena tree and fills
  /// `dom` lazily — only when the repository or `keep_documents`
  /// genuinely needs an owning DOM.
  struct PendingDocument {
    const xml::ArenaDocument* arena = nullptr;
    std::optional<xml::Document> dom;

    xml::Document TakeDom() {
      if (!dom.has_value()) dom.emplace(arena->ToDocument());
      return *std::move(dom);
    }
  };

  /// The record / check / evolve tail of `Process`, fed a precomputed
  /// classification. `jobs` is forwarded to the repository re-scoring
  /// that may follow an evolution.
  ProcessOutcome ApplyClassification(
      PendingDocument doc,
      const classify::ClassificationOutcome& classification, size_t jobs);

  void AfterEvolution(const std::string& name,
                      const evolve::EvolutionResult& result);

  SourceOptions options_;
  SourceMetrics metrics_;
  std::map<std::string, evolve::ExtendedDtd> dtds_;
  std::map<std::string, std::unique_ptr<evolve::Recorder>> recorders_;
  std::map<std::string, std::vector<xml::Document>> instances_;
  classify::Classifier classifier_;
  classify::Repository repository_;
  induce::RepositoryClusterer clusterer_;
  std::vector<induce::Candidate> candidates_;
  uint64_t next_candidate_id_ = 1;
  uint64_t candidates_proposed_ = 0;
  uint64_t candidates_accepted_ = 0;
  uint64_t candidates_rejected_ = 0;
  std::vector<TriggerRule> trigger_rules_;
  std::vector<SourceEvent> events_;
  uint64_t documents_processed_ = 0;
  uint64_t documents_classified_ = 0;
  uint64_t evolutions_performed_ = 0;
};

}  // namespace dtdevolve::core

#endif  // DTDEVOLVE_CORE_SOURCE_H_
