#ifndef DTDEVOLVE_CORE_REPORT_H_
#define DTDEVOLVE_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "evolve/evolver.h"

namespace dtdevolve::core {

/// One entry of the source's event log.
struct SourceEvent {
  enum class Kind {
    kClassified,    // document became an instance of `dtd_name`
    kUnclassified,  // document went to the repository
    kEvolved,       // `dtd_name` was evolved; detail has the summary
    kReclassified,  // a repository document was classified after evolution
    kDtdInduced,    // an accepted candidate DTD joined the set as `dtd_name`
  };

  Kind kind = Kind::kClassified;
  std::string dtd_name;
  double similarity = 0.0;
  uint64_t document_index = 0;  // processing order, 0-based
  std::string detail;
};

/// Human-readable multi-line summary of an evolution round: per-element
/// window, invalidity, old → new declaration, fired policies, added
/// declarations.
std::string FormatEvolution(const evolve::EvolutionResult& result);

/// Short name of an event kind for logs.
std::string EventKindName(SourceEvent::Kind kind);

}  // namespace dtdevolve::core

#endif  // DTDEVOLVE_CORE_REPORT_H_
