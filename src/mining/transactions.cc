#include "mining/transactions.h"

#include <algorithm>
#include <cassert>

namespace dtdevolve::mining {

int ItemDictionary::Intern(const std::string& label, bool present) {
  Item item{label, present};
  auto it = index_.find(item);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(items_.size());
  items_.push_back(item);
  index_.emplace(std::move(item), id);
  return id;
}

int ItemDictionary::Find(const std::string& label, bool present) const {
  auto it = index_.find(Item{label, present});
  return it == index_.end() ? -1 : it->second;
}

bool Transaction::Contains(int item) const {
  return std::binary_search(items.begin(), items.end(), item);
}

bool Transaction::ContainsAll(const std::vector<int>& subset) const {
  return std::includes(items.begin(), items.end(), subset.begin(),
                       subset.end());
}

void TransactionSet::Add(const std::set<std::string>& present,
                         const std::set<std::string>& universe,
                         uint32_t count) {
  Transaction transaction;
  transaction.count = count;
  transaction.items.reserve(universe.size());
  for (const std::string& label : universe) {
    bool is_present = present.count(label) > 0;
    transaction.items.push_back(dict_.Intern(label, is_present));
  }
  // Tags outside the universe are ignored by design; assert in debug.
  for ([[maybe_unused]] const std::string& label : present) {
    assert(universe.count(label) > 0 && "present tag outside universe");
  }
  std::sort(transaction.items.begin(), transaction.items.end());
  total_count_ += count;
  transactions_.push_back(std::move(transaction));
}

uint64_t TransactionSet::CountContaining(
    const std::vector<int>& items) const {
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  uint64_t count = 0;
  for (const Transaction& transaction : transactions_) {
    if (transaction.ContainsAll(sorted)) count += transaction.count;
  }
  return count;
}

double TransactionSet::Support(const std::vector<int>& items) const {
  if (total_count_ == 0) return 0.0;
  return static_cast<double>(CountContaining(items)) /
         static_cast<double>(total_count_);
}

}  // namespace dtdevolve::mining
