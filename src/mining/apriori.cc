#include "mining/apriori.h"

#include <algorithm>
#include <map>
#include <set>

namespace dtdevolve::mining {

namespace {

/// Joins two sorted k-itemsets sharing their first k−1 items into a
/// (k+1)-candidate; empty result when they do not join.
std::vector<int> Join(const std::vector<int>& a, const std::vector<int>& b) {
  for (size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return {};
  }
  if (a.back() >= b.back()) return {};
  std::vector<int> joined = a;
  joined.push_back(b.back());
  return joined;
}

/// Downward closure: every k-subset of `candidate` must be frequent.
bool AllSubsetsFrequent(const std::vector<int>& candidate,
                        const std::set<std::vector<int>>& frequent) {
  std::vector<int> subset;
  subset.reserve(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    subset.clear();
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset.push_back(candidate[i]);
    }
    if (frequent.find(subset) == frequent.end()) return false;
  }
  return true;
}

}  // namespace

std::vector<FrequentItemset> MineFrequentItemsets(
    const TransactionSet& transactions, const AprioriOptions& options) {
  std::vector<FrequentItemset> result;
  const uint64_t total = transactions.total_count();
  if (total == 0) return result;
  const auto min_count =
      static_cast<uint64_t>(options.min_support * static_cast<double>(total));

  // L1: count single items.
  std::map<int, uint64_t> item_counts;
  for (const Transaction& transaction : transactions.transactions()) {
    for (int item : transaction.items) item_counts[item] += transaction.count;
  }
  std::vector<std::vector<int>> level;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count && count > 0) {
      FrequentItemset fis;
      fis.items = {item};
      fis.count = count;
      fis.support = static_cast<double>(count) / static_cast<double>(total);
      result.push_back(fis);
      level.push_back({item});
    }
  }

  size_t k = 1;
  while (!level.empty() && (options.max_size == 0 || k < options.max_size)) {
    // Candidate generation by prefix join + pruning.
    std::set<std::vector<int>> frequent_k(level.begin(), level.end());
    std::vector<std::vector<int>> candidates;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        std::vector<int> candidate = Join(level[i], level[j]);
        if (candidate.empty()) continue;
        if (AllSubsetsFrequent(candidate, frequent_k)) {
          candidates.push_back(std::move(candidate));
        }
      }
    }
    // Support counting.
    std::vector<uint64_t> counts(candidates.size(), 0);
    for (const Transaction& transaction : transactions.transactions()) {
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (transaction.ContainsAll(candidates[c])) {
          counts[c] += transaction.count;
        }
      }
    }
    std::vector<std::vector<int>> next_level;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_count && counts[c] > 0) {
        FrequentItemset fis;
        fis.items = candidates[c];
        fis.count = counts[c];
        fis.support =
            static_cast<double>(counts[c]) / static_cast<double>(total);
        result.push_back(fis);
        next_level.push_back(std::move(candidates[c]));
      }
    }
    level = std::move(next_level);
    ++k;
  }
  return result;
}

}  // namespace dtdevolve::mining
