#include "mining/apriori.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

namespace dtdevolve::mining {

namespace {

/// Joins two sorted k-itemsets sharing their first k−1 items into a
/// (k+1)-candidate; empty result when they do not join.
std::vector<int> Join(const std::vector<int>& a, const std::vector<int>& b) {
  for (size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return {};
  }
  if (a.back() >= b.back()) return {};
  std::vector<int> joined = a;
  joined.push_back(b.back());
  return joined;
}

/// Downward closure: every k-subset of `candidate` must be frequent.
bool AllSubsetsFrequent(const std::vector<int>& candidate,
                        const std::set<std::vector<int>>& frequent) {
  std::vector<int> subset;
  subset.reserve(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    subset.clear();
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset.push_back(candidate[i]);
    }
    if (frequent.find(subset) == frequent.end()) return false;
  }
  return true;
}

/// Flattened per-transaction bitmasks over the dense item-id universe:
/// transaction t occupies words [t*words, (t+1)*words). Built once per
/// mining run; a candidate is contained iff its own mask survives a
/// word-wise AND with the transaction's.
class TransactionBitsets {
 public:
  explicit TransactionBitsets(const std::vector<Transaction>& transactions) {
    int max_item = -1;
    for (const Transaction& transaction : transactions) {
      if (!transaction.items.empty()) {
        max_item = std::max(max_item, transaction.items.back());
      }
    }
    words_ = static_cast<size_t>(max_item + 1 + 63) / 64;
    masks_.assign(transactions.size() * words_, 0);
    for (size_t t = 0; t < transactions.size(); ++t) {
      uint64_t* mask = &masks_[t * words_];
      for (int item : transactions[t].items) {
        mask[static_cast<size_t>(item) / 64] |= uint64_t{1} << (item % 64);
      }
    }
  }

  std::vector<uint64_t> MaskOf(const std::vector<int>& items) const {
    std::vector<uint64_t> mask(words_, 0);
    for (int item : items) {
      mask[static_cast<size_t>(item) / 64] |= uint64_t{1} << (item % 64);
    }
    return mask;
  }

  bool ContainsAll(size_t transaction, const std::vector<uint64_t>& mask) const {
    const uint64_t* t = &masks_[transaction * words_];
    for (size_t w = 0; w < words_; ++w) {
      if ((t[w] & mask[w]) != mask[w]) return false;
    }
    return true;
  }

 private:
  size_t words_ = 0;
  std::vector<uint64_t> masks_;
};

}  // namespace

std::vector<FrequentItemset> MineFrequentItemsets(
    const TransactionSet& transactions, const AprioriOptions& options) {
  std::vector<FrequentItemset> result;
  const uint64_t total = transactions.total_count();
  if (total == 0) return result;
  const auto min_count =
      static_cast<uint64_t>(options.min_support * static_cast<double>(total));

  // L1: count single items.
  std::map<int, uint64_t> item_counts;
  for (const Transaction& transaction : transactions.transactions()) {
    for (int item : transaction.items) item_counts[item] += transaction.count;
  }
  std::vector<std::vector<int>> level;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count && count > 0) {
      FrequentItemset fis;
      fis.items = {item};
      fis.count = count;
      fis.support = static_cast<double>(count) / static_cast<double>(total);
      result.push_back(fis);
      level.push_back({item});
    }
  }

  size_t k = 1;
  // Built on first use: L1 counting above never needs it, and when every
  // level-1 pass already ends the run the masks would be wasted work.
  std::optional<TransactionBitsets> bitsets;
  while (!level.empty() && (options.max_size == 0 || k < options.max_size)) {
    // Candidate generation by prefix join + pruning.
    std::set<std::vector<int>> frequent_k(level.begin(), level.end());
    std::vector<std::vector<int>> candidates;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        std::vector<int> candidate = Join(level[i], level[j]);
        if (candidate.empty()) continue;
        if (AllSubsetsFrequent(candidate, frequent_k)) {
          candidates.push_back(std::move(candidate));
        }
      }
    }
    // Support counting.
    std::vector<uint64_t> counts(candidates.size(), 0);
    if (options.bitset_counting && !candidates.empty()) {
      if (!bitsets) bitsets.emplace(transactions.transactions());
      std::vector<std::vector<uint64_t>> candidate_masks;
      candidate_masks.reserve(candidates.size());
      for (const std::vector<int>& candidate : candidates) {
        candidate_masks.push_back(bitsets->MaskOf(candidate));
      }
      const std::vector<Transaction>& all = transactions.transactions();
      for (size_t t = 0; t < all.size(); ++t) {
        for (size_t c = 0; c < candidates.size(); ++c) {
          if (bitsets->ContainsAll(t, candidate_masks[c])) {
            counts[c] += all[t].count;
          }
        }
      }
    } else {
      for (const Transaction& transaction : transactions.transactions()) {
        for (size_t c = 0; c < candidates.size(); ++c) {
          if (transaction.ContainsAll(candidates[c])) {
            counts[c] += transaction.count;
          }
        }
      }
    }
    std::vector<std::vector<int>> next_level;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_count && counts[c] > 0) {
        FrequentItemset fis;
        fis.items = candidates[c];
        fis.count = counts[c];
        fis.support =
            static_cast<double>(counts[c]) / static_cast<double>(total);
        result.push_back(fis);
        next_level.push_back(std::move(candidates[c]));
      }
    }
    level = std::move(next_level);
    ++k;
  }
  return result;
}

}  // namespace dtdevolve::mining
