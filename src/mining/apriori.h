#ifndef DTDEVOLVE_MINING_APRIORI_H_
#define DTDEVOLVE_MINING_APRIORI_H_

#include <cstdint>
#include <vector>

#include "mining/transactions.h"

namespace dtdevolve::mining {

/// A frequent itemset discovered by Apriori.
struct FrequentItemset {
  std::vector<int> items;  // sorted item ids
  uint64_t count = 0;      // weighted transaction count
  double support = 0.0;    // count / total_count
};

/// Apriori options.
struct AprioriOptions {
  /// Minimum support in [0, 1] (the paper's µ).
  double min_support = 0.1;
  /// Largest itemset size to mine; 0 means unbounded.
  size_t max_size = 0;
  /// Support counting strategy. Bitset counting materializes each
  /// transaction's item set as a bitmask over the dense item-id universe
  /// once and tests candidates with word-wide AND, replacing the
  /// per-candidate sorted subset scan. Same counts, fewer branches; the
  /// scan path stays selectable as the reference implementation.
  bool bitset_counting = true;
};

/// Classic Apriori (Han & Kamber [4], the paper's mining reference):
/// level-wise candidate generation with prefix join + downward-closure
/// pruning, support counting by weighted subset test. Returns all frequent
/// itemsets of every size, smallest first.
std::vector<FrequentItemset> MineFrequentItemsets(
    const TransactionSet& transactions, const AprioriOptions& options = {});

}  // namespace dtdevolve::mining

#endif  // DTDEVOLVE_MINING_APRIORI_H_
