#ifndef DTDEVOLVE_MINING_TRANSACTIONS_H_
#define DTDEVOLVE_MINING_TRANSACTIONS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dtdevolve::mining {

/// An item: an element tag together with a presence polarity. The paper
/// encodes each recorded sequence over the full label set `Label`, adding
/// the *absent* items `x̄` for tags not in the sequence (Example 4), so
/// rules of the form "absence of b implies presence of c" are derivable.
struct Item {
  std::string label;
  bool present = true;

  friend bool operator==(const Item&, const Item&) = default;
  friend auto operator<=>(const Item&, const Item&) = default;

  /// `label` or `!label` for absent items.
  std::string ToString() const { return present ? label : "!" + label; }
};

/// Interns items to dense integer ids for the mining algorithms.
class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Returns the id of the item, creating it if new.
  int Intern(const std::string& label, bool present);
  /// Returns the id if known, -1 otherwise.
  int Find(const std::string& label, bool present) const;

  const Item& Get(int id) const { return items_[id]; }
  size_t size() const { return items_.size(); }

 private:
  std::vector<Item> items_;
  std::map<Item, int> index_;
};

/// One transaction: a sorted set of item ids with a multiplicity (how many
/// recorded element instances exhibited exactly this item set).
struct Transaction {
  std::vector<int> items;  // sorted, unique
  uint32_t count = 1;

  bool Contains(int item) const;
  bool ContainsAll(const std::vector<int>& subset) const;  // subset sorted
};

/// The input of the mining step: sequences recorded against one DTD
/// element, each completed with absent items over the label universe.
class TransactionSet {
 public:
  TransactionSet() = default;

  /// Adds a transaction for a sequence containing exactly the tags in
  /// `present`; every universe tag not in `present` is added as an absent
  /// item. `present` must be a subset of `universe`.
  void Add(const std::set<std::string>& present,
           const std::set<std::string>& universe, uint32_t count = 1);

  const ItemDictionary& dictionary() const { return dict_; }
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }
  /// Σ of transaction multiplicities.
  uint64_t total_count() const { return total_count_; }

  /// Weighted number of transactions containing all of `items`.
  uint64_t CountContaining(const std::vector<int>& items) const;
  /// `CountContaining / total_count` (0 when empty).
  double Support(const std::vector<int>& items) const;

 private:
  ItemDictionary dict_;
  std::vector<Transaction> transactions_;
  uint64_t total_count_ = 0;
};

}  // namespace dtdevolve::mining

#endif  // DTDEVOLVE_MINING_TRANSACTIONS_H_
