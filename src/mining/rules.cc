#include "mining/rules.h"

#include <algorithm>
#include <map>

namespace dtdevolve::mining {

std::vector<AssociationRule> GenerateRules(
    const std::vector<FrequentItemset>& itemsets, double min_confidence) {
  // Index supports of all frequent itemsets for subset lookups.
  std::map<std::vector<int>, double> support;
  for (const FrequentItemset& fis : itemsets) {
    support[fis.items] = fis.support;
  }

  std::vector<AssociationRule> rules;
  for (const FrequentItemset& fis : itemsets) {
    const size_t n = fis.items.size();
    if (n < 2) continue;
    // Enumerate bipartitions by bitmask (itemsets mined in practice are
    // small; max_size caps this in the callers that need a bound).
    if (n > 20) continue;  // defensive: never enumerate 2^n beyond this
    const uint32_t limit = 1u << n;
    for (uint32_t mask = 1; mask + 1 < limit; ++mask) {
      AssociationRule rule;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          rule.lhs.push_back(fis.items[i]);
        } else {
          rule.rhs.push_back(fis.items[i]);
        }
      }
      auto it = support.find(rule.lhs);
      if (it == support.end() || it->second <= 0.0) continue;
      rule.support = fis.support;
      rule.confidence = fis.support / it->second;
      if (rule.confidence >= min_confidence) {
        rules.push_back(std::move(rule));
      }
    }
  }
  return rules;
}

std::string RuleToString(const AssociationRule& rule,
                         const ItemDictionary& dict) {
  std::string out;
  for (size_t i = 0; i < rule.lhs.size(); ++i) {
    if (i > 0) out += ',';
    out += dict.Get(rule.lhs[i]).ToString();
  }
  out += " -> ";
  for (size_t i = 0; i < rule.rhs.size(); ++i) {
    if (i > 0) out += ',';
    out += dict.Get(rule.rhs[i]).ToString();
  }
  return out;
}

SequenceRuleOracle::SequenceRuleOracle(
    std::vector<std::pair<std::set<std::string>, uint32_t>> sequences,
    std::set<std::string> universe, double min_support)
    : universe_(std::move(universe)) {
  uint64_t total = 0;
  for (const auto& [labels, count] : sequences) total += count;
  if (total == 0) return;
  for (auto& [labels, count] : sequences) {
    double support = static_cast<double>(count) / static_cast<double>(total);
    if (support > min_support) {
      frequent_total_ += count;
      frequent_.emplace_back(std::move(labels), count);
    }
  }
}

uint64_t SequenceRuleOracle::CountWhere(
    const std::set<std::string>& present,
    const std::set<std::string>& absent) const {
  uint64_t count = 0;
  for (const auto& [labels, multiplicity] : frequent_) {
    bool ok = true;
    for (const std::string& label : present) {
      if (labels.count(label) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const std::string& label : absent) {
        if (labels.count(label) > 0) {
          ok = false;
          break;
        }
      }
    }
    if (ok) count += multiplicity;
  }
  return count;
}

double SequenceRuleOracle::Support(const std::set<std::string>& present,
                                   const std::set<std::string>& absent) const {
  if (frequent_total_ == 0) return 0.0;
  return static_cast<double>(CountWhere(present, absent)) /
         static_cast<double>(frequent_total_);
}

double SequenceRuleOracle::Confidence(const std::set<std::string>& lhs_present,
                                      const std::set<std::string>& lhs_absent,
                                      const std::string& rhs,
                                      bool rhs_present) const {
  uint64_t antecedent = CountWhere(lhs_present, lhs_absent);
  if (antecedent == 0) return 0.0;
  std::set<std::string> present = lhs_present;
  std::set<std::string> absent = lhs_absent;
  if (rhs_present) {
    present.insert(rhs);
  } else {
    absent.insert(rhs);
  }
  uint64_t both = CountWhere(present, absent);
  return static_cast<double>(both) / static_cast<double>(antecedent);
}

bool SequenceRuleOracle::Implies(const std::set<std::string>& lhs_present,
                                 const std::set<std::string>& lhs_absent,
                                 const std::string& rhs,
                                 bool rhs_present) const {
  uint64_t antecedent = CountWhere(lhs_present, lhs_absent);
  if (antecedent == 0) return false;
  return Confidence(lhs_present, lhs_absent, rhs, rhs_present) == 1.0;
}

bool SequenceRuleOracle::AtomicSet(const std::set<std::string>& labels) const {
  if (labels.empty() || frequent_.empty()) return false;
  bool occurs = false;
  for (const auto& [sequence, count] : frequent_) {
    size_t hits = 0;
    for (const std::string& label : labels) {
      if (sequence.count(label) > 0) ++hits;
    }
    if (hits != 0 && hits != labels.size()) return false;
    if (hits == labels.size()) occurs = true;
  }
  return occurs;
}

bool SequenceRuleOracle::ExactlyOneOf(
    const std::set<std::string>& labels) const {
  if (labels.size() < 2 || frequent_.empty()) return false;
  for (const auto& [sequence, count] : frequent_) {
    size_t hits = 0;
    for (const std::string& label : labels) {
      if (sequence.count(label) > 0) ++hits;
    }
    if (hits != 1) return false;
  }
  return true;
}

bool SequenceRuleOracle::AlwaysPresent(const std::string& label) const {
  if (frequent_.empty()) return false;
  for (const auto& [sequence, count] : frequent_) {
    if (sequence.count(label) == 0) return false;
  }
  return true;
}

double SequenceRuleOracle::PresenceFraction(const std::string& label) const {
  return Support({label}, {});
}

}  // namespace dtdevolve::mining
