#ifndef DTDEVOLVE_MINING_RULES_H_
#define DTDEVOLVE_MINING_RULES_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mining/apriori.h"
#include "mining/transactions.h"

namespace dtdevolve::mining {

/// An association rule X → Y over interned items, with the standard
/// support / confidence semantics of §4.2:
///   support    — fraction of sequences containing X ∪ Y,
///   confidence — fraction of sequences containing X that also contain Y.
struct AssociationRule {
  std::vector<int> lhs;  // sorted
  std::vector<int> rhs;  // sorted
  double support = 0.0;
  double confidence = 0.0;
};

/// Generates all rules with confidence ≥ `min_confidence` from the
/// frequent itemsets, splitting each itemset into every (lhs, rhs)
/// bipartition with non-empty sides. Subset supports are looked up among
/// the (downward-closed) frequent itemsets.
std::vector<AssociationRule> GenerateRules(
    const std::vector<FrequentItemset>& itemsets, double min_confidence);

/// Renders a rule as `a,b -> !c` for logs and tests.
std::string RuleToString(const AssociationRule& rule,
                         const ItemDictionary& dict);

/// The paper's four-step rule pipeline over the sequences recorded for
/// one DTD element (§4.2):
///   1. complete each sequence with absent elements over `Label`;
///   2. keep the *most frequent* sequences (support > µ), discarding the
///      rest as not representative;
///   3-4. extract the association rules with maximal confidence (= 1)
///      over those frequent sequences.
/// This class answers confidence-1 rule queries exactly — a rule
/// `X, Ȳ → z` holds iff every frequent sequence satisfying the antecedent
/// also satisfies the consequent, and at least one sequence satisfies the
/// antecedent.
class SequenceRuleOracle {
 public:
  /// `sequences`: (set of present tags, multiplicity) pairs.
  /// `universe`: the label set `Label` used for absent completion.
  /// `min_support`: the paper's µ threshold applied to raw sequences.
  SequenceRuleOracle(
      std::vector<std::pair<std::set<std::string>, uint32_t>> sequences,
      std::set<std::string> universe, double min_support);

  /// Frequent sequences that survived the µ filter.
  const std::vector<std::pair<std::set<std::string>, uint32_t>>&
  frequent_sequences() const {
    return frequent_;
  }
  bool HasFrequentSequences() const { return !frequent_.empty(); }
  const std::set<std::string>& universe() const { return universe_; }

  /// Weighted fraction of frequent sequences containing all of `present`
  /// and none of `absent`.
  double Support(const std::set<std::string>& present,
                 const std::set<std::string>& absent = {}) const;

  /// Confidence of the rule (present ∧ absent̄) → rhs (present/absent);
  /// 0 when no frequent sequence satisfies the antecedent.
  double Confidence(const std::set<std::string>& lhs_present,
                    const std::set<std::string>& lhs_absent,
                    const std::string& rhs, bool rhs_present) const;

  /// True iff the rule has confidence 1 and a satisfied antecedent —
  /// membership in the paper's `Rules` set.
  bool Implies(const std::set<std::string>& lhs_present,
               const std::set<std::string>& lhs_absent,
               const std::string& rhs, bool rhs_present) const;

  /// Principle P1 generalized: the labels behave atomically (every
  /// frequent sequence contains all of them or none), and they do occur.
  bool AtomicSet(const std::set<std::string>& labels) const;

  /// Principle P2 generalized: every frequent sequence contains exactly
  /// one of `labels` (requires at least two labels).
  bool ExactlyOneOf(const std::set<std::string>& labels) const;

  /// True when every frequent sequence contains `label`.
  bool AlwaysPresent(const std::string& label) const;
  /// Weighted fraction of frequent sequences containing `label`.
  double PresenceFraction(const std::string& label) const;

 private:
  uint64_t CountWhere(const std::set<std::string>& present,
                      const std::set<std::string>& absent) const;

  std::set<std::string> universe_;
  std::vector<std::pair<std::set<std::string>, uint32_t>> frequent_;
  uint64_t frequent_total_ = 0;
};

}  // namespace dtdevolve::mining

#endif  // DTDEVOLVE_MINING_RULES_H_
