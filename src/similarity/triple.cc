#include "similarity/triple.h"

#include <cstdio>

namespace dtdevolve::similarity {

std::string Triple::ToString() const {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "(p=%.3f, m=%.3f, c=%.3f)", plus,
                minus, common);
  return buffer;
}

double Evaluate(const Triple& triple, const EvalWeights& weights) {
  double numerator = weights.common_weight * triple.common;
  double denominator = numerator + weights.plus_weight * triple.plus +
                       weights.minus_weight * triple.minus;
  if (denominator == 0.0) return 1.0;
  return numerator / denominator;
}

bool IsFull(const Triple& triple) {
  return triple.plus == 0.0 && triple.minus == 0.0;
}

}  // namespace dtdevolve::similarity
