#include "similarity/thesaurus.h"

namespace dtdevolve::similarity {

namespace {

std::pair<std::string, std::string> OrderedKey(std::string_view a,
                                               std::string_view b) {
  if (a <= b) return {std::string(a), std::string(b)};
  return {std::string(b), std::string(a)};
}

}  // namespace

void Thesaurus::AddSynonym(std::string_view a, std::string_view b,
                           double score) {
  if (score < 0.0) score = 0.0;
  if (score > 1.0) score = 1.0;
  scores_[OrderedKey(a, b)] = score;
}

double Thesaurus::Score(std::string_view a, std::string_view b) const {
  if (a == b) return 1.0;
  auto it = scores_.find(OrderedKey(a, b));
  return it == scores_.end() ? 0.0 : it->second;
}

}  // namespace dtdevolve::similarity
