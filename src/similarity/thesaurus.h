#ifndef DTDEVOLVE_SIMILARITY_THESAURUS_H_
#define DTDEVOLVE_SIMILARITY_THESAURUS_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>

namespace dtdevolve::similarity {

/// Tag-similarity oracle — the paper's §6 extension "shifting from tag
/// equality to tag similarity" via a WordNet-like thesaurus. The default
/// (empty) thesaurus degrades to exact tag equality.
class Thesaurus {
 public:
  Thesaurus() = default;

  /// Declares `a` and `b` similar with the given score in (0, 1].
  /// Symmetric; re-adding overwrites.
  void AddSynonym(std::string_view a, std::string_view b, double score = 1.0);

  /// Similarity of two tags: 1 for equal tags, the declared synonym score
  /// if any, otherwise 0.
  double Score(std::string_view a, std::string_view b) const;

  size_t size() const { return scores_.size(); }

 private:
  // Key is the lexicographically ordered pair.
  std::map<std::pair<std::string, std::string>, double> scores_;
};

}  // namespace dtdevolve::similarity

#endif  // DTDEVOLVE_SIMILARITY_THESAURUS_H_
