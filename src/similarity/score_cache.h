#ifndef DTDEVOLVE_SIMILARITY_SCORE_CACHE_H_
#define DTDEVOLVE_SIMILARITY_SCORE_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "similarity/triple.h"
#include "xml/document.h"

namespace dtdevolve::similarity {

/// Structural fingerprint of one element subtree: a 128-bit hash over the
/// tag and the recursive content-symbol structure, plus the subtree's
/// element count. Two subtrees with equal fingerprints evaluate to the
/// same `Triple` against any declaration label, because the similarity
/// measure reads exactly the structure the fingerprint covers (tags and
/// the collapsed content-symbol sequence — attribute and text *values*
/// never influence a triple).
struct SubtreeStats {
  uint64_t fp_hi = 0;
  uint64_t fp_lo = 0;
  uint32_t element_count = 0;
};

/// Per-document fingerprint index: one `SubtreeStats` per element of the
/// subtree it was built from, computed in a single bottom-up pass. The
/// fingerprints are DTD-independent, so a classifier computes them once
/// per document and reuses them against every DTD in the set.
class SubtreeFingerprints {
 public:
  explicit SubtreeFingerprints(const xml::Element& root);

  /// Stats of `element`, or nullptr when it is not part of the indexed
  /// subtree.
  const SubtreeStats* Find(const xml::Element* element) const {
    auto it = map_.find(element);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t size() const { return map_.size(); }

 private:
  SubtreeStats Compute(const xml::Element& element);

  std::unordered_map<const xml::Element*, SubtreeStats> map_;
};

/// Sharded, mutex-striped LRU cache of `Triple` results keyed by
/// `(evaluator epoch, structural fingerprint, declaration label id)`. It
/// carries subtree evaluations *across documents* and across
/// `ClassifyBatch` workers: homogeneous streams repeat subtree structures
/// constantly, and a fingerprint hit replaces a full recursive alignment.
///
/// Epoch keying doubles as invalidation: every `SimilarityEvaluator`
/// draws a fresh epoch id at construction, so rebuilding an evaluator
/// (what `Classifier::Invalidate` does after evolution) orphans all its
/// old entries — they age out of the LRU naturally, no purge needed.
///
/// Thread-safety: all entry points are safe for concurrent use; each of
/// the 16 shards has its own mutex, so batch workers rarely contend.
class SubtreeScoreCache {
 public:
  struct Config {
    /// Approximate capacity; entries are evicted LRU per shard beyond it.
    size_t capacity_bytes = 64ull << 20;
    /// Subtrees with fewer elements are cheaper to recompute than to
    /// round-trip through a shard mutex; they are never cached.
    uint32_t min_subtree_elements = 4;
  };

  struct Key {
    uint64_t epoch = 0;
    uint64_t fp_hi = 0;
    uint64_t fp_lo = 0;
    int32_t label_id = -1;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// Monotonic totals since construction (or the last `Clear`).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;

    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  SubtreeScoreCache();
  explicit SubtreeScoreCache(Config config);

  SubtreeScoreCache(const SubtreeScoreCache&) = delete;
  SubtreeScoreCache& operator=(const SubtreeScoreCache&) = delete;

  /// True and `*out` filled on a hit; counts the hit/miss either way.
  bool Lookup(const Key& key, Triple* out);
  /// Inserts (or refreshes) `key`, evicting LRU entries beyond capacity.
  void Insert(const Key& key, const Triple& value);
  /// Drops every entry and resets the statistics.
  void Clear();

  Stats GetStats() const;
  const Config& config() const { return config_; }

  /// Optional `obs` counters bumped alongside the internal stats; any may
  /// be null. Install before concurrent use.
  void set_metrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions) {
    hits_counter_ = hits;
    misses_counter_ = misses;
    evictions_counter_ = evictions;
  }

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<Key, Triple>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, Triple>>::iterator,
                       KeyHash>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  static constexpr size_t kNumShards = 16;
  /// Approximate footprint of one entry (key + triple + list node + hash
  /// node), used to translate the byte capacity into an entry budget.
  static constexpr size_t kApproxEntryBytes = 160;

  Shard& ShardFor(const Key& key);

  Config config_;
  size_t max_entries_per_shard_;
  std::array<Shard, kNumShards> shards_;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace dtdevolve::similarity

#endif  // DTDEVOLVE_SIMILARITY_SCORE_CACHE_H_
