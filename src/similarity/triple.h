#ifndef DTDEVOLVE_SIMILARITY_TRIPLE_H_
#define DTDEVOLVE_SIMILARITY_TRIPLE_H_

#include <string>

namespace dtdevolve::similarity {

/// The paper's evaluation triple `(p, m, c)` associated with each node
/// while matching a document tree against a DTD tree:
///   p — *plus* weight: document components absent from the DTD,
///   m — *minus* weight: DTD-required components absent from the document,
///   c — *common* weight: components present in both.
/// Weights are fractional because a matched child propagates its own
/// (normalized) triple upward (see SimilarityEvaluator).
struct Triple {
  double plus = 0.0;
  double minus = 0.0;
  double common = 0.0;

  Triple() = default;
  Triple(double p, double m, double c) : plus(p), minus(m), common(c) {}

  Triple& operator+=(const Triple& other) {
    plus += other.plus;
    minus += other.minus;
    common += other.common;
    return *this;
  }

  double total() const { return plus + minus + common; }

  /// True when nothing was evaluated at all (empty against empty).
  bool empty() const { return total() == 0.0; }

  std::string ToString() const;
};

/// Weights of the evaluation function E. The companion paper allows
/// penalizing plus and minus components differently (e.g. extra elements
/// may be more tolerable than missing required ones).
struct EvalWeights {
  double plus_weight = 1.0;
  double minus_weight = 1.0;
  double common_weight = 1.0;
};

/// The evaluation function E of [2]:
///   E(p, m, c) = w_c·c / (w_c·c + w_p·p + w_m·m),
/// mapping a triple to a similarity degree in [0, 1]. An empty triple
/// (nothing required, nothing present) evaluates to 1 — full similarity.
double Evaluate(const Triple& triple, const EvalWeights& weights = {});

/// True when the triple denotes a perfect match (no plus, no minus).
bool IsFull(const Triple& triple);

}  // namespace dtdevolve::similarity

#endif  // DTDEVOLVE_SIMILARITY_TRIPLE_H_
