#ifndef DTDEVOLVE_SIMILARITY_MATCHER_H_
#define DTDEVOLVE_SIMILARITY_MATCHER_H_

#include <functional>
#include <string>
#include <vector>

#include "dtd/glushkov.h"

namespace dtdevolve::similarity {

/// Costs of the two deviation kinds during alignment.
struct MatchOptions {
  /// Cost of leaving a document child unmatched (a *plus* component).
  double plus_cost = 1.0;
  /// Cost of traversing a required model transition without consuming a
  /// document child (a *minus* component).
  double minus_cost = 1.0;
};

/// How one document child was placed by the optimal alignment.
struct ChildAssignment {
  enum class Kind { kMatched, kPlus };

  Kind kind = Kind::kPlus;
  /// Glushkov position the child matched (kMatched only); -1 for the
  /// ANY shortcut, where no position exists.
  int position = -1;
  /// Match credit in [0, 1] as returned by the credit function.
  double credit = 0.0;
};

/// One step of the optimal alignment path, in path order. The sequence of
/// kMatch/kMinus events is exactly the model-conforming output order (the
/// document adapter replays it); kPlus events mark skipped children.
struct PathEvent {
  enum class Kind { kMatch, kPlus, kMinus };
  Kind kind = Kind::kMatch;
  /// Input symbol index (kMatch / kPlus).
  size_t child_index = 0;
  /// Model position taken (kMatch / kMinus).
  int position = -1;
};

/// Result of aligning a child-symbol sequence against a content model.
struct MatchResult {
  /// One entry per input symbol, in order.
  std::vector<ChildAssignment> assignments;
  /// Labels of model positions traversed without a matching child — the
  /// *minus* components at this level, with multiplicity, in path order.
  std::vector<std::string> minus_labels;
  /// The full optimal path (matches, skips and minus traversals
  /// interleaved in order). Empty for the ANY shortcut.
  std::vector<PathEvent> events;
  /// Total alignment cost (Σ plus_cost + Σ minus_cost + Σ (1 − credit)).
  double cost = 0.0;
};

/// Credit oracle: similarity in [0, 1] of document child `child_index`
/// matched against a model position labeled `label`; a negative return
/// forbids the match. The *local* evaluator returns tag similarity only;
/// the *global* evaluator recursively evaluates the child against the
/// label's declaration.
using CreditFn =
    std::function<double(size_t child_index, const std::string& label)>;

/// Position-based credit oracle for the interned-id fast path: the callee
/// receives the Glushkov position itself and looks up the label (or its
/// interned id) from the automaton, avoiding any string traffic.
using PositionCreditFn =
    std::function<double(size_t child_index, int position)>;

/// Computes the minimum-cost alignment of `symbols` (child element tags
/// and #PCDATA items, in document order) against `automaton` via Dijkstra
/// over the (input position × automaton state) graph. Moves:
///   match — consume a child along a transition whose credit ≥ 0,
///           cost 1 − credit;
///   plus  — consume a child without moving, cost plus_cost;
///   minus — take a transition without consuming, cost minus_cost.
/// The automaton is ε-free (Glushkov), so all cycles have positive cost
/// and the search terminates. Valid content yields cost 0: every child
/// matched with credit 1 and no minus labels.
MatchResult AlignChildren(const dtd::Automaton& automaton,
                          const std::vector<std::string>& symbols,
                          const CreditFn& credit,
                          const MatchOptions& options = {});

/// Interned-id twin of `AlignChildren`: identical algorithm and result,
/// but the input sequence is given only by its length and credits are
/// resolved per position (`PositionCreditFn`), so no label strings are
/// materialized on the hot path.
MatchResult AlignChildrenById(const dtd::Automaton& automaton,
                              size_t num_symbols,
                              const PositionCreditFn& credit,
                              const MatchOptions& options = {});

}  // namespace dtdevolve::similarity

#endif  // DTDEVOLVE_SIMILARITY_MATCHER_H_
