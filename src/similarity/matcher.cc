#include "similarity/matcher.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

namespace dtdevolve::similarity {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Back-pointer for path reconstruction.
struct Step {
  enum class Kind { kNone, kMatch, kPlus, kMinus };
  Kind kind = Kind::kNone;
  int prev_node = -1;
  int position = -1;   // for kMatch / kMinus
  double credit = 0.0;  // for kMatch
};

}  // namespace

MatchResult AlignChildren(const dtd::Automaton& automaton,
                          const std::vector<std::string>& symbols,
                          const CreditFn& credit,
                          const MatchOptions& options) {
  return AlignChildrenById(
      automaton, symbols.size(),
      [&](size_t i, int pos) {
        return credit(i, automaton.LabelOfPosition(pos));
      },
      options);
}

MatchResult AlignChildrenById(const dtd::Automaton& automaton,
                              size_t num_symbols,
                              const PositionCreditFn& credit,
                              const MatchOptions& options) {
  MatchResult result;
  if (automaton.is_any()) {
    // ANY accepts everything: every child is a full-credit match.
    result.assignments.resize(num_symbols);
    for (ChildAssignment& a : result.assignments) {
      a.kind = ChildAssignment::Kind::kMatched;
      a.position = -1;
      a.credit = 1.0;
    }
    return result;
  }

  const size_t n = num_symbols;
  const size_t num_states = automaton.num_states();
  const size_t num_nodes = (n + 1) * num_states;
  auto node_id = [&](size_t i, size_t state) {
    return static_cast<int>(i * num_states + state);
  };

  std::vector<double> dist(num_nodes, kInfinity);
  std::vector<Step> back(num_nodes);
  using QueueItem = std::pair<double, int>;  // (distance, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;

  dist[node_id(0, 0)] = 0.0;
  queue.push({0.0, node_id(0, 0)});

  auto relax = [&](int to, double new_dist, Step step) {
    if (new_dist < dist[to]) {
      dist[to] = new_dist;
      back[to] = step;
      queue.push({new_dist, to});
    }
  };

  while (!queue.empty()) {
    auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) continue;
    const size_t i = static_cast<size_t>(node) / num_states;
    const int state = node % static_cast<int>(num_states);

    // minus: traverse a transition without consuming input.
    for (int pos : automaton.SuccessorsOf(state)) {
      relax(node_id(i, pos + 1), d + options.minus_cost,
            {Step::Kind::kMinus, node, pos, 0.0});
    }
    if (i < n) {
      // plus: consume the child without moving.
      relax(node_id(i + 1, state), d + options.plus_cost,
            {Step::Kind::kPlus, node, -1, 0.0});
      // match: consume the child along a permitted transition.
      for (int pos : automaton.SuccessorsOf(state)) {
        double c = credit(i, pos);
        if (c < 0.0) continue;
        c = std::min(c, 1.0);
        relax(node_id(i + 1, pos + 1), d + (1.0 - c),
              {Step::Kind::kMatch, node, pos, c});
      }
    }
  }

  // Best accepting end state.
  int best_node = -1;
  double best_dist = kInfinity;
  for (size_t state = 0; state < num_states; ++state) {
    if (!automaton.IsAccepting(static_cast<int>(state))) continue;
    int node = node_id(n, state);
    if (dist[node] < best_dist) {
      best_dist = dist[node];
      best_node = node;
    }
  }
  assert(best_node >= 0 &&
         "alignment always exists: all-plus then all-minus to acceptance");

  // Reconstruct.
  result.cost = best_dist;
  result.assignments.resize(n);
  int node = best_node;
  while (back[node].kind != Step::Kind::kNone) {
    const Step& step = back[node];
    const size_t i = static_cast<size_t>(node) / num_states;
    switch (step.kind) {
      case Step::Kind::kMatch:
        result.assignments[i - 1] = {ChildAssignment::Kind::kMatched,
                                     step.position, step.credit};
        result.events.push_back(
            {PathEvent::Kind::kMatch, i - 1, step.position});
        break;
      case Step::Kind::kPlus:
        result.assignments[i - 1] = {ChildAssignment::Kind::kPlus, -1, 0.0};
        result.events.push_back({PathEvent::Kind::kPlus, i - 1, -1});
        break;
      case Step::Kind::kMinus:
        result.minus_labels.push_back(automaton.LabelOfPosition(step.position));
        result.events.push_back({PathEvent::Kind::kMinus, i, step.position});
        break;
      case Step::Kind::kNone:
        break;
    }
    node = step.prev_node;
  }
  std::reverse(result.minus_labels.begin(), result.minus_labels.end());
  std::reverse(result.events.begin(), result.events.end());
  return result;
}

}  // namespace dtdevolve::similarity
