#include "similarity/similarity.h"

#include <cassert>

#include "util/string_util.h"
#include "validate/validator.h"

namespace dtdevolve::similarity {

namespace {

/// Contribution of a matched child to its parent's triple: one unit of
/// mass. A share `alpha` (the tag weight) is earned by the tag match
/// itself; the remainder is split by the child's own normalized triple.
/// Everything is scaled by the tag-similarity score, whose residue is
/// charged half to plus and half to minus (the tags deviate in both
/// directions at once).
Triple MatchedChildContribution(const Triple& child, double tag_score,
                                double alpha) {
  double total = child.total();
  double p_frac = 0.0, m_frac = 0.0, c_frac = 1.0;
  if (total > 0.0) {
    p_frac = child.plus / total;
    m_frac = child.minus / total;
    c_frac = child.common / total;
  }
  double common_share = alpha + (1.0 - alpha) * c_frac;
  double residue = (1.0 - tag_score) * common_share;
  return Triple((1.0 - alpha) * p_frac + residue / 2.0,
                (1.0 - alpha) * m_frac + residue / 2.0,
                tag_score * common_share);
}

}  // namespace

SimilarityEvaluator::SimilarityEvaluator(const dtd::Dtd& dtd,
                                         SimilarityOptions options)
    : dtd_(&dtd), options_(options) {
  for (const std::string& name : dtd.ElementNames()) {
    const dtd::ElementDecl* decl = dtd.FindElement(name);
    if (decl->content) {
      automata_.emplace(name, dtd::Automaton::Build(*decl->content));
    }
  }
}

double SimilarityEvaluator::TagScore(const std::string& a,
                                     const std::string& b) const {
  if (options_.thesaurus != nullptr) return options_.thesaurus->Score(a, b);
  return a == b ? 1.0 : 0.0;
}

const dtd::Automaton* SimilarityEvaluator::FindAutomaton(
    const std::string& name) const {
  auto it = automata_.find(name);
  return it == automata_.end() ? nullptr : &it->second;
}

std::vector<const xml::Element*> SimilarityEvaluator::SymbolElements(
    const xml::Element& element, const std::vector<std::string>& symbols) {
  std::vector<const xml::Element*> out;
  out.reserve(symbols.size());
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      out.push_back(&child->AsElement());
    }
  }
  // Interleave text-run placeholders to line up with the symbols.
  std::vector<const xml::Element*> aligned;
  aligned.reserve(symbols.size());
  size_t next_element = 0;
  for (const std::string& symbol : symbols) {
    if (symbol == dtd::kPcdataSymbol) {
      aligned.push_back(nullptr);
    } else {
      aligned.push_back(out[next_element++]);
    }
  }
  assert(next_element == out.size());
  return aligned;
}

Triple SimilarityEvaluator::GlobalTripleCached(const xml::Element& element,
                                               const std::string& decl_name,
                                               Memo& memo) const {
  auto key = std::make_pair(&element, decl_name);
  auto it = memo.find(key);
  if (it != memo.end()) return it->second;

  const dtd::Automaton* automaton = FindAutomaton(decl_name);
  std::vector<std::string> symbols = validate::ContentSymbols(element);
  Triple triple;
  if (automaton == nullptr || automaton->is_any()) {
    // ANY (or an undeclared reference): everything is common.
    triple.common = static_cast<double>(symbols.size());
    memo.emplace(key, triple);
    return triple;
  }

  std::vector<const xml::Element*> children = SymbolElements(element, symbols);

  // Credit of matching child i against a position labeled `label`:
  // tag similarity times the child's own global evaluation.
  std::map<std::pair<size_t, std::string>, Triple> child_triples;
  CreditFn credit = [&](size_t i, const std::string& label) -> double {
    if (children[i] == nullptr) {  // text run
      return label == dtd::kPcdataSymbol ? 1.0 : -1.0;
    }
    if (label == dtd::kPcdataSymbol) return -1.0;
    double tag = TagScore(children[i]->tag(), label);
    if (tag <= 0.0) return -1.0;
    Triple sub = GlobalTripleCached(*children[i], label, memo);
    child_triples.emplace(std::make_pair(i, label), sub);
    double alpha = options_.tag_weight;
    return tag * (alpha + (1.0 - alpha) * Evaluate(sub, options_.weights));
  };

  MatchResult aligned =
      AlignChildren(*automaton, symbols, credit, options_.match);

  for (size_t i = 0; i < aligned.assignments.size(); ++i) {
    const ChildAssignment& a = aligned.assignments[i];
    if (a.kind == ChildAssignment::Kind::kPlus) {
      triple.plus += 1.0;
      continue;
    }
    if (children[i] == nullptr) {
      triple.common += 1.0;  // matched text
      continue;
    }
    const std::string& label =
        a.position >= 0 ? automaton->LabelOfPosition(a.position)
                        : children[i]->tag();
    double tag = TagScore(children[i]->tag(), label);
    auto sub_it = child_triples.find(std::make_pair(i, label));
    Triple sub = sub_it == child_triples.end()
                     ? GlobalTripleCached(*children[i], label, memo)
                     : sub_it->second;
    triple += MatchedChildContribution(sub, tag, options_.tag_weight);
  }
  triple.minus += static_cast<double>(aligned.minus_labels.size());

  memo.emplace(key, triple);
  return triple;
}

Triple SimilarityEvaluator::GlobalTriple(const xml::Element& element,
                                         const std::string& decl_name) const {
  return GlobalTripleCached(element, decl_name, memo_);
}

double SimilarityEvaluator::GlobalSimilarity(
    const xml::Element& element, const std::string& decl_name) const {
  return Evaluate(GlobalTriple(element, decl_name), options_.weights);
}

MatchResult SimilarityEvaluator::AlignLocal(
    const xml::Element& element, const std::string& decl_name) const {
  const dtd::Automaton* automaton = FindAutomaton(decl_name);
  std::vector<std::string> symbols = validate::ContentSymbols(element);
  if (automaton == nullptr) {
    // Undeclared: behave like ANY.
    MatchResult result;
    result.assignments.resize(symbols.size());
    for (ChildAssignment& a : result.assignments) {
      a.kind = ChildAssignment::Kind::kMatched;
      a.credit = 1.0;
    }
    return result;
  }
  std::vector<const xml::Element*> children = SymbolElements(element, symbols);
  CreditFn credit = [&](size_t i, const std::string& label) -> double {
    if (children[i] == nullptr) {
      return label == dtd::kPcdataSymbol ? 1.0 : -1.0;
    }
    if (label == dtd::kPcdataSymbol) return -1.0;
    double tag = TagScore(children[i]->tag(), label);
    return tag > 0.0 ? tag : -1.0;
  };
  return AlignChildren(*automaton, symbols, credit, options_.match);
}

Triple SimilarityEvaluator::LocalTriple(const xml::Element& element,
                                        const std::string& decl_name) const {
  const dtd::Automaton* automaton = FindAutomaton(decl_name);
  std::vector<std::string> symbols = validate::ContentSymbols(element);
  Triple triple;
  if (automaton == nullptr || automaton->is_any()) {
    triple.common = static_cast<double>(symbols.size());
    return triple;
  }
  MatchResult aligned = AlignLocal(element, decl_name);
  for (const ChildAssignment& a : aligned.assignments) {
    if (a.kind == ChildAssignment::Kind::kPlus) {
      triple.plus += 1.0;
    } else {
      // Imperfect tag similarity leaves a residue split between plus and
      // minus, mirroring MatchedChildContribution at credit granularity.
      triple.common += a.credit;
      triple.plus += (1.0 - a.credit) / 2.0;
      triple.minus += (1.0 - a.credit) / 2.0;
    }
  }
  triple.minus += static_cast<double>(aligned.minus_labels.size());
  return triple;
}

double SimilarityEvaluator::LocalSimilarity(
    const xml::Element& element, const std::string& decl_name) const {
  return Evaluate(LocalTriple(element, decl_name), options_.weights);
}

double SimilarityEvaluator::DocumentSimilarity(
    const xml::Document& doc) const {
  // A call-local memo keeps this entry point safe for concurrent use on a
  // shared evaluator; it is scoped to one document anyway.
  if (!doc.has_root() || dtd_->empty()) return 0.0;
  const std::string& root_name = dtd_->root_name();
  double tag = TagScore(doc.root().tag(), root_name);
  if (tag <= 0.0) return 0.0;
  Memo memo;
  Triple triple = GlobalTripleCached(doc.root(), root_name, memo);
  return tag * Evaluate(triple, options_.weights);
}

std::vector<ElementReport> SimilarityEvaluator::EvaluateElements(
    const xml::Element& root) const {
  Memo memo;  // call-local, as in DocumentSimilarity
  std::vector<ElementReport> reports;
  std::vector<const xml::Element*> stack = {&root};
  while (!stack.empty()) {
    const xml::Element* element = stack.back();
    stack.pop_back();
    ElementReport report;
    report.element = element;
    report.declared = dtd_->HasElement(element->tag());
    if (report.declared) {
      report.local_triple = LocalTriple(*element, element->tag());
      report.local_similarity = Evaluate(report.local_triple, options_.weights);
      report.global_triple =
          GlobalTripleCached(*element, element->tag(), memo);
      report.global_similarity =
          Evaluate(report.global_triple, options_.weights);
    }
    reports.push_back(report);
    std::vector<const xml::Element*> children = element->ChildElements();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return reports;
}

}  // namespace dtdevolve::similarity
