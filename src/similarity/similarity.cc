#include "similarity/similarity.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <optional>

#include "util/string_util.h"
#include "util/symbol_table.h"
#include "validate/validator.h"

namespace dtdevolve::similarity {

namespace {

/// Contribution of a matched child to its parent's triple: one unit of
/// mass. A share `alpha` (the tag weight) is earned by the tag match
/// itself; the remainder is split by the child's own normalized triple.
/// Everything is scaled by the tag-similarity score, whose residue is
/// charged half to plus and half to minus (the tags deviate in both
/// directions at once).
Triple MatchedChildContribution(const Triple& child, double tag_score,
                                double alpha) {
  double total = child.total();
  double p_frac = 0.0, m_frac = 0.0, c_frac = 1.0;
  if (total > 0.0) {
    p_frac = child.plus / total;
    m_frac = child.minus / total;
    c_frac = child.common / total;
  }
  double common_share = alpha + (1.0 - alpha) * c_frac;
  double residue = (1.0 - tag_score) * common_share;
  return Triple((1.0 - alpha) * p_frac + residue / 2.0,
                (1.0 - alpha) * m_frac + residue / 2.0,
                tag_score * common_share);
}

/// Source of `SimilarityEvaluator::epoch()`: every evaluator instance
/// gets a process-unique id, so shared-cache entries written against a
/// replaced evaluator can never be read by its successor.
std::atomic<uint64_t> g_epoch_counter{0};

}  // namespace

std::vector<const xml::Element*> AlignSymbolElements(
    const xml::Element& element, const std::vector<int32_t>& symbol_ids) {
  std::vector<const xml::Element*> out;
  out.reserve(symbol_ids.size());
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      out.push_back(&child->AsElement());
    }
  }
  // Interleave text-run placeholders to line up with the symbols.
  const int32_t pcdata = dtd::PcdataSymbolId();
  std::vector<const xml::Element*> aligned;
  aligned.reserve(symbol_ids.size());
  size_t next_element = 0;
  for (int32_t symbol : symbol_ids) {
    if (symbol == pcdata) {
      aligned.push_back(nullptr);
    } else if (next_element < out.size()) {
      aligned.push_back(out[next_element++]);
    } else {
      // Symbol sequence claims more elements than the node has children.
      // Never produced by ContentSymbolIds, but this is a public entry
      // point: pad with nullptr instead of indexing out of bounds, in
      // every build mode. The symmetric mismatch (fewer symbols than
      // children) is tolerated the same way — surplus children are left
      // unaligned.
      aligned.push_back(nullptr);
    }
  }
  return aligned;
}

SimilarityEvaluator::SimilarityEvaluator(const dtd::Dtd& dtd,
                                         SimilarityOptions options)
    : dtd_(&dtd),
      options_(options),
      epoch_(g_epoch_counter.fetch_add(1, std::memory_order_relaxed) + 1) {
  for (const std::string& name : dtd.ElementNames()) {
    const dtd::ElementDecl* decl = dtd.FindElement(name);
    if (decl->content) {
      automata_.emplace(util::InternSymbol(name),
                        dtd::Automaton::Build(*decl->content));
    }
  }
  root_name_id_ = util::InternSymbol(dtd.root_name());
  root_automaton_ = FindAutomaton(root_name_id_);
  root_any_ = root_automaton_ == nullptr || root_automaton_->is_any();
  if (!root_any_) {
    root_label_ids_ = root_automaton_->position_label_ids();
    std::sort(root_label_ids_.begin(), root_label_ids_.end());
    root_label_ids_.erase(
        std::unique(root_label_ids_.begin(), root_label_ids_.end()),
        root_label_ids_.end());
  }
}

double SimilarityEvaluator::TagScore(const std::string& a,
                                     const std::string& b) const {
  if (options_.thesaurus != nullptr) return options_.thesaurus->Score(a, b);
  return a == b ? 1.0 : 0.0;
}

double SimilarityEvaluator::TagScoreId(int32_t a_id, const std::string& a,
                                       int32_t b_id,
                                       const std::string& b) const {
  if (a_id >= 0 && b_id >= 0) {
    if (a_id == b_id) return 1.0;
    if (options_.thesaurus == nullptr) return 0.0;
    return options_.thesaurus->Score(a, b);
  }
  // Interning overflow: every overflow tag shares the kNoSymbol sentinel,
  // so a sentinel id is not discriminating — compare the strings.
  return TagScore(a, b);
}

const dtd::Automaton* SimilarityEvaluator::FindAutomaton(
    int32_t label_id) const {
  auto it = automata_.find(label_id);
  return it == automata_.end() ? nullptr : &it->second;
}

const dtd::Automaton* SimilarityEvaluator::FindAutomaton(
    const std::string& name) const {
  int32_t id = util::GlobalSymbols().Find(name);
  return id < 0 ? nullptr : FindAutomaton(id);
}

Triple SimilarityEvaluator::GlobalTripleCached(const xml::Element& element,
                                               int32_t label_id,
                                               EvalContext& ctx) const {
  if (const Triple* found = ctx.memo->Find(&element, label_id)) {
    return *found;
  }

  // Probe the shared cross-document cache: identical subtree structure ⇒
  // identical triple, for any element anywhere in the stream.
  SubtreeScoreCache::Key cache_key;
  bool use_cache = false;
  if (ctx.cache != nullptr && ctx.fingerprints != nullptr) {
    const SubtreeStats* stats = ctx.fingerprints->Find(&element);
    if (stats != nullptr &&
        stats->element_count >= ctx.cache->config().min_subtree_elements) {
      cache_key = {epoch_, stats->fp_hi, stats->fp_lo, label_id};
      use_cache = true;
      Triple cached;
      if (ctx.cache->Lookup(cache_key, &cached)) {
        ctx.memo->Insert(&element, label_id, cached);
        return cached;
      }
    }
  }

  const dtd::Automaton* automaton = FindAutomaton(label_id);
  std::vector<int32_t> symbol_ids = validate::ContentSymbolIds(element);
  Triple triple;
  if (automaton == nullptr || automaton->is_any()) {
    // ANY (or an undeclared reference): everything is common.
    triple.common = static_cast<double>(symbol_ids.size());
    ctx.memo->Insert(&element, label_id, triple);
    if (use_cache) ctx.cache->Insert(cache_key, triple);
    return triple;
  }

  std::vector<const xml::Element*> children =
      AlignSymbolElements(element, symbol_ids);
  const int32_t pcdata = dtd::PcdataSymbolId();

  // Credit of matching child i against a model position: tag similarity
  // times the child's own global evaluation. Keyed by (child, label id)
  // so positions sharing a label share the recursive result.
  std::map<std::pair<size_t, int32_t>, Triple> child_triples;
  auto credit = [&](size_t i, int pos) -> double {
    int32_t pos_label_id = automaton->LabelIdOfPosition(pos);
    if (children[i] == nullptr) {  // text run
      return pos_label_id == pcdata ? 1.0 : -1.0;
    }
    if (pos_label_id == pcdata) return -1.0;
    double tag = TagScoreId(children[i]->tag_id(), children[i]->tag(),
                            pos_label_id, automaton->LabelOfPosition(pos));
    if (tag <= 0.0) return -1.0;
    Triple sub = GlobalTripleCached(*children[i], pos_label_id, ctx);
    child_triples.emplace(std::make_pair(i, pos_label_id), sub);
    double alpha = options_.tag_weight;
    return tag * (alpha + (1.0 - alpha) * Evaluate(sub, options_.weights));
  };

  MatchResult aligned =
      AlignChildrenById(*automaton, symbol_ids.size(), credit, options_.match);

  for (size_t i = 0; i < aligned.assignments.size(); ++i) {
    const ChildAssignment& a = aligned.assignments[i];
    if (a.kind == ChildAssignment::Kind::kPlus) {
      triple.plus += 1.0;
      continue;
    }
    if (children[i] == nullptr) {
      triple.common += 1.0;  // matched text
      continue;
    }
    int32_t matched_id = a.position >= 0
                             ? automaton->LabelIdOfPosition(a.position)
                             : children[i]->tag_id();
    const std::string& matched_label =
        a.position >= 0 ? automaton->LabelOfPosition(a.position)
                        : children[i]->tag();
    double tag = TagScoreId(children[i]->tag_id(), children[i]->tag(),
                            matched_id, matched_label);
    auto sub_it = child_triples.find(std::make_pair(i, matched_id));
    Triple sub =
        sub_it == child_triples.end()
            ? GlobalTripleCached(*children[i], matched_id, ctx)
            : sub_it->second;
    triple += MatchedChildContribution(sub, tag, options_.tag_weight);
  }
  triple.minus += static_cast<double>(aligned.minus_labels.size());

  ctx.memo->Insert(&element, label_id, triple);
  if (use_cache) ctx.cache->Insert(cache_key, triple);
  return triple;
}

Triple SimilarityEvaluator::GlobalTriple(const xml::Element& element,
                                         const std::string& decl_name) const {
  EvalContext ctx;
  ctx.memo = &memo_;
  return GlobalTripleCached(element, util::InternSymbol(decl_name), ctx);
}

double SimilarityEvaluator::GlobalSimilarity(
    const xml::Element& element, const std::string& decl_name) const {
  return Evaluate(GlobalTriple(element, decl_name), options_.weights);
}

MatchResult SimilarityEvaluator::AlignLocal(
    const xml::Element& element, const std::string& decl_name) const {
  const dtd::Automaton* automaton = FindAutomaton(decl_name);
  std::vector<int32_t> symbol_ids = validate::ContentSymbolIds(element);
  if (automaton == nullptr) {
    // Undeclared: behave like ANY.
    MatchResult result;
    result.assignments.resize(symbol_ids.size());
    for (ChildAssignment& a : result.assignments) {
      a.kind = ChildAssignment::Kind::kMatched;
      a.credit = 1.0;
    }
    return result;
  }
  std::vector<const xml::Element*> children =
      AlignSymbolElements(element, symbol_ids);
  const int32_t pcdata = dtd::PcdataSymbolId();
  auto credit = [&](size_t i, int pos) -> double {
    int32_t pos_label_id = automaton->LabelIdOfPosition(pos);
    if (children[i] == nullptr) {
      return pos_label_id == pcdata ? 1.0 : -1.0;
    }
    if (pos_label_id == pcdata) return -1.0;
    double tag = TagScoreId(children[i]->tag_id(), children[i]->tag(),
                            pos_label_id, automaton->LabelOfPosition(pos));
    return tag > 0.0 ? tag : -1.0;
  };
  return AlignChildrenById(*automaton, symbol_ids.size(), credit,
                           options_.match);
}

Triple SimilarityEvaluator::LocalTriple(const xml::Element& element,
                                        const std::string& decl_name) const {
  const dtd::Automaton* automaton = FindAutomaton(decl_name);
  Triple triple;
  if (automaton == nullptr || automaton->is_any()) {
    triple.common = static_cast<double>(validate::ContentSymbolIds(element).size());
    return triple;
  }
  MatchResult aligned = AlignLocal(element, decl_name);
  for (const ChildAssignment& a : aligned.assignments) {
    if (a.kind == ChildAssignment::Kind::kPlus) {
      triple.plus += 1.0;
    } else {
      // Imperfect tag similarity leaves a residue split between plus and
      // minus, mirroring MatchedChildContribution at credit granularity.
      triple.common += a.credit;
      triple.plus += (1.0 - a.credit) / 2.0;
      triple.minus += (1.0 - a.credit) / 2.0;
    }
  }
  triple.minus += static_cast<double>(aligned.minus_labels.size());
  return triple;
}

double SimilarityEvaluator::LocalSimilarity(
    const xml::Element& element, const std::string& decl_name) const {
  return Evaluate(LocalTriple(element, decl_name), options_.weights);
}

double SimilarityEvaluator::RootTagScore(const xml::Element& root) const {
  return TagScoreId(root.tag_id(), root.tag(), root_name_id_,
                    dtd_->root_name());
}

double SimilarityEvaluator::DocumentSimilarity(
    const xml::Document& doc) const {
  return DocumentSimilarity(doc, nullptr);
}

double SimilarityEvaluator::DocumentSimilarity(
    const xml::Document& doc, const SubtreeFingerprints* fingerprints) const {
  // A call-local memo keeps this entry point safe for concurrent use on a
  // shared evaluator; it is scoped to one document anyway.
  if (!doc.has_root() || dtd_->empty()) return 0.0;
  double tag = RootTagScore(doc.root());
  if (tag <= 0.0) return 0.0;
  TripleMemo memo;
  EvalContext ctx;
  ctx.memo = &memo;
  ctx.cache = cache_;
  ctx.fingerprints = fingerprints;
  std::optional<SubtreeFingerprints> local_fingerprints;
  if (cache_ != nullptr && fingerprints == nullptr) {
    local_fingerprints.emplace(doc.root());
    ctx.fingerprints = &*local_fingerprints;
  }
  Triple triple =
      GlobalTripleCached(doc.root(), root_name_id_, ctx);
  return tag * Evaluate(triple, options_.weights);
}

double SimilarityEvaluator::ScoreUpperBound(
    const xml::Document& doc,
    const std::vector<int32_t>& root_symbol_ids) const {
  if (!doc.has_root() || dtd_->empty()) return 0.0;
  double tag = RootTagScore(doc.root());
  if (tag <= 0.0) return 0.0;
  const EvalWeights& w = options_.weights;
  if (w.common_weight < 0.0 || w.plus_weight < 0.0 || w.minus_weight < 0.0) {
    // Degenerate weights break E ≤ 1; never prune under them.
    return 1.0;
  }
  // The vocabulary argument needs exact tag gating: a thesaurus can match
  // a tag outside the literal label vocabulary, and ANY matches anything.
  if (options_.thesaurus != nullptr || root_any_) return tag;
  size_t n = root_symbol_ids.size();
  if (n == 0) return tag;
  size_t unmatched = 0;
  for (int32_t id : root_symbol_ids) {
    if (!std::binary_search(root_label_ids_.begin(), root_label_ids_.end(),
                            id)) {
      ++unmatched;
    }
  }
  if (unmatched == 0) return tag;
  // Each of the `unmatched` symbols is forced plus mass (credit < 0
  // against every position), each other symbol contributes at most one
  // unit of common mass, and minus mass only lowers E further.
  double matched_mass =
      w.common_weight * static_cast<double>(n - unmatched);
  double denom = matched_mass + w.plus_weight * static_cast<double>(unmatched);
  if (denom <= 0.0) return tag;
  return tag * (matched_mass / denom);
}

std::vector<ElementReport> SimilarityEvaluator::EvaluateElements(
    const xml::Element& root) const {
  TripleMemo memo;  // call-local, as in DocumentSimilarity
  EvalContext ctx;
  ctx.memo = &memo;
  ctx.cache = cache_;
  std::optional<SubtreeFingerprints> local_fingerprints;
  if (cache_ != nullptr) {
    local_fingerprints.emplace(root);
    ctx.fingerprints = &*local_fingerprints;
  }
  std::vector<ElementReport> reports;
  std::vector<const xml::Element*> stack = {&root};
  while (!stack.empty()) {
    const xml::Element* element = stack.back();
    stack.pop_back();
    ElementReport report;
    report.element = element;
    report.declared = dtd_->HasElement(element->tag());
    if (report.declared) {
      report.local_triple = LocalTriple(*element, element->tag());
      report.local_similarity = Evaluate(report.local_triple, options_.weights);
      report.global_triple =
          GlobalTripleCached(*element, element->tag_id(), ctx);
      report.global_similarity =
          Evaluate(report.global_triple, options_.weights);
    }
    reports.push_back(report);
    size_t first_child = stack.size();
    for (const xml::Element& child : element->child_elements()) {
      stack.push_back(&child);
    }
    std::reverse(stack.begin() + first_child, stack.end());
  }
  return reports;
}

}  // namespace dtdevolve::similarity
