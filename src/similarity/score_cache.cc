#include "similarity/score_cache.h"

#include <algorithm>
#include <functional>
#include <string_view>

#include "util/string_util.h"

namespace dtdevolve::similarity {

namespace {

/// splitmix64-style absorption: deterministic, well-mixed, cheap.
inline uint64_t Mix64(uint64_t h, uint64_t v) {
  h += 0x9E3779B97F4A7C15ull + v;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

/// Marker absorbed for a collapsed text run; chosen to never collide with
/// a small non-negative tag id.
constexpr uint64_t kPcdataMarker = 0xF1E2D3C4B5A69788ull;
/// Marker closing a child list, so (a,(b)) and (a,b) hash differently.
constexpr uint64_t kEndMarker = 0x123456789ABCDEF0ull;
/// Seed distinguishing string-hashed tag tokens from dense ids.
constexpr uint64_t kOverflowTagSeed = 0xA24BAED4963EE407ull;

/// The value a tag absorbs into the fingerprint. Past the symbol table's
/// capacity distinct tags share the kNoSymbol sentinel, so the id alone
/// would fingerprint structurally different subtrees identically and
/// alias their cached triples — hash the tag string instead.
inline uint64_t TagToken(const xml::Element& element) {
  if (element.tag_id() >= 0) {
    return static_cast<uint64_t>(element.tag_id());
  }
  return Mix64(kOverflowTagSeed,
               std::hash<std::string_view>{}(element.tag()));
}

}  // namespace

SubtreeFingerprints::SubtreeFingerprints(const xml::Element& root) {
  map_.reserve(root.SubtreeElementCount());
  Compute(root);
}

SubtreeStats SubtreeFingerprints::Compute(const xml::Element& element) {
  // The two lanes absorb the same values under different seeds; together
  // they form a 128-bit fingerprint, making accidental collisions across
  // a cache lifetime negligible.
  const uint64_t tag_token = TagToken(element);
  uint64_t hi = Mix64(0x8A5CD789635D2DFFull, tag_token);
  uint64_t lo = Mix64(0x121FD2155C472F96ull, ~tag_token);
  uint32_t count = 1;
  // Mirror the ContentSymbols collapse rules exactly: blank text skipped,
  // consecutive non-blank text runs count once.
  bool last_was_text = false;
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      SubtreeStats sub = Compute(child->AsElement());
      hi = Mix64(hi, sub.fp_hi);
      lo = Mix64(lo, sub.fp_lo);
      count += sub.element_count;
      last_was_text = false;
    } else {
      const auto& text = static_cast<const xml::Text&>(*child);
      if (IsBlank(text.value())) continue;
      if (!last_was_text) {
        hi = Mix64(hi, kPcdataMarker);
        lo = Mix64(lo, ~kPcdataMarker);
      }
      last_was_text = true;
    }
  }
  hi = Mix64(hi, kEndMarker);
  lo = Mix64(lo, ~kEndMarker);
  SubtreeStats stats{hi, lo, count};
  map_.emplace(&element, stats);
  return stats;
}

size_t SubtreeScoreCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = Mix64(key.fp_hi, key.fp_lo);
  h = Mix64(h, key.epoch);
  h = Mix64(h, static_cast<uint64_t>(static_cast<uint32_t>(key.label_id)));
  return static_cast<size_t>(h);
}

SubtreeScoreCache::SubtreeScoreCache() : SubtreeScoreCache(Config()) {}

SubtreeScoreCache::SubtreeScoreCache(Config config) : config_(config) {
  max_entries_per_shard_ = std::max<size_t>(
      1, config_.capacity_bytes / (kNumShards * kApproxEntryBytes));
}

SubtreeScoreCache::Shard& SubtreeScoreCache::ShardFor(const Key& key) {
  // fp_lo is already well mixed; fold in the label so one hot structure
  // scored against many DTDs spreads over shards.
  uint64_t h = key.fp_lo ^ (static_cast<uint64_t>(
                                static_cast<uint32_t>(key.label_id))
                            * 0xC2B2AE3D27D4EB4Full);
  return shards_[(h >> 56) % kNumShards];
}

bool SubtreeScoreCache::Lookup(const Key& key, Triple* out) {
  Shard& shard = ShardFor(key);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->second;
      ++shard.hits;
      hit = true;
    } else {
      ++shard.misses;
    }
  }
  if (hit) {
    if (hits_counter_ != nullptr) hits_counter_->Increment();
  } else {
    if (misses_counter_ != nullptr) misses_counter_->Increment();
  }
  return hit;
}

void SubtreeScoreCache::Insert(const Key& key, const Triple& value) {
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, value);
    shard.index.emplace(key, shard.lru.begin());
    while (shard.index.size() > max_entries_per_shard_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
      ++evicted;
    }
  }
  if (evictions_counter_ != nullptr && evicted > 0) {
    evictions_counter_->Increment(evicted);
  }
}

void SubtreeScoreCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
}

SubtreeScoreCache::Stats SubtreeScoreCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.index.size();
  }
  return stats;
}

}  // namespace dtdevolve::similarity
