#include "similarity/score_cache.h"

#include <algorithm>
#include <functional>
#include <string_view>

#include "util/string_util.h"
#include "xml/fingerprint.h"

namespace dtdevolve::similarity {

namespace {

// The fingerprint primitives live in xml/fingerprint.h so the streaming
// arena parser can absorb the identical sequence during its single pass.
using xml::FingerprintMix64;

inline uint64_t Mix64(uint64_t h, uint64_t v) { return FingerprintMix64(h, v); }

inline uint64_t TagToken(const xml::Element& element) {
  return xml::FingerprintTagToken(element.tag_id(), element.tag());
}

}  // namespace

SubtreeFingerprints::SubtreeFingerprints(const xml::Element& root) {
  map_.reserve(root.SubtreeElementCount());
  Compute(root);
}

SubtreeStats SubtreeFingerprints::Compute(const xml::Element& element) {
  xml::FingerprintAccumulator acc(TagToken(element));
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      SubtreeStats sub = Compute(child->AsElement());
      acc.AbsorbElement(sub.fp_hi, sub.fp_lo, sub.element_count);
    } else {
      const auto& text = static_cast<const xml::Text&>(*child);
      if (IsBlank(text.value())) continue;
      acc.AbsorbText();
    }
  }
  acc.Close();
  SubtreeStats stats{acc.hi, acc.lo, acc.element_count};
  map_.emplace(&element, stats);
  return stats;
}

size_t SubtreeScoreCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = Mix64(key.fp_hi, key.fp_lo);
  h = Mix64(h, key.epoch);
  h = Mix64(h, static_cast<uint64_t>(static_cast<uint32_t>(key.label_id)));
  return static_cast<size_t>(h);
}

SubtreeScoreCache::SubtreeScoreCache() : SubtreeScoreCache(Config()) {}

SubtreeScoreCache::SubtreeScoreCache(Config config) : config_(config) {
  max_entries_per_shard_ = std::max<size_t>(
      1, config_.capacity_bytes / (kNumShards * kApproxEntryBytes));
}

SubtreeScoreCache::Shard& SubtreeScoreCache::ShardFor(const Key& key) {
  // fp_lo is already well mixed; fold in the label so one hot structure
  // scored against many DTDs spreads over shards.
  uint64_t h = key.fp_lo ^ (static_cast<uint64_t>(
                                static_cast<uint32_t>(key.label_id))
                            * 0xC2B2AE3D27D4EB4Full);
  return shards_[(h >> 56) % kNumShards];
}

bool SubtreeScoreCache::Lookup(const Key& key, Triple* out) {
  Shard& shard = ShardFor(key);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->second;
      ++shard.hits;
      hit = true;
    } else {
      ++shard.misses;
    }
  }
  if (hit) {
    if (hits_counter_ != nullptr) hits_counter_->Increment();
  } else {
    if (misses_counter_ != nullptr) misses_counter_->Increment();
  }
  return hit;
}

void SubtreeScoreCache::Insert(const Key& key, const Triple& value) {
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, value);
    shard.index.emplace(key, shard.lru.begin());
    while (shard.index.size() > max_entries_per_shard_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
      ++evicted;
    }
  }
  if (evictions_counter_ != nullptr && evicted > 0) {
    evictions_counter_->Increment(evicted);
  }
}

void SubtreeScoreCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
}

SubtreeScoreCache::Stats SubtreeScoreCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.index.size();
  }
  return stats;
}

}  // namespace dtdevolve::similarity
