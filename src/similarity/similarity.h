#ifndef DTDEVOLVE_SIMILARITY_SIMILARITY_H_
#define DTDEVOLVE_SIMILARITY_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dtd/dtd.h"
#include "dtd/glushkov.h"
#include "similarity/matcher.h"
#include "similarity/score_cache.h"
#include "similarity/thesaurus.h"
#include "similarity/triple.h"
#include "xml/document.h"

namespace dtdevolve::similarity {

/// Knobs of the similarity measure.
struct SimilarityOptions {
  EvalWeights weights;
  MatchOptions match;
  /// Optional tag-similarity oracle (§6 extension). Null ⇒ tag equality.
  const Thesaurus* thesaurus = nullptr;
  /// Share of a matched child's unit mass earned by the tag match itself;
  /// the rest is distributed by the child's own (recursive) triple. This
  /// makes deviations deep in the tree discount similarity less than the
  /// same deviation near the root — the level-sensitivity of [2].
  double tag_weight = 0.5;
};

/// Per-element outcome of evaluating a document subtree against the DTD,
/// each element matched against the declaration of its own tag.
struct ElementReport {
  const xml::Element* element = nullptr;
  bool declared = false;
  Triple local_triple;
  double local_similarity = 0.0;
  Triple global_triple;
  double global_similarity = 0.0;
};

/// Call-scoped memo of the recursive global evaluation: an insert-only
/// open-addressing flat hash table keyed by (element address, interned
/// declaration label id). Replaces the former ordered map, whose string
/// keys were copied on every probe.
class TripleMemo {
 public:
  TripleMemo() { slots_.resize(kInitialCapacity); }

  const Triple* Find(const xml::Element* element, int32_t label) const {
    size_t mask = slots_.size() - 1;
    for (size_t i = HashKey(element, label) & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.element == nullptr) return nullptr;
      if (slot.element == element && slot.label == label) return &slot.value;
    }
  }

  void Insert(const xml::Element* element, int32_t label,
              const Triple& value) {
    if ((size_ + 1) * 3 > slots_.size() * 2) Grow();
    InsertNoGrow(element, label, value);
    ++size_;
  }

  void clear() {
    for (Slot& slot : slots_) slot.element = nullptr;
    size_ = 0;
  }

  size_t size() const { return size_; }

 private:
  struct Slot {
    const xml::Element* element = nullptr;
    int32_t label = 0;
    Triple value;
  };

  static constexpr size_t kInitialCapacity = 64;  // power of two

  static size_t HashKey(const xml::Element* element, int32_t label) {
    // Element addresses are ≥ 8-byte aligned; drop the dead bits and mix
    // with the label by a 64-bit odd multiplier.
    uint64_t h = (reinterpret_cast<uintptr_t>(element) >> 3) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(label)) << 32);
    h *= 0x9E3779B97F4A7C15ull;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }

  void InsertNoGrow(const xml::Element* element, int32_t label,
                    const Triple& value) {
    size_t mask = slots_.size() - 1;
    for (size_t i = HashKey(element, label) & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.element == nullptr) {
        slot.element = element;
        slot.label = label;
        slot.value = value;
        return;
      }
      if (slot.element == element && slot.label == label) {
        slot.value = value;
        return;
      }
    }
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& slot : old) {
      if (slot.element != nullptr) {
        InsertNoGrow(slot.element, slot.label, slot.value);
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

/// Child nodes aligned 1:1 with the content-symbol ids of `element`
/// (nullptr entries stand for text runs). `symbol_ids` must come from
/// `validate::ContentSymbolIds(element)`; a mismatched sequence (more
/// element symbols than child elements, or leftovers) is tolerated
/// defensively — surplus symbols map to nullptr, surplus children are
/// ignored — instead of indexing out of bounds.
std::vector<const xml::Element*> AlignSymbolElements(
    const xml::Element& element, const std::vector<int32_t>& symbol_ids);

/// The structural-similarity measure of the companion paper [2], extended
/// with the *local similarity* variant this paper introduces (§3.1):
///
///  * **local** similarity of element e_d vs declaration e evaluates only
///    how the direct children of e_d meet the constraints of e's content
///    model — declarations of subelements are ignored;
///  * **global** similarity recursively evaluates matched children against
///    their own declarations, so it is the numeric counterpart of validity
///    (a valid subtree has global similarity 1).
///
/// Both visit document and DTD trees simultaneously, associate a
/// `(plus, minus, common)` triple with each node, and evaluate it with E.
/// A matched child contributes one unit of mass to its parent's triple,
/// distributed according to the child's own (normalized) triple — so
/// deviations deep in the tree discount global similarity proportionally.
///
/// Hot-path layout: tags and declaration labels are interned
/// (`util::GlobalSymbols()`), so all comparisons and memo probes are over
/// `int32` ids; an optional shared `SubtreeScoreCache` carries triples
/// across documents keyed by structural fingerprint and this evaluator's
/// `epoch()` (drawn fresh at construction, which is what invalidates the
/// cache when a DTD evolves and its evaluator is rebuilt).
///
/// Thread-safety: after construction the evaluator is immutable except
/// for the cross-call memo of the single-element API. `DocumentSimilarity`
/// and `EvaluateElements` use a call-local memo and may therefore be
/// called concurrently from any number of threads on one shared evaluator
/// (this is what batch classification relies on); the shared cache is
/// internally synchronized. The single-element `GlobalTriple` /
/// `GlobalSimilarity` entry points share the member memo across calls and
/// are NOT thread-safe; confine them (and `ClearMemo`) to one thread at a
/// time. `set_shared_cache` is a mutating entry point: install the cache
/// before concurrent scoring starts.
class SimilarityEvaluator {
 public:
  explicit SimilarityEvaluator(const dtd::Dtd& dtd,
                               SimilarityOptions options = {});

  SimilarityEvaluator(const SimilarityEvaluator&) = delete;
  SimilarityEvaluator& operator=(const SimilarityEvaluator&) = delete;

  /// Similarity of a whole document to the DTD: the root element evaluated
  /// globally against the DTD root declaration, scaled by root-tag
  /// similarity. In [0, 1]; 1 iff the document is valid. Thread-safe.
  double DocumentSimilarity(const xml::Document& doc) const;

  /// Fast-path variant: `fingerprints` is the index built over the
  /// document's root subtree, enabling the shared subtree cache (when one
  /// is attached) without recomputing fingerprints per DTD. Passing
  /// nullptr computes them on demand when a cache is attached. The result
  /// is bit-identical to the plain overload.
  double DocumentSimilarity(const xml::Document& doc,
                            const SubtreeFingerprints* fingerprints) const;

  /// Tag similarity of `root`'s tag against this DTD's root declaration
  /// name — the factor that scales (and gates) `DocumentSimilarity`.
  double RootTagScore(const xml::Element& root) const;

  /// Conservative upper bound on `DocumentSimilarity(doc)`, computed from
  /// the root tag and the document's root content-symbol ids
  /// (`validate::ContentSymbolIds(doc.root())`) alone — no recursion, no
  /// alignment. Guaranteed `bound ≥ exact` for non-negative weights:
  /// every root child symbol owns exactly one unit of the root triple's
  /// document-side mass, and a symbol absent from the root content
  /// model's label vocabulary can only be plus mass, so with `u` such
  /// symbols out of `n` the evaluation cannot exceed
  /// `w_c(n−u) / (w_c(n−u) + w_p·u)`; the whole product is additionally
  /// capped by the root tag score (E ≤ 1). Falls back to the tag score
  /// when the vocabulary argument does not apply (ANY/undeclared root,
  /// thesaurus in play, or u = 0). The classifier sorts DTDs by this
  /// bound and skips evaluations that cannot beat the best score so far.
  double ScoreUpperBound(const xml::Document& doc,
                         const std::vector<int32_t>& root_symbol_ids) const;

  /// Global triple / similarity of one element against declaration
  /// `decl_name`. An undeclared name behaves like ANY. Results are
  /// memoized across calls (see `ClearMemo`); not thread-safe.
  Triple GlobalTriple(const xml::Element& element,
                      const std::string& decl_name) const;
  double GlobalSimilarity(const xml::Element& element,
                          const std::string& decl_name) const;

  /// Local triple / similarity (direct children only).
  Triple LocalTriple(const xml::Element& element,
                     const std::string& decl_name) const;
  double LocalSimilarity(const xml::Element& element,
                         const std::string& decl_name) const;

  /// The full alignment of an element's children against `decl_name`'s
  /// content model with *local* credits — recording and analysis use the
  /// assignment details.
  MatchResult AlignLocal(const xml::Element& element,
                         const std::string& decl_name) const;

  /// Pre-order per-element reports for a whole subtree, each element
  /// matched against the declaration of its own tag. Thread-safe.
  std::vector<ElementReport> EvaluateElements(const xml::Element& root) const;

  const dtd::Dtd& dtd() const { return *dtd_; }
  const SimilarityOptions& options() const { return options_; }

  /// Attaches (or detaches, with nullptr) a shared cross-document subtree
  /// score cache. Not owned; must outlive the evaluator. Entries are
  /// keyed by this evaluator's `epoch()`, so caches may be shared freely
  /// across evaluators and DTD generations.
  void set_shared_cache(SubtreeScoreCache* cache) { cache_ = cache; }
  SubtreeScoreCache* shared_cache() const { return cache_; }

  /// Unique id of this evaluator instance (drawn from a process-global
  /// monotonic counter at construction); the shared-cache key component
  /// that makes rebuild-after-evolution an implicit invalidation.
  uint64_t epoch() const { return epoch_; }

  /// Drops the cross-call memo of the single-element API. The memo is
  /// keyed by element addresses, so it must not outlive the documents it
  /// was built from; callers holding the evaluator across documents while
  /// using the single-element `GlobalTriple` API should clear it between
  /// documents. (`DocumentSimilarity` and `EvaluateElements` use their own
  /// call-local memo and neither read nor touch this one.)
  void ClearMemo() const { memo_.clear(); }

 private:
  /// Everything one recursive evaluation threads through: the call-local
  /// memo plus the optional shared-cache machinery.
  struct EvalContext {
    TripleMemo* memo = nullptr;
    const SubtreeFingerprints* fingerprints = nullptr;
    SubtreeScoreCache* cache = nullptr;
  };

  /// Tag similarity per options (1/0 equality unless a thesaurus is set).
  double TagScore(const std::string& a, const std::string& b) const;
  /// Id fast path: equal non-negative ids short-circuit to 1 without
  /// touching strings. A negative id is the interning-overflow sentinel
  /// shared by every overflow tag, so either side being negative falls
  /// back to `TagScore` on the strings.
  double TagScoreId(int32_t a_id, const std::string& a, int32_t b_id,
                    const std::string& b) const;

  const dtd::Automaton* FindAutomaton(int32_t label_id) const;
  const dtd::Automaton* FindAutomaton(const std::string& name) const;

  Triple GlobalTripleCached(const xml::Element& element, int32_t label_id,
                            EvalContext& ctx) const;

  const dtd::Dtd* dtd_;
  SimilarityOptions options_;
  std::unordered_map<int32_t, dtd::Automaton> automata_;
  /// Root-declaration signature, precomputed for `RootTagScore` and
  /// `ScoreUpperBound`.
  int32_t root_name_id_ = -1;
  const dtd::Automaton* root_automaton_ = nullptr;
  bool root_any_ = true;
  std::vector<int32_t> root_label_ids_;  // sorted, distinct
  uint64_t epoch_ = 0;
  SubtreeScoreCache* cache_ = nullptr;
  /// Cross-call memo backing the single-element `GlobalTriple` API only.
  mutable TripleMemo memo_;
};

}  // namespace dtdevolve::similarity

#endif  // DTDEVOLVE_SIMILARITY_SIMILARITY_H_
