#ifndef DTDEVOLVE_SIMILARITY_SIMILARITY_H_
#define DTDEVOLVE_SIMILARITY_SIMILARITY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dtd/dtd.h"
#include "dtd/glushkov.h"
#include "similarity/matcher.h"
#include "similarity/thesaurus.h"
#include "similarity/triple.h"
#include "xml/document.h"

namespace dtdevolve::similarity {

/// Knobs of the similarity measure.
struct SimilarityOptions {
  EvalWeights weights;
  MatchOptions match;
  /// Optional tag-similarity oracle (§6 extension). Null ⇒ tag equality.
  const Thesaurus* thesaurus = nullptr;
  /// Share of a matched child's unit mass earned by the tag match itself;
  /// the rest is distributed by the child's own (recursive) triple. This
  /// makes deviations deep in the tree discount similarity less than the
  /// same deviation near the root — the level-sensitivity of [2].
  double tag_weight = 0.5;
};

/// Per-element outcome of evaluating a document subtree against the DTD,
/// each element matched against the declaration of its own tag.
struct ElementReport {
  const xml::Element* element = nullptr;
  bool declared = false;
  Triple local_triple;
  double local_similarity = 0.0;
  Triple global_triple;
  double global_similarity = 0.0;
};

/// The structural-similarity measure of the companion paper [2], extended
/// with the *local similarity* variant this paper introduces (§3.1):
///
///  * **local** similarity of element e_d vs declaration e evaluates only
///    how the direct children of e_d meet the constraints of e's content
///    model — declarations of subelements are ignored;
///  * **global** similarity recursively evaluates matched children against
///    their own declarations, so it is the numeric counterpart of validity
///    (a valid subtree has global similarity 1).
///
/// Both visit document and DTD trees simultaneously, associate a
/// `(plus, minus, common)` triple with each node, and evaluate it with E.
/// A matched child contributes one unit of mass to its parent's triple,
/// distributed according to the child's own (normalized) triple — so
/// deviations deep in the tree discount global similarity proportionally.
///
/// Thread-safety: after construction the evaluator is immutable except
/// for the cross-call memo of the single-element API. `DocumentSimilarity`
/// and `EvaluateElements` use a call-local memo and may therefore be
/// called concurrently from any number of threads on one shared evaluator
/// (this is what batch classification relies on). The single-element
/// `GlobalTriple` / `GlobalSimilarity` entry points share the member memo
/// across calls and are NOT thread-safe; confine them (and `ClearMemo`)
/// to one thread at a time.
class SimilarityEvaluator {
 public:
  explicit SimilarityEvaluator(const dtd::Dtd& dtd,
                               SimilarityOptions options = {});

  SimilarityEvaluator(const SimilarityEvaluator&) = delete;
  SimilarityEvaluator& operator=(const SimilarityEvaluator&) = delete;

  /// Similarity of a whole document to the DTD: the root element evaluated
  /// globally against the DTD root declaration, scaled by root-tag
  /// similarity. In [0, 1]; 1 iff the document is valid. Thread-safe.
  double DocumentSimilarity(const xml::Document& doc) const;

  /// Global triple / similarity of one element against declaration
  /// `decl_name`. An undeclared name behaves like ANY. Results are
  /// memoized across calls (see `ClearMemo`); not thread-safe.
  Triple GlobalTriple(const xml::Element& element,
                      const std::string& decl_name) const;
  double GlobalSimilarity(const xml::Element& element,
                          const std::string& decl_name) const;

  /// Local triple / similarity (direct children only).
  Triple LocalTriple(const xml::Element& element,
                     const std::string& decl_name) const;
  double LocalSimilarity(const xml::Element& element,
                         const std::string& decl_name) const;

  /// The full alignment of an element's children against `decl_name`'s
  /// content model with *local* credits — recording and analysis use the
  /// assignment details.
  MatchResult AlignLocal(const xml::Element& element,
                         const std::string& decl_name) const;

  /// Pre-order per-element reports for a whole subtree, each element
  /// matched against the declaration of its own tag. Thread-safe.
  std::vector<ElementReport> EvaluateElements(const xml::Element& root) const;

  const dtd::Dtd& dtd() const { return *dtd_; }
  const SimilarityOptions& options() const { return options_; }

  /// Drops the cross-call memo of the single-element API. The memo is
  /// keyed by element addresses, so it must not outlive the documents it
  /// was built from; callers holding the evaluator across documents while
  /// using the single-element `GlobalTriple` API should clear it between
  /// documents. (`DocumentSimilarity` and `EvaluateElements` use their own
  /// call-local memo and neither read nor touch this one.)
  void ClearMemo() const { memo_.clear(); }

 private:
  /// Memo of the recursive global evaluation, keyed by (element, decl).
  using Memo = std::map<std::pair<const xml::Element*, std::string>, Triple>;

  /// Tag similarity per options (1/0 equality unless a thesaurus is set).
  double TagScore(const std::string& a, const std::string& b) const;
  const dtd::Automaton* FindAutomaton(const std::string& name) const;

  /// Child nodes aligned 1:1 with the content symbols of `element`
  /// (nullptr entries stand for text runs).
  static std::vector<const xml::Element*> SymbolElements(
      const xml::Element& element, const std::vector<std::string>& symbols);

  Triple GlobalTripleCached(const xml::Element& element,
                            const std::string& decl_name, Memo& memo) const;

  const dtd::Dtd* dtd_;
  SimilarityOptions options_;
  std::map<std::string, dtd::Automaton> automata_;
  /// Cross-call memo backing the single-element `GlobalTriple` API only.
  mutable Memo memo_;
};

}  // namespace dtdevolve::similarity

#endif  // DTDEVOLVE_SIMILARITY_SIMILARITY_H_
