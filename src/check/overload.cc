#include "check/overload.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "core/source.h"
#include "dtd/dtd_writer.h"
#include "evolve/persist.h"
#include "io/fault.h"
#include "server/server.h"
#include "store/checkpoint.h"
#include "store/wal.h"
#include "xml/writer.h"

namespace dtdevolve::check {

namespace {

constexpr const char* kMailDtd =
    "<!ELEMENT mail (subject, body)>\n"
    "<!ELEMENT subject (#PCDATA)>\n"
    "<!ELEMENT body (#PCDATA)>\n";

/// A conforming document; content varies by (seed, index) so repository
/// and state fingerprints distinguish documents.
std::string MailDoc(uint64_t seed, uint64_t index) {
  return "<mail><subject>s" + std::to_string(seed) + "-" +
         std::to_string(index) + "</subject><body>overload scenario " +
         std::to_string(index) + "</body></mail>";
}

/// A well-formed document no registered DTD comes close to: it lands in
/// the repository, which is what the repository-quota scenarios need.
std::string JunkDoc(uint64_t seed, uint64_t index) {
  return "<junk><kind>k" + std::to_string(seed % 7) + "</kind><payload>p" +
         std::to_string(index) + "</payload></junk>";
}

// --- Minimal blocking HTTP/1.1 client ---------------------------------------

/// Transport failures (connect refused, reply timeout, torn framing)
/// surface as `status == -1` — in this oracle that itself is a finding
/// (the loop stalled or the server vanished), never a retry.
struct HttpReply {
  int status = -1;
  std::map<std::string, std::string> headers;  // names lower-cased
  std::string body;
};

class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    struct timeval tv;
    tv.tv_sec = 5;  // the loop-stall deadline: no reply in 5s is a stall
    tv.tv_usec = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  HttpReply Post(const std::string& target, const std::string& body) {
    std::string raw = "POST " + target +
                      " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body;
    if (!SendAll(raw)) return {};
    return ReadReply();
  }

  HttpReply Get(const std::string& target) {
    if (!SendAll("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n")) return {};
    return ReadReply();
  }

  /// Reads a reply without having sent a request — the connection-cap
  /// rejection arrives unsolicited on a just-accepted socket.
  HttpReply ReadReply() {
    HttpReply reply;
    size_t header_end = std::string::npos;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Recv()) return reply;
    }
    const std::string head = buffer_.substr(0, header_end + 2);
    if (head.size() < 12 || head.compare(0, 5, "HTTP/") != 0) return reply;
    reply.status = std::atoi(head.c_str() + 9);
    size_t line = head.find("\r\n") + 2;
    while (line < head.size()) {
      const size_t eol = head.find("\r\n", line);
      if (eol == std::string::npos || eol == line) break;
      const size_t colon = head.find(':', line);
      if (colon != std::string::npos && colon < eol) {
        std::string name = head.substr(line, colon - line);
        for (char& c : name) c = static_cast<char>(std::tolower(c));
        size_t value = colon + 1;
        while (value < eol && head[value] == ' ') ++value;
        reply.headers[name] = head.substr(value, eol - value);
      }
      line = eol + 2;
    }
    size_t content_length = 0;
    const auto it = reply.headers.find("content-length");
    if (it != reply.headers.end()) {
      content_length = static_cast<size_t>(std::atoll(it->second.c_str()));
    }
    const size_t total = header_end + 4 + content_length;
    while (buffer_.size() < total) {
      if (!Recv()) {
        reply.status = -1;
        return reply;
      }
    }
    reply.body = buffer_.substr(header_end + 4, content_length);
    buffer_.erase(0, total);  // keep-alive: surplus bytes stay buffered
    return reply;
  }

  /// True when the peer half-closes within the receive timeout — how the
  /// connection-cap test proves the 503 socket was actually dropped.
  bool PeerClosed() {
    char c;
    for (;;) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n == 0) return true;
      if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK &&
                        errno != EINTR;
    }
  }

 private:
  bool SendAll(const std::string& raw) {
    if (fd_ < 0) return false;
    size_t sent = 0;
    while (sent < raw.size()) {
      const ssize_t n =
          ::send(fd_, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool Recv() {
    if (fd_ < 0) return false;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF, timeout, or reset
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

// --- Fingerprints ------------------------------------------------------------

/// Mirrors the durability fingerprint of the crash oracle: the loop
/// counters, the repository bytes, and per DTD the declarations plus the
/// extended recording state.
using Fp = std::vector<std::pair<std::string, std::string>>;

Fp SourceFp(const core::XmlSource& src) {
  Fp fp;
  fp.emplace_back("counters",
                  std::to_string(src.documents_processed()) + " " +
                      std::to_string(src.documents_classified()) + " " +
                      std::to_string(src.evolutions_performed()));
  xml::WriteOptions compact;
  compact.indent = false;
  std::string repo;
  for (int id : src.repository().Ids()) {
    repo += std::to_string(id) + " " +
            xml::WriteDocument(src.repository().Get(id), compact) + "\n";
  }
  fp.emplace_back("repository", std::move(repo));
  for (const std::string& name : src.DtdNames()) {
    fp.emplace_back("dtd:" + name, dtd::WriteDtd(*src.FindDtd(name)));
    fp.emplace_back("state:" + name,
                    evolve::SerializeExtendedDtd(*src.FindExtended(name)));
  }
  return fp;
}

std::string FpDiff(const Fp& expected, const Fp& actual) {
  if (expected.size() != actual.size()) {
    return "fingerprint has " + std::to_string(actual.size()) +
           " sections, expected " + std::to_string(expected.size());
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != actual[i]) {
      return "section '" + expected[i].first + "' differs\n  expected: " +
             expected[i].second.substr(0, 400) + "\n  actual:   " +
             actual[i].second.substr(0, 400);
    }
  }
  return "fingerprints equal";
}

// --- Scenario plumbing -------------------------------------------------------

struct Ctx {
  uint64_t seed = 0;
  std::string dir;  // scratch WAL directory
  core::SourceOptions source_options;
  ScenarioResult* result = nullptr;
  OverloadOracleReport* tally = nullptr;

  void Violate(const std::string& invariant, uint64_t index,
               const std::string& detail) {
    Violation v;
    v.invariant = invariant;
    v.document_index = index;
    v.detail = detail;
    result->violations.push_back(std::move(v));
  }

  void CountRequest(const HttpReply& reply) {
    if (tally == nullptr) return;
    ++tally->requests;
    if (reply.status == 413 || reply.status == 429 || reply.status == 503) {
      ++tally->rejections;
    }
  }
};

std::string OverloadTempDir(uint64_t seed) {
  static std::atomic<uint64_t> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("dtdevolve-overload-" + std::to_string(::getpid()) + "-" +
           std::to_string(seed) + "-" +
           std::to_string(counter.fetch_add(1))))
      .string();
}

server::ServerOptions BaseServerOptions(const Ctx& ctx) {
  server::ServerOptions options;
  options.port = 0;
  options.jobs = 2;
  options.queue_capacity = 512;
  options.wal_dir = ctx.dir;
  // Durability bits are exercised by the crash oracle; here fsync only
  // slows the abuse down.
  options.fsync_policy = store::FsyncPolicy::kNone;
  options.checkpoint_interval = std::chrono::milliseconds(0);
  options.health_probe_interval = std::chrono::milliseconds(25);
  return options;
}

/// Replays exactly the acked bodies, in ack order, through a fresh
/// pipeline and compares — the exactly-once check.
void CheckExactlyOnce(Ctx& ctx, const core::XmlSource& live,
                      const std::vector<std::string>& acked,
                      const char* label) {
  core::XmlSource replay(ctx.source_options);
  (void)replay.AddDtdText("mail", kMailDtd);
  for (const std::string& body : acked) (void)replay.ProcessText(body);
  const std::string diff = FpDiff(SourceFp(replay), SourceFp(live));
  if (diff != "fingerprints equal") {
    ctx.Violate("overload-exactly-once", acked.size(),
                std::string(label) + ": live state diverges from the " +
                    "sequential replay of the acked documents — " + diff);
  }
}

void RequireRetryAfter(Ctx& ctx, const HttpReply& reply, uint64_t index) {
  if (reply.headers.find("retry-after") == reply.headers.end()) {
    ctx.Violate("overload-status-codes", index,
                std::to_string(reply.status) +
                    " rejection without a Retry-After header");
  }
}

uint64_t DocBudget(const OverloadOracleOptions& options, uint64_t kind_default) {
  if (options.max_documents == 0) return kind_default;
  return std::min<uint64_t>(options.max_documents, kind_default);
}

// --- Kind 0: rate-limit flood beside a victim --------------------------------

void RunRateLimitFlood(Ctx& ctx, const OverloadOracleOptions& options) {
  server::ServerOptions so = BaseServerOptions(ctx);
  so.tenants = {"victim", "flood"};
  server::TenantQuota quota;
  quota.rate = 40.0;
  quota.burst = 4.0;
  so.tenant_quotas["flood"] = quota;

  server::IngestServer server(ctx.source_options, so);
  (void)server.AddDtdText("mail", kMailDtd);
  Status started = server.Start();
  if (!started.ok()) {
    ctx.Violate("overload-boot", 0, started.message());
    return;
  }

  Client victim(server.port());
  Client flood(server.port());
  const uint64_t victim_docs = DocBudget(options, 10);
  const uint64_t flood_docs = DocBudget(options, 30);
  std::vector<std::string> victim_acked;
  uint64_t flood_acked = 0;
  uint64_t flood_429 = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < std::max(victim_docs, flood_docs); ++i) {
    if (i < victim_docs) {
      const std::string body = MailDoc(ctx.seed, i);
      const HttpReply reply = victim.Post("/ingest/victim", body);
      ctx.CountRequest(reply);
      ++ctx.result->documents;
      if (reply.status == 202) {
        victim_acked.push_back(body);
      } else {
        ctx.Violate("overload-isolation", i,
                    "victim ingest answered " + std::to_string(reply.status) +
                        " while a neighbor tenant was flooding");
      }
    }
    if (i < flood_docs) {
      const HttpReply reply =
          flood.Post("/ingest/flood", MailDoc(ctx.seed + 9001, i));
      ctx.CountRequest(reply);
      ++ctx.result->documents;
      if (reply.status == 202) {
        ++flood_acked;
      } else if (reply.status == 429) {
        ++flood_429;
        RequireRetryAfter(ctx, reply, i);
      } else if (reply.status == 503) {
        RequireRetryAfter(ctx, reply, i);
      } else {
        ctx.Violate("overload-status-codes", i,
                    "flood ingest answered undocumented status " +
                        std::to_string(reply.status));
      }
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Token-bucket bound: burst + rate · elapsed, with slack for the
  // fractional token the refill may have accrued mid-request.
  const double admitted_bound = quota.burst + quota.rate * elapsed + 2.0;
  if (static_cast<double>(flood_acked) > admitted_bound) {
    ctx.Violate("overload-quota-accounting", flood_docs,
                "token bucket admitted " + std::to_string(flood_acked) +
                    " documents, bound was " + std::to_string(admitted_bound));
  }
  if (flood_acked < std::min<uint64_t>(flood_docs,
                                       static_cast<uint64_t>(quota.burst))) {
    ctx.Violate("overload-quota-accounting", flood_docs,
                "token bucket started below its burst capacity (" +
                    std::to_string(flood_acked) + " admitted)");
  }

  const HttpReply health = victim.Get("/healthz");
  ctx.CountRequest(health);
  if (health.status != 200) {
    ctx.Violate("overload-loop-stall", flood_docs,
                "/healthz answered " + std::to_string(health.status) +
                    " during the flood");
  }

  server.Shutdown();
  server.Wait();

  const uint64_t limited =
      server.metrics()
          .GetCounter("dtdevolve_ingest_rate_limited_total",
                      "Ingest requests rejected with 429 (token bucket empty)",
                      {{"tenant", "flood"}})
          .Value();
  if (limited != flood_429) {
    ctx.Violate("overload-quota-accounting", flood_docs,
                "rate-limited counter reads " + std::to_string(limited) +
                    ", clients observed " + std::to_string(flood_429) +
                    " 429s");
  }

  CheckExactlyOnce(ctx, server.source("victim"), victim_acked, "rate flood");
}

// --- Kind 1: oversized bodies ------------------------------------------------

void RunOversizedBodies(Ctx& ctx, const OverloadOracleOptions& options) {
  server::ServerOptions so = BaseServerOptions(ctx);
  so.tenants = {"victim", "flood"};
  server::TenantQuota quota;
  quota.max_doc_bytes = 160;
  so.tenant_quotas["flood"] = quota;

  server::IngestServer server(ctx.source_options, so);
  (void)server.AddDtdText("mail", kMailDtd);
  Status started = server.Start();
  if (!started.ok()) {
    ctx.Violate("overload-boot", 0, started.message());
    return;
  }

  Client victim(server.port());
  Client flood(server.port());
  const uint64_t rounds = DocBudget(options, 12);
  std::vector<std::string> victim_acked;
  uint64_t flood_413 = 0;
  const std::string padding(300, 'x');
  for (uint64_t i = 0; i < rounds; ++i) {
    // Victim documents are themselves larger than the flood tenant's
    // quota — the quota must be the flood tenant's alone.
    const std::string body = "<mail><subject>s" + std::to_string(i) +
                             "</subject><body>" + padding + "</body></mail>";
    const HttpReply victim_reply = victim.Post("/ingest/victim", body);
    ctx.CountRequest(victim_reply);
    ++ctx.result->documents;
    if (victim_reply.status == 202) {
      victim_acked.push_back(body);
    } else {
      ctx.Violate("overload-isolation", i,
                  "victim ingest answered " +
                      std::to_string(victim_reply.status) +
                      " though only the neighbor tenant has a size quota");
    }

    const bool oversize = i % 2 == 0;
    const HttpReply flood_reply = flood.Post(
        "/ingest/flood",
        oversize ? body : MailDoc(ctx.seed + 17, i));
    ctx.CountRequest(flood_reply);
    ++ctx.result->documents;
    if (oversize) {
      if (flood_reply.status == 413) {
        ++flood_413;
      } else {
        ctx.Violate("overload-status-codes", i,
                    "oversized body answered " +
                        std::to_string(flood_reply.status) + ", expected 413");
      }
    } else if (flood_reply.status != 202) {
      ctx.Violate("overload-status-codes", i,
                  "in-quota flood body answered " +
                      std::to_string(flood_reply.status));
    }
  }

  server.Shutdown();
  server.Wait();

  const uint64_t too_large =
      server.metrics()
          .GetCounter(
              "dtdevolve_ingest_doc_too_large_total",
              "Ingest requests rejected with 413 (body over the "
              "document-size quota)",
              {{"tenant", "flood"}})
          .Value();
  if (too_large != flood_413) {
    ctx.Violate("overload-quota-accounting", rounds,
                "doc-too-large counter reads " + std::to_string(too_large) +
                    ", clients observed " + std::to_string(flood_413) +
                    " 413s");
  }

  CheckExactlyOnce(ctx, server.source("victim"), victim_acked,
                   "oversized bodies");
}

// --- Kind 2: connection cap + churn ------------------------------------------

void RunConnectionCap(Ctx& ctx, const OverloadOracleOptions& options) {
  server::ServerOptions so = BaseServerOptions(ctx);
  so.max_connections = 4;

  server::IngestServer server(ctx.source_options, so);
  (void)server.AddDtdText("mail", kMailDtd);
  Status started = server.Start();
  if (!started.ok()) {
    ctx.Violate("overload-boot", 0, started.message());
    return;
  }

  // Occupy every slot (a request proves each connection joined the
  // loop), then every further accept must bounce.
  std::vector<std::unique_ptr<Client>> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(std::make_unique<Client>(server.port()));
    const HttpReply reply = held.back()->Get("/healthz");
    ctx.CountRequest(reply);
    if (reply.status != 200) {
      ctx.Violate("overload-connection-cap", static_cast<uint64_t>(i),
                  "under-cap connection answered " +
                      std::to_string(reply.status));
    }
  }
  const uint64_t rejected_rounds = DocBudget(options, 6);
  for (uint64_t i = 0; i < rejected_rounds; ++i) {
    Client extra(server.port());
    // The 503 arrives unsolicited — the socket never joins the loop.
    const HttpReply reply = extra.ReadReply();
    ctx.CountRequest(reply);
    if (reply.status != 503) {
      ctx.Violate("overload-connection-cap", i,
                  "over-cap accept answered " + std::to_string(reply.status) +
                      ", expected an immediate 503");
      continue;
    }
    RequireRetryAfter(ctx, reply, i);
    if (!extra.PeerClosed()) {
      ctx.Violate("overload-connection-cap", i,
                  "over-cap socket was not closed after the 503");
    }
  }

  // Readiness reflects saturation while every slot is taken.
  const HttpReply saturated = held[0]->Get("/healthz?ready=1");
  ctx.CountRequest(saturated);
  if (saturated.status != 503 ||
      saturated.body.find("\"saturated\":true") == std::string::npos) {
    ctx.Violate("overload-readiness", 0,
                "readiness at the connection cap answered " +
                    std::to_string(saturated.status));
  }

  // Free two slots; accepting must resume (allow the loop a few turns to
  // observe the closes).
  held.resize(2);
  HttpReply resumed;
  for (int attempt = 0; attempt < 50; ++attempt) {
    Client fresh(server.port());
    resumed = fresh.Get("/healthz");
    ctx.CountRequest(resumed);
    if (resumed.status == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (resumed.status != 200) {
    ctx.Violate("overload-connection-cap", rejected_rounds,
                "accepts did not resume after connections closed (last "
                "status " +
                    std::to_string(resumed.status) + ")");
  }

  // Churn: rapid connect/request/close cycles must neither leak slots
  // nor stall the loop.
  for (int i = 0; i < 10; ++i) {
    Client churn(server.port());
    const HttpReply reply = churn.Get("/healthz");
    ctx.CountRequest(reply);
    if (reply.status != 200) {
      ctx.Violate("overload-loop-stall", static_cast<uint64_t>(i),
                  "churn connection answered " + std::to_string(reply.status));
      break;
    }
  }

  server.Shutdown();
  server.Wait();

  const uint64_t rejected =
      server.metrics()
          .GetCounter("dtdevolve_http_connections_rejected_total",
                      "Accepts answered 503-and-close at the connection cap")
          .Value();
  if (rejected < rejected_rounds) {
    ctx.Violate("overload-quota-accounting", rejected_rounds,
                "connection-rejection counter reads " +
                    std::to_string(rejected) + ", at least " +
                    std::to_string(rejected_rounds) + " were bounced");
  }
}

// --- Kind 3: WAL faults mid-flood --------------------------------------------

void RunWalFaultFlood(Ctx& ctx, const OverloadOracleOptions& options) {
  server::ServerOptions so = BaseServerOptions(ctx);
  so.checkpoint_on_shutdown = false;  // leave the WAL as the only truth

  server::IngestServer server(ctx.source_options, so);
  (void)server.AddDtdText("mail", kMailDtd);
  Status started = server.Start();
  if (!started.ok()) {
    ctx.Violate("overload-boot", 0, started.message());
    return;
  }

  Client client(server.port());
  std::vector<std::string> acked;
  const uint64_t healthy_docs = DocBudget(options, 5);
  for (uint64_t i = 0; i < healthy_docs; ++i) {
    const std::string body = MailDoc(ctx.seed, i);
    const HttpReply reply = client.Post("/ingest", body);
    ctx.CountRequest(reply);
    ++ctx.result->documents;
    if (reply.status == 202) {
      acked.push_back(body);
    } else {
      ctx.Violate("overload-status-codes", i,
                  "healthy ingest answered " + std::to_string(reply.status));
    }
  }

  {
    // Kill the disk mid-flood: the first WAL write fails and every
    // later faultable op fails too, until the scope ends.
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.op_mask = static_cast<uint32_t>(io::FaultOp::kWrite);
    plan.crash = true;
    io::ScopedFaultPlan fault(plan);

    for (uint64_t i = 0; i < 6; ++i) {
      const HttpReply reply =
          client.Post("/ingest", MailDoc(ctx.seed + 31, i));
      ctx.CountRequest(reply);
      ++ctx.result->documents;
      if (reply.status == 202) {
        ctx.Violate("overload-status-codes", i,
                    "ingest was acked while the WAL could not be written");
      } else if (reply.status != 503) {
        ctx.Violate("overload-status-codes", i,
                    "faulted ingest answered " + std::to_string(reply.status) +
                        ", expected 503");
      } else {
        RequireRetryAfter(ctx, reply, i);
      }
    }

    const HttpReply not_ready = client.Get("/healthz?ready=1");
    ctx.CountRequest(not_ready);
    if (not_ready.status != 503 ||
        not_ready.body.find("\"ready\":false") == std::string::npos) {
      ctx.Violate("overload-readiness", healthy_docs,
                  "readiness with a failing WAL answered " +
                      std::to_string(not_ready.status));
    }
    const HttpReply live = client.Get("/healthz");
    ctx.CountRequest(live);
    if (live.status != 200) {
      ctx.Violate("overload-loop-stall", healthy_docs,
                  "liveness answered " + std::to_string(live.status) +
                      " while the WAL was failing");
    }
  }

  // Fault cleared: the recovery probe must reopen the shard.
  HttpReply ready;
  for (int attempt = 0; attempt < 200; ++attempt) {
    ready = client.Get("/healthz?ready=1");
    ctx.CountRequest(ready);
    if (ready.status == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (ready.status != 200) {
    ctx.Violate("overload-readiness", healthy_docs,
                "server never returned to ready after the WAL fault "
                "cleared (last status " +
                    std::to_string(ready.status) + ")");
  } else if (ctx.tally != nullptr) {
    ++ctx.tally->recoveries;
  }

  const uint64_t recovered_docs = DocBudget(options, 5);
  for (uint64_t i = 0; i < recovered_docs; ++i) {
    const std::string body = MailDoc(ctx.seed + 63, i);
    const HttpReply reply = client.Post("/ingest", body);
    ctx.CountRequest(reply);
    ++ctx.result->documents;
    if (reply.status == 202) {
      acked.push_back(body);
    } else {
      ctx.Violate("overload-status-codes", i,
                  "post-recovery ingest answered " +
                      std::to_string(reply.status));
    }
  }

  server.Shutdown();
  server.Wait();

  CheckExactlyOnce(ctx, server.source(), acked, "WAL fault flood");

  // The WAL now contains document records interleaved with the probe's
  // empty eviction records; recovery must replay both to the live state.
  core::XmlSource recovered(ctx.source_options);
  (void)recovered.AddDtdText("mail", kMailDtd);
  store::WalOptions wal_options;
  wal_options.dir = ctx.dir;
  StatusOr<std::unique_ptr<store::Wal>> wal =
      store::RecoverSource(recovered, wal_options, nullptr);
  if (!wal.ok()) {
    ctx.Violate("overload-readiness", acked.size(),
                "recovery from the post-fault WAL failed: " +
                    wal.status().message());
    return;
  }
  const std::string diff = FpDiff(SourceFp(server.source()),
                                  SourceFp(recovered));
  if (diff != "fingerprints equal") {
    ctx.Violate("overload-exactly-once", acked.size(),
                "WAL recovery diverges from the live state — " + diff);
  }
}

// --- Kind 4: repository quota eviction + crash recovery ----------------------

void RunEvictionRecovery(Ctx& ctx, const OverloadOracleOptions& options) {
  server::ServerOptions so = BaseServerOptions(ctx);
  so.max_repository_docs = 5;
  so.repository_policy = ctx.seed % 2 == 0
                             ? server::RepositoryQuotaPolicy::kEvictOldest
                             : server::RepositoryQuotaPolicy::kRejectNew;
  so.checkpoint_on_shutdown = false;  // recovery must replay the log

  server::IngestServer server(ctx.source_options, so);
  (void)server.AddDtdText("mail", kMailDtd);
  Status started = server.Start();
  if (!started.ok()) {
    ctx.Violate("overload-boot", 0, started.message());
    return;
  }

  Client client(server.port());
  const uint64_t docs = DocBudget(options, 18);
  for (uint64_t i = 0; i < docs; ++i) {
    // Mostly unclassifiable documents (they fill the repository), with
    // classified ones interleaved so eviction records replay against a
    // stream that also moves DTD state.
    const std::string body =
        i % 4 == 3 ? MailDoc(ctx.seed, i) : JunkDoc(ctx.seed, i);
    const HttpReply reply = client.Post("/ingest", body);
    ctx.CountRequest(reply);
    ++ctx.result->documents;
    if (reply.status != 202) {
      ctx.Violate("overload-status-codes", i,
                  "ingest answered " + std::to_string(reply.status));
    }
    if (i == docs / 2) {
      // A mid-stream checkpoint: eviction records logged after it must
      // still replay (and re-applying ones it folded in must be no-ops).
      (void)server.CheckpointNow();
    }
  }

  server.Shutdown();
  server.Wait();

  const core::XmlSource& live = server.source();
  if (live.repository().size() > so.max_repository_docs) {
    ctx.Violate("overload-quota-accounting", docs,
                "repository holds " +
                    std::to_string(live.repository().size()) +
                    " documents, quota was " +
                    std::to_string(so.max_repository_docs));
  }
  const uint64_t evicted =
      server.metrics()
          .GetCounter("dtdevolve_repository_evictions_total",
                      "Repository documents evicted to enforce the "
                      "repository quota")
          .Value();
  if (evicted == 0) {
    ctx.Violate("overload-quota-accounting", docs,
                "the stream overfilled the repository but no eviction was "
                "recorded");
  }
  if (ctx.tally != nullptr) ctx.tally->evictions += evicted;

  // Recovery must land on the identical bounded state — twice, so a
  // crash mid-recovery (re-replaying eviction records) is also covered.
  const Fp live_fp = SourceFp(live);
  for (int round = 0; round < 2; ++round) {
    core::XmlSource recovered(ctx.source_options);
    (void)recovered.AddDtdText("mail", kMailDtd);
    store::WalOptions wal_options;
    wal_options.dir = ctx.dir;
    StatusOr<std::unique_ptr<store::Wal>> wal =
        store::RecoverSource(recovered, wal_options, nullptr);
    if (!wal.ok()) {
      ctx.Violate("overload-eviction-recovery", docs,
                  "recovery round " + std::to_string(round) +
                      " failed: " + wal.status().message());
      return;
    }
    const std::string diff = FpDiff(live_fp, SourceFp(recovered));
    if (diff != "fingerprints equal") {
      ctx.Violate("overload-eviction-recovery", docs,
                  "recovery round " + std::to_string(round) +
                      " diverges from the live bounded state — " + diff);
      return;
    }
  }
}

}  // namespace

ScenarioResult RunOverloadScenario(uint64_t scenario_seed,
                                   const OverloadOracleOptions& options,
                                   OverloadOracleReport* tally) {
  ScenarioResult result;
  result.seed = scenario_seed;

  Ctx ctx;
  ctx.seed = scenario_seed;
  ctx.dir = OverloadTempDir(scenario_seed);
  ctx.result = &result;
  ctx.tally = tally;
  // Fast classification defaults; every scenario uses the same options
  // for the server and for its replay reference.
  ctx.source_options.min_documents_before_check = 4;

  switch (scenario_seed % 5) {
    case 0:
      result.scenario = "rate-limit flood beside a victim tenant";
      RunRateLimitFlood(ctx, options);
      break;
    case 1:
      result.scenario = "oversized bodies against the size quota";
      RunOversizedBodies(ctx, options);
      break;
    case 2:
      result.scenario = "connection flood against the connection cap";
      RunConnectionCap(ctx, options);
      break;
    case 3:
      result.scenario = "WAL faults mid-flood, then recovery";
      RunWalFaultFlood(ctx, options);
      break;
    default:
      result.scenario = "repository quota eviction + crash recovery";
      RunEvictionRecovery(ctx, options);
      break;
  }

  std::error_code ec;
  std::filesystem::remove_all(ctx.dir, ec);
  return result;
}

OverloadOracleReport RunOverloadOracle(const OverloadOracleOptions& options) {
  OverloadOracleReport report;
  for (uint64_t i = 0; i < options.scenarios; ++i) {
    ScenarioResult result =
        RunOverloadScenario(options.seed + i, options, &report);
    ++report.scenarios_run;
    if (!result.ok()) {
      report.failures.push_back(std::move(result));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  return report;
}

std::string FormatOverloadReport(const OverloadOracleReport& report) {
  std::ostringstream out;
  out << "overload oracle: " << report.scenarios_run << " scenario"
      << (report.scenarios_run == 1 ? "" : "s") << ", " << report.requests
      << " requests, " << report.rejections << " rejections, "
      << report.recoveries << " recoveries, " << report.evictions
      << " evictions — "
      << (report.ok() ? "every overload invariant held"
                      : std::to_string(report.failures.size()) +
                            " failing scenario(s)")
      << "\n";
  for (const ScenarioResult& failure : report.failures) {
    out << FormatScenario(failure);
    out << "  replay: dtdevolve check --overload --seed " << failure.seed
        << " --scenarios 1\n";
  }
  return out.str();
}

}  // namespace dtdevolve::check
