#include "check/oracle.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/report.h"
#include "core/source.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "dtd/glushkov.h"
#include "store/induce_record.h"
#include "evolve/persist.h"
#include "evolve/windows.h"
#include "io/fault.h"
#include "mining/rules.h"
#include "similarity/score_cache.h"
#include "store/checkpoint.h"
#include "store/wal.h"
#include "validate/validator.h"
#include "xml/parser.h"
#include "xml/stream_reader.h"
#include "workload/mutator.h"
#include "workload/rng.h"
#include "workload/scenarios.h"
#include "xml/document.h"
#include "xml/writer.h"

namespace dtdevolve::check {

namespace {

/// Per-scenario violation cap: one genuine divergence tends to cascade
/// (every later accounting check also fails), so collecting everything
/// buries the root cause.
constexpr size_t kMaxViolationsPerScenario = 24;

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string Truncate(std::string_view s, size_t limit = 160) {
  if (s.size() <= limit) return std::string(s);
  return std::string(s.substr(0, limit)) + "…";
}

std::string EscapeNewlines(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// First line where two line-oriented strings disagree, for diagnostics.
std::string FirstDifference(const std::string& a, const std::string& b) {
  size_t line = 1, ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    size_t ea = a.find('\n', ia);
    if (ea == std::string::npos) ea = a.size();
    size_t eb = b.find('\n', ib);
    if (eb == std::string::npos) eb = b.size();
    std::string_view la(a.data() + ia, ea - ia);
    std::string_view lb(b.data() + ib, eb - ib);
    if (la != lb) {
      return "line " + std::to_string(line) + ": sequential \"" +
             Truncate(la) + "\" vs batch \"" + Truncate(lb) + "\"";
    }
    ia = ea + 1;
    ib = eb + 1;
    ++line;
  }
  return "identical lines but different lengths";
}

template <typename Fn>
void ForEachElement(const xml::Element& element, const std::string& tag,
                    Fn&& fn) {
  if (element.tag() == tag) fn(element);
  for (const xml::Element* child : element.ChildElements()) {
    ForEachElement(*child, tag, fn);
  }
}

std::string RenderLabelSet(const std::set<std::string>& labels) {
  std::string out = "{";
  for (const std::string& label : labels) {
    if (out.size() > 1) out += ", ";
    out += label;
  }
  return out + "}";
}

/// Does the automaton accept *some* word that uses every label of
/// `labels` at least once and nothing else (#PCDATA aside)? Recorded
/// sequences disregard order and repetition, so this commutative-closure
/// test is exactly what the rebuilt declaration promises a µ-frequent
/// structure. BFS over (reachable NFA state set, labels consumed so far).
bool AcceptsSomeWordOver(const dtd::Automaton& automaton,
                         const std::set<std::string>& labels) {
  if (automaton.is_any()) return true;
  std::vector<std::string> label_list(labels.begin(), labels.end());
  size_t n = label_list.size();
  if (n > 31) return true;  // out of scope for the bitmask; never in practice
  uint32_t full = static_cast<uint32_t>((1u << n) - 1);

  using SearchNode = std::pair<std::vector<int>, uint32_t>;
  auto accepting = [&](const SearchNode& node) {
    if (node.second != full) return false;
    for (int state : node.first) {
      if (automaton.IsAccepting(state)) return true;
    }
    return false;
  };

  std::set<SearchNode> seen;
  std::vector<SearchNode> frontier;
  SearchNode start{{0}, 0};
  if (accepting(start)) return true;
  seen.insert(start);
  frontier.push_back(std::move(start));
  const std::string pcdata(dtd::kPcdataSymbol);

  while (!frontier.empty()) {
    SearchNode node = std::move(frontier.back());
    frontier.pop_back();
    for (size_t li = 0; li <= n; ++li) {
      const std::string& label = li < n ? label_list[li] : pcdata;
      uint32_t mask =
          li < n ? (node.second | (1u << static_cast<uint32_t>(li)))
                 : node.second;
      std::set<int> next_states;
      for (int state : node.first) {
        for (int pos : automaton.SuccessorsOf(state)) {
          if (automaton.LabelOfPosition(pos) == label) {
            next_states.insert(pos + 1);
          }
        }
      }
      if (next_states.empty()) continue;
      SearchNode next{{next_states.begin(), next_states.end()}, mask};
      if (!seen.insert(next).second) continue;
      if (accepting(next)) return true;
      frontier.push_back(std::move(next));
    }
  }
  return false;
}

// --- Scenario synthesis -----------------------------------------------------

/// A fully materialized scenario: the initial DTD set, the exact document
/// stream, and the pipeline thresholds — everything a replica needs to
/// reproduce the run bit-for-bit.
struct Scenario {
  std::string label;
  core::SourceOptions options;
  std::vector<std::pair<std::string, dtd::Dtd>> dtds;
  std::vector<xml::Document> documents;
};

workload::ScenarioStream MakeStream(size_t kind, uint64_t seed,
                                    uint64_t docs_per_phase) {
  switch (kind) {
    case 0:
      return workload::MakeBibliographyScenario(seed, docs_per_phase);
    case 1:
      return workload::MakeCatalogScenario(seed, docs_per_phase);
    case 2:
      return workload::MakeNewsScenario(seed, docs_per_phase);
    default:
      return workload::MakeForumScenario(seed, docs_per_phase);
  }
}

/// Derives a whole scenario from one seed. Generation never depends on
/// `max_documents` (the cap only truncates the finished stream), so every
/// prefix run sees exactly the documents of the full run — the property
/// `MinimizeFailure` relies on.
Scenario MakeScenario(uint64_t seed, uint64_t max_documents) {
  // Decorrelate from callers that hand out consecutive seeds.
  workload::Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  Scenario scenario;

  uint64_t docs_per_phase = 12 + rng.Uniform(24);
  size_t num_streams = rng.Chance(0.4) ? 2 : 1;
  size_t first = rng.Uniform(4);
  size_t second = (first + 1 + rng.Uniform(3)) % 4;

  std::vector<workload::ScenarioStream> streams;
  streams.push_back(MakeStream(first, rng.Next(), docs_per_phase));
  if (num_streams == 2) {
    streams.push_back(MakeStream(second, rng.Next(), docs_per_phase));
  }

  scenario.options.sigma = 0.25 + 0.2 * rng.NextDouble();
  scenario.options.tau = 0.08 + 0.15 * rng.NextDouble();
  scenario.options.min_documents_before_check = 4 + rng.Uniform(8);
  // The oracle keeps its own document copies; the source need not.
  scenario.options.keep_documents = false;
  scenario.options.evolution.psi = 0.05 + 0.25 * rng.NextDouble();
  scenario.options.evolution.min_support = 0.02 + 0.13 * rng.NextDouble();

  for (const workload::ScenarioStream& stream : streams) {
    if (!scenario.label.empty()) scenario.label += "+";
    scenario.label += stream.name();
    scenario.dtds.emplace_back(stream.name(), stream.InitialDtd());
  }

  bool mutate = rng.Chance(0.5);
  std::unique_ptr<workload::Mutator> mutator;
  if (mutate) {
    workload::MutationOptions mo;
    mo.drop_probability = 0.02 + 0.04 * rng.NextDouble();
    mo.insert_probability = 0.02 + 0.04 * rng.NextDouble();
    mo.duplicate_probability = 0.02 + 0.04 * rng.NextDouble();
    mo.swap_probability = 0.02 + 0.04 * rng.NextDouble();
    mutator = std::make_unique<workload::Mutator>(mo, rng.Next());
    scenario.label += " mutated";
  }

  std::vector<size_t> alive;
  while (true) {
    alive.clear();
    for (size_t s = 0; s < streams.size(); ++s) {
      if (!streams[s].Done()) alive.push_back(s);
    }
    if (alive.empty()) break;
    size_t pick = alive[rng.Uniform(static_cast<uint32_t>(alive.size()))];
    xml::Document doc = streams[pick].Next();
    if (mutator) mutator->Mutate(doc);
    scenario.documents.push_back(std::move(doc));
  }
  if (max_documents != 0 && scenario.documents.size() > max_documents) {
    scenario.documents.resize(max_documents);
  }
  return scenario;
}

/// Derives an induction scenario from one seed: one drift family's
/// initial DTD as the only seed, its stream interleaved with a
/// mixed-population stream whose root tags the seed set never matches —
/// the mixed documents drain into the repository and feed clustering.
/// Like `MakeScenario`, generation never depends on `max_documents`.
Scenario MakeInductionScenario(uint64_t seed, uint64_t max_documents) {
  workload::Rng rng(seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull);
  Scenario scenario;

  const size_t families = 2 + rng.Uniform(3);          // 2..4
  const uint64_t docs_per_family = 6 + rng.Uniform(8);  // 6..13
  const size_t seed_kind = rng.Uniform(4);

  std::vector<workload::ScenarioStream> streams;
  streams.push_back(MakeStream(seed_kind, rng.Next(), 6 + rng.Uniform(8)));
  streams.push_back(workload::MakeMixedPopulationScenario(
      rng.Next(), families, docs_per_family));

  // σ high enough that the mixed families stay unclassified, low enough
  // that the seed family's own documents keep classifying.
  scenario.options.sigma = 0.4 + 0.2 * rng.NextDouble();
  scenario.options.tau = 0.08 + 0.15 * rng.NextDouble();
  scenario.options.min_documents_before_check = 4 + rng.Uniform(8);
  scenario.options.auto_evolve = rng.Chance(0.5);
  scenario.options.keep_documents = false;
  scenario.options.induce.cluster.min_cluster_size = 2;

  scenario.label = "induction " + streams[0].name() + "+" +
                   streams[1].name();
  scenario.dtds.emplace_back(streams[0].name(), streams[0].InitialDtd());

  std::vector<size_t> alive;
  while (true) {
    alive.clear();
    for (size_t s = 0; s < streams.size(); ++s) {
      if (!streams[s].Done()) alive.push_back(s);
    }
    if (alive.empty()) break;
    size_t pick = alive[rng.Uniform(static_cast<uint32_t>(alive.size()))];
    scenario.documents.push_back(streams[pick].Next());
  }
  if (max_documents != 0 && scenario.documents.size() > max_documents) {
    scenario.documents.resize(max_documents);
  }
  return scenario;
}

/// Best pending candidate: highest coverage, ties to the lowest id.
/// The reference run, the batch replicas and the durable crash pipeline
/// all promote with this rule, so their op sequences stay in lockstep.
const induce::Candidate* BestCandidate(const core::XmlSource& src) {
  const induce::Candidate* best = nullptr;
  for (const induce::Candidate& candidate : src.candidates()) {
    if (best == nullptr || candidate.coverage > best->coverage ||
        (candidate.coverage == best->coverage && candidate.id < best->id)) {
      best = &candidate;
    }
  }
  return best;
}

/// Accept rounds are capped: a cluster whose members never re-classify
/// would otherwise re-induce under a fresh name forever.
constexpr size_t kMaxAcceptRounds = 6;

// --- Fingerprints (invariant 3) ---------------------------------------------

using Fingerprint = std::vector<std::pair<std::string, std::string>>;

/// Serializes every observable a batch run could diverge on: outcomes,
/// the event log, the loop counters, the repository ids, and per DTD the
/// declarations plus the full extended-DTD recording state. Byte equality
/// of fingerprints is the "identical at any jobs level" claim.
Fingerprint FingerprintOf(
    const core::XmlSource& src,
    const std::vector<core::XmlSource::ProcessOutcome>& outcomes) {
  Fingerprint fp;

  std::string o;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const core::XmlSource::ProcessOutcome& out = outcomes[i];
    o += std::to_string(i) + " " + (out.classified ? "C" : "U") + " " +
         out.dtd_name + " " + FormatDouble(out.similarity) + " " +
         (out.evolved ? "E" : "-") + " " + std::to_string(out.reclassified) +
         "\n";
  }
  fp.emplace_back("outcomes", std::move(o));

  std::string e;
  for (const core::SourceEvent& event : src.events()) {
    e += core::EventKindName(event.kind) + " " + event.dtd_name + " " +
         FormatDouble(event.similarity) + " " +
         std::to_string(event.document_index) + " " +
         EscapeNewlines(event.detail) + "\n";
  }
  fp.emplace_back("events", std::move(e));

  std::string c = std::to_string(src.documents_processed()) + " " +
                  std::to_string(src.documents_classified()) + " " +
                  std::to_string(src.evolutions_performed()) + " " +
                  std::to_string(src.repository().size()) + "\n";
  fp.emplace_back("counters", std::move(c));

  std::string r;
  for (int id : src.repository().Ids()) r += std::to_string(id) + "\n";
  fp.emplace_back("repository", std::move(r));

  for (const std::string& name : src.DtdNames()) {
    fp.emplace_back("dtd:" + name, dtd::WriteDtd(*src.FindDtd(name)));
    fp.emplace_back("state:" + name,
                    evolve::SerializeExtendedDtd(*src.FindExtended(name)));
  }
  return fp;
}

// --- The sequential reference run -------------------------------------------

/// Aggregates recomputed from raw documents with a fresh Validator —
/// the independent side of the trigger-accounting check.
struct IndependentTally {
  uint64_t docs = 0;
  uint64_t total_elements = 0;
  uint64_t invalid_elements = 0;
  double divergence_sum = 0.0;
};

/// Mirror of one DTD's recording state, maintained outside XmlSource.
/// `ext` replays every recorded document into an independent copy, so when
/// an evolution fires (and the primary immediately resets its stats) the
/// oracle still holds the pre-evolution statistics that *drove* the
/// evolution — that is what window prediction and the µ filter need.
struct Shadow {
  evolve::ExtendedDtd ext;
  std::unique_ptr<evolve::Recorder> recorder;
  std::unique_ptr<validate::Validator> validator;
  /// Clones of the documents recorded since the last evolution (DOC_cur).
  std::vector<xml::Document> current_docs;
  IndependentTally tally;

  explicit Shadow(dtd::Dtd dtd) : ext(std::move(dtd)) {
    recorder = std::make_unique<evolve::Recorder>(ext);
    validator = std::make_unique<validate::Validator>(ext.dtd());
  }
};

class ReferenceRun {
 public:
  ReferenceRun(const Scenario& scenario, const OracleOptions& options,
               ScenarioResult& result)
      : scenario_(&scenario), options_(&options), result_(&result),
        src_(scenario.options) {
    for (const auto& [name, dtd] : scenario.dtds) {
      Status st = src_.AddDtd(name, dtd.Clone());
      if (!st.ok()) {
        AddViolation("setup", name, 0, st.message());
        continue;
      }
      shadows_[name] = std::make_unique<Shadow>(dtd.Clone());
    }
  }

  void Feed(const xml::Document& doc, uint64_t index) {
    size_t events_before = src_.events().size();
    core::XmlSource::ProcessOutcome out = src_.Process(doc.Clone());
    outcomes_.push_back(out);

    if (out.classified) {
      // Recording happened before any evolution, so mirror first: the
      // triggering document is part of the pre-evolution statistics.
      MirrorClassified(out.dtd_name, doc);
    } else {
      repo_mirror_.emplace(next_repo_id_, doc.Clone());
    }
    if (!out.classified) ++next_repo_id_;

    if (out.evolved) {
      CheckEvolutionInvariants(out.dtd_name, index);
      if (options_->check_persistence) {
        // The pre-evolution shadow carries the richest recording state
        // (sequences, groups, plus structures) — the interesting input
        // for the round-trip.
        CheckPersistence(shadows_.at(out.dtd_name)->ext, out.dtd_name, index);
      }
      ResyncShadow(out.dtd_name);
      MirrorReclassified(out, events_before, index);
    }
    CheckAccounting(index);
  }

  void Finish() {
    if (options_->check_persistence) {
      for (const std::string& name : src_.DtdNames()) {
        CheckPersistence(*src_.FindExtended(name), name,
                         scenario_->documents.size());
      }
    }
  }

  const core::XmlSource& source() const { return src_; }
  const std::vector<core::XmlSource::ProcessOutcome>& outcomes() const {
    return outcomes_;
  }

 private:
  void AddViolation(std::string invariant, std::string dtd_name,
                    uint64_t index, std::string detail) {
    if (result_->violations.size() >= kMaxViolationsPerScenario) return;
    result_->violations.push_back({std::move(invariant), std::move(dtd_name),
                                   index, std::move(detail)});
  }

  void MirrorClassified(const std::string& name, const xml::Document& doc) {
    if (!doc.has_root()) return;
    Shadow& shadow = *shadows_.at(name);
    shadow.recorder->RecordDocument(doc);
    validate::ValidationResult vr = shadow.validator->ValidateSubtree(doc.root());
    shadow.tally.docs += 1;
    shadow.tally.total_elements += vr.total_elements;
    shadow.tally.invalid_elements += vr.invalid_elements;
    shadow.tally.divergence_sum += vr.InvalidFraction();
    shadow.current_docs.push_back(doc.Clone());
  }

  void ResyncShadow(const std::string& name) {
    shadows_[name] = std::make_unique<Shadow>(src_.FindDtd(name)->Clone());
  }

  /// After an evolution the source re-classifies the repository in
  /// ascending-id order; the ids that disappeared map 1:1, in order, onto
  /// the kReclassified events appended this step. Mirror those documents
  /// into their new DTD's shadow.
  void MirrorReclassified(const core::XmlSource::ProcessOutcome& out,
                          size_t events_before, uint64_t index) {
    std::set<int> still;
    for (int id : src_.repository().Ids()) still.insert(id);
    std::vector<int> removed;
    for (const auto& [id, doc] : repo_mirror_) {
      if (still.count(id) == 0) removed.push_back(id);
    }
    std::vector<const core::SourceEvent*> reclassified;
    for (size_t i = events_before; i < src_.events().size(); ++i) {
      if (src_.events()[i].kind == core::SourceEvent::Kind::kReclassified) {
        reclassified.push_back(&src_.events()[i]);
      }
    }
    if (reclassified.size() != removed.size() ||
        removed.size() != out.reclassified) {
      AddViolation("reclassify-accounting", out.dtd_name, index,
                   "outcome reports " + std::to_string(out.reclassified) +
                       " reclassified, " + std::to_string(reclassified.size()) +
                       " events logged, " + std::to_string(removed.size()) +
                       " documents left the repository");
      return;
    }
    for (size_t k = 0; k < removed.size(); ++k) {
      MirrorClassified(reclassified[k]->dtd_name, repo_mirror_.at(removed[k]));
      repo_mirror_.erase(removed[k]);
    }
  }

  /// Invariants 1 and 2: replay the recorded documents of DOC_cur against
  /// the old and the evolved declaration of every element that recorded
  /// instances, with the window the pre-evolution statistics predict.
  void CheckEvolutionInvariants(const std::string& name, uint64_t index) {
    Shadow& shadow = *shadows_.at(name);
    const dtd::Dtd& old_dtd = shadow.ext.dtd();
    const dtd::Dtd* new_dtd = src_.FindDtd(name);
    if (new_dtd == nullptr) {
      AddViolation("evolved-dtd-consistent", name, index,
                   "DTD disappeared after evolution");
      return;
    }
    Status st = new_dtd->Check();
    if (!st.ok()) {
      AddViolation("evolved-dtd-consistent", name, index, st.message());
    }
    double psi = src_.options().evolution.psi;
    double mu = src_.options().evolution.min_support;

    for (const std::string& el_name : old_dtd.ElementNames()) {
      const evolve::ElementStats* stats = shadow.ext.FindStats(el_name);
      if (stats == nullptr || stats->total_instances() == 0) continue;
      const dtd::ElementDecl* old_decl = old_dtd.FindElement(el_name);
      const dtd::ElementDecl* new_decl = new_dtd->FindElement(el_name);
      if (old_decl == nullptr || old_decl->content == nullptr) continue;
      if (new_decl == nullptr || new_decl->content == nullptr) {
        // Declarations only vanish through the (disabled) orphan cleanup.
        AddViolation("evolved-dtd-consistent", name, index,
                     "declaration of " + el_name + " vanished");
        continue;
      }
      evolve::Window window =
          evolve::ClassifyWindow(stats->InvalidityRatio(), psi);
      dtd::Automaton new_auto = dtd::Automaton::Build(*new_decl->content);

      if (window == evolve::Window::kNew) {
        // The new window rebuilds from the recorded sequences, which are
        // tag *sets* (order and repetition disregarded), filtered by µ.
        // The promise is therefore set-level: every µ-surviving structure
        // must be representable under the rebuilt declaration — mirror
        // the builder's own filtering exactly.
        mining::SequenceRuleOracle rule_oracle(stats->SequenceList(),
                                               stats->LabelUniverse(), mu);
        size_t reported = 0;
        for (const auto& [labels, count] : rule_oracle.frequent_sequences()) {
          if (reported >= 3) break;
          if (!AcceptsSomeWordOver(new_auto, labels)) {
            AddViolation("new-window-validity", name, index,
                         "rebuilt declaration of " + el_name +
                             " admits no instance with µ-frequent structure " +
                             RenderLabelSet(labels));
            ++reported;
          }
        }
        continue;
      }

      dtd::Automaton old_auto = dtd::Automaton::Build(*old_decl->content);
      size_t reported = 0;
      for (const xml::Document& doc : shadow.current_docs) {
        if (!doc.has_root() || reported >= 3) continue;
        ForEachElement(doc.root(), el_name, [&](const xml::Element& el) {
          if (reported >= 3) return;
          std::vector<std::string> symbols = validate::ContentSymbols(el);
          if (old_auto.Accepts(symbols) && !new_auto.Accepts(symbols)) {
            AddViolation(window == evolve::Window::kOld
                             ? "restriction-preserves-validity"
                             : "misc-preserves-validity",
                         name, index,
                         el_name + " instance valid under old declaration "
                                   "rejected by evolved one (window " +
                             evolve::WindowName(window) + ")");
            ++reported;
          }
        });
      }
    }
  }

  /// Invariant 4: serialize → deserialize → re-serialize is a byte-level
  /// fixed point, and the Save/Load file round-trip yields the same state.
  void CheckPersistence(const evolve::ExtendedDtd& ext, const std::string& name,
                        uint64_t index) {
    std::string first = evolve::SerializeExtendedDtd(ext);
    StatusOr<evolve::ExtendedDtd> reread =
        evolve::DeserializeExtendedDtd(first);
    if (!reread.ok()) {
      AddViolation("persist-fixed-point", name, index,
                   "deserialize failed: " + reread.status().message());
      return;
    }
    std::string second = evolve::SerializeExtendedDtd(*reread);
    if (first != second) {
      AddViolation("persist-fixed-point", name, index,
                   FirstDifference(first, second));
      return;
    }

    static std::atomic<uint64_t> temp_counter{0};
    std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("dtdevolve-oracle-" + std::to_string(::getpid()) + "-" +
         std::to_string(temp_counter.fetch_add(1)) + ".snapshot");
    Status saved = evolve::SaveExtendedDtdFile(ext, path.string());
    if (!saved.ok()) {
      AddViolation("persist-fixed-point", name, index,
                   "save failed: " + saved.message());
      return;
    }
    StatusOr<evolve::ExtendedDtd> loaded =
        evolve::LoadExtendedDtdFile(path.string());
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (!loaded.ok()) {
      AddViolation("persist-fixed-point", name, index,
                   "load failed: " + loaded.status().message());
      return;
    }
    std::string from_file = evolve::SerializeExtendedDtd(*loaded);
    if (from_file != first) {
      AddViolation("persist-fixed-point", name, index,
                   "file round-trip diverged: " +
                       FirstDifference(first, from_file));
    }
  }

  /// Invariant 5: the primary's trigger aggregates equal the independent
  /// recount. Runs after every document — the aggregates feed the τ check
  /// on the very next classification, so drift must be caught immediately.
  void CheckAccounting(uint64_t index) {
    for (const auto& [name, shadow] : shadows_) {
      const evolve::ExtendedDtd* ext = src_.FindExtended(name);
      if (ext == nullptr) {
        AddViolation("trigger-accounting", name, index, "extended DTD missing");
        continue;
      }
      const IndependentTally& tally = shadow->tally;
      bool counters_match = ext->documents_recorded() == tally.docs &&
                            ext->total_elements_recorded() ==
                                tally.total_elements &&
                            ext->invalid_elements_recorded() ==
                                tally.invalid_elements;
      double tolerance = 1e-9 * (1.0 + static_cast<double>(tally.docs));
      bool divergence_match =
          std::fabs(ext->divergence_sum() - tally.divergence_sum) <= tolerance;
      if (counters_match && divergence_match) continue;
      std::ostringstream detail;
      detail << "recorded docs/elements/invalid/divergence "
             << ext->documents_recorded() << "/"
             << ext->total_elements_recorded() << "/"
             << ext->invalid_elements_recorded() << "/"
             << FormatDouble(ext->divergence_sum()) << " vs independent "
             << tally.docs << "/" << tally.total_elements << "/"
             << tally.invalid_elements << "/"
             << FormatDouble(tally.divergence_sum);
      AddViolation("trigger-accounting", name, index, detail.str());
    }
  }

  const Scenario* scenario_;
  const OracleOptions* options_;
  ScenarioResult* result_;
  core::XmlSource src_;
  std::map<std::string, std::unique_ptr<Shadow>> shadows_;
  std::map<int, xml::Document> repo_mirror_;
  int next_repo_id_ = 0;
  std::vector<core::XmlSource::ProcessOutcome> outcomes_;
};

// --- Batch replicas (invariant 3) -------------------------------------------

Fingerprint RunBatchReplica(const Scenario& scenario, size_t jobs) {
  core::XmlSource src(scenario.options);
  for (const auto& [name, dtd] : scenario.dtds) {
    (void)src.AddDtd(name, dtd.Clone());
  }
  std::vector<xml::Document> docs;
  docs.reserve(scenario.documents.size());
  for (const xml::Document& doc : scenario.documents) {
    docs.push_back(doc.Clone());
  }
  std::vector<core::XmlSource::ProcessOutcome> outcomes =
      src.ProcessBatch(std::move(docs), jobs);
  return FingerprintOf(src, outcomes);
}

void CompareFingerprints(const Fingerprint& reference,
                         const Fingerprint& batch, size_t jobs,
                         ScenarioResult& result) {
  if (result.violations.size() >= kMaxViolationsPerScenario) return;
  if (reference.size() != batch.size()) {
    result.violations.push_back(
        {"batch-divergence", "", 0,
         "jobs=" + std::to_string(jobs) + ": fingerprint has " +
             std::to_string(batch.size()) + " sections, expected " +
             std::to_string(reference.size())});
    return;
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    if (reference[i].first != batch[i].first ||
        reference[i].second != batch[i].second) {
      result.violations.push_back(
          {"batch-divergence", "", 0,
           "jobs=" + std::to_string(jobs) + ": section " +
               reference[i].first + " differs — " +
               FirstDifference(reference[i].second, batch[i].second)});
      return;  // first divergent section is the diagnostic; rest cascades
    }
  }
}

}  // namespace

ScenarioResult RunScenario(uint64_t scenario_seed,
                           const OracleOptions& options) {
  Scenario scenario = MakeScenario(scenario_seed, options.max_documents);
  ScenarioResult result;
  result.seed = scenario_seed;
  result.scenario = scenario.label;
  result.documents = scenario.documents.size();

  ReferenceRun reference(scenario, options, result);
  for (size_t i = 0; i < scenario.documents.size(); ++i) {
    reference.Feed(scenario.documents[i], i);
  }
  reference.Finish();
  result.evolutions = reference.source().evolutions_performed();

  Fingerprint reference_fp =
      FingerprintOf(reference.source(), reference.outcomes());
  for (size_t jobs : options.jobs) {
    CompareFingerprints(reference_fp, RunBatchReplica(scenario, jobs), jobs,
                        result);
  }
  return result;
}

OracleReport RunOracle(const OracleOptions& options) {
  OracleReport report;
  for (uint64_t i = 0; i < options.scenarios; ++i) {
    ScenarioResult result = RunScenario(options.seed + i, options);
    ++report.scenarios_run;
    report.documents += result.documents;
    report.evolutions += result.evolutions;
    if (!result.ok()) {
      report.failures.push_back(std::move(result));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  return report;
}

ScenarioResult MinimizeFailure(uint64_t scenario_seed,
                               const OracleOptions& options) {
  ScenarioResult full = RunScenario(scenario_seed, options);
  if (full.ok() || full.documents <= 1) return full;

  OracleOptions shrunk = options;
  uint64_t lo = 1, hi = full.documents;
  ScenarioResult best = std::move(full);
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    shrunk.max_documents = mid;
    ScenarioResult attempt = RunScenario(scenario_seed, shrunk);
    if (!attempt.ok()) {
      hi = mid;
      best = std::move(attempt);
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

std::string FormatScenario(const ScenarioResult& result) {
  std::ostringstream out;
  out << "scenario seed=" << result.seed << " (" << result.scenario << "): "
      << result.documents << " documents, " << result.evolutions
      << " evolutions";
  if (result.ok()) {
    out << " — OK\n";
    return out.str();
  }
  out << " — " << result.violations.size() << " violation"
      << (result.violations.size() == 1 ? "" : "s") << "\n";
  for (const Violation& v : result.violations) {
    out << "  [" << v.invariant << "] doc " << v.document_index;
    if (!v.dtd_name.empty()) out << " dtd=" << v.dtd_name;
    out << ": " << v.detail << "\n";
  }
  return out.str();
}

// --- Crash-recovery oracle --------------------------------------------------

namespace {

/// Pipeline state restricted to what the durability layer promises to
/// preserve across a crash: the loop counters, the repository (ids and
/// document bytes), and per DTD the declarations plus the extended
/// recording state. The event log and kept instances are process-local
/// by design and excluded.
Fingerprint CrashFingerprintOf(const core::XmlSource& src) {
  Fingerprint fp;
  std::string c = std::to_string(src.documents_processed()) + " " +
                  std::to_string(src.documents_classified()) + " " +
                  std::to_string(src.evolutions_performed()) + "\n";
  fp.emplace_back("counters", std::move(c));

  xml::WriteOptions compact;
  compact.indent = false;
  std::string r;
  for (int id : src.repository().Ids()) {
    r += std::to_string(id) + " " +
         xml::WriteDocument(src.repository().Get(id), compact) + "\n";
  }
  fp.emplace_back("repository", std::move(r));

  for (const std::string& name : src.DtdNames()) {
    fp.emplace_back("dtd:" + name, dtd::WriteDtd(*src.FindDtd(name)));
    fp.emplace_back("state:" + name,
                    evolve::SerializeExtendedDtd(*src.FindExtended(name)));
  }
  return fp;
}

std::string FingerprintDiff(const Fingerprint& expected,
                            const Fingerprint& actual) {
  if (expected.size() != actual.size()) {
    return "fingerprint has " + std::to_string(actual.size()) +
           " sections, expected " + std::to_string(expected.size());
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].first != actual[i].first) {
      return "section " + std::to_string(i) + " is " + actual[i].first +
             ", expected " + expected[i].first;
    }
    if (expected[i].second != actual[i].second) {
      return "section " + expected[i].first + " differs — " +
             FirstDifference(expected[i].second, actual[i].second);
    }
  }
  return "fingerprints equal";
}

struct DurableRun {
  size_t acked = 0;        // appends that returned OK and were applied
  bool completed = false;  // reached the end without a fault firing
};

/// One durable-pipeline execution over `texts` in `dir`: WAL append
/// before every apply, a checkpoint (plus WAL truncation) every
/// `checkpoint_every` acked documents. Stops at the first failed append
/// — from the crash point on the simulated process is dead to the disk,
/// so continuing would be fiction. Mirrors the ingest server's ordering
/// exactly; the server itself cannot be swept this densely because a
/// real crash point would have to kill real threads. With `induction`
/// the run ends with the candidate lifecycle — induce, then WAL-append
/// an induce-accept record before each apply, the server's accept
/// ordering — so the sweep's crash points land on that record type too.
DurableRun RunDurablePipeline(const Scenario& scenario,
                              const std::vector<std::string>& texts,
                              const std::string& dir,
                              uint64_t checkpoint_every, bool induction) {
  DurableRun run;
  core::XmlSource src(scenario.options);
  for (const auto& [name, dtd] : scenario.dtds) {
    (void)src.AddDtd(name, dtd.Clone());
  }
  store::WalOptions wal_options;
  wal_options.dir = dir;
  StatusOr<std::unique_ptr<store::Wal>> wal =
      store::RecoverSource(src, wal_options, nullptr);
  if (!wal.ok()) return run;  // the crash hit a boot-time I/O op
  uint64_t since_checkpoint = 0;
  auto maybe_checkpoint = [&](uint64_t lsn) {
    if (checkpoint_every == 0 || ++since_checkpoint < checkpoint_every) return;
    since_checkpoint = 0;
    store::CheckpointData data = store::CaptureCheckpoint(src, lsn);
    if (store::WriteCheckpoint(dir, data).ok()) {
      (void)(*wal)->TruncateThrough(lsn);
    }
  };
  for (const std::string& text : texts) {
    StatusOr<uint64_t> lsn = (*wal)->Append(text);
    if (!lsn.ok()) return run;
    (void)src.ProcessText(text);
    ++run.acked;
    maybe_checkpoint(*lsn);
  }
  if (induction) {
    src.InduceCandidates();
    for (size_t round = 0; round < kMaxAcceptRounds; ++round) {
      const induce::Candidate* best = BestCandidate(src);
      if (best == nullptr) break;
      const std::string record =
          store::EncodeInduceAcceptRecord(best->name, best->ext);
      StatusOr<uint64_t> lsn = (*wal)->Append(record);
      if (!lsn.ok()) return run;
      StatusOr<core::XmlSource::AcceptOutcome> outcome =
          src.AcceptCandidate(best->id, 1);
      if (!outcome.ok()) return run;
      ++run.acked;
      maybe_checkpoint(*lsn);
      if (outcome->reclassified == 0) break;
      src.InduceCandidates();
    }
  }
  run.completed = true;
  return run;
}

/// Boots a fresh pipeline from whatever the crashed run left in `dir`
/// and fingerprints the recovered state.
StatusOr<Fingerprint> RecoverFingerprint(const Scenario& scenario,
                                         const std::string& dir) {
  core::XmlSource src(scenario.options);
  for (const auto& [name, dtd] : scenario.dtds) {
    (void)src.AddDtd(name, dtd.Clone());
  }
  store::WalOptions wal_options;
  wal_options.dir = dir;
  store::RecoveryReport report;
  StatusOr<std::unique_ptr<store::Wal>> wal =
      store::RecoverSource(src, wal_options, &report);
  if (!wal.ok()) return wal.status();
  return CrashFingerprintOf(src);
}

std::string CrashTempDir(uint64_t seed, uint64_t point) {
  static std::atomic<uint64_t> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("dtdevolve-crash-" + std::to_string(::getpid()) + "-" +
           std::to_string(seed) + "-" + std::to_string(point) + "-" +
           std::to_string(counter.fetch_add(1))))
      .string();
}

}  // namespace

ScenarioResult RunCrashScenario(uint64_t scenario_seed,
                                const CrashOracleOptions& options,
                                uint64_t* crash_points) {
  Scenario scenario =
      options.induction
          ? MakeInductionScenario(scenario_seed, options.max_documents)
          : MakeScenario(scenario_seed, options.max_documents);
  ScenarioResult result;
  result.seed = scenario_seed;
  result.scenario = scenario.label;
  result.documents = scenario.documents.size();

  auto add_violation = [&result](uint64_t op, std::string detail,
                                 const char* invariant = "crash-recovery") {
    if (result.violations.size() >= kMaxViolationsPerScenario) return;
    result.violations.push_back(
        {invariant, "", op, std::move(detail)});
  };

  // The WAL carries document *text*; serialize the stream once so the
  // durable runs, the reference replays and the recoveries all see the
  // same bytes.
  std::vector<std::string> texts;
  texts.reserve(scenario.documents.size());
  xml::WriteOptions compact;
  compact.indent = false;
  for (const xml::Document& doc : scenario.documents) {
    texts.push_back(xml::WriteDocument(doc, compact));
  }

  // prefix_fps[j] = the pipeline state after sequentially applying the
  // first j operations (documents, then — under `induction` — the
  // accepted candidates) — what recovery from any crash point must match.
  std::vector<Fingerprint> prefix_fps;
  prefix_fps.reserve(texts.size() + 1);
  {
    core::XmlSource reference(scenario.options);
    for (const auto& [name, dtd] : scenario.dtds) {
      (void)reference.AddDtd(name, dtd.Clone());
    }
    prefix_fps.push_back(CrashFingerprintOf(reference));
    for (const std::string& text : texts) {
      (void)reference.ProcessText(text);
      prefix_fps.push_back(CrashFingerprintOf(reference));
    }
    if (options.induction) {
      // Mirror the durable pipeline's accept loop exactly; recovery
      // replays each record through AdoptInducedDtd and must land on
      // the same state as these live accepts.
      reference.InduceCandidates();
      for (size_t round = 0; round < kMaxAcceptRounds; ++round) {
        const induce::Candidate* best = BestCandidate(reference);
        if (best == nullptr) break;
        StatusOr<core::XmlSource::AcceptOutcome> outcome =
            reference.AcceptCandidate(best->id, 1);
        if (!outcome.ok()) break;
        prefix_fps.push_back(CrashFingerprintOf(reference));
        if (outcome->reclassified == 0) break;
        reference.InduceCandidates();
      }
    }
    result.evolutions = reference.evolutions_performed();
  }
  const uint64_t total_applies = prefix_fps.size() - 1;

  io::FaultInjector& injector = io::FaultInjector::Instance();

  // Clean pass: count the run's faultable I/O ops (a fail_at of 0 never
  // fires) and sanity-check that the durable pipeline lands on the same
  // state as the plain sequential replay.
  uint64_t total_ops = 0;
  {
    const std::string dir = CrashTempDir(scenario_seed, 0);
    std::filesystem::remove_all(dir);
    injector.Arm(io::FaultPlan{});
    DurableRun clean = RunDurablePipeline(scenario, texts, dir,
                                          options.checkpoint_every,
                                          options.induction);
    total_ops = injector.ops_seen();
    injector.Disarm();
    if (!clean.completed) {
      add_violation(0, "clean durable run did not complete");
    } else {
      StatusOr<Fingerprint> recovered = RecoverFingerprint(scenario, dir);
      if (!recovered.ok()) {
        add_violation(0, "clean-run recovery failed: " +
                             recovered.status().message());
      } else if (*recovered != prefix_fps.back()) {
        add_violation(0, "clean durable run diverged from sequential "
                         "replay: " +
                             FingerprintDiff(prefix_fps.back(), *recovered));
      }
    }
    std::filesystem::remove_all(dir);
    if (!result.violations.empty()) return result;
  }

  const uint64_t wanted = options.max_crash_points == 0
                              ? total_ops
                              : std::min(options.max_crash_points, total_ops);
  const uint64_t stride =
      wanted == 0 ? 1 : std::max<uint64_t>(1, total_ops / wanted);
  for (uint64_t op = 1;
       op <= total_ops &&
       result.violations.size() < kMaxViolationsPerScenario;
       op += stride) {
    if (crash_points != nullptr) ++*crash_points;
    const std::string dir = CrashTempDir(scenario_seed, op);
    std::filesystem::remove_all(dir);

    io::FaultPlan plan;
    plan.fail_at = op;
    plan.crash = true;
    // Vary the failure flavor deterministically: ENOSPC vs EIO, and a
    // torn prefix of 0, 1/3, 2/3 or all of the failing write's bytes
    // (a fully persisted write whose ack never returned is the
    // in-flight case the allowance below exists for).
    plan.error_code = (op % 2 == 0) ? ENOSPC : EIO;
    plan.torn_fraction = static_cast<double>(op % 4) / 3.0;
    injector.Arm(plan);
    DurableRun run = RunDurablePipeline(scenario, texts, dir,
                                        options.checkpoint_every,
                                        options.induction);
    injector.Disarm();

    StatusOr<Fingerprint> recovered = RecoverFingerprint(scenario, dir);
    if (!recovered.ok()) {
      add_violation(op, "recovery after crash at op " + std::to_string(op) +
                            " (acked " + std::to_string(run.acked) +
                            "): " + recovered.status().message());
      std::filesystem::remove_all(dir);
      continue;
    }
    // At-least-once ack: the recovered state is the acked prefix, or —
    // when the crash fell between a record's last byte and its fsync
    // returning — the acked prefix plus that single durable-but-unacked
    // document.
    const bool exact = *recovered == prefix_fps[run.acked];
    const bool in_flight = run.acked < total_applies &&
                           *recovered == prefix_fps[run.acked + 1];
    if (!exact && !in_flight) {
      add_violation(op, "crash at op " + std::to_string(op) + " (acked " +
                            std::to_string(run.acked) +
                            " documents): recovered state matches neither "
                            "the acked prefix nor acked+1 — " +
                            FingerprintDiff(prefix_fps[run.acked],
                                            *recovered));
    } else {
      StatusOr<Fingerprint> again = RecoverFingerprint(scenario, dir);
      if (!again.ok()) {
        add_violation(op, "second recovery failed: " +
                              again.status().message(),
                      "recovery-idempotence");
      } else if (*again != *recovered) {
        add_violation(op, "second recovery diverged from the first: " +
                              FingerprintDiff(*recovered, *again),
                      "recovery-idempotence");
      }
    }
    std::filesystem::remove_all(dir);
  }
  return result;
}

CrashOracleReport RunCrashOracle(const CrashOracleOptions& options) {
  CrashOracleReport report;
  for (uint64_t i = 0; i < options.scenarios; ++i) {
    ScenarioResult result =
        RunCrashScenario(options.seed + i, options, &report.crash_points);
    ++report.scenarios_run;
    report.documents += result.documents;
    if (!result.ok()) {
      report.failures.push_back(std::move(result));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  return report;
}

std::string FormatCrashReport(const CrashOracleReport& report) {
  std::ostringstream out;
  out << "crash oracle: " << report.scenarios_run << " scenario"
      << (report.scenarios_run == 1 ? "" : "s") << ", " << report.documents
      << " documents, " << report.crash_points << " crash points — "
      << (report.ok() ? "every recovery matched the acked prefix"
                      : std::to_string(report.failures.size()) +
                            " failing scenario(s)")
      << "\n";
  for (const ScenarioResult& failure : report.failures) {
    out << FormatScenario(failure);
    out << "  replay: dtdevolve check --crash-recovery --seed "
        << failure.seed << " --scenarios 1\n";
  }
  return out.str();
}

// --- Induction oracle -------------------------------------------------------

namespace {

/// Everything the candidate lifecycle could diverge on across jobs
/// levels, appended to the regular pipeline fingerprint: the pending
/// candidates and the lifecycle counters.
void AppendInductionFingerprint(const core::XmlSource& src, Fingerprint* fp) {
  std::string c;
  for (const induce::Candidate& candidate : src.candidates()) {
    c += std::to_string(candidate.id) + " " + candidate.name + " m" +
         std::to_string(candidate.members.size()) + " v" +
         std::to_string(candidate.validated.size()) + " " +
         FormatDouble(candidate.coverage) + " " +
         FormatDouble(candidate.margin) + "\n";
  }
  fp->emplace_back("candidates", std::move(c));
  fp->emplace_back("candidate-counters",
                   std::to_string(src.candidates_proposed()) + " " +
                       std::to_string(src.candidates_accepted()) + " " +
                       std::to_string(src.candidates_rejected()) + "\n");
}

void AddInductionViolation(ScenarioResult& result, std::string invariant,
                           std::string dtd_name, uint64_t index,
                           std::string detail) {
  if (result.violations.size() >= kMaxViolationsPerScenario) return;
  result.violations.push_back({std::move(invariant), std::move(dtd_name),
                               index, std::move(detail)});
}

/// Invariants of one *pending* candidate: the DTD round-trips, and the
/// validated set / coverage match an independent recount of the members
/// still sitting in the repository.
void CheckCandidateInvariants(const core::XmlSource& src,
                              const induce::Candidate& candidate,
                              uint64_t round, ScenarioResult& result) {
  const dtd::Dtd& dtd = candidate.ext.dtd();
  Status checked = dtd.Check();
  if (!checked.ok()) {
    AddInductionViolation(result, "induced-dtd-roundtrip", candidate.name,
                          round, "candidate DTD fails Check: " +
                                     checked.message());
  } else {
    const std::string text = dtd::WriteDtd(dtd);
    StatusOr<dtd::Dtd> reparsed = dtd::ParseDtd(text, dtd.root_name());
    if (!reparsed.ok()) {
      AddInductionViolation(result, "induced-dtd-roundtrip", candidate.name,
                            round, "candidate DTD fails to re-parse: " +
                                       reparsed.status().message());
    } else if (Status recheck = reparsed->Check(); !recheck.ok()) {
      AddInductionViolation(result, "induced-dtd-roundtrip", candidate.name,
                            round, "re-parsed candidate fails Check: " +
                                       recheck.message());
    } else if (dtd::WriteDtd(*reparsed) != text) {
      AddInductionViolation(result, "induced-dtd-roundtrip", candidate.name,
                            round,
                            "WriteDtd → ParseDtd → WriteDtd is not a fixed "
                            "point");
    }
  }

  validate::Validator validator(dtd);
  std::set<int> recount;
  for (int id : candidate.members) {
    const xml::Document& doc = src.repository().Get(id);
    if (doc.has_root() && validator.Validate(doc).valid) recount.insert(id);
  }
  std::set<int> claimed(candidate.validated.begin(),
                        candidate.validated.end());
  if (claimed != recount) {
    AddInductionViolation(
        result, "candidate-coverage-accounting", candidate.name, round,
        "claims " + std::to_string(claimed.size()) +
            " validated member(s), independent recount finds " +
            std::to_string(recount.size()));
    return;
  }
  const double expected =
      candidate.members.empty()
          ? 0.0
          : static_cast<double>(candidate.validated.size()) /
                static_cast<double>(candidate.members.size());
  if (std::fabs(candidate.coverage - expected) > 1e-12) {
    AddInductionViolation(result, "candidate-coverage-accounting",
                          candidate.name, round,
                          "coverage " + FormatDouble(candidate.coverage) +
                              " != validated/members " +
                              FormatDouble(expected));
  }
  if (candidate.coverage + 1e-12 < src.options().induce.min_coverage) {
    AddInductionViolation(result, "candidate-coverage-accounting",
                          candidate.name, round,
                          "coverage " + FormatDouble(candidate.coverage) +
                              " below the configured floor " +
                              FormatDouble(src.options().induce.min_coverage));
  }
}

}  // namespace

ScenarioResult RunInductionScenario(uint64_t scenario_seed,
                                    const InductionOracleOptions& options,
                                    uint64_t* candidates, uint64_t* accepts) {
  Scenario scenario =
      MakeInductionScenario(scenario_seed, options.max_documents);
  ScenarioResult result;
  result.seed = scenario_seed;
  result.scenario = scenario.label;
  result.documents = scenario.documents.size();

  core::XmlSource reference(scenario.options);
  for (const auto& [name, dtd] : scenario.dtds) {
    Status st = reference.AddDtd(name, dtd.Clone());
    if (!st.ok()) {
      AddInductionViolation(result, "setup", name, 0, st.message());
    }
  }
  std::vector<core::XmlSource::ProcessOutcome> outcomes;
  outcomes.reserve(scenario.documents.size());
  for (const xml::Document& doc : scenario.documents) {
    outcomes.push_back(reference.Process(doc.Clone()));
  }
  result.evolutions = reference.evolutions_performed();

  // The induce/accept op sequence the reference decides ("" = induce,
  // otherwise accept-by-name); the batch replicas replay it verbatim.
  std::vector<std::string> ops;
  std::set<uint64_t> seen_ids;
  for (size_t round = 0; round < kMaxAcceptRounds; ++round) {
    ops.push_back("");
    size_t induced = reference.InduceCandidates();
    if (candidates != nullptr) *candidates += induced;
    for (const induce::Candidate& candidate : reference.candidates()) {
      if (!seen_ids.insert(candidate.id).second) {
        AddInductionViolation(result, "accept-reclassify-accounting",
                              candidate.name, round,
                              "candidate id " + std::to_string(candidate.id) +
                                  " reissued");
      }
      CheckCandidateInvariants(reference, candidate, round, result);
    }
    const induce::Candidate* best = BestCandidate(reference);
    if (best == nullptr) break;

    // Accept consumes repository documents — clone the claimed set first
    // so accept-member-validity can recount against the *live* DTD.
    const std::string accept_name = best->name;
    const uint64_t best_id = best->id;
    std::vector<xml::Document> claimed_docs;
    for (int id : best->validated) {
      claimed_docs.push_back(reference.repository().Get(id).Clone());
    }
    const size_t repo_before = reference.repository().size();

    StatusOr<core::XmlSource::AcceptOutcome> outcome =
        reference.AcceptCandidate(best_id, 1);
    if (!outcome.ok()) {
      AddInductionViolation(result, "accept-member-validity", accept_name,
                            round,
                            "accept failed: " + outcome.status().message());
      break;
    }
    ops.push_back(accept_name);
    if (accepts != nullptr) ++*accepts;

    const dtd::Dtd* live = reference.FindDtd(outcome->dtd_name);
    if (live == nullptr) {
      AddInductionViolation(result, "accept-member-validity",
                            outcome->dtd_name, round,
                            "accepted DTD missing from the live set");
    } else {
      validate::Validator live_validator(*live);
      size_t invalid = 0;
      for (const xml::Document& doc : claimed_docs) {
        if (!doc.has_root() || !live_validator.Validate(doc).valid) {
          ++invalid;
        }
      }
      if (invalid != 0) {
        AddInductionViolation(
            result, "accept-member-validity", outcome->dtd_name, round,
            std::to_string(invalid) + " of " +
                std::to_string(claimed_docs.size()) +
                " claimed-validated member(s) invalid under the live DTD");
      }
    }
    const size_t removed = repo_before - reference.repository().size();
    if (removed != outcome->reclassified) {
      AddInductionViolation(
          result, "accept-reclassify-accounting", outcome->dtd_name, round,
          "outcome reports " + std::to_string(outcome->reclassified) +
              " reclassified but " + std::to_string(removed) +
              " document(s) left the repository");
    }
    if (outcome->reclassified == 0) break;
  }

  Fingerprint reference_fp = FingerprintOf(reference, outcomes);
  AppendInductionFingerprint(reference, &reference_fp);
  for (size_t jobs : options.jobs) {
    core::XmlSource replica(scenario.options);
    for (const auto& [name, dtd] : scenario.dtds) {
      (void)replica.AddDtd(name, dtd.Clone());
    }
    std::vector<xml::Document> docs;
    docs.reserve(scenario.documents.size());
    for (const xml::Document& doc : scenario.documents) {
      docs.push_back(doc.Clone());
    }
    std::vector<core::XmlSource::ProcessOutcome> replica_outcomes =
        replica.ProcessBatch(std::move(docs), jobs);

    bool replay_ok = true;
    for (const std::string& op : ops) {
      if (op.empty()) {
        replica.InduceCandidates();
        continue;
      }
      const induce::Candidate* target = nullptr;
      for (const induce::Candidate& candidate : replica.candidates()) {
        if (candidate.name == op) target = &candidate;
      }
      if (target == nullptr) {
        AddInductionViolation(result, "induction-batch-divergence", op, 0,
                              "jobs=" + std::to_string(jobs) +
                                  ": candidate " + op +
                                  " missing in the batch replica");
        replay_ok = false;
        break;
      }
      if (StatusOr<core::XmlSource::AcceptOutcome> accepted =
              replica.AcceptCandidate(target->id, jobs);
          !accepted.ok()) {
        AddInductionViolation(result, "induction-batch-divergence", op, 0,
                              "jobs=" + std::to_string(jobs) +
                                  ": accept failed in the batch replica: " +
                                  accepted.status().message());
        replay_ok = false;
        break;
      }
    }
    if (!replay_ok) continue;

    Fingerprint replica_fp = FingerprintOf(replica, replica_outcomes);
    AppendInductionFingerprint(replica, &replica_fp);
    if (replica_fp.size() != reference_fp.size()) {
      AddInductionViolation(result, "induction-batch-divergence", "", 0,
                            "jobs=" + std::to_string(jobs) +
                                ": fingerprint section counts differ");
      continue;
    }
    for (size_t i = 0; i < reference_fp.size(); ++i) {
      if (reference_fp[i].first != replica_fp[i].first ||
          reference_fp[i].second != replica_fp[i].second) {
        AddInductionViolation(
            result, "induction-batch-divergence", "", 0,
            "jobs=" + std::to_string(jobs) + ": section " +
                reference_fp[i].first + " differs — " +
                FirstDifference(reference_fp[i].second, replica_fp[i].second));
        break;
      }
    }
  }
  return result;
}

InductionOracleReport RunInductionOracle(
    const InductionOracleOptions& options) {
  InductionOracleReport report;
  for (uint64_t i = 0; i < options.scenarios; ++i) {
    ScenarioResult result = RunInductionScenario(
        options.seed + i, options, &report.candidates, &report.accepts);
    ++report.scenarios_run;
    report.documents += result.documents;
    if (!result.ok()) {
      report.failures.push_back(std::move(result));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  return report;
}

std::string FormatInductionReport(const InductionOracleReport& report) {
  std::ostringstream out;
  out << "induction oracle: " << report.scenarios_run << " scenario"
      << (report.scenarios_run == 1 ? "" : "s") << ", " << report.documents
      << " documents, " << report.candidates << " candidates, "
      << report.accepts << " accepts — "
      << (report.ok() ? "all invariants held"
                      : std::to_string(report.failures.size()) +
                            " failing scenario(s)")
      << "\n";
  for (const ScenarioResult& failure : report.failures) {
    out << FormatScenario(failure);
    out << "  replay: dtdevolve check --induction --seed " << failure.seed
        << " --scenarios 1\n";
  }
  return out.str();
}

// --- Replication oracle -----------------------------------------------------

namespace {

/// A fresh follower-side source: exactly the scenario's seed DTDs, as a
/// replica boots before its first checkpoint lands.
std::unique_ptr<core::XmlSource> MakeFollowerSource(const Scenario& scenario) {
  auto src = std::make_unique<core::XmlSource>(scenario.options);
  for (const auto& [name, dtd] : scenario.dtds) {
    (void)src->AddDtd(name, dtd.Clone());
  }
  return src;
}

/// The simulated read replica: the same state machine `server::Follower`
/// runs, minus the sockets — bootstrapped-or-not, an applied LSN, and a
/// source fed only through the shared replay dispatch.
struct SimFollower {
  std::unique_ptr<core::XmlSource> src;
  bool bootstrapped = false;
  uint64_t applied = 0;
};

std::string ReplTempDir(uint64_t seed) {
  static std::atomic<uint64_t> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("dtdevolve-repl-" + std::to_string(::getpid()) + "-" +
           std::to_string(seed) + "-" +
           std::to_string(counter.fetch_add(1))))
      .string();
}

/// One follower poll against the primary's WAL directory. Mirrors
/// `Follower::SyncTenant` step for step: bootstrap from the checkpoint
/// (through the wire-blob encode/decode), export a page from
/// `applied + 1`, detect checkpoint-truncation gaps (the 410 answer on
/// the wire), decode what survives the injected truncation, apply with
/// idempotent skip, and assert prefix consistency. Returns false when a
/// violation was recorded (the caller stops polling — a state divergence
/// cascades into every later check).
bool PollFollower(const Scenario& scenario, const std::string& dir,
                  uint64_t wal_next_lsn,
                  const std::vector<Fingerprint>& prefix_fps,
                  SimFollower& follower, workload::Rng& rng, bool allow_fault,
                  ReplicationOracleReport* tally, ScenarioResult& result) {
  auto add_violation = [&result](const char* invariant, uint64_t op,
                                 std::string detail) {
    if (result.violations.size() >= kMaxViolationsPerScenario) return;
    result.violations.push_back({invariant, "", op, std::move(detail)});
  };
  if (tally != nullptr) ++tally->polls;

  if (!follower.bootstrapped) {
    StatusOr<store::CheckpointData> checkpoint = store::ReadCheckpoint(dir);
    if (!checkpoint.ok()) {
      add_violation("replication-bootstrap", follower.applied,
                    "checkpoint read failed: " +
                        checkpoint.status().message());
      return false;
    }
    // Round-trip through the transfer blob — the bytes a real follower
    // receives from GET /replication/checkpoint.
    StatusOr<store::CheckpointData> wire =
        store::DecodeCheckpointBlob(store::EncodeCheckpointBlob(*checkpoint));
    if (!wire.ok()) {
      add_violation("replication-bootstrap", follower.applied,
                    "checkpoint blob round-trip failed: " +
                        wire.status().message());
      return false;
    }
    std::unique_ptr<core::XmlSource> fresh = MakeFollowerSource(scenario);
    Status applied = store::ApplyCheckpointToSource(*wire, *fresh);
    if (!applied.ok()) {
      add_violation("replication-bootstrap", follower.applied,
                    "checkpoint apply failed: " + applied.message());
      return false;
    }
    follower.src = std::move(fresh);
    follower.applied = wire->lsn;
    follower.bootstrapped = true;
    if (tally != nullptr) ++tally->bootstraps;
    if (CrashFingerprintOf(*follower.src) != prefix_fps[follower.applied]) {
      add_violation(
          "replication-bootstrap", follower.applied,
          "bootstrapped state diverges from the sequential replay of " +
              std::to_string(follower.applied) + " ops: " +
              FingerprintDiff(prefix_fps[follower.applied],
                              CrashFingerprintOf(*follower.src)));
      return false;
    }
  }

  // At-least-once delivery: occasionally re-request from one LSN back —
  // the already-applied record comes again and must be skipped.
  uint64_t from = follower.applied + 1;
  if (allow_fault && follower.applied > 0 && rng.Chance(0.15)) {
    from = follower.applied;
    if (tally != nullptr) ++tally->faults;
  }
  // Small, jittered pages force frame-boundary cuts mid-catch-up.
  const uint64_t max_bytes = 256 + rng.Uniform(4096);
  StatusOr<store::WalExport> page =
      store::ExportWalRecords(dir, from, max_bytes);
  if (!page.ok()) {
    add_violation("replication-prefix-consistency", follower.applied,
                  "WAL export from lsn " + std::to_string(from) +
                      " failed: " + page.status().message());
    return false;
  }

  // The primary's gap answer (410 on the wire): records below `from`
  // were checkpoint-truncated, so this lineage cannot be extended.
  const bool gone =
      (page->oldest_lsn != 0 && page->oldest_lsn > from) ||
      (page->oldest_lsn == 0 && wal_next_lsn > 0 && from < wal_next_lsn);
  if (gone) {
    follower.bootstrapped = false;
    if (tally != nullptr) ++tally->faults;
    return true;  // re-bootstraps on the next poll
  }

  // A disconnect can cut the stream at any byte; the decoder must stop
  // cleanly at the torn frame and the next poll resumes.
  std::string bytes = std::move(page->bytes);
  if (allow_fault && !bytes.empty() && rng.Chance(0.35)) {
    bytes.resize(rng.Uniform(static_cast<uint32_t>(bytes.size())));
    if (tally != nullptr) ++tally->faults;
  }
  size_t consumed = 0;
  const std::vector<store::WalRecord> records =
      store::DecodeWalStream(bytes, &consumed);
  for (const store::WalRecord& record : records) {
    if (record.lsn <= follower.applied) continue;  // idempotent re-delivery
    if (record.lsn != follower.applied + 1) {
      add_violation("replication-prefix-consistency", follower.applied,
                    "export produced an LSN gap: applied " +
                        std::to_string(follower.applied) + ", received " +
                        std::to_string(record.lsn));
      return false;
    }
    Status applied_record =
        store::ApplyWalRecordToSource(record.lsn, record.payload,
                                      *follower.src);
    if (!applied_record.ok()) {
      add_violation("replication-prefix-consistency", record.lsn,
                    "replicated record does not apply: " +
                        applied_record.message());
      return false;
    }
    follower.applied = record.lsn;
  }

  if (CrashFingerprintOf(*follower.src) != prefix_fps[follower.applied]) {
    add_violation(
        "replication-prefix-consistency", follower.applied,
        "follower at lsn " + std::to_string(follower.applied) +
            " diverges from the sequential replay: " +
            FingerprintDiff(prefix_fps[follower.applied],
                            CrashFingerprintOf(*follower.src)));
    return false;
  }
  return true;
}

}  // namespace

ScenarioResult RunReplicationScenario(uint64_t scenario_seed,
                                      const ReplicationOracleOptions& options,
                                      ReplicationOracleReport* tally) {
  // Alternate drift and induction scenarios so the replicated stream
  // carries both WAL record types.
  const bool induction = options.induction && (scenario_seed % 2 == 1);
  Scenario scenario =
      induction ? MakeInductionScenario(scenario_seed, options.max_documents)
                : MakeScenario(scenario_seed, options.max_documents);
  ScenarioResult result;
  result.seed = scenario_seed;
  result.scenario = "replication " + scenario.label;
  result.documents = scenario.documents.size();

  auto add_violation = [&result](const char* invariant, uint64_t op,
                                 std::string detail) {
    if (result.violations.size() >= kMaxViolationsPerScenario) return;
    result.violations.push_back({invariant, "", op, std::move(detail)});
  };

  // The acked-op sequence, as WAL payloads in LSN order (lsn = index+1):
  // document texts, then — for induction scenarios — the induce-accept
  // records a planning run chooses with the canonical best-first rule.
  std::vector<std::string> ops;
  ops.reserve(scenario.documents.size());
  xml::WriteOptions compact;
  compact.indent = false;
  for (const xml::Document& doc : scenario.documents) {
    ops.push_back(xml::WriteDocument(doc, compact));
  }
  if (induction) {
    core::XmlSource planner(scenario.options);
    for (const auto& [name, dtd] : scenario.dtds) {
      (void)planner.AddDtd(name, dtd.Clone());
    }
    for (const std::string& text : ops) (void)planner.ProcessText(text);
    planner.InduceCandidates();
    for (size_t round = 0; round < kMaxAcceptRounds; ++round) {
      const induce::Candidate* best = BestCandidate(planner);
      if (best == nullptr) break;
      ops.push_back(store::EncodeInduceAcceptRecord(best->name, best->ext));
      StatusOr<core::XmlSource::AcceptOutcome> outcome =
          planner.AcceptCandidate(best->id, 1);
      if (!outcome.ok()) {
        ops.pop_back();
        break;
      }
      if (outcome->reclassified == 0) break;
      planner.InduceCandidates();
    }
  }

  // prefix_fps[j] = the state after replaying the first j ops through
  // the shared dispatch — what the follower must match at every cut.
  std::vector<Fingerprint> prefix_fps;
  prefix_fps.reserve(ops.size() + 1);
  {
    core::XmlSource reference(scenario.options);
    for (const auto& [name, dtd] : scenario.dtds) {
      (void)reference.AddDtd(name, dtd.Clone());
    }
    prefix_fps.push_back(CrashFingerprintOf(reference));
    for (size_t i = 0; i < ops.size(); ++i) {
      Status applied = store::ApplyWalRecordToSource(i + 1, ops[i], reference);
      if (!applied.ok()) {
        add_violation("replication-prefix-consistency", i + 1,
                      "reference replay failed: " + applied.message());
        return result;
      }
      prefix_fps.push_back(CrashFingerprintOf(reference));
    }
    result.evolutions = reference.evolutions_performed();
  }

  const std::string dir = ReplTempDir(scenario_seed);
  std::filesystem::remove_all(dir);

  // The step-wise primary: append + apply per op, checkpoint (and
  // truncate — the follower-visible gap source) on the configured
  // cadence, with seeded fault-injected follower polls interleaved at
  // arbitrary cut points.
  core::XmlSource primary(scenario.options);
  for (const auto& [name, dtd] : scenario.dtds) {
    (void)primary.AddDtd(name, dtd.Clone());
  }
  store::WalOptions wal_options;
  wal_options.dir = dir;
  store::WalReplay replay;
  StatusOr<std::unique_ptr<store::Wal>> wal =
      store::Wal::Open(wal_options, 0, &replay);
  if (!wal.ok()) {
    add_violation("replication-prefix-consistency", 0,
                  "primary WAL open failed: " + wal.status().message());
    std::filesystem::remove_all(dir);
    return result;
  }

  // Decorrelated poll/fault schedule (distinct from the scenario's own
  // stream randomness).
  workload::Rng rng(scenario_seed * 0xD1342543DE82EF95ull +
                    0x9E3779B97F4A7C15ull);
  SimFollower follower;
  follower.src = MakeFollowerSource(scenario);

  uint64_t since_checkpoint = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    StatusOr<uint64_t> lsn = (*wal)->Append(ops[i]);
    if (!lsn.ok() || *lsn != i + 1) {
      add_violation("replication-prefix-consistency", i + 1,
                    "primary append failed: " +
                        (lsn.ok() ? "unexpected lsn" :
                                    lsn.status().message()));
      break;
    }
    Status applied = store::ApplyWalRecordToSource(*lsn, ops[i], primary);
    if (!applied.ok()) {
      add_violation("replication-prefix-consistency", *lsn,
                    "primary apply failed: " + applied.message());
      break;
    }
    if (options.checkpoint_every != 0 &&
        ++since_checkpoint >= options.checkpoint_every) {
      since_checkpoint = 0;
      store::CheckpointData data = store::CaptureCheckpoint(primary, *lsn);
      if (store::WriteCheckpoint(dir, data).ok()) {
        (void)(*wal)->TruncateThrough(*lsn);
      }
    }
    if (rng.Chance(0.4)) {
      if (!PollFollower(scenario, dir, (*wal)->next_lsn(), prefix_fps,
                        follower, rng, /*allow_fault=*/true, tally, result)) {
        break;
      }
    }
  }

  // Convergence: faults off, the follower must fully catch up. The
  // bound is generous — every fault-free poll either advances the
  // applied LSN (a page with at least one frame is always served, even
  // past max_bytes) or flips to a re-bootstrap that lands ahead.
  if (result.violations.empty()) {
    const uint64_t total = ops.size();
    for (int i = 0; i < 2000 && follower.applied < total; ++i) {
      if (!PollFollower(scenario, dir, (*wal)->next_lsn(), prefix_fps,
                        follower, rng, /*allow_fault=*/false, tally,
                        result)) {
        break;
      }
    }
    if (result.violations.empty() && follower.applied != total) {
      add_violation("replication-convergence", follower.applied,
                    "follower stalled at lsn " +
                        std::to_string(follower.applied) + " of " +
                        std::to_string(total));
    }
    if (result.violations.empty() &&
        CrashFingerprintOf(*follower.src) != prefix_fps.back()) {
      add_violation("replication-convergence", total,
                    "caught-up follower diverges from the primary: " +
                        FingerprintDiff(prefix_fps.back(),
                                        CrashFingerprintOf(*follower.src)));
    }
  }

  // Follower restart: a fresh replica bootstrapping from whatever
  // checkpoint the primary holds now must converge to the same bytes.
  if (result.violations.empty()) {
    SimFollower restarted;
    restarted.src = MakeFollowerSource(scenario);
    const uint64_t total = ops.size();
    for (int i = 0; i < 2000 && restarted.applied < total; ++i) {
      if (!PollFollower(scenario, dir, (*wal)->next_lsn(), prefix_fps,
                        restarted, rng, /*allow_fault=*/false, tally,
                        result)) {
        break;
      }
    }
    if (result.violations.empty() && restarted.applied != total) {
      add_violation("replication-restart", restarted.applied,
                    "restarted follower stalled at lsn " +
                        std::to_string(restarted.applied) + " of " +
                        std::to_string(total));
    } else if (result.violations.empty() &&
               CrashFingerprintOf(*restarted.src) != prefix_fps.back()) {
      add_violation("replication-restart", total,
                    "restarted follower diverges: " +
                        FingerprintDiff(prefix_fps.back(),
                                        CrashFingerprintOf(*restarted.src)));
    }
  }

  std::filesystem::remove_all(dir);
  return result;
}

ReplicationOracleReport RunReplicationOracle(
    const ReplicationOracleOptions& options) {
  ReplicationOracleReport report;
  for (uint64_t i = 0; i < options.scenarios; ++i) {
    ScenarioResult result =
        RunReplicationScenario(options.seed + i, options, &report);
    ++report.scenarios_run;
    report.documents += result.documents;
    if (!result.ok()) {
      report.failures.push_back(std::move(result));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  return report;
}

std::string FormatReplicationReport(const ReplicationOracleReport& report) {
  std::ostringstream out;
  out << "replication oracle: " << report.scenarios_run << " scenario"
      << (report.scenarios_run == 1 ? "" : "s") << ", " << report.documents
      << " documents, " << report.polls << " polls, " << report.faults
      << " faults, " << report.bootstraps << " bootstraps — "
      << (report.ok() ? "every follower state matched the acked prefix"
                      : std::to_string(report.failures.size()) +
                            " failing scenario(s)")
      << "\n";
  for (const ScenarioResult& failure : report.failures) {
    out << FormatScenario(failure);
    out << "  replay: dtdevolve check --replication --seed " << failure.seed
        << " --scenarios 1\n";
  }
  return out.str();
}

// --- Parse-path oracle ------------------------------------------------------

namespace {

/// The pure-DOM reference configuration: the legacy two-pass parser with
/// the classification memo disabled, so nothing the streaming path adds
/// (arena trees, fingerprint-keyed outcome replay) participates on the
/// reference side of the comparison.
core::SourceOptions DomReferenceOptions(core::SourceOptions options) {
  options.streaming_parse = false;
  options.classifier.enable_classification_memo = false;
  return options;
}

struct TextPipelineRun {
  Fingerprint fingerprint;
  std::string error;  // non-empty when some document failed to parse
};

/// Feeds the serialized stream through `ProcessText` — the entry point
/// whose parse path `streaming_parse` selects — and fingerprints the
/// resulting state plus every outcome.
TextPipelineRun RunTextPipeline(const Scenario& scenario,
                                const std::vector<std::string>& texts,
                                const core::SourceOptions& options) {
  TextPipelineRun run;
  core::XmlSource src(options);
  for (const auto& [name, dtd] : scenario.dtds) {
    (void)src.AddDtd(name, dtd.Clone());
  }
  std::vector<core::XmlSource::ProcessOutcome> outcomes;
  outcomes.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    StatusOr<core::XmlSource::ProcessOutcome> outcome =
        src.ProcessText(texts[i]);
    if (!outcome.ok()) {
      run.error = "document " + std::to_string(i) +
                  " failed to parse: " + outcome.status().message();
      return run;
    }
    outcomes.push_back(*outcome);
  }
  run.fingerprint = FingerprintOf(src, outcomes);
  return run;
}

/// Appends `texts` to a fresh WAL in `dir`, then boots a recovery with
/// the given parse path (`RecoverSource` replays every document record
/// through `ProcessText`) and returns the recovered durable-state
/// fingerprint.
StatusOr<Fingerprint> ReplayThroughWal(const Scenario& scenario,
                                       const std::vector<std::string>& texts,
                                       const core::SourceOptions& options,
                                       const std::string& dir) {
  {
    store::WalOptions wal_options;
    wal_options.dir = dir;
    store::WalReplay replay;
    StatusOr<std::unique_ptr<store::Wal>> wal =
        store::Wal::Open(wal_options, 0, &replay);
    if (!wal.ok()) return wal.status();
    for (const std::string& text : texts) {
      StatusOr<uint64_t> lsn = (*wal)->Append(text);
      if (!lsn.ok()) return lsn.status();
    }
  }
  core::XmlSource src(options);
  for (const auto& [name, dtd] : scenario.dtds) {
    (void)src.AddDtd(name, dtd.Clone());
  }
  store::WalOptions wal_options;
  wal_options.dir = dir;
  StatusOr<std::unique_ptr<store::Wal>> wal =
      store::RecoverSource(src, wal_options, nullptr);
  if (!wal.ok()) return wal.status();
  return CrashFingerprintOf(src);
}

}  // namespace

ScenarioResult RunParsePathScenario(uint64_t scenario_seed,
                                    const ParsePathOracleOptions& options,
                                    bool* ran_wal_replay) {
  Scenario scenario = MakeScenario(scenario_seed, options.max_documents);
  ScenarioResult result;
  result.seed = scenario_seed;
  result.scenario = scenario.label;
  result.documents = scenario.documents.size();
  if (ran_wal_replay != nullptr) *ran_wal_replay = false;

  auto add = [&result](std::string invariant, uint64_t index,
                       std::string detail) {
    if (result.violations.size() >= kMaxViolationsPerScenario) return;
    result.violations.push_back(
        {std::move(invariant), "", index, Truncate(detail, 240)});
  };

  xml::WriteOptions compact;
  compact.indent = false;
  std::vector<std::string> texts;
  texts.reserve(scenario.documents.size());
  for (const xml::Document& doc : scenario.documents) {
    texts.push_back(xml::WriteDocument(doc, compact));
  }

  // Leg 1: dual-parse every document and compare the trees and the
  // parse-time fingerprints against the after-the-fact DOM index.
  for (size_t i = 0; i < texts.size(); ++i) {
    StatusOr<xml::Document> dom = xml::ParseDocument(texts[i]);
    StatusOr<xml::ArenaDocument> arena = xml::ParseArenaDocument(texts[i]);
    if (dom.ok() != arena.ok()) {
      add("parse-path-document", i,
          std::string("accept/reject disagreement: DOM ") +
              (dom.ok() ? "accepts" : "rejects (" + dom.status().message() +
                                          ")") +
              ", streaming " +
              (arena.ok() ? "accepts"
                          : "rejects (" + arena.status().message() + ")"));
      continue;
    }
    if (!dom.ok()) {
      if (dom.status().message() != arena.status().message()) {
        add("parse-path-document", i,
            "error messages differ: DOM \"" + dom.status().message() +
                "\" vs streaming \"" + arena.status().message() + "\"");
      }
      continue;
    }
    xml::Document converted = arena->ToDocument();
    if (dom->has_root() != converted.has_root() ||
        (dom->has_root() &&
         !xml::StructurallyEqual(dom->root(), converted.root()))) {
      add("parse-path-document", i,
          "arena tree is not structurally equal to the DOM tree");
      continue;
    }
    if (dom->doctype_name() != arena->doctype_name() ||
        dom->internal_subset() != arena->internal_subset()) {
      add("parse-path-document", i, "DOCTYPE fields differ between paths");
      continue;
    }
    if (dom->has_root()) {
      similarity::SubtreeFingerprints fps(dom->root());
      const similarity::SubtreeStats* stats = fps.Find(&dom->root());
      const xml::ArenaElement& root = arena->root();
      if (stats == nullptr || stats->fp_hi != root.fp_hi ||
          stats->fp_lo != root.fp_lo ||
          stats->element_count != root.element_count) {
        std::ostringstream detail;
        detail << "root fingerprint differs: streaming " << std::hex
               << root.fp_hi << ":" << root.fp_lo << std::dec << "/"
               << root.element_count << " vs DOM ";
        if (stats == nullptr) {
          detail << "(missing)";
        } else {
          detail << std::hex << stats->fp_hi << ":" << stats->fp_lo
                 << std::dec << "/" << stats->element_count;
        }
        add("parse-path-document", i, detail.str());
      }
    }
  }

  // Leg 2: the full pipeline over the identical text stream, pure DOM
  // reference vs streaming defaults.
  TextPipelineRun dom_run =
      RunTextPipeline(scenario, texts, DomReferenceOptions(scenario.options));
  TextPipelineRun stream_run =
      RunTextPipeline(scenario, texts, scenario.options);
  if (!dom_run.error.empty() || !stream_run.error.empty()) {
    add("parse-path-equivalence", 0,
        !dom_run.error.empty() ? "DOM pipeline: " + dom_run.error
                               : "streaming pipeline: " + stream_run.error);
  } else if (dom_run.fingerprint != stream_run.fingerprint) {
    add("parse-path-equivalence", 0,
        FingerprintDiff(dom_run.fingerprint, stream_run.fingerprint));
  }

  // Leg 3 (sampled): WAL replay must hit the same code path — recover
  // the appended stream once per parse path and compare the durable
  // state against the live streaming run.
  bool run_wal = options.wal_replay_every != 0 &&
                 scenario_seed % options.wal_replay_every == 0;
  if (run_wal && result.ok()) {
    if (ran_wal_replay != nullptr) *ran_wal_replay = true;
    const std::string stream_dir = CrashTempDir(scenario_seed, 1);
    const std::string dom_dir = CrashTempDir(scenario_seed, 2);
    StatusOr<Fingerprint> streamed =
        ReplayThroughWal(scenario, texts, scenario.options, stream_dir);
    StatusOr<Fingerprint> dom_replay = ReplayThroughWal(
        scenario, texts, DomReferenceOptions(scenario.options), dom_dir);
    std::error_code ec;
    std::filesystem::remove_all(stream_dir, ec);
    std::filesystem::remove_all(dom_dir, ec);
    if (!streamed.ok() || !dom_replay.ok()) {
      add("parse-path-replay", 0,
          "WAL replay failed: " + (!streamed.ok()
                                       ? streamed.status().message()
                                       : dom_replay.status().message()));
    } else {
      core::XmlSource live(scenario.options);
      for (const auto& [name, dtd] : scenario.dtds) {
        (void)live.AddDtd(name, dtd.Clone());
      }
      for (const std::string& text : texts) (void)live.ProcessText(text);
      Fingerprint live_fp = CrashFingerprintOf(live);
      if (*streamed != live_fp) {
        add("parse-path-replay", 0,
            "streaming recovery diverged from live run: " +
                FingerprintDiff(live_fp, *streamed));
      } else if (*dom_replay != live_fp) {
        add("parse-path-replay", 0,
            "DOM recovery diverged from live run: " +
                FingerprintDiff(live_fp, *dom_replay));
      }
    }
  }
  return result;
}

ParsePathOracleReport RunParsePathOracle(const ParsePathOracleOptions& options) {
  ParsePathOracleReport report;
  for (uint64_t i = 0; i < options.scenarios; ++i) {
    bool ran_wal = false;
    ScenarioResult result =
        RunParsePathScenario(options.seed + i, options, &ran_wal);
    ++report.scenarios_run;
    report.documents += result.documents;
    if (ran_wal) ++report.wal_replays;
    if (!result.ok()) {
      report.failures.push_back(std::move(result));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  return report;
}

std::string FormatParsePathReport(const ParsePathOracleReport& report) {
  std::ostringstream out;
  out << "parse-path oracle: " << report.scenarios_run << " scenario"
      << (report.scenarios_run == 1 ? "" : "s") << ", " << report.documents
      << " documents, " << report.wal_replays << " WAL replays — "
      << (report.ok() ? "streaming and DOM paths byte-identical"
                      : std::to_string(report.failures.size()) +
                            " failing scenario(s)")
      << "\n";
  for (const ScenarioResult& failure : report.failures) {
    out << FormatScenario(failure);
    out << "  replay: dtdevolve check --parse-path --seed " << failure.seed
        << " --scenarios 1\n";
  }
  return out.str();
}

std::string FormatReport(const OracleReport& report) {
  std::ostringstream out;
  out << "oracle: " << report.scenarios_run << " scenario"
      << (report.scenarios_run == 1 ? "" : "s") << ", " << report.documents
      << " documents, " << report.evolutions << " evolutions — "
      << (report.ok() ? "all invariants held"
                      : std::to_string(report.failures.size()) +
                            " failing scenario(s)")
      << "\n";
  for (const ScenarioResult& failure : report.failures) {
    out << FormatScenario(failure);
    out << "  replay: dtdevolve check --seed " << failure.seed
        << " --scenarios 1\n";
  }
  return out.str();
}

}  // namespace dtdevolve::check
