#ifndef DTDEVOLVE_CHECK_ORACLE_H_
#define DTDEVOLVE_CHECK_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dtdevolve::check {

/// Differential correctness oracle: replays randomized drift scenarios
/// (synthesized from `workload/` by a seed) through the full
/// classify → record → check → evolve pipeline and asserts the paper's
/// promises after every step:
///
///  1. new-window-validity      — a document whose recorded (µ-surviving)
///     structure put an element in the *new* window validates against the
///     rebuilt declaration;
///  2. restriction-preserves-validity / misc-preserves-validity —
///     old-window operator restriction and the misc window's OR never
///     invalidate an instance that was valid before the evolution;
///  3. batch-divergence         — `ProcessBatch` at every jobs level
///     produces byte-identical outcomes, events, evolved DTDs and
///     extended-DTD state to feeding documents one at a time;
///  4. persist-fixed-point      — serialize → deserialize → re-serialize
///     of the extended DTD is a byte-level fixed point (and the file
///     round-trip through Save/LoadExtendedDtdFile matches);
///  5. trigger-accounting       — the recorded aggregates (Σ nonvalid /
///     elements over Doc_T) equal an independent recount of the raw
///     documents with a fresh Validator.
///
/// All randomness is derived from the scenario seed, so a failure is
/// replayed exactly by re-running the same seed; `MinimizeFailure`
/// shrinks a failing run to the shortest document prefix that still
/// violates an invariant.

/// One invariant violation, pinned to the reference-stream position where
/// it was detected.
struct Violation {
  std::string invariant;  // stable id, e.g. "batch-divergence"
  std::string dtd_name;
  uint64_t document_index = 0;
  std::string detail;
};

struct ScenarioResult {
  uint64_t seed = 0;
  std::string scenario;  // human label, e.g. "bibliography+forum mutated"
  uint64_t documents = 0;
  uint64_t evolutions = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

struct OracleOptions {
  /// Number of scenarios `RunOracle` derives from `seed` (seed, seed+1, …).
  uint64_t scenarios = 20;
  uint64_t seed = 1;
  /// Jobs levels the batch replicas run at; every level is compared
  /// byte-for-byte against the sequential reference.
  std::vector<size_t> jobs = {1, 2, 8};
  /// Feed only the first `max_documents` documents (0 = the full
  /// scenario). `MinimizeFailure` shrinks through this knob; prefixes are
  /// deterministic because generation never depends on the cap.
  uint64_t max_documents = 0;
  /// Run the serialize/deserialize fixed-point and file round-trip checks.
  bool check_persistence = true;
  /// `RunOracle` stops collecting after this many failing scenarios.
  uint64_t max_failures = 1;
};

struct OracleReport {
  uint64_t scenarios_run = 0;
  uint64_t documents = 0;
  uint64_t evolutions = 0;
  std::vector<ScenarioResult> failures;

  bool ok() const { return failures.empty(); }
};

/// Replays the scenario derived from `scenario_seed` and checks every
/// invariant. Deterministic: equal seeds and options give equal results.
ScenarioResult RunScenario(uint64_t scenario_seed,
                           const OracleOptions& options = {});

/// Runs `options.scenarios` scenarios starting at `options.seed`.
OracleReport RunOracle(const OracleOptions& options = {});

// --- Crash-recovery oracle --------------------------------------------------

/// Options of the crash-recovery sweep (`RunCrashOracle`). Each scenario
/// first runs the durable pipeline — WAL append before every apply,
/// periodic checkpoints — once cleanly to enumerate its faultable I/O
/// operations, then re-runs it once per chosen crash point with the
/// fault injector (`io/fault.h`) set to crash there: the op fails (with
/// EIO or ENOSPC, possibly persisting a torn prefix of a write) and
/// every later I/O op fails too, as if the process had died. Recovery
/// then boots from what is on disk, and the invariant is checked:
///
///   crash-recovery — the recovered pipeline state is byte-identical to
///   sequentially replaying exactly the acked documents (those whose WAL
///   append returned OK), or the acked documents plus the single
///   in-flight one — a crash between a record's last byte and its fsync
///   return leaves it durable but unacked, and at-least-once ack
///   semantics admit exactly that one extra;
///
///   recovery-idempotence — recovering a second time from the same
///   directory yields the same state (a crash mid-recovery is harmless).
struct CrashOracleOptions {
  uint64_t scenarios = 5;
  uint64_t seed = 1;
  /// Documents per scenario (the durable run re-executes per crash
  /// point, so this stays small).
  uint64_t max_documents = 40;
  /// Crash points per scenario, spread evenly over the clean run's
  /// faultable ops (0 = every op).
  uint64_t max_crash_points = 64;
  /// Checkpoint cadence, in acked documents (0 = never checkpoint).
  uint64_t checkpoint_every = 16;
  /// Stop after this many failing scenarios.
  uint64_t max_failures = 1;
  /// Sweep induction scenarios instead of drift scenarios: the durable
  /// run ends with candidate induction and WAL-logged accepts, so the
  /// crash points cover the induce-accept record type (append, torn
  /// tail, checkpoint, replay through `AdoptInducedDtd`).
  bool induction = false;
};

struct CrashOracleReport {
  uint64_t scenarios_run = 0;
  uint64_t crash_points = 0;  // fault-injected crashes exercised
  uint64_t documents = 0;
  std::vector<ScenarioResult> failures;

  bool ok() const { return failures.empty(); }
};

/// Sweeps crash points through the scenario derived from `scenario_seed`.
ScenarioResult RunCrashScenario(uint64_t scenario_seed,
                                const CrashOracleOptions& options = {},
                                uint64_t* crash_points = nullptr);

/// Runs `options.scenarios` crash sweeps starting at `options.seed`.
CrashOracleReport RunCrashOracle(const CrashOracleOptions& options = {});

std::string FormatCrashReport(const CrashOracleReport& report);

// --- Induction oracle -------------------------------------------------------

/// Options of the induction oracle (`RunInductionOracle`). Each scenario
/// seeds one drift family's DTD and interleaves its stream with a
/// mixed-population stream (disjoint root tags) that drains into the
/// repository, then drives the full candidate lifecycle — induce →
/// accept best-coverage-first → re-induce — and asserts:
///
///   candidate-coverage-accounting — a candidate's `validated` set and
///     `coverage` equal an independent recount of its members with a
///     fresh Validator over the candidate DTD, and meet the configured
///     coverage floor;
///   induced-dtd-roundtrip — every candidate DTD passes `Check` and
///     survives WriteDtd → ParseDtd byte-compatibly re-checked;
///   accept-member-validity — after an accept, the *live* DTD the
///     candidate became validates every member the candidate claimed as
///     validated;
///   accept-reclassify-accounting — exactly `reclassified` documents
///     left the repository, and the accepted candidate's id is never
///     reissued;
///   induction-batch-divergence — replaying the stream through
///     `ProcessBatch` at every jobs level plus the identical
///     induce/accept op sequence lands on byte-identical state
///     (including the pending-candidate list).
struct InductionOracleOptions {
  uint64_t scenarios = 20;
  uint64_t seed = 1;
  /// Jobs levels of the batch replicas.
  std::vector<size_t> jobs = {1, 2, 8};
  /// Feed only the first `max_documents` documents (0 = full scenario).
  uint64_t max_documents = 0;
  /// `RunInductionOracle` stops collecting after this many failures.
  uint64_t max_failures = 1;
};

struct InductionOracleReport {
  uint64_t scenarios_run = 0;
  uint64_t documents = 0;
  uint64_t candidates = 0;  // candidates proposed across all rounds
  uint64_t accepts = 0;     // candidates promoted into the live set
  std::vector<ScenarioResult> failures;

  bool ok() const { return failures.empty(); }
};

/// Replays the induction scenario derived from `scenario_seed` and
/// checks every induction invariant. Deterministic.
ScenarioResult RunInductionScenario(uint64_t scenario_seed,
                                    const InductionOracleOptions& options = {},
                                    uint64_t* candidates = nullptr,
                                    uint64_t* accepts = nullptr);

/// Runs `options.scenarios` induction scenarios starting at
/// `options.seed`.
InductionOracleReport RunInductionOracle(
    const InductionOracleOptions& options = {});

std::string FormatInductionReport(const InductionOracleReport& report);

// --- Replication oracle -----------------------------------------------------

/// Options of the replication-correctness sweep (`RunReplicationOracle`).
/// Each scenario runs a step-wise primary — WAL append + apply per
/// operation, a checkpoint (plus WAL truncation) every
/// `checkpoint_every` acked operations — and interleaves seeded polls of
/// a simulated follower that speaks the replication protocol in-process:
/// bootstrap from the primary's checkpoint blob
/// (`EncodeCheckpointBlob` → `DecodeCheckpointBlob` →
/// `ApplyCheckpointToSource`, the wire path), then stream WAL pages
/// (`ExportWalRecords` from the follower's applied LSN) and apply each
/// record through the shared replay dispatch (`ApplyWalRecordToSource`).
///
/// Fault injection is positional, mirroring what a network can actually
/// do to the stream: pages truncated at arbitrary byte offsets (a
/// disconnect mid-frame — the decoder must stop cleanly at the torn
/// frame and the next poll resume), pages re-delivered from one LSN back
/// (at-least-once delivery — re-applied records must be skipped
/// idempotently), and primary checkpoint truncation racing a lagging
/// follower (the gap answer — HTTP 410 on the wire — must force a
/// re-bootstrap that lands on consistent state). Invariants:
///
///   replication-prefix-consistency — after *every* poll, the follower's
///     state fingerprint is byte-identical to the sequential replay of
///     exactly the primary's first `applied` acked operations;
///   replication-convergence — once faults stop, the follower reaches
///     the primary's final state, byte-identically;
///   replication-restart — a fresh follower bootstrapping from the final
///     checkpoint (a follower restart) converges to the same bytes.
struct ReplicationOracleOptions {
  uint64_t scenarios = 20;
  uint64_t seed = 1;
  /// Documents per scenario (every op is fingerprinted, so this stays
  /// moderate).
  uint64_t max_documents = 40;
  /// Primary checkpoint cadence, in acked operations (0 = never — the
  /// truncation/re-bootstrap path is then never exercised).
  uint64_t checkpoint_every = 16;
  /// Stop after this many failing scenarios.
  uint64_t max_failures = 1;
  /// Mix induction scenarios in (alternating seeds), so the replicated
  /// stream covers the induce-accept WAL record type too.
  bool induction = true;
};

struct ReplicationOracleReport {
  uint64_t scenarios_run = 0;
  uint64_t documents = 0;
  uint64_t polls = 0;       // follower polls simulated
  uint64_t faults = 0;      // torn pages, re-deliveries, forced gaps
  uint64_t bootstraps = 0;  // checkpoint bootstraps (initial + post-gap)
  std::vector<ScenarioResult> failures;

  bool ok() const { return failures.empty(); }
};

/// Replays the replication scenario derived from `scenario_seed`,
/// accumulating poll/fault/bootstrap counts into `*tally` when given.
/// Deterministic.
ScenarioResult RunReplicationScenario(
    uint64_t scenario_seed, const ReplicationOracleOptions& options = {},
    ReplicationOracleReport* tally = nullptr);

/// Runs `options.scenarios` replication scenarios starting at
/// `options.seed`.
ReplicationOracleReport RunReplicationOracle(
    const ReplicationOracleOptions& options = {});

std::string FormatReplicationReport(const ReplicationOracleReport& report);

// --- Parse-path oracle ------------------------------------------------------

/// Options of the parse-path-equivalence sweep (`RunParsePathOracle`).
/// Each scenario's documents are serialized and re-read through BOTH
/// parsers — the two-pass DOM parser (`xml::ParseDocument`) and the
/// single-pass streaming reader (`xml::ParseArenaDocument`) — and the
/// equivalence asserted at three levels:
///
///   parse-path-document    — the parsers agree on accept/reject (with
///     the identical error message), the arena tree converts to a
///     structurally equal DOM (tags, attributes, child order, collapsed
///     text, DOCTYPE fields), and the arena's parse-time root
///     fingerprint is bit-identical to `similarity::SubtreeFingerprints`
///     computed over the DOM tree after the fact;
///   parse-path-equivalence — two full pipelines fed the identical text
///     stream — one with `streaming_parse` off and the classification
///     memo disabled (the pure DOM reference), one with the streaming
///     defaults (arena parse + memo replay) — land on byte-identical
///     outcomes, events, counters, repository, evolved DTDs and
///     extended-DTD state;
///   parse-path-replay      — WAL replay hits the same code path: the
///     scenario's stream is appended to a real WAL and recovered once
///     per parse path (`store::RecoverSource` replays every document
///     record through `ProcessText`), and both recoveries must be
///     byte-identical to the live streaming run's durable state.
struct ParsePathOracleOptions {
  uint64_t scenarios = 20;
  uint64_t seed = 1;
  /// Feed only the first `max_documents` documents (0 = full scenario).
  uint64_t max_documents = 0;
  /// Stop after this many failing scenarios.
  uint64_t max_failures = 1;
  /// Run the WAL-replay leg on scenarios whose seed is divisible by this
  /// (0 = never): the leg re-runs the pipeline twice with real disk I/O,
  /// so it is sampled rather than run per scenario.
  uint64_t wal_replay_every = 4;
};

struct ParsePathOracleReport {
  uint64_t scenarios_run = 0;
  uint64_t documents = 0;
  uint64_t wal_replays = 0;  // scenarios that also ran the WAL-replay leg
  std::vector<ScenarioResult> failures;

  bool ok() const { return failures.empty(); }
};

/// Replays the scenario derived from `scenario_seed` through both parse
/// paths and checks every parse-path invariant. Deterministic; sets
/// `*ran_wal_replay` when the sampled WAL-replay leg executed.
ScenarioResult RunParsePathScenario(uint64_t scenario_seed,
                                    const ParsePathOracleOptions& options = {},
                                    bool* ran_wal_replay = nullptr);

/// Runs `options.scenarios` parse-path scenarios starting at
/// `options.seed`.
ParsePathOracleReport RunParsePathOracle(
    const ParsePathOracleOptions& options = {});

std::string FormatParsePathReport(const ParsePathOracleReport& report);

/// Shrinks a failing scenario to the shortest document prefix that still
/// fails (binary search over `max_documents`). Returns the full run when
/// the scenario does not fail at all.
ScenarioResult MinimizeFailure(uint64_t scenario_seed,
                               const OracleOptions& options = {});

/// Human-readable summaries for the CLI and test logs.
std::string FormatScenario(const ScenarioResult& result);
std::string FormatReport(const OracleReport& report);

}  // namespace dtdevolve::check

#endif  // DTDEVOLVE_CHECK_ORACLE_H_
