#ifndef DTDEVOLVE_CHECK_OVERLOAD_H_
#define DTDEVOLVE_CHECK_OVERLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.h"

namespace dtdevolve::check {

/// Overload-resilience oracle (`dtdevolve check --overload`): each
/// scenario boots a real in-process `IngestServer` (ephemeral port,
/// WAL in a scratch directory) and abuses it over actual HTTP, then
/// asserts the overload contract:
///
///   overload-status-codes — every rejection a hostile client observes
///     is one of the documented codes (413 over the document-size
///     quota, 429 over the ingest rate, 503 at the connection cap /
///     pipeline cap / full queue / failed or read-only WAL), and every
///     429/503 carries `Retry-After`;
///   overload-isolation / overload-exactly-once — a well-behaved victim
///     tenant flooded from a neighboring tenant loses nothing: its
///     acked documents land exactly once, proven by fingerprinting the
///     victim shard against a sequential replay of exactly the acked
///     bodies in ack order;
///   overload-quota-accounting — the tenant-labeled rejection counters
///     equal the rejections the clients actually observed, and the
///     token bucket never admits more than burst + rate · elapsed;
///   overload-connection-cap — accepts over `--max-connections` get an
///     immediate 503 and a close, and accepting resumes as soon as a
///     slot frees;
///   overload-loop-stall — the event loop answers a health probe within
///     the scenario deadline at every point of the abuse;
///   overload-readiness — `/healthz?ready=1` reports 503 while a shard
///     is degraded or read-only (injected WAL faults, `io/fault.h`) and
///     returns to 200 after the fault clears (the recovery probe);
///   overload-eviction-recovery — a run whose WAL contains repository
///     eviction records recovers byte-identically from disk, twice
///     (idempotence), including evictions logged after a checkpoint.
///
/// Scenario kinds rotate by seed: rate-limit flood beside a victim,
/// oversized bodies, connection churn against the cap, WAL faults
/// mid-flood (degraded → read-only → recovered), and repository-quota
/// eviction with crash recovery. All randomness derives from the
/// scenario seed.
struct OverloadOracleOptions {
  /// Number of scenarios `RunOverloadOracle` derives from `seed`.
  uint64_t scenarios = 100;
  uint64_t seed = 1;
  /// Caps the documents each scenario sends (0 = the kind's default).
  uint64_t max_documents = 0;
  /// Stop collecting after this many failing scenarios.
  uint64_t max_failures = 1;
};

struct OverloadOracleReport {
  uint64_t scenarios_run = 0;
  uint64_t requests = 0;    // HTTP requests driven across all scenarios
  uint64_t rejections = 0;  // documented 413/429/503 rejections observed
  uint64_t recoveries = 0;  // shards probed back to ready after a fault
  uint64_t evictions = 0;   // repository evictions enforced and replayed
  std::vector<ScenarioResult> failures;

  bool ok() const { return failures.empty(); }
};

/// Runs the hostile scenario derived from `scenario_seed`, accumulating
/// request/rejection/recovery tallies into `*tally` when given.
ScenarioResult RunOverloadScenario(uint64_t scenario_seed,
                                   const OverloadOracleOptions& options = {},
                                   OverloadOracleReport* tally = nullptr);

/// Runs `options.scenarios` scenarios starting at `options.seed`.
OverloadOracleReport RunOverloadOracle(const OverloadOracleOptions& options = {});

std::string FormatOverloadReport(const OverloadOracleReport& report);

}  // namespace dtdevolve::check

#endif  // DTDEVOLVE_CHECK_OVERLOAD_H_
