#include "dtd/dtd_writer.h"

#include "xml/text.h"

namespace dtdevolve::dtd {

std::string WriteElementDecl(const ElementDecl& decl) {
  std::string out = "<!ELEMENT ";
  out += decl.name;
  out += ' ';
  out += decl.content ? decl.content->ToString() : "ANY";
  out += '>';
  return out;
}

namespace {

std::string WriteAttlist(const ElementDecl& decl) {
  std::string out = "<!ATTLIST ";
  out += decl.name;
  for (const AttributeDecl& attr : decl.attributes) {
    out += ' ';
    out += attr.name;
    out += ' ';
    out += attr.type;
    out += ' ';
    switch (attr.default_kind) {
      case AttributeDecl::DefaultKind::kRequired:
        out += "#REQUIRED";
        break;
      case AttributeDecl::DefaultKind::kImplied:
        out += "#IMPLIED";
        break;
      case AttributeDecl::DefaultKind::kFixed:
        out += "#FIXED \"" + xml::EscapeText(attr.default_value) + '"';
        break;
      case AttributeDecl::DefaultKind::kDefault:
        out += '"' + xml::EscapeText(attr.default_value) + '"';
        break;
    }
  }
  out += '>';
  return out;
}

}  // namespace

std::string WriteDtd(const Dtd& dtd) {
  std::string out;
  for (const std::string& name : dtd.ElementNames()) {
    const ElementDecl* decl = dtd.FindElement(name);
    out += WriteElementDecl(*decl);
    out += '\n';
    if (!decl->attributes.empty()) {
      out += WriteAttlist(*decl);
      out += '\n';
    }
  }
  return out;
}

}  // namespace dtdevolve::dtd
