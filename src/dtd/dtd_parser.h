#ifndef DTDEVOLVE_DTD_DTD_PARSER_H_
#define DTDEVOLVE_DTD_DTD_PARSER_H_

#include <string_view>

#include "dtd/dtd.h"
#include "util/status.h"

namespace dtdevolve::dtd {

/// Parses the text of a DTD (a sequence of `<!ELEMENT ...>` and
/// `<!ATTLIST ...>` declarations, comments and PIs — e.g. the internal
/// subset captured by the XML parser, or a standalone .dtd file).
/// ENTITY and NOTATION declarations are skipped. The first declared
/// element becomes the DTD root unless `root_name` is supplied.
StatusOr<Dtd> ParseDtd(std::string_view input, std::string root_name = "");

/// Parses a single content-model expression, e.g. `(b,c)`, `(#PCDATA|a)*`,
/// `ANY`. Used heavily by tests.
StatusOr<ContentModel::Ptr> ParseContentModel(std::string_view input);

}  // namespace dtdevolve::dtd

#endif  // DTDEVOLVE_DTD_DTD_PARSER_H_
