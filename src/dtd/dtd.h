#ifndef DTDEVOLVE_DTD_DTD_H_
#define DTDEVOLVE_DTD_DTD_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dtd/content_model.h"
#include "util/status.h"

namespace dtdevolve::dtd {

/// One attribute declaration from an ATTLIST.
struct AttributeDecl {
  enum class DefaultKind { kRequired, kImplied, kFixed, kDefault };

  std::string name;
  /// Attribute type as written (CDATA, ID, IDREF, NMTOKEN, or an
  /// enumeration rendered `(a|b|c)`).
  std::string type = "CDATA";
  DefaultKind default_kind = DefaultKind::kImplied;
  std::string default_value;  // for kFixed / kDefault
};

/// The declaration of one element type: a content model plus attributes.
struct ElementDecl {
  std::string name;
  ContentModel::Ptr content;
  std::vector<AttributeDecl> attributes;

  ElementDecl() = default;
  ElementDecl(std::string element_name, ContentModel::Ptr model)
      : name(std::move(element_name)), content(std::move(model)) {}

  ElementDecl Clone() const;
};

/// A Document Type Definition: an ordered set of element declarations and
/// a designated root element name. This is one member of the *set of DTDs*
/// the paper evolves.
class Dtd {
 public:
  Dtd() = default;
  explicit Dtd(std::string root_name) : root_name_(std::move(root_name)) {}

  Dtd(Dtd&&) = default;
  Dtd& operator=(Dtd&&) = default;

  /// Name of the document element this DTD describes. When never set
  /// explicitly, the first declared element acts as root.
  const std::string& root_name() const;
  void set_root_name(std::string name) { root_name_ = std::move(name); }

  /// Adds (or replaces) the declaration of `name`. Declaration order is
  /// preserved for serialization.
  ElementDecl& DeclareElement(std::string name, ContentModel::Ptr content);
  /// Replaces only the content model of an existing declaration; declares
  /// the element first when missing.
  ElementDecl& SetContent(std::string name, ContentModel::Ptr content);

  /// Removes the declaration of `name`; returns false when absent.
  bool RemoveElement(std::string_view name);

  /// Looks up a declaration; nullptr when undeclared.
  const ElementDecl* FindElement(std::string_view name) const;
  ElementDecl* FindElement(std::string_view name);

  bool HasElement(std::string_view name) const {
    return FindElement(name) != nullptr;
  }

  /// Declared element names in declaration order.
  std::vector<std::string> ElementNames() const;

  size_t size() const { return decls_.size(); }
  bool empty() const { return decls_.empty(); }

  /// Total content-model tree nodes over all declarations — the DTD-size
  /// measure used by the conciseness experiments.
  size_t TotalNodeCount() const;

  Dtd Clone() const;

  /// Consistency check: every name mentioned in a content model is
  /// declared, and the root is declared. Used by tests and the evolver.
  Status Check() const;

  /// Names mentioned in some content model but not declared.
  std::vector<std::string> UndeclaredReferences() const;

  /// Declared names not reachable from the root by following content
  /// models — candidates for cleanup after evolution (e.g. the old name
  /// of a renamed element).
  std::vector<std::string> UnreachableFromRoot() const;

 private:
  std::string root_name_;
  std::vector<std::string> order_;                 // declaration order
  std::map<std::string, ElementDecl, std::less<>> decls_;
};

}  // namespace dtdevolve::dtd

#endif  // DTDEVOLVE_DTD_DTD_H_
