#ifndef DTDEVOLVE_DTD_DTD_WRITER_H_
#define DTDEVOLVE_DTD_DTD_WRITER_H_

#include <string>

#include "dtd/dtd.h"

namespace dtdevolve::dtd {

/// Serializes one element declaration: `<!ELEMENT name model>`.
std::string WriteElementDecl(const ElementDecl& decl);

/// Serializes the whole DTD (ELEMENT then ATTLIST per element, one per
/// line, in declaration order). The output round-trips through ParseDtd.
std::string WriteDtd(const Dtd& dtd);

}  // namespace dtdevolve::dtd

#endif  // DTDEVOLVE_DTD_DTD_WRITER_H_
