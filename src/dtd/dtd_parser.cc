#include "dtd/dtd_parser.h"

#include <cctype>

#include "util/string_util.h"
#include "xml/text.h"

namespace dtdevolve::dtd {

namespace {

/// Nesting bound for parenthesized groups. Recursive descent (and every
/// later recursive walk over the parsed model — Glushkov, Simplify,
/// ToString, destruction) uses one stack frame per level, so unbounded
/// input like `((((…` would otherwise overflow the stack.
constexpr int kMaxGroupDepth = 200;

/// Recursive-descent parser over DTD declaration text.
class DtdParser {
 public:
  explicit DtdParser(std::string_view input) : input_(input) {}

  StatusOr<Dtd> ParseAll(std::string root_name);
  StatusOr<ContentModel::Ptr> ParseModelOnly();

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  bool Consume(char expected) {
    if (AtEnd() || Peek() != expected) return false;
    Advance();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  Status ErrorHere(std::string message) const {
    return Status::ParseError("DTD line " + std::to_string(line_) + ": " +
                              std::move(message));
  }

  StatusOr<std::string> LexName();
  Status SkipComment();                  // after "<!--"
  Status SkipUntil(char terminator);     // respecting quotes
  Status ParseElementDecl(Dtd& dtd);     // after "<!ELEMENT"
  Status ParseAttlistDecl(Dtd& dtd);     // after "<!ATTLIST"
  StatusOr<ContentModel::Ptr> ParseContentSpec();
  StatusOr<ContentModel::Ptr> ParseGroup();  // after '('
  StatusOr<ContentModel::Ptr> ParseCp();     // one content particle
  ContentModel::Ptr ApplyOccurrence(ContentModel::Ptr node);

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  int group_depth_ = 0;
};

StatusOr<std::string> DtdParser::LexName() {
  if (AtEnd() || !xml::IsNameStartChar(Peek())) {
    return ErrorHere("expected a name");
  }
  std::string name;
  while (!AtEnd() && xml::IsNameChar(Peek())) name += Advance();
  return name;
}

Status DtdParser::SkipComment() {
  while (!AtEnd()) {
    if (input_.substr(pos_, 3) == "-->") {
      Advance();
      Advance();
      Advance();
      return Status::Ok();
    }
    Advance();
  }
  return ErrorHere("unterminated comment");
}

Status DtdParser::SkipUntil(char terminator) {
  while (!AtEnd()) {
    char c = Peek();
    if (c == terminator) {
      Advance();
      return Status::Ok();
    }
    if (c == '"' || c == '\'') {
      char quote = Advance();
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) return ErrorHere("unterminated literal");
      Advance();
      continue;
    }
    Advance();
  }
  return ErrorHere(std::string("expected '") + terminator + "'");
}

ContentModel::Ptr DtdParser::ApplyOccurrence(ContentModel::Ptr node) {
  if (AtEnd()) return node;
  switch (Peek()) {
    case '?':
      Advance();
      return ContentModel::Opt(std::move(node));
    case '*':
      Advance();
      return ContentModel::Star(std::move(node));
    case '+':
      Advance();
      return ContentModel::Plus(std::move(node));
    default:
      return node;
  }
}

StatusOr<ContentModel::Ptr> DtdParser::ParseCp() {
  SkipWhitespace();
  if (AtEnd()) return ErrorHere("unexpected end of content model");
  if (Peek() == '(') {
    Advance();
    StatusOr<ContentModel::Ptr> group = ParseGroup();
    if (!group.ok()) return group.status();
    return ApplyOccurrence(std::move(group).value());
  }
  if (Peek() == '#') {
    Advance();
    StatusOr<std::string> word = LexName();
    if (!word.ok()) return word.status();
    if (*word != "PCDATA") return ErrorHere("expected #PCDATA");
    return ContentModel::Pcdata();
  }
  StatusOr<std::string> name = LexName();
  if (!name.ok()) return name.status();
  return ApplyOccurrence(ContentModel::Name(std::move(name).value()));
}

StatusOr<ContentModel::Ptr> DtdParser::ParseGroup() {
  if (++group_depth_ > kMaxGroupDepth) {
    --group_depth_;
    return ErrorHere("content model groups nested deeper than " +
                     std::to_string(kMaxGroupDepth));
  }
  std::vector<ContentModel::Ptr> children;
  char connector = 0;  // ',' or '|' once determined
  while (true) {
    StatusOr<ContentModel::Ptr> cp = ParseCp();
    if (!cp.ok()) return cp.status();
    children.push_back(std::move(cp).value());
    SkipWhitespace();
    if (AtEnd()) return ErrorHere("unterminated group");
    char c = Peek();
    if (c == ')') {
      Advance();
      break;
    }
    if (c != ',' && c != '|') {
      return ErrorHere(std::string("expected ',', '|' or ')', got '") + c +
                       "'");
    }
    if (connector != 0 && c != connector) {
      return ErrorHere("mixed ',' and '|' in one group");
    }
    connector = c;
    Advance();
  }
  --group_depth_;
  if (children.size() == 1 && connector == 0) {
    // `(a)` — a single-particle group; keep the particle itself.
    return std::move(children.front());
  }
  if (connector == '|') return ContentModel::Choice(std::move(children));
  return ContentModel::Seq(std::move(children));
}

StatusOr<ContentModel::Ptr> DtdParser::ParseContentSpec() {
  SkipWhitespace();
  if (AtEnd()) return ErrorHere("missing content specification");
  if (Peek() != '(') {
    StatusOr<std::string> word = LexName();
    if (!word.ok()) return word.status();
    if (*word == "EMPTY") return ContentModel::Empty();
    if (*word == "ANY") return ContentModel::Any();
    return ErrorHere("expected EMPTY, ANY or '(' in content model");
  }
  Advance();  // '('
  StatusOr<ContentModel::Ptr> group = ParseGroup();
  if (!group.ok()) return group.status();
  return ApplyOccurrence(std::move(group).value());
}

Status DtdParser::ParseElementDecl(Dtd& dtd) {
  SkipWhitespace();
  StatusOr<std::string> name = LexName();
  if (!name.ok()) return name.status();
  StatusOr<ContentModel::Ptr> model = ParseContentSpec();
  if (!model.ok()) return model.status();
  SkipWhitespace();
  if (!Consume('>')) return ErrorHere("expected '>' closing ELEMENT");
  ElementDecl* existing = dtd.FindElement(*name);
  if (existing != nullptr) {
    if (existing->content != nullptr) {
      return ErrorHere("duplicate declaration of element '" + *name + "'");
    }
    // An earlier ATTLIST created a placeholder; fill its content in.
    existing->content = std::move(model).value();
    return Status::Ok();
  }
  dtd.DeclareElement(std::move(name).value(), std::move(model).value());
  return Status::Ok();
}

Status DtdParser::ParseAttlistDecl(Dtd& dtd) {
  SkipWhitespace();
  StatusOr<std::string> element_name = LexName();
  if (!element_name.ok()) return element_name.status();
  std::vector<AttributeDecl> attrs;
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return ErrorHere("unterminated ATTLIST");
    if (Consume('>')) break;
    AttributeDecl attr;
    StatusOr<std::string> attr_name = LexName();
    if (!attr_name.ok()) return attr_name.status();
    attr.name = std::move(attr_name).value();
    SkipWhitespace();
    if (AtEnd()) return ErrorHere("unterminated ATTLIST");
    // Attribute type: a name (CDATA, ID, ...) or an enumeration group.
    if (Peek() == '(') {
      std::string enumeration = "(";
      Advance();
      while (!AtEnd() && Peek() != ')') {
        char c = Advance();
        if (!std::isspace(static_cast<unsigned char>(c))) enumeration += c;
      }
      if (!Consume(')')) return ErrorHere("unterminated enumeration");
      enumeration += ')';
      attr.type = std::move(enumeration);
    } else {
      StatusOr<std::string> type = LexName();
      if (!type.ok()) return type.status();
      attr.type = std::move(type).value();
      if (attr.type == "NOTATION") {
        SkipWhitespace();
        if (Consume('(')) {
          DTDEVOLVE_RETURN_IF_ERROR(SkipUntil(')'));
        }
      }
    }
    SkipWhitespace();
    if (AtEnd()) return ErrorHere("unterminated ATTLIST");
    if (Peek() == '#') {
      Advance();
      StatusOr<std::string> keyword = LexName();
      if (!keyword.ok()) return keyword.status();
      if (*keyword == "REQUIRED") {
        attr.default_kind = AttributeDecl::DefaultKind::kRequired;
      } else if (*keyword == "IMPLIED") {
        attr.default_kind = AttributeDecl::DefaultKind::kImplied;
      } else if (*keyword == "FIXED") {
        attr.default_kind = AttributeDecl::DefaultKind::kFixed;
      } else {
        return ErrorHere("unknown attribute default #" + *keyword);
      }
    } else {
      attr.default_kind = AttributeDecl::DefaultKind::kDefault;
    }
    if (attr.default_kind == AttributeDecl::DefaultKind::kFixed ||
        attr.default_kind == AttributeDecl::DefaultKind::kDefault) {
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return ErrorHere("expected quoted default value");
      }
      char quote = Advance();
      while (!AtEnd() && Peek() != quote) attr.default_value += Advance();
      if (!Consume(quote)) return ErrorHere("unterminated default value");
    }
    attrs.push_back(std::move(attr));
  }
  ElementDecl* decl = dtd.FindElement(*element_name);
  if (decl == nullptr) {
    // ATTLIST before ELEMENT is legal; create a placeholder declaration
    // that a later <!ELEMENT> will fill in.
    decl = &dtd.DeclareElement(std::move(element_name).value(), nullptr);
  }
  for (AttributeDecl& attr : attrs) {
    decl->attributes.push_back(std::move(attr));
  }
  return Status::Ok();
}

StatusOr<Dtd> DtdParser::ParseAll(std::string root_name) {
  Dtd dtd;
  while (true) {
    SkipWhitespace();
    if (AtEnd()) break;
    if (Peek() != '<') return ErrorHere("expected '<' starting a declaration");
    Advance();
    if (Consume('?')) {  // processing instruction
      DTDEVOLVE_RETURN_IF_ERROR(SkipUntil('>'));
      continue;
    }
    if (!Consume('!')) return ErrorHere("expected '<!' declaration");
    if (input_.substr(pos_, 2) == "--") {
      Advance();
      Advance();
      DTDEVOLVE_RETURN_IF_ERROR(SkipComment());
      continue;
    }
    StatusOr<std::string> keyword = LexName();
    if (!keyword.ok()) return keyword.status();
    if (*keyword == "ELEMENT") {
      DTDEVOLVE_RETURN_IF_ERROR(ParseElementDecl(dtd));
    } else if (*keyword == "ATTLIST") {
      DTDEVOLVE_RETURN_IF_ERROR(ParseAttlistDecl(dtd));
    } else if (*keyword == "ENTITY" || *keyword == "NOTATION") {
      DTDEVOLVE_RETURN_IF_ERROR(SkipUntil('>'));
    } else {
      return ErrorHere("unsupported declaration <!" + *keyword + ">");
    }
  }
  // Fill placeholder declarations (ATTLIST without ELEMENT) with ANY.
  for (const std::string& name : dtd.ElementNames()) {
    ElementDecl* decl = dtd.FindElement(name);
    if (decl->content == nullptr) decl->content = ContentModel::Any();
  }
  if (!root_name.empty()) dtd.set_root_name(std::move(root_name));
  return dtd;
}

StatusOr<ContentModel::Ptr> DtdParser::ParseModelOnly() {
  StatusOr<ContentModel::Ptr> model = ParseContentSpec();
  if (!model.ok()) return model.status();
  SkipWhitespace();
  if (!AtEnd()) return ErrorHere("trailing characters after content model");
  return model;
}

}  // namespace

StatusOr<Dtd> ParseDtd(std::string_view input, std::string root_name) {
  DtdParser parser(input);
  return parser.ParseAll(std::move(root_name));
}

StatusOr<ContentModel::Ptr> ParseContentModel(std::string_view input) {
  DtdParser parser(input);
  return parser.ParseModelOnly();
}

}  // namespace dtdevolve::dtd
