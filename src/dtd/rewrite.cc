#include "dtd/rewrite.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dtd/glushkov.h"

namespace dtdevolve::dtd {

namespace {

using Kind = ContentModel::Kind;
using Ptr = ContentModel::Ptr;

/// One bottom-up simplification pass. Sets `changed` when any rule fired.
Ptr SimplifyOnce(Ptr node, bool& changed) {
  if (node->is_leaf()) return node;

  // Recurse first.
  std::vector<Ptr> children;
  children.reserve(node->children().size());
  for (Ptr& child : node->children()) {
    children.push_back(SimplifyOnce(std::move(child), changed));
  }
  Kind kind = node->kind();

  if (kind == Kind::kAnd || kind == Kind::kOr) {
    // Flatten same-operator children; EMPTY children are the neutral
    // element of AND and become an optionality marker inside OR.
    std::vector<Ptr> flat;
    bool or_saw_empty = false;
    for (Ptr& child : children) {
      if (child->kind() == Kind::kEmpty) {
        changed = true;
        if (kind == Kind::kOr) or_saw_empty = true;
        continue;
      }
      if (child->kind() == kind) {
        changed = true;
        for (Ptr& grandchild : child->children()) {
          flat.push_back(std::move(grandchild));
        }
      } else {
        flat.push_back(std::move(child));
      }
    }
    if (flat.empty()) return ContentModel::Empty();
    if (or_saw_empty) {
      Ptr inner = flat.size() == 1 ? std::move(flat.front())
                                   : ContentModel::Choice(std::move(flat));
      return ContentModel::Opt(std::move(inner));
    }

    if (kind == Kind::kOr) {
      // Hoist optional alternatives: (a? | b) == (a | b)?.
      bool hoisted = false;
      for (Ptr& child : flat) {
        if (child->kind() == Kind::kOptional) {
          child = std::move(child->children().front());
          hoisted = true;
        }
      }
      // Deduplicate structurally equal alternatives.
      std::vector<Ptr> unique;
      for (Ptr& child : flat) {
        bool duplicate = false;
        for (const Ptr& kept : unique) {
          if (kept->Equals(*child)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) {
          changed = true;
        } else {
          unique.push_back(std::move(child));
        }
      }
      // Drop alternatives whose language another alternative already
      // contains (common after the misc window ORs an old declaration
      // with a broader rebuilt one).
      if (unique.size() > 1) {
        std::vector<bool> dead(unique.size(), false);
        for (size_t i = 0; i < unique.size(); ++i) {
          if (dead[i]) continue;
          for (size_t j = 0; j < unique.size(); ++j) {
            if (i == j || dead[j] || dead[i]) continue;
            if (LanguageSubset(*unique[j], *unique[i])) dead[j] = true;
          }
        }
        std::vector<Ptr> kept;
        for (size_t i = 0; i < unique.size(); ++i) {
          if (!dead[i]) {
            kept.push_back(std::move(unique[i]));
          } else {
            changed = true;
          }
        }
        unique = std::move(kept);
      }
      // Canonical order (#PCDATA sorts first because '#' < letters).
      std::vector<std::string> before;
      before.reserve(unique.size());
      for (const Ptr& child : unique) before.push_back(child->ToString());
      std::vector<size_t> index(unique.size());
      for (size_t i = 0; i < index.size(); ++i) index[i] = i;
      std::stable_sort(index.begin(), index.end(),
                       [&](size_t x, size_t y) { return before[x] < before[y]; });
      bool reordered = false;
      for (size_t i = 0; i < index.size(); ++i) {
        if (index[i] != i) reordered = true;
      }
      if (reordered) changed = true;
      std::vector<Ptr> sorted;
      sorted.reserve(unique.size());
      for (size_t i : index) sorted.push_back(std::move(unique[i]));

      Ptr result = sorted.size() == 1 ? std::move(sorted.front())
                                      : ContentModel::Choice(std::move(sorted));
      if (sorted.size() == 1) changed = true;
      if (hoisted) {
        changed = true;
        result = ContentModel::Opt(std::move(result));
      }
      return result;
    }

    // kAnd.
    if (flat.size() == 1) {
      changed = true;
      return std::move(flat.front());
    }
    return ContentModel::Seq(std::move(flat));
  }

  // Unary operators.
  Ptr inner = std::move(children.front());
  if (inner->kind() == Kind::kEmpty) {
    changed = true;
    return inner;  // EMPTY?, EMPTY*, EMPTY+ all denote {ε}
  }
  Kind inner_kind = inner->kind();
  if (inner_kind == Kind::kOptional || inner_kind == Kind::kStar ||
      inner_kind == Kind::kPlus) {
    // Collapse stacked unaries. The combined operator allows zero
    // occurrences iff either does, and many occurrences iff either does.
    bool zero = (kind != Kind::kPlus) || (inner_kind != Kind::kPlus);
    bool many = (kind != Kind::kOptional) || (inner_kind != Kind::kOptional);
    Ptr grandchild = std::move(inner->children().front());
    changed = true;
    if (zero && many) return ContentModel::Star(std::move(grandchild));
    if (zero) return ContentModel::Opt(std::move(grandchild));
    return ContentModel::Plus(std::move(grandchild));
  }
  if (kind == Kind::kOptional && inner->Nullable()) {
    // `x?` where x already matches ε.
    changed = true;
    return inner;
  }
  switch (kind) {
    case Kind::kOptional:
      return ContentModel::Opt(std::move(inner));
    case Kind::kStar:
      return ContentModel::Star(std::move(inner));
    default:
      return ContentModel::Plus(std::move(inner));
  }
}

}  // namespace

ContentModel::Ptr Simplify(ContentModel::Ptr model) {
  // Iterate to fixpoint; each pass strictly shrinks or canonicalizes, so
  // a small bound suffices — the loop exits as soon as a pass is clean.
  for (int round = 0; round < 16; ++round) {
    bool changed = false;
    model = SimplifyOnce(std::move(model), changed);
    if (!changed) break;
  }
  return model;
}

void SimplifyDtd(Dtd& dtd) {
  for (const std::string& name : dtd.ElementNames()) {
    ElementDecl* decl = dtd.FindElement(name);
    if (decl->content) decl->content = Simplify(std::move(decl->content));
  }
}

}  // namespace dtdevolve::dtd
