#ifndef DTDEVOLVE_DTD_DIFF_H_
#define DTDEVOLVE_DTD_DIFF_H_

#include <string>
#include <vector>

#include "dtd/dtd.h"

namespace dtdevolve::dtd {

/// Language relation between two declarations of the same element.
enum class DeclRelation {
  kEqual,        // same language
  kNarrowed,     // new ⊂ old (the evolved DTD accepts less)
  kWidened,      // old ⊂ new (the evolved DTD accepts more)
  kIncomparable  // neither contains the other
};

/// One entry of a DTD diff.
struct DeclDiff {
  enum class Kind { kAdded, kRemoved, kChanged };

  Kind kind = Kind::kChanged;
  std::string name;
  std::string old_model;  // empty for kAdded
  std::string new_model;  // empty for kRemoved
  DeclRelation relation = DeclRelation::kEqual;  // kChanged only
};

/// Structural + language diff of two DTDs — what an evolution (or any
/// other schema change) did, element by element. Declarations whose
/// content models denote the same language (even if written differently)
/// are not reported.
std::vector<DeclDiff> DiffDtds(const Dtd& old_dtd, const Dtd& new_dtd);

/// Human-readable multi-line rendering of a diff.
std::string FormatDiff(const std::vector<DeclDiff>& diff);

/// Name of a relation for reports ("equal", "narrowed", …).
std::string RelationName(DeclRelation relation);

}  // namespace dtdevolve::dtd

#endif  // DTDEVOLVE_DTD_DIFF_H_
