#include "dtd/diff.h"

#include "dtd/glushkov.h"

namespace dtdevolve::dtd {

std::vector<DeclDiff> DiffDtds(const Dtd& old_dtd, const Dtd& new_dtd) {
  std::vector<DeclDiff> diff;

  for (const std::string& name : old_dtd.ElementNames()) {
    const ElementDecl* old_decl = old_dtd.FindElement(name);
    const ElementDecl* new_decl = new_dtd.FindElement(name);
    if (new_decl == nullptr) {
      DeclDiff entry;
      entry.kind = DeclDiff::Kind::kRemoved;
      entry.name = name;
      entry.old_model =
          old_decl->content ? old_decl->content->ToString() : "ANY";
      diff.push_back(std::move(entry));
      continue;
    }
    if (old_decl->content == nullptr || new_decl->content == nullptr) {
      continue;  // placeholder declarations — nothing comparable
    }
    bool old_in_new = LanguageSubset(*old_decl->content, *new_decl->content);
    bool new_in_old = LanguageSubset(*new_decl->content, *old_decl->content);
    if (old_in_new && new_in_old) continue;  // same language — no entry
    DeclDiff entry;
    entry.kind = DeclDiff::Kind::kChanged;
    entry.name = name;
    entry.old_model = old_decl->content->ToString();
    entry.new_model = new_decl->content->ToString();
    if (old_in_new) {
      entry.relation = DeclRelation::kWidened;
    } else if (new_in_old) {
      entry.relation = DeclRelation::kNarrowed;
    } else {
      entry.relation = DeclRelation::kIncomparable;
    }
    diff.push_back(std::move(entry));
  }

  for (const std::string& name : new_dtd.ElementNames()) {
    if (old_dtd.HasElement(name)) continue;
    const ElementDecl* new_decl = new_dtd.FindElement(name);
    DeclDiff entry;
    entry.kind = DeclDiff::Kind::kAdded;
    entry.name = name;
    entry.new_model =
        new_decl->content ? new_decl->content->ToString() : "ANY";
    diff.push_back(std::move(entry));
  }
  return diff;
}

std::string RelationName(DeclRelation relation) {
  switch (relation) {
    case DeclRelation::kEqual:
      return "equal";
    case DeclRelation::kNarrowed:
      return "narrowed";
    case DeclRelation::kWidened:
      return "widened";
    case DeclRelation::kIncomparable:
      return "incomparable";
  }
  return "?";
}

std::string FormatDiff(const std::vector<DeclDiff>& diff) {
  if (diff.empty()) return "(no language changes)\n";
  std::string out;
  for (const DeclDiff& entry : diff) {
    switch (entry.kind) {
      case DeclDiff::Kind::kAdded:
        out += "+ " + entry.name + " " + entry.new_model + "\n";
        break;
      case DeclDiff::Kind::kRemoved:
        out += "- " + entry.name + " " + entry.old_model + "\n";
        break;
      case DeclDiff::Kind::kChanged:
        out += "~ " + entry.name + " [" + RelationName(entry.relation) +
               "] " + entry.old_model + " -> " + entry.new_model + "\n";
        break;
    }
  }
  return out;
}

}  // namespace dtdevolve::dtd
