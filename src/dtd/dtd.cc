#include "dtd/dtd.h"

#include <algorithm>
#include <set>

namespace dtdevolve::dtd {

ElementDecl ElementDecl::Clone() const {
  ElementDecl copy;
  copy.name = name;
  copy.content = content ? content->Clone() : nullptr;
  copy.attributes = attributes;
  return copy;
}

const std::string& Dtd::root_name() const {
  if (!root_name_.empty() || order_.empty()) return root_name_;
  return order_.front();
}

ElementDecl& Dtd::DeclareElement(std::string name, ContentModel::Ptr content) {
  auto it = decls_.find(name);
  if (it == decls_.end()) {
    order_.push_back(name);
    auto [inserted, _] =
        decls_.emplace(name, ElementDecl(name, std::move(content)));
    return inserted->second;
  }
  it->second.content = std::move(content);
  return it->second;
}

ElementDecl& Dtd::SetContent(std::string name, ContentModel::Ptr content) {
  return DeclareElement(std::move(name), std::move(content));
}

bool Dtd::RemoveElement(std::string_view name) {
  auto it = decls_.find(name);
  if (it == decls_.end()) return false;
  decls_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), name));
  return true;
}

const ElementDecl* Dtd::FindElement(std::string_view name) const {
  auto it = decls_.find(name);
  return it == decls_.end() ? nullptr : &it->second;
}

ElementDecl* Dtd::FindElement(std::string_view name) {
  auto it = decls_.find(name);
  return it == decls_.end() ? nullptr : &it->second;
}

std::vector<std::string> Dtd::ElementNames() const { return order_; }

size_t Dtd::TotalNodeCount() const {
  size_t count = 0;
  for (const auto& [name, decl] : decls_) {
    if (decl.content) count += decl.content->NodeCount();
  }
  return count;
}

Dtd Dtd::Clone() const {
  Dtd copy;
  copy.root_name_ = root_name_;
  copy.order_ = order_;
  for (const auto& [name, decl] : decls_) {
    copy.decls_.emplace(name, decl.Clone());
  }
  return copy;
}

std::vector<std::string> Dtd::UndeclaredReferences() const {
  std::set<std::string> missing;
  for (const auto& [name, decl] : decls_) {
    if (!decl.content) continue;
    for (const std::string& ref : decl.content->SymbolSet()) {
      if (!HasElement(ref)) missing.insert(ref);
    }
  }
  return {missing.begin(), missing.end()};
}

std::vector<std::string> Dtd::UnreachableFromRoot() const {
  std::set<std::string> reachable;
  std::vector<std::string> frontier;
  if (HasElement(root_name())) {
    reachable.insert(root_name());
    frontier.push_back(root_name());
  }
  while (!frontier.empty()) {
    std::string name = std::move(frontier.back());
    frontier.pop_back();
    const ElementDecl* decl = FindElement(name);
    if (decl == nullptr || decl->content == nullptr) continue;
    for (const std::string& ref : decl->content->SymbolSet()) {
      if (HasElement(ref) && reachable.insert(ref).second) {
        frontier.push_back(ref);
      }
    }
  }
  std::vector<std::string> out;
  for (const std::string& name : order_) {
    if (reachable.count(name) == 0) out.push_back(name);
  }
  return out;
}

Status Dtd::Check() const {
  if (empty()) return Status::FailedPrecondition("DTD has no declarations");
  if (!HasElement(root_name())) {
    return Status::FailedPrecondition("root element '" + root_name() +
                                      "' is not declared");
  }
  for (const auto& [name, decl] : decls_) {
    if (!decl.content) {
      return Status::FailedPrecondition("element '" + name +
                                        "' has no content model");
    }
  }
  std::vector<std::string> missing = UndeclaredReferences();
  if (!missing.empty()) {
    std::string joined;
    for (const std::string& m : missing) {
      if (!joined.empty()) joined += ", ";
      joined += m;
    }
    return Status::FailedPrecondition("undeclared element references: " +
                                      joined);
  }
  return Status::Ok();
}

}  // namespace dtdevolve::dtd
