#ifndef DTDEVOLVE_DTD_REWRITE_H_
#define DTDEVOLVE_DTD_REWRITE_H_

#include "dtd/content_model.h"
#include "dtd/dtd.h"

namespace dtdevolve::dtd {

/// Rewrites a content model into a simpler, language-equivalent one —
/// the paper's "DTD re-writing rules ... that allow one to rewrite a DTD
/// in a simpler, yet equivalent, one" ([2], used by the misc window).
///
/// Rules applied to fixpoint:
///  * flatten nested AND-in-AND / OR-in-OR;
///  * drop singleton AND/OR wrappers;
///  * collapse stacked unary operators ((x?)? → x?, (x*)+ → x*, (x+)? → x*, …);
///  * drop `?` around an already-nullable operand;
///  * deduplicate structurally equal OR alternatives;
///  * hoist optional alternatives out of OR ((a?|b) → (a|b)?);
///  * sort OR alternatives into a canonical order (#PCDATA first, then
///    lexicographic), making equal languages render identically more often.
///
/// The result always satisfies `LanguageEquivalent(input, output)`;
/// a property test sweeps random models to enforce this.
ContentModel::Ptr Simplify(ContentModel::Ptr model);

/// Applies `Simplify` to every declaration of `dtd` in place.
void SimplifyDtd(Dtd& dtd);

}  // namespace dtdevolve::dtd

#endif  // DTDEVOLVE_DTD_REWRITE_H_
