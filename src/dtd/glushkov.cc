#include "dtd/glushkov.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "util/symbol_table.h"

namespace dtdevolve::dtd {

int32_t PcdataSymbolId() {
  static const int32_t id = util::InternSymbol(kPcdataSymbol);
  return id;
}

namespace {

/// Intermediate data while linearizing the model.
struct Fragment {
  bool nullable = false;
  std::vector<int> first;  // positions
  std::vector<int> last;   // positions
};

void AddAll(std::vector<int>& dst, const std::vector<int>& src) {
  for (int p : src) {
    if (std::find(dst.begin(), dst.end(), p) == dst.end()) dst.push_back(p);
  }
}

class Builder {
 public:
  Fragment Visit(const ContentModel& node) {
    switch (node.kind()) {
      case ContentModel::Kind::kName:
        return Leaf(node.name(), /*self_loop=*/false, /*nullable=*/false);
      case ContentModel::Kind::kPcdata:
        // Character data is optional and repeatable regardless of how the
        // model spells it; see header comment.
        return Leaf(std::string(kPcdataSymbol), /*self_loop=*/true,
                    /*nullable=*/true);
      case ContentModel::Kind::kEmpty:
      case ContentModel::Kind::kAny: {
        Fragment frag;
        frag.nullable = true;
        return frag;
      }
      case ContentModel::Kind::kAnd: {
        Fragment result;
        result.nullable = true;
        std::vector<int> open_last;  // lasts that can still precede a first
        bool first_open = true;      // firsts still contribute to result.first
        for (const auto& child : node.children()) {
          Fragment frag = Visit(*child);
          for (int l : open_last) AddAll(follow_[l], frag.first);
          if (first_open) AddAll(result.first, frag.first);
          if (!frag.nullable) {
            first_open = false;
            open_last.clear();
            result.nullable = false;
            result.last = frag.last;
          } else {
            AddAll(result.last, frag.last);
          }
          AddAll(open_last, frag.last);
        }
        return result;
      }
      case ContentModel::Kind::kOr: {
        Fragment result;
        result.nullable = false;
        for (const auto& child : node.children()) {
          Fragment frag = Visit(*child);
          result.nullable = result.nullable || frag.nullable;
          AddAll(result.first, frag.first);
          AddAll(result.last, frag.last);
        }
        return result;
      }
      case ContentModel::Kind::kOptional: {
        Fragment frag = Visit(node.child());
        frag.nullable = true;
        return frag;
      }
      case ContentModel::Kind::kStar: {
        Fragment frag = Visit(node.child());
        for (int l : frag.last) AddAll(follow_[l], frag.first);
        frag.nullable = true;
        return frag;
      }
      case ContentModel::Kind::kPlus: {
        Fragment frag = Visit(node.child());
        for (int l : frag.last) AddAll(follow_[l], frag.first);
        return frag;
      }
    }
    return {};
  }

  std::vector<std::string> labels_;
  std::map<int, std::vector<int>> follow_;

 private:
  Fragment Leaf(std::string label, bool self_loop, bool nullable) {
    int pos = static_cast<int>(labels_.size());
    labels_.push_back(std::move(label));
    Fragment frag;
    frag.nullable = nullable;
    frag.first.push_back(pos);
    frag.last.push_back(pos);
    if (self_loop) follow_[pos].push_back(pos);
    return frag;
  }
};

}  // namespace

Automaton Automaton::Build(const ContentModel& model) {
  Automaton a;
  if (model.kind() == ContentModel::Kind::kAny) {
    a.any_ = true;
    a.successors_.resize(1);
    a.accepting_.assign(1, true);
    return a;
  }
  Builder builder;
  Fragment root = builder.Visit(model);
  a.labels_ = std::move(builder.labels_);
  a.label_ids_.reserve(a.labels_.size());
  for (const std::string& label : a.labels_) {
    a.label_ids_.push_back(util::InternSymbol(label));
  }
  size_t num_states = a.labels_.size() + 1;
  a.successors_.resize(num_states);
  a.accepting_.assign(num_states, false);
  a.successors_[0] = root.first;
  for (auto& [pos, follows] : builder.follow_) {
    a.successors_[pos + 1] = std::move(follows);
  }
  a.accepting_[0] = root.nullable;
  for (int l : root.last) a.accepting_[l + 1] = true;
  return a;
}

bool Automaton::Accepts(const std::vector<std::string>& symbols) const {
  if (any_) return true;
  std::set<int> states = {0};
  for (const std::string& symbol : symbols) {
    std::set<int> next;
    for (int s : states) {
      for (int pos : successors_[s]) {
        if (labels_[pos] == symbol) next.insert(pos + 1);
      }
    }
    if (next.empty()) return false;
    states = std::move(next);
  }
  for (int s : states) {
    if (accepting_[s]) return true;
  }
  return false;
}

bool Automaton::AcceptsIds(const int32_t* ids, size_t count) const {
  if (any_) return true;
  // Subset simulation over reused scratch state sets: state counts are
  // tiny (bounded by the declaration's positions) and deterministic
  // models keep them singletons, so linear-dedup vectors beat node-based
  // sets on the per-element validation path.
  thread_local std::vector<int> states_scratch;
  thread_local std::vector<int> next_scratch;
  std::vector<int>& states = states_scratch;
  std::vector<int>& next = next_scratch;
  states.clear();
  states.push_back(0);
  for (size_t i = 0; i < count; ++i) {
    const int32_t id = ids[i];
    next.clear();
    for (int s : states) {
      for (int pos : successors_[s]) {
        if (label_ids_[pos] == id &&
            std::find(next.begin(), next.end(), pos + 1) == next.end()) {
          next.push_back(pos + 1);
        }
      }
    }
    if (next.empty()) return false;
    states.swap(next);
  }
  for (int s : states) {
    if (accepting_[s]) return true;
  }
  return false;
}

bool Automaton::IsDeterministic() const {
  if (any_) return true;
  for (const std::vector<int>& succ : successors_) {
    for (size_t i = 0; i < succ.size(); ++i) {
      for (size_t j = i + 1; j < succ.size(); ++j) {
        if (succ[i] != succ[j] && labels_[succ[i]] == labels_[succ[j]]) {
          return false;
        }
      }
    }
  }
  return true;
}

namespace {

using StateSet = std::set<int>;

StateSet Step(const Automaton& a, const StateSet& states,
              const std::string& symbol) {
  StateSet next;
  for (int s : states) {
    for (int pos : a.SuccessorsOf(s)) {
      if (a.LabelOfPosition(pos) == symbol) next.insert(pos + 1);
    }
  }
  return next;
}

bool AnyAccepting(const Automaton& a, const StateSet& states) {
  for (int s : states) {
    if (a.IsAccepting(s)) return true;
  }
  return false;
}

std::set<std::string> OutSymbols(const Automaton& a, const StateSet& states) {
  std::set<std::string> out;
  for (int s : states) {
    for (int pos : a.SuccessorsOf(s)) out.insert(a.LabelOfPosition(pos));
  }
  return out;
}

/// Explores the product of the two determinized automata; returns false on
/// the first pair that disagrees. With `subset_only`, only checks that
/// acceptance of `a` implies acceptance of `b` and that `a` never takes a
/// symbol `b` cannot.
bool ComparePair(const Automaton& a, const Automaton& b, bool subset_only) {
  std::set<std::pair<StateSet, StateSet>> visited;
  std::vector<std::pair<StateSet, StateSet>> stack;
  stack.push_back({{0}, {0}});
  while (!stack.empty()) {
    auto [sa, sb] = stack.back();
    stack.pop_back();
    if (!visited.insert({sa, sb}).second) continue;
    bool acc_a = AnyAccepting(a, sa);
    bool acc_b = AnyAccepting(b, sb);
    if (subset_only ? (acc_a && !acc_b) : (acc_a != acc_b)) return false;
    std::set<std::string> symbols = OutSymbols(a, sa);
    if (!subset_only) {
      std::set<std::string> more = OutSymbols(b, sb);
      symbols.insert(more.begin(), more.end());
    }
    for (const std::string& symbol : symbols) {
      StateSet na = Step(a, sa, symbol);
      StateSet nb = Step(b, sb, symbol);
      if (na.empty() && (subset_only || nb.empty())) continue;
      if (na.empty() && !nb.empty()) {
        // `b` accepts continuations `a` does not; harmless for subset and
        // handled by exploring the pair for equivalence. The dead side is
        // represented by the empty set (which accepts nothing).
      }
      stack.push_back({std::move(na), std::move(nb)});
    }
  }
  return true;
}

}  // namespace

bool LanguageEquivalent(const ContentModel& a, const ContentModel& b) {
  bool a_any = a.kind() == ContentModel::Kind::kAny;
  bool b_any = b.kind() == ContentModel::Kind::kAny;
  if (a_any || b_any) return a_any == b_any;
  Automaton aa = Automaton::Build(a);
  Automaton ab = Automaton::Build(b);
  return ComparePair(aa, ab, /*subset_only=*/false);
}

bool LanguageSubset(const ContentModel& a, const ContentModel& b) {
  if (b.kind() == ContentModel::Kind::kAny) return true;
  if (a.kind() == ContentModel::Kind::kAny) return false;
  Automaton aa = Automaton::Build(a);
  Automaton ab = Automaton::Build(b);
  return ComparePair(aa, ab, /*subset_only=*/true);
}

}  // namespace dtdevolve::dtd
