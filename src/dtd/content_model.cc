#include "dtd/content_model.h"

#include <cassert>

namespace dtdevolve::dtd {

ContentModel::Ptr ContentModel::Name(std::string name) {
  Ptr node(new ContentModel(Kind::kName));
  node->name_ = std::move(name);
  return node;
}

ContentModel::Ptr ContentModel::Pcdata() {
  return Ptr(new ContentModel(Kind::kPcdata));
}

ContentModel::Ptr ContentModel::Any() {
  return Ptr(new ContentModel(Kind::kAny));
}

ContentModel::Ptr ContentModel::Empty() {
  return Ptr(new ContentModel(Kind::kEmpty));
}

ContentModel::Ptr ContentModel::Seq(std::vector<Ptr> children) {
  assert(!children.empty());
  Ptr node(new ContentModel(Kind::kAnd));
  node->children_ = std::move(children);
  return node;
}

ContentModel::Ptr ContentModel::Choice(std::vector<Ptr> children) {
  assert(!children.empty());
  Ptr node(new ContentModel(Kind::kOr));
  node->children_ = std::move(children);
  return node;
}

ContentModel::Ptr ContentModel::Opt(Ptr child) {
  assert(child != nullptr);
  Ptr node(new ContentModel(Kind::kOptional));
  node->children_.push_back(std::move(child));
  return node;
}

ContentModel::Ptr ContentModel::Star(Ptr child) {
  assert(child != nullptr);
  Ptr node(new ContentModel(Kind::kStar));
  node->children_.push_back(std::move(child));
  return node;
}

ContentModel::Ptr ContentModel::Plus(Ptr child) {
  assert(child != nullptr);
  Ptr node(new ContentModel(Kind::kPlus));
  node->children_.push_back(std::move(child));
  return node;
}

ContentModel::Ptr ContentModel::Clone() const {
  Ptr copy(new ContentModel(kind_));
  copy->name_ = name_;
  copy->children_.reserve(children_.size());
  for (const Ptr& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  return copy;
}

bool ContentModel::Equals(const ContentModel& other) const {
  if (kind_ != other.kind_ || name_ != other.name_ ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

void ContentModel::ToStringRec(std::string& out, bool top_level) const {
  switch (kind_) {
    case Kind::kName:
      out += name_;
      return;
    case Kind::kPcdata:
      if (top_level) {
        out += "(#PCDATA)";
      } else {
        out += "#PCDATA";
      }
      return;
    case Kind::kAny:
      out += "ANY";
      return;
    case Kind::kEmpty:
      out += "EMPTY";
      return;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = (kind_ == Kind::kAnd) ? "," : "|";
      out += '(';
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        children_[i]->ToStringRec(out, /*top_level=*/false);
      }
      out += ')';
      return;
    }
    case Kind::kOptional:
    case Kind::kStar:
    case Kind::kPlus: {
      const ContentModel& inner = child();
      // A unary operator over a name or #PCDATA needs no parentheses; over
      // another operator the child already parenthesizes itself except for
      // nested unaries, which do need explicit grouping in DTD syntax.
      bool need_parens = inner.is_unary();
      if (need_parens) out += '(';
      inner.ToStringRec(out, /*top_level=*/false);
      if (need_parens) out += ')';
      out += (kind_ == Kind::kOptional) ? '?' : (kind_ == Kind::kStar ? '*' : '+');
      return;
    }
  }
}

std::string ContentModel::ToString() const {
  std::string out;
  // The XML grammar requires a parenthesized group at top level for
  // element content; a bare name `a` is rendered `(a)`, `a?` as `(a?)`,
  // and `#PCDATA*` as `(#PCDATA)*` (the mixed-content form).
  if (kind_ == Kind::kName) {
    out += '(';
    out += name_;
    out += ')';
    return out;
  }
  if (is_unary() && child().is_leaf()) {
    char op = (kind_ == Kind::kOptional) ? '?'
                                         : (kind_ == Kind::kStar ? '*' : '+');
    if (child().kind() == Kind::kPcdata) {
      out += "(#PCDATA)";
      out += op;
      return out;
    }
    out += '(';
    child().ToStringRec(out, /*top_level=*/false);
    out += op;
    out += ')';
    return out;
  }
  ToStringRec(out, /*top_level=*/true);
  return out;
}

size_t ContentModel::NodeCount() const {
  size_t count = 1;
  for (const Ptr& child : children_) count += child->NodeCount();
  return count;
}

std::set<std::string> ContentModel::SymbolSet() const {
  std::set<std::string> out;
  if (kind_ == Kind::kName) {
    out.insert(name_);
    return out;
  }
  for (const Ptr& child : children_) {
    std::set<std::string> sub = child->SymbolSet();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

bool ContentModel::Nullable() const {
  switch (kind_) {
    case Kind::kName:
      return false;
    case Kind::kPcdata:  // character data is never required
    case Kind::kAny:
    case Kind::kEmpty:
    case Kind::kOptional:
    case Kind::kStar:
      return true;
    case Kind::kPlus:
      return child().Nullable();
    case Kind::kAnd:
      for (const Ptr& c : children_) {
        if (!c->Nullable()) return false;
      }
      return true;
    case Kind::kOr:
      for (const Ptr& c : children_) {
        if (c->Nullable()) return true;
      }
      return false;
  }
  return false;
}

bool ContentModel::Mentions(std::string_view name) const {
  if (kind_ == Kind::kName) return name_ == name;
  for (const Ptr& child : children_) {
    if (child->Mentions(name)) return true;
  }
  return false;
}

ContentModel::Ptr SeqOfNames(const std::vector<std::string>& names) {
  std::vector<ContentModel::Ptr> children;
  children.reserve(names.size());
  for (const std::string& name : names) {
    children.push_back(ContentModel::Name(name));
  }
  return ContentModel::Seq(std::move(children));
}

ContentModel::Ptr ChoiceOfNames(const std::vector<std::string>& names) {
  std::vector<ContentModel::Ptr> children;
  children.reserve(names.size());
  for (const std::string& name : names) {
    children.push_back(ContentModel::Name(name));
  }
  return ContentModel::Choice(std::move(children));
}

}  // namespace dtdevolve::dtd
