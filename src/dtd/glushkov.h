#ifndef DTDEVOLVE_DTD_GLUSHKOV_H_
#define DTDEVOLVE_DTD_GLUSHKOV_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dtd/content_model.h"

namespace dtdevolve::dtd {

/// Symbol used for character-data items in child sequences.
inline constexpr std::string_view kPcdataSymbol = "#PCDATA";

/// Interned id of `kPcdataSymbol` in `util::GlobalSymbols()` — the id-side
/// counterpart of the sentinel above.
int32_t PcdataSymbolId();

/// Glushkov (position) automaton of a content model.
///
/// States: 0 is the initial state; state `p + 1` corresponds to position
/// `p` (a linearized occurrence of a leaf). Every transition consumes the
/// label of its target position, so the automaton is ε-free — the property
/// the similarity matcher's shortest-path alignment relies on.
///
/// #PCDATA positions are nullable and self-repeating (character data is
/// never *required* by a DTD, and may appear repeatedly), matching XML
/// validity semantics for `(#PCDATA)` and mixed content.
class Automaton {
 public:
  /// Builds the automaton for `model`. For `ANY`, `is_any()` is true and
  /// the automaton accepts every sequence.
  static Automaton Build(const ContentModel& model);

  /// Number of positions (states excluding the initial one).
  size_t num_positions() const { return labels_.size(); }
  /// Number of states including the initial state 0.
  size_t num_states() const { return labels_.size() + 1; }

  /// Label of position `pos` (0-based).
  const std::string& LabelOfPosition(int pos) const { return labels_[pos]; }

  /// Interned id of the label of position `pos` (see
  /// `util::GlobalSymbols()`), precomputed at build time so the
  /// similarity hot path compares ids instead of strings.
  int32_t LabelIdOfPosition(int pos) const { return label_ids_[pos]; }

  /// All per-position label ids (one entry per position, with
  /// repetitions) — callers derive vocabulary signatures from this.
  const std::vector<int32_t>& position_label_ids() const {
    return label_ids_;
  }

  /// Positions reachable from `state` (consuming their own labels).
  const std::vector<int>& SuccessorsOf(int state) const {
    return successors_[state];
  }

  /// True if `state` is accepting (input may end here).
  bool IsAccepting(int state) const { return accepting_[state]; }

  bool is_any() const { return any_; }

  /// Subset-simulation acceptance test over a symbol sequence (element
  /// tags and `kPcdataSymbol` items).
  bool Accepts(const std::vector<std::string>& symbols) const;

  /// Id-side acceptance test: same subset simulation over interned
  /// symbol ids (element-tag ids and `PcdataSymbolId()`), comparing
  /// `LabelIdOfPosition` instead of strings — the streaming parse path
  /// validates arena trees through this without materializing tag
  /// strings. Every position label carries a real id (build time
  /// interns through the unbounded table), so
  /// `util::SymbolTable::kNoSymbol` never matches; callers holding an
  /// unresolved id must fall back to the string-side `Accepts`.
  bool AcceptsIds(const std::vector<int32_t>& ids) const {
    return AcceptsIds(ids.data(), ids.size());
  }

  /// Span form of `AcceptsIds` for callers feeding a reused scratch
  /// buffer (the recorder validates every element of every document).
  bool AcceptsIds(const int32_t* ids, size_t count) const;

  /// True if no state has two distinct successor positions with the same
  /// label — i.e. the content model is deterministic (1-unambiguous), as
  /// the XML specification requires.
  bool IsDeterministic() const;

 private:
  Automaton() = default;

  bool any_ = false;
  std::vector<std::string> labels_;            // per position
  std::vector<int32_t> label_ids_;             // per position (interned)
  std::vector<std::vector<int>> successors_;   // per state (0..P)
  std::vector<bool> accepting_;                // per state (0..P)
};

/// True if two content models denote the same language (same accepted
/// child-tag sequences), decided by determinization + pair exploration.
/// `ANY` is only equivalent to `ANY`.
bool LanguageEquivalent(const ContentModel& a, const ContentModel& b);

/// True if the language of `a` is contained in the language of `b`.
/// `ANY` contains everything.
bool LanguageSubset(const ContentModel& a, const ContentModel& b);

}  // namespace dtdevolve::dtd

#endif  // DTDEVOLVE_DTD_GLUSHKOV_H_
