#ifndef DTDEVOLVE_DTD_CONTENT_MODEL_H_
#define DTDEVOLVE_DTD_CONTENT_MODEL_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dtdevolve::dtd {

/// A DTD content model as a labeled tree, exactly the paper's
/// representation: internal labels from OP = {AND, OR, ?, *, +}, leaf
/// labels from EN (element names) or ET = {#PCDATA, ANY} (plus EMPTY).
///
/// - kAnd  — a sequence `(a, b, ...)`; at least one child.
/// - kOr   — an alternative `(a | b | ...)`; at least one alternative must
///           be chosen (paper footnote 2); at least one child.
/// - kOptional/kStar/kPlus — unary `?`, `*`, `+`; exactly one child.
/// - kName — a leaf element name.
/// - kPcdata — the #PCDATA leaf. Character data is never *required* by XML
///           (an element declared `(#PCDATA)` may be empty), which the
///           automaton construction accounts for.
/// - kAny / kEmpty — whole-declaration types `ANY` and `EMPTY`.
class ContentModel {
 public:
  enum class Kind {
    kName,
    kPcdata,
    kAny,
    kEmpty,
    kAnd,
    kOr,
    kOptional,
    kStar,
    kPlus,
  };

  using Ptr = std::unique_ptr<ContentModel>;

  /// Factories. Operator factories assert their arity.
  static Ptr Name(std::string name);
  static Ptr Pcdata();
  static Ptr Any();
  static Ptr Empty();
  static Ptr Seq(std::vector<Ptr> children);
  static Ptr Choice(std::vector<Ptr> children);
  static Ptr Opt(Ptr child);
  static Ptr Star(Ptr child);
  static Ptr Plus(Ptr child);

  ContentModel(const ContentModel&) = delete;
  ContentModel& operator=(const ContentModel&) = delete;

  Kind kind() const { return kind_; }
  bool is_leaf() const {
    return kind_ == Kind::kName || kind_ == Kind::kPcdata ||
           kind_ == Kind::kAny || kind_ == Kind::kEmpty;
  }
  bool is_operator() const { return !is_leaf(); }
  bool is_unary() const {
    return kind_ == Kind::kOptional || kind_ == Kind::kStar ||
           kind_ == Kind::kPlus;
  }

  /// Leaf element name; only valid for kName.
  const std::string& name() const { return name_; }

  const std::vector<Ptr>& children() const { return children_; }
  std::vector<Ptr>& children() { return children_; }
  /// The unique child of a unary operator.
  const ContentModel& child() const { return *children_.front(); }

  Ptr Clone() const;

  /// Deep structural equality.
  bool Equals(const ContentModel& other) const;

  /// DTD-syntax rendering, e.g. `(b,c)`, `(d|e)`, `b*`, `(#PCDATA|a)*`.
  /// Top-level leaves render as `(#PCDATA)`, `ANY`, `EMPTY`.
  std::string ToString() const;

  /// Number of nodes in this tree (a DTD-size measure for experiments).
  size_t NodeCount() const;

  /// The paper's function αβ applied to a declaration: names of direct
  /// subelements *independently from the operators*, i.e. every kName leaf.
  std::set<std::string> SymbolSet() const;

  /// True if the empty sequence of children matches this model.
  bool Nullable() const;

  /// True if `name` occurs as a leaf.
  bool Mentions(std::string_view name) const;

 private:
  explicit ContentModel(Kind kind) : kind_(kind) {}

  void ToStringRec(std::string& out, bool top_level) const;

  Kind kind_;
  std::string name_;
  std::vector<Ptr> children_;
};

/// Convenience: builds `Seq`/`Choice` from names for terse test setup.
ContentModel::Ptr SeqOfNames(const std::vector<std::string>& names);
ContentModel::Ptr ChoiceOfNames(const std::vector<std::string>& names);

}  // namespace dtdevolve::dtd

#endif  // DTDEVOLVE_DTD_CONTENT_MODEL_H_
