#ifndef DTDEVOLVE_CLASSIFY_CLASSIFICATION_MEMO_H_
#define DTDEVOLVE_CLASSIFY_CLASSIFICATION_MEMO_H_

#include <array>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "classify/outcome.h"
#include "obs/metrics.h"

namespace dtdevolve::classify {

/// Draws the next process-globally-unique classifier set-epoch. A
/// `Classifier` holds one and re-draws on every mutation that could
/// change any outcome — DTD added/removed/invalidated, σ changed — so a
/// memo entry keyed by an old epoch is unreachable the moment the set
/// evolves, with no purge: exactly the score cache's epoch discipline,
/// lifted from one evaluator to the whole classifier set. Global
/// uniqueness also makes one memo safe to share across any number of
/// classifiers (the multi-tenant `SourceManager` shares one budget).
uint64_t NextClassifierSetEpoch();

/// Sharded, mutex-striped, bounded LRU memo of whole classification
/// outcomes keyed by `(classifier set-epoch, 128-bit root structural
/// fingerprint)`. The fingerprint covers exactly the structure every
/// similarity triple reads (tags + collapsed content-symbol sequence;
/// attribute and text *values* never influence a score), so within one
/// epoch two documents with equal root fingerprints classify
/// identically against every DTD of the set — a hit replays the cached
/// `ClassificationOutcome` and skips scoring entirely. This is the
/// structural-dedup layer: on repetitive corpora (the paper's dynamic
/// streams are highly structurally homogeneous) most documents after
/// the first of each shape cost one hash lookup.
///
/// Thread-safety: all entry points are safe for concurrent use; each of
/// the 16 shards has its own mutex, so batch workers rarely contend.
class ClassificationMemo {
 public:
  struct Config {
    /// Approximate capacity; entries are evicted LRU per shard beyond
    /// it. Outcomes carry a per-DTD score vector, so entry cost is
    /// accounted per entry from the actual vector length.
    size_t capacity_bytes = 32ull << 20;
  };

  struct Key {
    uint64_t epoch = 0;
    uint64_t fp_hi = 0;
    uint64_t fp_lo = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// Monotonic totals since construction (or the last `Clear`).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;

    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  ClassificationMemo();
  explicit ClassificationMemo(Config config);

  ClassificationMemo(const ClassificationMemo&) = delete;
  ClassificationMemo& operator=(const ClassificationMemo&) = delete;

  /// True and `*out` filled on a hit; counts the hit/miss either way.
  bool Lookup(const Key& key, ClassificationOutcome* out);
  /// Inserts (or refreshes) `key`, evicting LRU entries beyond the
  /// shard's byte budget.
  void Insert(const Key& key, const ClassificationOutcome& value);
  /// Drops every entry and resets the statistics.
  void Clear();

  Stats GetStats() const;
  const Config& config() const { return config_; }

  /// Optional `obs` counters bumped alongside the internal stats; any
  /// may be null. Install before concurrent use.
  void set_metrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions) {
    hits_counter_ = hits;
    misses_counter_ = misses;
    evictions_counter_ = evictions;
  }

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    ClassificationOutcome outcome;
    size_t cost = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  static constexpr size_t kNumShards = 16;

  /// Approximate footprint of one entry: fixed node overhead plus the
  /// outcome's per-DTD score entries.
  static size_t EntryCost(const ClassificationOutcome& outcome);

  Shard& ShardFor(const Key& key);

  Config config_;
  size_t max_bytes_per_shard_;
  std::array<Shard, kNumShards> shards_;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace dtdevolve::classify

#endif  // DTDEVOLVE_CLASSIFY_CLASSIFICATION_MEMO_H_
