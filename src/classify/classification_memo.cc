#include "classify/classification_memo.h"

#include <algorithm>
#include <atomic>

#include "xml/fingerprint.h"

namespace dtdevolve::classify {

uint64_t NextClassifierSetEpoch() {
  // Starts at 1 so a zero epoch can never match a drawn one.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

size_t ClassificationMemo::KeyHash::operator()(const Key& key) const {
  uint64_t h = xml::FingerprintMix64(key.fp_hi, key.fp_lo);
  h = xml::FingerprintMix64(h, key.epoch);
  return static_cast<size_t>(h);
}

ClassificationMemo::ClassificationMemo() : ClassificationMemo(Config()) {}

ClassificationMemo::ClassificationMemo(Config config) : config_(config) {
  max_bytes_per_shard_ = std::max<size_t>(
      1024, config_.capacity_bytes / kNumShards);
}

size_t ClassificationMemo::EntryCost(const ClassificationOutcome& outcome) {
  // Key + list node + hash node + outcome header, plus one ScoreEntry
  // (string + double + flag) per DTD of the set.
  size_t cost = 160;
  for (const ScoreEntry& entry : outcome.scores) {
    cost += 64 + entry.dtd_name.size();
  }
  cost += outcome.dtd_name.size();
  return cost;
}

ClassificationMemo::Shard& ClassificationMemo::ShardFor(const Key& key) {
  // fp_lo is already well mixed; the epoch keeps successive set states
  // of one hot structure from pinning a single shard.
  uint64_t h = key.fp_lo ^ (key.epoch * 0xC2B2AE3D27D4EB4Full);
  return shards_[(h >> 56) % kNumShards];
}

bool ClassificationMemo::Lookup(const Key& key, ClassificationOutcome* out) {
  Shard& shard = ShardFor(key);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->outcome;
      ++shard.hits;
      hit = true;
    } else {
      ++shard.misses;
    }
  }
  if (hit) {
    if (hits_counter_ != nullptr) hits_counter_->Increment();
  } else {
    if (misses_counter_ != nullptr) misses_counter_->Increment();
  }
  return hit;
}

void ClassificationMemo::Insert(const Key& key,
                                const ClassificationOutcome& value) {
  Shard& shard = ShardFor(key);
  const size_t cost = EntryCost(value);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->cost;
      it->second->outcome = value;
      it->second->cost = cost;
      shard.bytes += cost;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, value, cost});
      shard.index.emplace(key, shard.lru.begin());
      shard.bytes += cost;
    }
    while (shard.bytes > max_bytes_per_shard_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.cost;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
      ++evicted;
    }
  }
  if (evictions_counter_ != nullptr && evicted > 0) {
    evictions_counter_->Increment(evicted);
  }
}

void ClassificationMemo::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
}

ClassificationMemo::Stats ClassificationMemo::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.index.size();
  }
  return stats;
}

}  // namespace dtdevolve::classify
