#include "classify/classifier.h"

#include <cassert>

namespace dtdevolve::classify {

Classifier::Classifier(double sigma, similarity::SimilarityOptions options)
    : sigma_(sigma), options_(options) {}

void Classifier::AddDtd(const std::string& name, const dtd::Dtd* dtd) {
  assert(dtd != nullptr);
  dtds_[name] = dtd;
  evaluators_.erase(name);
}

bool Classifier::RemoveDtd(const std::string& name) {
  evaluators_.erase(name);
  return dtds_.erase(name) > 0;
}

void Classifier::Invalidate(const std::string& name) {
  evaluators_.erase(name);
}

void Classifier::InvalidateAll() { evaluators_.clear(); }

std::vector<std::string> Classifier::DtdNames() const {
  std::vector<std::string> names;
  names.reserve(dtds_.size());
  for (const auto& [name, dtd] : dtds_) names.push_back(name);
  return names;
}

const similarity::SimilarityEvaluator& Classifier::EvaluatorFor(
    const std::string& name) const {
  auto it = evaluators_.find(name);
  if (it == evaluators_.end()) {
    it = evaluators_
             .emplace(name, std::make_unique<similarity::SimilarityEvaluator>(
                                *dtds_.at(name), options_))
             .first;
  }
  return *it->second;
}

ClassificationOutcome Classifier::Classify(const xml::Document& doc) const {
  ClassificationOutcome outcome;
  for (const auto& [name, dtd] : dtds_) {
    double score = EvaluatorFor(name).DocumentSimilarity(doc);
    outcome.scores.emplace_back(name, score);
    if (score > outcome.similarity ||
        (outcome.dtd_name.empty() && outcome.scores.size() == 1)) {
      outcome.similarity = score;
      outcome.dtd_name = name;
    }
  }
  outcome.classified =
      !outcome.dtd_name.empty() && outcome.similarity >= sigma_;
  return outcome;
}

double Classifier::Similarity(const xml::Document& doc,
                              const std::string& name) const {
  if (dtds_.find(name) == dtds_.end()) return 0.0;
  return EvaluatorFor(name).DocumentSimilarity(doc);
}

}  // namespace dtdevolve::classify
