#include "classify/classifier.h"

#include <cassert>
#include <chrono>

#include "util/thread_pool.h"

namespace dtdevolve::classify {

Classifier::Classifier(double sigma, similarity::SimilarityOptions options)
    : sigma_(sigma), options_(options) {}

void Classifier::AddDtd(const std::string& name, const dtd::Dtd* dtd) {
  assert(dtd != nullptr);
  dtds_[name] = dtd;
  evaluators_[name] =
      std::make_unique<similarity::SimilarityEvaluator>(*dtd, options_);
}

bool Classifier::RemoveDtd(const std::string& name) {
  evaluators_.erase(name);
  return dtds_.erase(name) > 0;
}

void Classifier::Invalidate(const std::string& name) {
  auto it = dtds_.find(name);
  if (it == dtds_.end()) return;
  evaluators_[name] = std::make_unique<similarity::SimilarityEvaluator>(
      *it->second, options_);
}

void Classifier::InvalidateAll() {
  for (const auto& [name, dtd] : dtds_) {
    evaluators_[name] =
        std::make_unique<similarity::SimilarityEvaluator>(*dtd, options_);
  }
}

std::vector<std::string> Classifier::DtdNames() const {
  std::vector<std::string> names;
  names.reserve(dtds_.size());
  for (const auto& [name, dtd] : dtds_) names.push_back(name);
  return names;
}

const similarity::SimilarityEvaluator& Classifier::EvaluatorFor(
    const std::string& name) const {
  auto it = evaluators_.find(name);
  assert(it != evaluators_.end());
  return *it->second;
}

ClassificationOutcome Classifier::Classify(const xml::Document& doc) const {
  // The clock is read only when someone actually installed a histogram,
  // so the uninstrumented hot path pays nothing.
  const auto start = metrics_.score_seconds != nullptr
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point();
  ClassificationOutcome outcome;
  for (const auto& [name, dtd] : dtds_) {
    double score = EvaluatorFor(name).DocumentSimilarity(doc);
    if (metrics_.similarity_evaluations != nullptr) {
      metrics_.similarity_evaluations->Increment();
    }
    outcome.scores.emplace_back(name, score);
    // Highest score wins; among equal best scores the lexicographically
    // smallest name wins. Spelled out so the rule holds whatever order
    // the DTDs are visited in.
    if (outcome.dtd_name.empty() || score > outcome.similarity ||
        (score == outcome.similarity && name < outcome.dtd_name)) {
      outcome.similarity = score;
      outcome.dtd_name = name;
    }
  }
  outcome.classified =
      !outcome.dtd_name.empty() && outcome.similarity >= sigma_;
  if (metrics_.documents_scored != nullptr) {
    metrics_.documents_scored->Increment();
  }
  if (metrics_.score_seconds != nullptr) {
    metrics_.score_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return outcome;
}

std::vector<ClassificationOutcome> Classifier::ClassifyBatch(
    const std::vector<xml::Document>& docs, size_t jobs) const {
  std::vector<ClassificationOutcome> outcomes(docs.size());
  util::ParallelFor(docs.size(), jobs,
                    [&](size_t i) { outcomes[i] = Classify(docs[i]); });
  return outcomes;
}

std::vector<ClassificationOutcome> Classifier::ClassifyBatch(
    const std::vector<const xml::Document*>& docs, size_t jobs) const {
  std::vector<ClassificationOutcome> outcomes(docs.size());
  util::ParallelFor(docs.size(), jobs,
                    [&](size_t i) { outcomes[i] = Classify(*docs[i]); });
  return outcomes;
}

std::vector<ClassificationOutcome> Classifier::ClassifyBatch(
    const std::vector<const xml::Document*>& docs,
    util::ThreadPool* pool) const {
  std::vector<ClassificationOutcome> outcomes(docs.size());
  auto score = [&](size_t i) { outcomes[i] = Classify(*docs[i]); };
  if (pool == nullptr || pool->size() <= 1) {
    for (size_t i = 0; i < docs.size(); ++i) score(i);
  } else {
    pool->ParallelFor(docs.size(), score);
  }
  return outcomes;
}

std::optional<double> Classifier::Similarity(const xml::Document& doc,
                                             const std::string& name) const {
  if (dtds_.find(name) == dtds_.end()) return std::nullopt;
  return EvaluatorFor(name).DocumentSimilarity(doc);
}

}  // namespace dtdevolve::classify
