#include "classify/classifier.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>

#include "util/thread_pool.h"
#include "validate/validator.h"

namespace dtdevolve::classify {

namespace {

/// Float slack of the pruning cutoff: an evaluation is skipped only when
/// its bound is strictly below `best − kPruneSlack`, so bound-vs-exact
/// rounding can never prune the true winner — a pruned DTD's exact score
/// is strictly below the best, which also keeps it out of the
/// equal-score tie-break entirely.
constexpr double kPruneSlack = 1e-9;

}  // namespace

Classifier::Classifier(double sigma, similarity::SimilarityOptions options,
                       ClassifierOptions classifier_options)
    : sigma_(sigma),
      options_(options),
      classifier_options_(classifier_options),
      set_epoch_(NextClassifierSetEpoch()) {
  if (classifier_options_.enable_score_cache) {
    if (classifier_options_.shared_cache != nullptr) {
      shared_cache_ = classifier_options_.shared_cache;
    } else if (classifier_options_.score_cache_bytes > 0) {
      similarity::SubtreeScoreCache::Config config;
      config.capacity_bytes = classifier_options_.score_cache_bytes;
      cache_ = std::make_unique<similarity::SubtreeScoreCache>(config);
    }
  }
  if (classifier_options_.enable_classification_memo) {
    if (classifier_options_.shared_memo != nullptr) {
      shared_memo_ = classifier_options_.shared_memo;
    } else if (classifier_options_.classification_memo_bytes > 0) {
      ClassificationMemo::Config config;
      config.capacity_bytes = classifier_options_.classification_memo_bytes;
      memo_ = std::make_unique<ClassificationMemo>(config);
    }
  }
}

void Classifier::set_metrics(const ClassifierMetrics& metrics) {
  metrics_ = metrics;
  // Cache traffic counters are installed only on an owned cache: a shared
  // cache is wired once by its owner, and letting every sharing
  // classifier re-install its own counters would clobber the others'.
  if (cache_ != nullptr) {
    cache_->set_metrics(metrics.cache_hits, metrics.cache_misses,
                        metrics.cache_evictions);
  }
  // Same owned-only rule for the memo.
  if (memo_ != nullptr) {
    memo_->set_metrics(metrics.memo_hits, metrics.memo_misses,
                       metrics.memo_evictions);
  }
}

void Classifier::AddDtd(const std::string& name, const dtd::Dtd* dtd) {
  assert(dtd != nullptr);
  set_epoch_ = NextClassifierSetEpoch();
  dtds_[name] = dtd;
  auto evaluator =
      std::make_unique<similarity::SimilarityEvaluator>(*dtd, options_);
  evaluator->set_shared_cache(effective_cache());
  evaluators_[name] = std::move(evaluator);
}

bool Classifier::RemoveDtd(const std::string& name) {
  set_epoch_ = NextClassifierSetEpoch();
  evaluators_.erase(name);
  return dtds_.erase(name) > 0;
}

void Classifier::Invalidate(const std::string& name) {
  auto it = dtds_.find(name);
  if (it == dtds_.end()) return;
  // Like the per-evaluator epoch, the set-epoch re-draw is the memo
  // invalidation: outcomes scored against the old declarations are
  // unreachable from here on.
  set_epoch_ = NextClassifierSetEpoch();
  // The fresh evaluator draws a fresh epoch, so every shared-cache entry
  // of the old evaluator is unreachable from here on — epoch keying is
  // the invalidation.
  auto evaluator = std::make_unique<similarity::SimilarityEvaluator>(
      *it->second, options_);
  evaluator->set_shared_cache(effective_cache());
  evaluators_[name] = std::move(evaluator);
}

void Classifier::InvalidateAll() {
  set_epoch_ = NextClassifierSetEpoch();
  for (const auto& [name, dtd] : dtds_) {
    auto evaluator =
        std::make_unique<similarity::SimilarityEvaluator>(*dtd, options_);
    evaluator->set_shared_cache(effective_cache());
    evaluators_[name] = std::move(evaluator);
  }
}

std::vector<std::string> Classifier::DtdNames() const {
  std::vector<std::string> names;
  names.reserve(dtds_.size());
  for (const auto& [name, dtd] : dtds_) names.push_back(name);
  return names;
}

const similarity::SimilarityEvaluator& Classifier::EvaluatorFor(
    const std::string& name) const {
  auto it = evaluators_.find(name);
  assert(it != evaluators_.end());
  return *it->second;
}

ClassificationOutcome Classifier::Classify(const xml::Document& doc) const {
  // The clock is read only when someone actually installed a histogram,
  // so the uninstrumented hot path pays nothing.
  const auto start = metrics_.score_seconds != nullptr
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point();
  ClassificationOutcome outcome;
  outcome.scores.resize(dtds_.size());

  // Per-document work shared by every DTD: the root content symbols feed
  // the score bounds, the subtree fingerprints feed the shared cache and
  // the classification memo.
  const bool prune = classifier_options_.enable_pruning && dtds_.size() > 1;
  std::vector<int32_t> root_symbol_ids;
  if (prune && doc.has_root()) {
    root_symbol_ids = validate::ContentSymbolIds(doc.root());
  }
  ClassificationMemo* memo = effective_memo();
  std::optional<similarity::SubtreeFingerprints> fingerprints;
  if ((effective_cache() != nullptr || memo != nullptr) && doc.has_root()) {
    fingerprints.emplace(doc.root());
  }
  const similarity::SubtreeFingerprints* fingerprints_ptr =
      effective_cache() != nullptr && fingerprints ? &*fingerprints : nullptr;

  // Memo probe: within one set-epoch, equal root fingerprints imply an
  // identical outcome against every DTD — replay it and skip scoring.
  ClassificationMemo::Key memo_key;
  bool memoizable = false;
  if (memo != nullptr && fingerprints) {
    const similarity::SubtreeStats* root_stats =
        fingerprints->Find(&doc.root());
    if (root_stats != nullptr) {
      memo_key = {set_epoch_, root_stats->fp_hi, root_stats->fp_lo};
      memoizable = true;
      if (memo->Lookup(memo_key, &outcome)) {
        if (metrics_.documents_scored != nullptr) {
          metrics_.documents_scored->Increment();
        }
        if (metrics_.score_seconds != nullptr) {
          metrics_.score_seconds->Observe(
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count());
        }
        return outcome;
      }
    }
  }

  struct Candidate {
    size_t index = 0;  // position in name order == outcome.scores slot
    const std::string* name = nullptr;
    const similarity::SimilarityEvaluator* evaluator = nullptr;
    double bound = 0.0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(dtds_.size());
  {
    size_t index = 0;
    for (const auto& [name, dtd] : dtds_) {
      Candidate c;
      c.index = index++;
      c.name = &name;
      c.evaluator = &EvaluatorFor(name);
      c.bound = prune ? c.evaluator->ScoreUpperBound(doc, root_symbol_ids)
                      : 0.0;
      candidates.push_back(c);
    }
  }
  if (prune) {
    // Highest bound first; names break ties so the visit order (and with
    // it which equal-bound DTD seeds `best`) is deterministic.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.bound != b.bound) return a.bound > b.bound;
                       return *a.name < *b.name;
                     });
  }

  const std::string* best_name = nullptr;
  double best_score = 0.0;
  for (const Candidate& c : candidates) {
    // Never prune before a first exact score exists; afterwards skip any
    // DTD whose bound cannot beat it. σ is deliberately not part of the
    // cutoff: the best sub-σ score must still be reported exactly. With
    // pruning disabled every bound is a meaningless 0.0, so the cutoff
    // must not fire at all — every DTD gets an exact evaluation.
    if (prune && best_name != nullptr && c.bound < best_score - kPruneSlack) {
      outcome.scores[c.index] = {*c.name, c.bound, /*pruned=*/true};
      if (metrics_.evaluations_pruned != nullptr) {
        metrics_.evaluations_pruned->Increment();
      }
      continue;
    }
    double score = c.evaluator->DocumentSimilarity(doc, fingerprints_ptr);
    if (metrics_.similarity_evaluations != nullptr) {
      metrics_.similarity_evaluations->Increment();
    }
    outcome.scores[c.index] = {*c.name, score, /*pruned=*/false};
    // Highest score wins; among equal best scores the lexicographically
    // smallest name wins. Spelled out so the rule holds whatever order
    // the DTDs are visited in.
    if (best_name == nullptr || score > best_score ||
        (score == best_score && *c.name < *best_name)) {
      best_score = score;
      best_name = c.name;
    }
  }
  if (best_name != nullptr) {
    outcome.dtd_name = *best_name;
    outcome.similarity = best_score;
  }
  outcome.classified =
      !outcome.dtd_name.empty() && outcome.similarity >= sigma_;
  if (memoizable) memo->Insert(memo_key, outcome);
  if (metrics_.documents_scored != nullptr) {
    metrics_.documents_scored->Increment();
  }
  if (metrics_.score_seconds != nullptr) {
    metrics_.score_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return outcome;
}

std::optional<ClassificationOutcome> Classifier::MemoProbe(
    const xml::ArenaDocument& doc) const {
  ClassificationMemo* memo = effective_memo();
  if (memo == nullptr || !doc.has_root()) return std::nullopt;
  const xml::ArenaElement& root = doc.root();
  ClassificationMemo::Key key{set_epoch_, root.fp_hi, root.fp_lo};
  ClassificationOutcome outcome;
  if (!memo->Lookup(key, &outcome)) return std::nullopt;
  if (metrics_.documents_scored != nullptr) {
    metrics_.documents_scored->Increment();
  }
  return outcome;
}

ClassificationOutcome Classifier::ClassifyArena(
    const xml::ArenaDocument& doc,
    std::optional<xml::Document>* materialized) const {
  if (std::optional<ClassificationOutcome> replayed = MemoProbe(doc)) {
    return *std::move(replayed);
  }
  // Miss (or memo off): materialize once and take the DOM path, which
  // inserts under the identical key — the arena fingerprint equals the
  // DOM fingerprint of the materialized tree by construction.
  materialized->emplace(doc.ToDocument());
  return Classify(**materialized);
}

std::vector<ClassificationOutcome> Classifier::ClassifyBatch(
    const std::vector<xml::Document>& docs, size_t jobs) const {
  std::vector<ClassificationOutcome> outcomes(docs.size());
  util::ParallelFor(docs.size(), jobs,
                    [&](size_t i) { outcomes[i] = Classify(docs[i]); });
  return outcomes;
}

std::vector<ClassificationOutcome> Classifier::ClassifyBatch(
    const std::vector<const xml::Document*>& docs, size_t jobs) const {
  std::vector<ClassificationOutcome> outcomes(docs.size());
  util::ParallelFor(docs.size(), jobs,
                    [&](size_t i) { outcomes[i] = Classify(*docs[i]); });
  return outcomes;
}

std::vector<ClassificationOutcome> Classifier::ClassifyBatch(
    const std::vector<const xml::Document*>& docs,
    util::ThreadPool* pool) const {
  std::vector<ClassificationOutcome> outcomes(docs.size());
  auto score = [&](size_t i) { outcomes[i] = Classify(*docs[i]); };
  if (pool == nullptr || pool->size() <= 1) {
    for (size_t i = 0; i < docs.size(); ++i) score(i);
  } else {
    pool->ParallelFor(docs.size(), score);
  }
  return outcomes;
}

std::optional<double> Classifier::Similarity(const xml::Document& doc,
                                             const std::string& name) const {
  if (dtds_.find(name) == dtds_.end()) return std::nullopt;
  return EvaluatorFor(name).DocumentSimilarity(doc);
}

std::optional<double> Classifier::ScoreBound(const xml::Document& doc,
                                             const std::string& name) const {
  if (dtds_.find(name) == dtds_.end()) return std::nullopt;
  std::vector<int32_t> root_symbol_ids;
  if (doc.has_root()) {
    root_symbol_ids = validate::ContentSymbolIds(doc.root());
  }
  return EvaluatorFor(name).ScoreUpperBound(doc, root_symbol_ids);
}

}  // namespace dtdevolve::classify
