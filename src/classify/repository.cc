#include "classify/repository.h"

#include <utility>

namespace dtdevolve::classify {

int Repository::Add(xml::Document doc) {
  int id = next_id_++;
  docs_.emplace(id, std::move(doc));
  return id;
}

std::vector<int> Repository::Ids() const {
  std::vector<int> ids;
  ids.reserve(docs_.size());
  for (const auto& [id, doc] : docs_) ids.push_back(id);
  return ids;
}

xml::Document Repository::Take(int id) {
  auto it = docs_.find(id);
  xml::Document doc = std::move(it->second);
  docs_.erase(it);
  return doc;
}

}  // namespace dtdevolve::classify
