#ifndef DTDEVOLVE_CLASSIFY_CLASSIFIER_H_
#define DTDEVOLVE_CLASSIFY_CLASSIFIER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "classify/classification_memo.h"
#include "classify/outcome.h"
#include "dtd/dtd.h"
#include "obs/metrics.h"
#include "similarity/score_cache.h"
#include "similarity/similarity.h"
#include "util/thread_pool.h"
#include "xml/arena.h"
#include "xml/document.h"

namespace dtdevolve::classify {

/// Optional instrumentation of the scoring hot path. All pointers may be
/// null (the corresponding signal is skipped); the pointees must outlive
/// the classifier. Counters and histograms are internally atomic, so the
/// hooks fire safely from `ClassifyBatch` worker threads.
struct ClassifierMetrics {
  /// One increment per document scored (any entry point).
  obs::Counter* documents_scored = nullptr;
  /// One increment per document × DTD similarity evaluation.
  obs::Counter* similarity_evaluations = nullptr;
  /// One increment per document × DTD evaluation skipped because its
  /// score bound could not beat the best score already found.
  obs::Counter* evaluations_pruned = nullptr;
  /// Shared subtree score cache traffic (see SubtreeScoreCache).
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_evictions = nullptr;
  /// Classification memo traffic (see ClassificationMemo). A memo hit
  /// counts on `documents_scored` but performs zero similarity
  /// evaluations.
  obs::Counter* memo_hits = nullptr;
  obs::Counter* memo_misses = nullptr;
  obs::Counter* memo_evictions = nullptr;
  /// Wall-clock seconds spent scoring one document against the full set.
  obs::Histogram* score_seconds = nullptr;
};

/// Fast-path knobs of the classifier. Both layers are score-equivalent:
/// enabling or disabling them never changes `classified` / `dtd_name` /
/// `similarity` (only how much work is spent computing them), which the
/// differential oracle's batch-divergence invariant enforces end to end.
struct ClassifierOptions {
  /// Score-bound pruning: sort DTDs by a conservative per-document upper
  /// bound and skip evaluations that cannot beat the best score so far.
  bool enable_pruning = true;
  /// Shared cross-document subtree score cache.
  bool enable_score_cache = true;
  /// Approximate capacity of the shared cache.
  size_t score_cache_bytes = 64ull << 20;
  /// Optional process-wide cache to use instead of an owned one. Non-
  /// owning: the pointee must outlive the classifier. Epoch keying makes
  /// one cache safe to share across any number of classifiers (each
  /// evaluator draws a globally unique epoch), which the multi-tenant
  /// `SourceManager` relies on to share a single budget across shards.
  /// Ignored when `enable_score_cache` is false. A classifier using a
  /// shared cache never installs its own metrics on it (the cache owner
  /// wires aggregate counters once); `score_cache_bytes` is likewise the
  /// owner's concern.
  similarity::SubtreeScoreCache* shared_cache = nullptr;
  /// Classified-structure dedup: memoize whole outcomes by
  /// `(set-epoch, root fingerprint)` so a document whose root
  /// fingerprint matches an already-classified structure skips scoring
  /// entirely. Score-equivalent like the other layers — a hit replays
  /// byte-identical `classified` / `dtd_name` / `similarity` / `scores`,
  /// because the fingerprint determines every triple and the epoch pins
  /// the DTD set and σ.
  bool enable_classification_memo = true;
  /// Approximate capacity of the owned memo.
  size_t classification_memo_bytes = 32ull << 20;
  /// Optional process-wide memo (same sharing contract as
  /// `shared_cache`: non-owning, epoch keying makes it safe across
  /// classifiers, the owner wires metrics and sizes it).
  ClassificationMemo* shared_memo = nullptr;
};

/// Classifies documents against a *set of DTDs* (§2): each document is
/// matched against every DTD with the structural-similarity measure; it
/// becomes an instance of the best-scoring DTD when that score is ≥ σ,
/// and is otherwise left to the repository of unclassified documents.
///
/// Tie-break: the best-scoring DTD wins; among equal best scores the
/// lexicographically smallest name wins, independently of registration or
/// container order. `ClassifyBatch` follows the same rule.
///
/// Fast path: the document's root content symbols and subtree
/// fingerprints are derived once, every DTD gets a conservative score
/// upper bound (root-tag gate + label-vocabulary overlap — see
/// `SimilarityEvaluator::ScoreUpperBound`), DTDs are visited in
/// bound-descending order, and an evaluation is skipped when its bound
/// cannot beat the best score already found. Pruning never consults σ:
/// folding σ into the cutoff would leave the best score unknown for
/// sub-σ documents and break byte-identical outcomes. Subtree triples
/// are additionally shared across documents and batch workers through a
/// `SubtreeScoreCache` keyed by evaluator epoch, which `Invalidate` /
/// `InvalidateAll` bump implicitly by rebuilding evaluators.
///
/// The classifier holds non-owning pointers to the DTDs; call
/// `Invalidate` after a DTD object changes (e.g. after evolution) so the
/// cached evaluator is rebuilt.
///
/// Thread-safety: evaluators are built eagerly by the mutating entry
/// points (`AddDtd`, `Invalidate`, …), so the const entry points
/// (`Classify`, `ClassifyBatch`, `Similarity`, `DtdNames`) mutate nothing
/// (the shared cache is internally synchronized) and may be called
/// concurrently from any number of threads, as long as no thread is
/// mutating the DTD set at the same time. The mutating entry points
/// themselves require external serialization (`XmlSource` calls them
/// only between batches).
class Classifier {
 public:
  explicit Classifier(double sigma, similarity::SimilarityOptions options = {},
                      ClassifierOptions classifier_options = {});

  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  double sigma() const { return sigma_; }
  void set_sigma(double sigma) {
    sigma_ = sigma;
    // σ participates in `classified`, so memoized outcomes under the old
    // threshold must become unreachable.
    set_epoch_ = NextClassifierSetEpoch();
  }

  const ClassifierOptions& classifier_options() const {
    return classifier_options_;
  }

  /// Installs (or clears, with a default-constructed value) the scoring
  /// instrumentation. Mutating entry point: do not call concurrently
  /// with scoring.
  void set_metrics(const ClassifierMetrics& metrics);

  /// Registers (or re-registers) a DTD under `name` and builds its
  /// evaluator. The pointee must outlive the classifier or its next
  /// `Invalidate(name)`.
  void AddDtd(const std::string& name, const dtd::Dtd* dtd);
  /// Removes a DTD from the set; returns false when unknown.
  bool RemoveDtd(const std::string& name);
  /// Rebuilds the cached evaluator of `name` (the DTD object changed).
  /// The fresh evaluator draws a new epoch, orphaning the stale shared-
  /// cache entries of the old one.
  void Invalidate(const std::string& name);
  void InvalidateAll();

  std::vector<std::string> DtdNames() const;
  size_t size() const { return dtds_.size(); }

  /// Classifies `doc` against every registered DTD.
  ClassificationOutcome Classify(const xml::Document& doc) const;

  /// Classifies a streaming-parsed document, memo-first: the arena
  /// carries the root fingerprint from the parse, so a hit replays the
  /// cached outcome without materializing a DOM at all. On a miss (or
  /// with the memo off) the document is materialized once into
  /// `*materialized` and scored through `Classify` — which inserts the
  /// outcome into the memo under the identical key, because arena and
  /// DOM fingerprints are bit-identical by construction — and the
  /// caller reuses the DOM (repository add, keep_documents) instead of
  /// converting twice. `*materialized` stays empty on a memo hit.
  ClassificationOutcome ClassifyArena(
      const xml::ArenaDocument& doc,
      std::optional<xml::Document>* materialized) const;

  /// Memo-probe half of `ClassifyArena`: replays the cached outcome for
  /// the arena root's fingerprint under the current set-epoch, or
  /// returns nullopt (memo off, rootless document, or a miss) without
  /// scoring anything. Batch callers use this to split a chunk into
  /// replayed hits and to-be-scored misses.
  std::optional<ClassificationOutcome> MemoProbe(
      const xml::ArenaDocument& doc) const;

  /// Classifies every document concurrently on `jobs` threads (≤ 1 runs
  /// inline). Scoring is read-only, so the result is identical — entry by
  /// entry — to calling `Classify` on each document in order.
  std::vector<ClassificationOutcome> ClassifyBatch(
      const std::vector<xml::Document>& docs, size_t jobs) const;
  /// Pointer variant for callers whose documents live elsewhere (e.g. the
  /// repository). Entries must be non-null.
  std::vector<ClassificationOutcome> ClassifyBatch(
      const std::vector<const xml::Document*>& docs, size_t jobs) const;
  /// Scores on an existing pool so repeated rounds (the chunks of
  /// `XmlSource::ProcessBatch`) don't respawn threads; `pool == nullptr`
  /// scores inline.
  std::vector<ClassificationOutcome> ClassifyBatch(
      const std::vector<const xml::Document*>& docs,
      util::ThreadPool* pool) const;

  /// Similarity of `doc` against one registered DTD; nullopt when `name`
  /// is unknown (distinguishable from a genuine zero score).
  std::optional<double> Similarity(const xml::Document& doc,
                                   const std::string& name) const;

  /// The conservative score upper bound the pruning layer would use for
  /// `doc` against DTD `name`; nullopt when `name` is unknown. Exposed
  /// for analysis and for the bound-admissibility property tests.
  std::optional<double> ScoreBound(const xml::Document& doc,
                                   const std::string& name) const;

  /// The subtree score cache in use (owned or shared), or nullptr when
  /// disabled.
  const similarity::SubtreeScoreCache* score_cache() const {
    return effective_cache();
  }

  /// The classification memo in use (owned or shared), or nullptr when
  /// disabled.
  const ClassificationMemo* classification_memo() const {
    return effective_memo();
  }

  /// The current set-epoch (changes on every outcome-relevant mutation);
  /// exposed for the memo-discipline tests.
  uint64_t set_epoch() const { return set_epoch_; }

 private:
  const similarity::SimilarityEvaluator& EvaluatorFor(
      const std::string& name) const;

  /// The cache evaluators score through: the externally shared one when
  /// configured, else the owned one, else nullptr (caching disabled).
  similarity::SubtreeScoreCache* effective_cache() const {
    return shared_cache_ != nullptr ? shared_cache_ : cache_.get();
  }

  /// The memo outcomes replay through: shared over owned, else nullptr.
  ClassificationMemo* effective_memo() const {
    return shared_memo_ != nullptr ? shared_memo_ : memo_.get();
  }

  double sigma_;
  similarity::SimilarityOptions options_;
  ClassifierOptions classifier_options_;
  ClassifierMetrics metrics_;
  std::map<std::string, const dtd::Dtd*> dtds_;
  /// Always holds exactly one (eagerly built) evaluator per entry of
  /// `dtds_` — maintained by the mutating entry points, never from const
  /// methods.
  std::map<std::string, std::unique_ptr<similarity::SimilarityEvaluator>>
      evaluators_;
  /// Shared across every evaluator, every document and every batch
  /// worker; null when `enable_score_cache` is off or an external cache
  /// was supplied.
  std::unique_ptr<similarity::SubtreeScoreCache> cache_;
  /// Externally owned process-wide cache (ClassifierOptions::shared_cache)
  /// — takes precedence over `cache_`; null when not sharing.
  similarity::SubtreeScoreCache* shared_cache_ = nullptr;
  /// Owned classification memo; null when disabled or sharing.
  std::unique_ptr<ClassificationMemo> memo_;
  /// Externally owned process-wide memo — takes precedence over `memo_`.
  ClassificationMemo* shared_memo_ = nullptr;
  /// Epoch of the current DTD-set + σ state, re-drawn (globally unique)
  /// by every mutating entry point; the memo key's first component.
  uint64_t set_epoch_ = 0;
};

}  // namespace dtdevolve::classify

#endif  // DTDEVOLVE_CLASSIFY_CLASSIFIER_H_
