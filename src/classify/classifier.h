#ifndef DTDEVOLVE_CLASSIFY_CLASSIFIER_H_
#define DTDEVOLVE_CLASSIFY_CLASSIFIER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dtd/dtd.h"
#include "similarity/similarity.h"
#include "xml/document.h"

namespace dtdevolve::classify {

/// Outcome of classifying one document against the DTD set.
struct ClassificationOutcome {
  /// True when the best similarity reached the threshold σ.
  bool classified = false;
  /// Name of the best-matching DTD (meaningful even when unclassified,
  /// unless the set is empty).
  std::string dtd_name;
  /// Best similarity value.
  double similarity = 0.0;
  /// Similarity against every DTD in the set, for analysis.
  std::vector<std::pair<std::string, double>> scores;
};

/// Classifies documents against a *set of DTDs* (§2): each document is
/// matched against every DTD with the structural-similarity measure; it
/// becomes an instance of the best-scoring DTD when that score is ≥ σ,
/// and is otherwise left to the repository of unclassified documents.
///
/// The classifier holds non-owning pointers to the DTDs; call
/// `Invalidate` after a DTD object changes (e.g. after evolution) so the
/// cached evaluator is rebuilt.
class Classifier {
 public:
  explicit Classifier(double sigma,
                      similarity::SimilarityOptions options = {});

  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  double sigma() const { return sigma_; }
  void set_sigma(double sigma) { sigma_ = sigma; }

  /// Registers (or re-registers) a DTD under `name`. The pointee must
  /// outlive the classifier or its next `Invalidate(name)`.
  void AddDtd(const std::string& name, const dtd::Dtd* dtd);
  /// Removes a DTD from the set; returns false when unknown.
  bool RemoveDtd(const std::string& name);
  /// Drops the cached evaluator of `name` (the DTD object changed).
  void Invalidate(const std::string& name);
  void InvalidateAll();

  std::vector<std::string> DtdNames() const;
  size_t size() const { return dtds_.size(); }

  /// Classifies `doc` against every registered DTD.
  ClassificationOutcome Classify(const xml::Document& doc) const;

  /// Similarity of `doc` against one registered DTD (0 when unknown).
  double Similarity(const xml::Document& doc, const std::string& name) const;

 private:
  const similarity::SimilarityEvaluator& EvaluatorFor(
      const std::string& name) const;

  double sigma_;
  similarity::SimilarityOptions options_;
  std::map<std::string, const dtd::Dtd*> dtds_;
  mutable std::map<std::string, std::unique_ptr<similarity::SimilarityEvaluator>>
      evaluators_;
};

}  // namespace dtdevolve::classify

#endif  // DTDEVOLVE_CLASSIFY_CLASSIFIER_H_
