#ifndef DTDEVOLVE_CLASSIFY_REPOSITORY_H_
#define DTDEVOLVE_CLASSIFY_REPOSITORY_H_

#include <map>
#include <vector>

#include "xml/document.h"

namespace dtdevolve::classify {

/// The repository of unclassified documents (§2): documents whose best
/// similarity stayed below σ wait here and are re-classified after every
/// evolution round.
class Repository {
 public:
  Repository() = default;

  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  /// Stores a document; returns its repository id.
  int Add(xml::Document doc);

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Ids of all stored documents, ascending.
  std::vector<int> Ids() const;

  bool Has(int id) const { return docs_.find(id) != docs_.end(); }

  /// Must be called with a valid id.
  const xml::Document& Get(int id) const { return docs_.at(id); }

  /// Removes the document and returns it; must be called with a valid id.
  xml::Document Take(int id);

  /// Re-inserts a persisted document under its original id (crash
  /// recovery, see store/checkpoint.h). Ids matter: re-classification
  /// visits documents in ascending-id order, so restoring them under
  /// fresh ids would change replay outcomes. Later `Add` calls continue
  /// above every restored id.
  void Restore(int id, xml::Document doc) {
    if (id >= next_id_) next_id_ = id + 1;
    docs_.insert_or_assign(id, std::move(doc));
  }

  /// The id the next `Add` will assign. Persisted in checkpoints: after
  /// an eviction the counter is ahead of max(id)+1, and replaying WAL
  /// eviction records (which name explicit ids) against a restored
  /// repository only lines up when post-restore `Add` calls assign the
  /// same ids the live run did.
  int next_id() const { return next_id_; }

  /// Raises the id counter to `next` (never lowers it — restored docs
  /// may already have pushed it higher).
  void SetNextId(int next) {
    if (next > next_id_) next_id_ = next;
  }

  void Clear() { docs_.clear(); }

 private:
  int next_id_ = 0;
  std::map<int, xml::Document> docs_;
};

}  // namespace dtdevolve::classify

#endif  // DTDEVOLVE_CLASSIFY_REPOSITORY_H_
