#ifndef DTDEVOLVE_CLASSIFY_OUTCOME_H_
#define DTDEVOLVE_CLASSIFY_OUTCOME_H_

#include <string>
#include <vector>

namespace dtdevolve::classify {

/// Similarity of one DTD in `ClassificationOutcome::scores`.
struct ScoreEntry {
  std::string dtd_name;
  /// Exact similarity when `pruned` is false; the conservative upper
  /// bound the pruning decision was made on when `pruned` is true (the
  /// exact score is ≤ this bound, and strictly below the winner's).
  double similarity = 0.0;
  bool pruned = false;

  friend bool operator==(const ScoreEntry&, const ScoreEntry&) = default;
};

/// Outcome of classifying one document against the DTD set.
struct ClassificationOutcome {
  /// True when the best similarity reached the threshold σ.
  bool classified = false;
  /// Name of the best-matching DTD (meaningful even when unclassified,
  /// unless the set is empty).
  std::string dtd_name;
  /// Best similarity value.
  double similarity = 0.0;
  /// Per-DTD entries in DTD-name order, for analysis. Entries whose
  /// evaluation was skipped by score-bound pruning are marked `pruned`.
  std::vector<ScoreEntry> scores;
};

}  // namespace dtdevolve::classify

#endif  // DTDEVOLVE_CLASSIFY_OUTCOME_H_
