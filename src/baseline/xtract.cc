#include "baseline/xtract.h"

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "baseline/collect.h"
#include "baseline/naive_infer.h"
#include "dtd/glushkov.h"
#include "dtd/rewrite.h"

namespace dtdevolve::baseline {

namespace {

using Ptr = dtd::ContentModel::Ptr;

/// Run-collapses a child sequence: `a a b` → [(a, 2), (b, 1)].
std::vector<std::pair<std::string, uint64_t>> CollapseRuns(
    const std::vector<std::string>& sequence) {
  std::vector<std::pair<std::string, uint64_t>> runs;
  for (const std::string& tag : sequence) {
    if (!runs.empty() && runs.back().first == tag) {
      ++runs.back().second;
    } else {
      runs.emplace_back(tag, 1);
    }
  }
  return runs;
}

Ptr SequenceToModel(const std::vector<std::string>& sequence) {
  std::vector<std::pair<std::string, uint64_t>> runs = CollapseRuns(sequence);
  if (runs.empty()) return dtd::ContentModel::Empty();
  std::vector<Ptr> parts;
  parts.reserve(runs.size());
  for (const auto& [tag, count] : runs) {
    Ptr leaf = dtd::ContentModel::Name(tag);
    if (count > 1) leaf = dtd::ContentModel::Plus(std::move(leaf));
    parts.push_back(std::move(leaf));
  }
  if (parts.size() == 1) return std::move(parts.front());
  return dtd::ContentModel::Seq(std::move(parts));
}

double Log2(double x) { return std::log2(x); }

struct Candidate {
  Ptr model;
  double data_bits = 0.0;
};

/// Candidate 1: enumeration of the distinct run-collapsed sequences.
Candidate EnumerationCandidate(const TagContent& content) {
  Candidate candidate;
  std::map<std::string, Ptr> branches;  // keyed by rendering, for dedup
  for (const auto& [sequence, count] : content.sequences) {
    Ptr model = SequenceToModel(sequence);
    branches.emplace(model->ToString(), std::move(model));
  }
  const double branch_bits =
      branches.size() > 1 ? Log2(static_cast<double>(branches.size())) : 0.0;
  for (const auto& [sequence, count] : content.sequences) {
    double bits = branch_bits;
    for (const auto& [tag, run] : CollapseRuns(sequence)) {
      if (run > 1) bits += Log2(static_cast<double>(run) + 1.0);
    }
    candidate.data_bits += bits * static_cast<double>(count);
  }
  std::vector<Ptr> alternatives;
  alternatives.reserve(branches.size());
  for (auto& [key, model] : branches) alternatives.push_back(std::move(model));
  candidate.model = alternatives.size() == 1
                        ? std::move(alternatives.front())
                        : dtd::ContentModel::Choice(std::move(alternatives));
  return candidate;
}

/// Candidate 2: (l1 | l2 | …)* — accepts everything over the alphabet.
Candidate StarOfChoiceCandidate(const TagContent& content,
                                const std::set<std::string>& alphabet) {
  Candidate candidate;
  const double symbol_bits = Log2(static_cast<double>(alphabet.size()) + 1.0);
  for (const auto& [sequence, count] : content.sequences) {
    candidate.data_bits += static_cast<double>(count) *
                           (static_cast<double>(sequence.size()) + 1.0) *
                           symbol_bits;
  }
  std::vector<Ptr> alternatives;
  for (const std::string& tag : alphabet) {
    alternatives.push_back(dtd::ContentModel::Name(tag));
  }
  Ptr inner = alternatives.size() == 1
                  ? std::move(alternatives.front())
                  : dtd::ContentModel::Choice(std::move(alternatives));
  candidate.model = dtd::ContentModel::Star(std::move(inner));
  return candidate;
}

/// Candidate 3: the union-sequence model, if it accepts every sequence.
Candidate UnionCandidate(const TagContent& content, bool& valid) {
  Candidate candidate;
  candidate.model = InferNaiveModel(content);
  dtd::Automaton automaton = dtd::Automaton::Build(*candidate.model);
  valid = true;
  for (const auto& [sequence, count] : content.sequences) {
    if (!automaton.Accepts(sequence)) {
      valid = false;
      return candidate;
    }
    // Encoding: one presence bit per optional label, a count per
    // repeatable label.
    double bits = 0.0;
    std::map<std::string, uint64_t> counts;
    for (const std::string& tag : sequence) ++counts[tag];
    for (const std::string& label : candidate.model->SymbolSet()) {
      uint64_t n = counts.count(label) ? counts[label] : 0;
      bits += 1.0;  // presence bit
      if (n > 1) bits += Log2(static_cast<double>(n) + 1.0);
    }
    candidate.data_bits += bits * static_cast<double>(count);
  }
  return candidate;
}

Ptr InferTagModel(const TagContent& content, const XtractOptions& options) {
  // Alphabet of observed child tags.
  std::set<std::string> alphabet;
  for (const auto& [sequence, count] : content.sequences) {
    alphabet.insert(sequence.begin(), sequence.end());
  }
  if (alphabet.empty()) {
    return content.text_instances > 0 ? dtd::ContentModel::Pcdata()
                                      : dtd::ContentModel::Empty();
  }
  if (content.text_instances > 0) {
    std::vector<Ptr> alternatives;
    alternatives.push_back(dtd::ContentModel::Pcdata());
    for (const std::string& tag : alphabet) {
      alternatives.push_back(dtd::ContentModel::Name(tag));
    }
    return dtd::ContentModel::Star(
        dtd::ContentModel::Choice(std::move(alternatives)));
  }

  const double symbol_bits = Log2(static_cast<double>(alphabet.size()) + 6.0);
  std::vector<Candidate> candidates;
  candidates.push_back(EnumerationCandidate(content));
  candidates.push_back(StarOfChoiceCandidate(content, alphabet));
  bool union_valid = false;
  Candidate union_candidate = UnionCandidate(content, union_valid);
  if (union_valid) candidates.push_back(std::move(union_candidate));

  double best_cost = std::numeric_limits<double>::infinity();
  size_t best = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double model_bits =
        static_cast<double>(candidates[i].model->NodeCount()) * symbol_bits;
    double cost = options.model_weight * model_bits + candidates[i].data_bits;
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return dtd::Simplify(std::move(candidates[best].model));
}

dtd::Dtd InferFromContent(const std::map<std::string, TagContent>& content,
                          const std::string& root_name,
                          const XtractOptions& options) {
  dtd::Dtd dtd(root_name);
  auto root_it = content.find(root_name);
  if (root_it != content.end()) {
    dtd.DeclareElement(root_name, InferTagModel(root_it->second, options));
  }
  for (const auto& [tag, tag_content] : content) {
    if (tag == root_name) continue;
    dtd.DeclareElement(tag, InferTagModel(tag_content, options));
  }
  return dtd;
}

}  // namespace

dtd::Dtd InferXtractDtd(const std::vector<const xml::Element*>& roots,
                        const std::string& root_name,
                        const XtractOptions& options) {
  return InferFromContent(CollectTagContent(roots), root_name, options);
}

dtd::Dtd InferXtractDtd(const std::vector<xml::Document>& docs,
                        const std::string& root_name,
                        const XtractOptions& options) {
  return InferFromContent(CollectTagContent(docs), root_name, options);
}

}  // namespace dtdevolve::baseline
