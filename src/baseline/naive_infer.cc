#include "baseline/naive_infer.h"

#include <algorithm>
#include <map>

#include "baseline/collect.h"

namespace dtdevolve::baseline {

namespace {

using Ptr = dtd::ContentModel::Ptr;

struct LabelEvidence {
  uint64_t present = 0;   // instances containing the label
  uint64_t repeated = 0;  // instances containing it more than once
  double position_sum = 0.0;
  uint64_t occurrences = 0;

  double MeanPosition() const {
    return occurrences == 0 ? 0.5
                            : position_sum / static_cast<double>(occurrences);
  }
};

Ptr InferModelImpl(const TagContent& content) {
  // Per-label evidence over all recorded sequences.
  std::map<std::string, LabelEvidence> evidence;
  for (const auto& [sequence, count] : content.sequences) {
    std::map<std::string, uint64_t> counts;
    const double denom =
        sequence.size() > 1 ? static_cast<double>(sequence.size() - 1) : 1.0;
    for (size_t i = 0; i < sequence.size(); ++i) {
      ++counts[sequence[i]];
      LabelEvidence& e = evidence[sequence[i]];
      e.position_sum += count * (static_cast<double>(i) / denom);
      e.occurrences += count;
    }
    for (const auto& [label, n] : counts) {
      LabelEvidence& e = evidence[label];
      e.present += count;
      if (n > 1) e.repeated += count;
    }
  }

  if (evidence.empty()) {
    return content.text_instances > 0 ? dtd::ContentModel::Pcdata()
                                      : dtd::ContentModel::Empty();
  }

  if (content.text_instances > 0) {
    // Mixed content: the only DTD form admitting text plus elements.
    std::vector<Ptr> alternatives;
    alternatives.push_back(dtd::ContentModel::Pcdata());
    for (const auto& [label, e] : evidence) {
      alternatives.push_back(dtd::ContentModel::Name(label));
    }
    return dtd::ContentModel::Star(
        dtd::ContentModel::Choice(std::move(alternatives)));
  }

  std::vector<std::string> ordered;
  ordered.reserve(evidence.size());
  for (const auto& [label, e] : evidence) ordered.push_back(label);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const std::string& a, const std::string& b) {
                     return evidence[a].MeanPosition() <
                            evidence[b].MeanPosition();
                   });

  std::vector<Ptr> children;
  children.reserve(ordered.size());
  for (const std::string& label : ordered) {
    const LabelEvidence& e = evidence[label];
    bool always = e.present == content.instances;
    bool repeated = e.repeated > 0;
    Ptr leaf = dtd::ContentModel::Name(label);
    if (always && !repeated) {
      // plain name
    } else if (always) {
      leaf = dtd::ContentModel::Plus(std::move(leaf));
    } else if (!repeated) {
      leaf = dtd::ContentModel::Opt(std::move(leaf));
    } else {
      leaf = dtd::ContentModel::Star(std::move(leaf));
    }
    children.push_back(std::move(leaf));
  }
  if (children.size() == 1) return std::move(children.front());
  return dtd::ContentModel::Seq(std::move(children));
}

dtd::Dtd InferFromContent(const std::map<std::string, TagContent>& content,
                          const std::string& root_name) {
  dtd::Dtd dtd(root_name);
  // Root first so serialization leads with it.
  auto root_it = content.find(root_name);
  if (root_it != content.end()) {
    dtd.DeclareElement(root_name, InferModelImpl(root_it->second));
  }
  for (const auto& [tag, tag_content] : content) {
    if (tag == root_name) continue;
    dtd.DeclareElement(tag, InferModelImpl(tag_content));
  }
  return dtd;
}

}  // namespace

dtd::ContentModel::Ptr InferNaiveModel(const TagContent& content) {
  return InferModelImpl(content);
}

dtd::Dtd InferNaiveDtd(const std::vector<const xml::Element*>& roots,
                       const std::string& root_name) {
  return InferFromContent(CollectTagContent(roots), root_name);
}

dtd::Dtd InferNaiveDtd(const std::vector<xml::Document>& docs,
                       const std::string& root_name) {
  return InferFromContent(CollectTagContent(docs), root_name);
}

}  // namespace dtdevolve::baseline
