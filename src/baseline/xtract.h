#ifndef DTDEVOLVE_BASELINE_XTRACT_H_
#define DTDEVOLVE_BASELINE_XTRACT_H_

#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "xml/document.h"

namespace dtdevolve::baseline {

struct XtractOptions {
  /// Relative weight of the model description length against the data
  /// encoding length in the MDL choice. Larger values favor smaller,
  /// more general models.
  double model_weight = 1.0;
};

/// A faithful *miniature* of XTRACT (Garofalakis et al., SIGMOD 2000 —
/// reference [3] of the paper): batch DTD inference that generalizes the
/// observed child sequences into candidate content models and picks one
/// by the Minimum Description Length principle ("concise *and* precise").
///
/// Per tag, three candidate classes are generated (simplified from
/// XTRACT's full generalization/factoring pipeline; see DESIGN.md):
///  * enumeration — an OR over the distinct run-collapsed sequences
///    (`a a b` → `(a+, b)`); precise but potentially large;
///  * star-of-choice — `(l1 | l2 | …)*`; maximally general and tiny;
///  * union sequence — the naive-inference model, kept only when it
///    accepts every observed sequence.
/// Each candidate's cost = model_weight · |model| · log₂|Σ| +
/// Σ (bits to encode each instance under the model); the cheapest wins
/// and is simplified by the re-writing rules.
///
/// Unlike the paper's approach, this baseline must re-read *all*
/// documents on every run — the incremental-cost experiment (E4)
/// contrasts exactly that.
dtd::Dtd InferXtractDtd(const std::vector<const xml::Element*>& roots,
                        const std::string& root_name,
                        const XtractOptions& options = {});

/// Overload over stored documents.
dtd::Dtd InferXtractDtd(const std::vector<xml::Document>& docs,
                        const std::string& root_name,
                        const XtractOptions& options = {});

}  // namespace dtdevolve::baseline

#endif  // DTDEVOLVE_BASELINE_XTRACT_H_
