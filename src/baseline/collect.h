#ifndef DTDEVOLVE_BASELINE_COLLECT_H_
#define DTDEVOLVE_BASELINE_COLLECT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "xml/document.h"

namespace dtdevolve::baseline {

/// Everything a batch inferencer needs to know about one element tag,
/// gathered over a whole document set.
struct TagContent {
  /// Ordered child-tag sequences with multiplicities (order preserved —
  /// unlike the incremental recorder, batch inference re-reads documents).
  std::map<std::vector<std::string>, uint64_t> sequences;
  uint64_t instances = 0;
  uint64_t text_instances = 0;
};

/// Walks every element of every document and groups content by tag.
std::map<std::string, TagContent> CollectTagContent(
    const std::vector<const xml::Element*>& roots);

/// Convenience overload over stored documents.
std::map<std::string, TagContent> CollectTagContent(
    const std::vector<xml::Document>& docs);

}  // namespace dtdevolve::baseline

#endif  // DTDEVOLVE_BASELINE_COLLECT_H_
