#ifndef DTDEVOLVE_BASELINE_NAIVE_INFER_H_
#define DTDEVOLVE_BASELINE_NAIVE_INFER_H_

#include <string>
#include <vector>

#include "baseline/collect.h"
#include "dtd/dtd.h"
#include "xml/document.h"

namespace dtdevolve::baseline {

/// Union-based batch DTD inference without the OR operator — the class of
/// approaches the paper contrasts with in §5 (Moh–Lim–Ng's spanning-graph
/// re-engineering "does not generate the OR operator").
///
/// For every tag the declaration is a sequence over the union of observed
/// child tags, ordered by mean position, each wrapped per presence and
/// repetition evidence: always-once → `x`, always-repeated → `x+`,
/// sometimes-once → `x?`, otherwise → `x*`. Tags whose instances carry
/// character data get mixed content; childless tags get `(#PCDATA)` or
/// `EMPTY`.
dtd::Dtd InferNaiveDtd(const std::vector<const xml::Element*>& roots,
                       const std::string& root_name);

/// Overload over stored documents.
dtd::Dtd InferNaiveDtd(const std::vector<xml::Document>& docs,
                       const std::string& root_name);

/// The per-tag model of the union-based inference, exposed so other
/// inferencers (XTRACT's candidate generator) can reuse it.
dtd::ContentModel::Ptr InferNaiveModel(const TagContent& content);

}  // namespace dtdevolve::baseline

#endif  // DTDEVOLVE_BASELINE_NAIVE_INFER_H_
