#include "baseline/collect.h"

namespace dtdevolve::baseline {

namespace {

void Walk(const xml::Element& element,
          std::map<std::string, TagContent>& out) {
  TagContent& content = out[element.tag()];
  ++content.instances;
  if (element.HasTextContent()) ++content.text_instances;
  ++content.sequences[element.ChildTagSequence()];
  for (const xml::Element* child : element.ChildElements()) {
    Walk(*child, out);
  }
}

}  // namespace

std::map<std::string, TagContent> CollectTagContent(
    const std::vector<const xml::Element*>& roots) {
  std::map<std::string, TagContent> out;
  for (const xml::Element* root : roots) {
    if (root != nullptr) Walk(*root, out);
  }
  return out;
}

std::map<std::string, TagContent> CollectTagContent(
    const std::vector<xml::Document>& docs) {
  std::map<std::string, TagContent> out;
  for (const xml::Document& doc : docs) {
    if (doc.has_root()) Walk(doc.root(), out);
  }
  return out;
}

}  // namespace dtdevolve::baseline
