#include "workload/mutator.h"

#include <memory>
#include <utility>

namespace dtdevolve::workload {

size_t Mutator::MutateOne(xml::Element& element) {
  size_t mutations = 0;
  auto& children = element.children();

  // Drop: remove one random element child.
  if (!children.empty() && rng_.Chance(options_.drop_probability)) {
    std::vector<size_t> element_indices;
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i]->is_element()) element_indices.push_back(i);
    }
    if (!element_indices.empty()) {
      size_t victim = element_indices[rng_.Uniform(
          static_cast<uint32_t>(element_indices.size()))];
      children.erase(children.begin() + victim);
      ++mutations;
    }
  }

  // Insert: add a new element with an unknown tag at a random spot.
  if (rng_.Chance(options_.insert_probability) && !options_.new_tags.empty()) {
    const std::string& tag =
        options_.new_tags[next_tag_++ % options_.new_tags.size()];
    auto inserted = std::make_unique<xml::Element>(tag);
    if (options_.new_tag_with_text) {
      inserted->AddText("x" + std::to_string(text_counter_++));
    }
    size_t pos = children.empty()
                     ? 0
                     : rng_.Uniform(static_cast<uint32_t>(children.size() + 1));
    children.insert(children.begin() + pos, std::move(inserted));
    ++mutations;
  }

  // Duplicate: repeat one element child right after itself.
  if (!children.empty() && rng_.Chance(options_.duplicate_probability)) {
    std::vector<size_t> element_indices;
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i]->is_element()) element_indices.push_back(i);
    }
    if (!element_indices.empty()) {
      size_t target = element_indices[rng_.Uniform(
          static_cast<uint32_t>(element_indices.size()))];
      children.insert(children.begin() + target + 1,
                      children[target]->Clone());
      ++mutations;
    }
  }

  // Swap: exchange two adjacent children (order violation).
  if (children.size() >= 2 && rng_.Chance(options_.swap_probability)) {
    size_t i = rng_.Uniform(static_cast<uint32_t>(children.size() - 1));
    std::swap(children[i], children[i + 1]);
    ++mutations;
  }

  return mutations;
}

size_t Mutator::Mutate(xml::Element& element) {
  // Recurse into the *original* children first, then mutate this level:
  // nodes inserted or duplicated here are never re-visited, so the
  // per-call growth is bounded (at high probabilities, re-visiting fresh
  // nodes would compound into exponential blowup).
  size_t mutations = 0;
  if (options_.recursive) {
    for (xml::Element* child : element.ChildElements()) {
      mutations += Mutate(*child);
    }
  }
  mutations += MutateOne(element);
  return mutations;
}

size_t Mutator::Mutate(xml::Document& doc) {
  if (!doc.has_root()) return 0;
  return Mutate(doc.root());
}

}  // namespace dtdevolve::workload
