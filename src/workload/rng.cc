#include "workload/rng.h"

namespace dtdevolve::workload {

uint64_t Rng::Next() {
  state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint32_t Rng::Uniform(uint32_t bound) {
  return static_cast<uint32_t>(Next() % bound);
}

}  // namespace dtdevolve::workload
