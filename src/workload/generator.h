#ifndef DTDEVOLVE_WORKLOAD_GENERATOR_H_
#define DTDEVOLVE_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>

#include "dtd/dtd.h"
#include "workload/rng.h"
#include "xml/document.h"

namespace dtdevolve::workload {

struct GeneratorOptions {
  /// Occurrences drawn for `*` (0..max) and `+` (1..max).
  uint32_t max_repeat = 3;
  /// Probability an optional particle is emitted.
  double optional_probability = 0.5;
  /// Recursion guard for recursive DTDs; past it, elements are emitted
  /// with text content only.
  uint32_t max_depth = 16;
  /// Emit short text for #PCDATA particles.
  bool fill_text = true;
};

/// Generates random documents *valid* for a DTD (the drift scenarios
/// generate from a sequence of "true" DTDs and let the source chase
/// them). Deterministic given the seed.
class DocumentGenerator {
 public:
  DocumentGenerator(const dtd::Dtd& dtd, GeneratorOptions options,
                    uint64_t seed)
      : dtd_(&dtd), options_(options), rng_(seed) {}

  DocumentGenerator(const DocumentGenerator&) = delete;
  DocumentGenerator& operator=(const DocumentGenerator&) = delete;

  /// A document rooted at the DTD root element.
  xml::Document Generate();

  /// An element subtree rooted at `name`.
  std::unique_ptr<xml::Element> GenerateElement(const std::string& name,
                                                uint32_t depth = 0);

 private:
  void EmitContent(const dtd::ContentModel& node, xml::Element& parent,
                   uint32_t depth);

  const dtd::Dtd* dtd_;
  GeneratorOptions options_;
  Rng rng_;
  uint64_t text_counter_ = 0;
};

}  // namespace dtdevolve::workload

#endif  // DTDEVOLVE_WORKLOAD_GENERATOR_H_
