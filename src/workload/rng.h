#ifndef DTDEVOLVE_WORKLOAD_RNG_H_
#define DTDEVOLVE_WORKLOAD_RNG_H_

#include <cstdint>

namespace dtdevolve::workload {

/// Deterministic, seedable PRNG (splitmix64). All workload generation is
/// reproducible from a seed so experiments can be re-run exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound); bound must be positive.
  uint32_t Uniform(uint32_t bound);

  /// True with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace dtdevolve::workload

#endif  // DTDEVOLVE_WORKLOAD_RNG_H_
