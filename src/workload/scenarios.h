#ifndef DTDEVOLVE_WORKLOAD_SCENARIOS_H_
#define DTDEVOLVE_WORKLOAD_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "workload/generator.h"
#include "xml/document.h"

namespace dtdevolve::workload {

/// One phase of structural drift: documents are generated from `dtd`
/// (the *true*, hidden schema of the moment) for `num_documents`.
struct DriftPhase {
  dtd::Dtd dtd;
  uint64_t num_documents = 0;
};

/// A document stream whose underlying schema drifts through phases —
/// the dynamic Web source of the paper, synthesized (see DESIGN.md).
/// The evolution approach starts from the phase-0 DTD and should track
/// the later phases.
class ScenarioStream {
 public:
  ScenarioStream(std::string name, std::vector<DriftPhase> phases,
                 GeneratorOptions options, uint64_t seed);

  ScenarioStream(ScenarioStream&&) = default;

  const std::string& name() const { return name_; }
  size_t num_phases() const { return phases_.size(); }
  const dtd::Dtd& TrueDtdAt(size_t phase) const { return phases_[phase].dtd; }
  /// A copy of the phase-0 DTD — what the source starts with.
  dtd::Dtd InitialDtd() const { return phases_.front().dtd.Clone(); }

  uint64_t total_documents() const;
  bool Done() const { return produced_ >= total_documents(); }
  size_t current_phase() const;

  /// The next document of the stream; must not be called when Done().
  xml::Document Next();

 private:
  std::string name_;
  std::vector<DriftPhase> phases_;
  GeneratorOptions options_;
  uint64_t seed_;
  uint64_t produced_ = 0;
};

/// Bibliography records: articles gain `doi`/`url` fields, then `journal`
/// grows a `booktitle` alternative (conference papers).
ScenarioStream MakeBibliographyScenario(uint64_t seed,
                                        uint64_t docs_per_phase = 100);

/// Product catalog: products gain a `sale` price alternative and
/// repeatable `image`s.
ScenarioStream MakeCatalogScenario(uint64_t seed,
                                   uint64_t docs_per_phase = 100);

/// News items: stories gain an optional `summary`, a source alternative
/// (`author` | `agency`), and the flat body becomes paragraphs.
ScenarioStream MakeNewsScenario(uint64_t seed, uint64_t docs_per_phase = 100);

/// Forum threads: a *recursive* DTD (replies nest replies); the drift
/// adds per-post scores and an optional moderator mark — evolution must
/// cope with elements whose statistics aggregate across nesting levels.
ScenarioStream MakeForumScenario(uint64_t seed, uint64_t docs_per_phase = 100);

/// All four, for sweep experiments.
std::vector<ScenarioStream> MakeAllScenarios(uint64_t seed,
                                             uint64_t docs_per_phase = 100);

/// Number of built-in mixed-population families.
inline constexpr size_t kMixedPopulationFamilies = 6;

/// The true (hidden) DTD of mixed-population family `index`
/// (0 ≤ index < kMixedPopulationFamilies) — exposed so induction tests
/// and the bench can check induced candidates against ground truth.
dtd::Dtd MixedPopulationFamilyDtd(size_t index);

/// Mixed population: `families` structurally distinct document families
/// with disjoint root tags and child vocabularies, interleaved
/// round-robin (one document per family per round). None of them match
/// the DTDs of the other scenarios, so against any such seed set the
/// whole stream lands in the repository of unclassified documents —
/// the end-to-end exercise for repository clustering → candidate-DTD
/// induction: k families ⇒ k clusters ⇒ k induced candidates.
/// `families` is capped at kMixedPopulationFamilies.
ScenarioStream MakeMixedPopulationScenario(uint64_t seed, size_t families = 3,
                                           uint64_t docs_per_family = 40);

}  // namespace dtdevolve::workload

#endif  // DTDEVOLVE_WORKLOAD_SCENARIOS_H_
