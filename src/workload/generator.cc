#include "workload/generator.h"

namespace dtdevolve::workload {

xml::Document DocumentGenerator::Generate() {
  xml::Document doc;
  doc.set_root(GenerateElement(dtd_->root_name()));
  doc.set_doctype_name(dtd_->root_name());
  return doc;
}

std::unique_ptr<xml::Element> DocumentGenerator::GenerateElement(
    const std::string& name, uint32_t depth) {
  auto element = std::make_unique<xml::Element>(name);
  const dtd::ElementDecl* decl = dtd_->FindElement(name);
  if (decl == nullptr || decl->content == nullptr ||
      depth >= options_.max_depth) {
    if (options_.fill_text) {
      element->AddText("v" + std::to_string(text_counter_++));
    }
    return element;
  }
  EmitContent(*decl->content, *element, depth);
  return element;
}

void DocumentGenerator::EmitContent(const dtd::ContentModel& node,
                                    xml::Element& parent, uint32_t depth) {
  using Kind = dtd::ContentModel::Kind;
  switch (node.kind()) {
    case Kind::kName: {
      parent.AddChild(GenerateElement(node.name(), depth + 1));
      return;
    }
    case Kind::kPcdata:
      if (options_.fill_text) {
        parent.AddText("v" + std::to_string(text_counter_++));
      }
      return;
    case Kind::kAny:
      if (options_.fill_text) {
        parent.AddText("v" + std::to_string(text_counter_++));
      }
      return;
    case Kind::kEmpty:
      return;
    case Kind::kAnd:
      for (const auto& child : node.children()) {
        EmitContent(*child, parent, depth);
      }
      return;
    case Kind::kOr: {
      uint32_t pick =
          rng_.Uniform(static_cast<uint32_t>(node.children().size()));
      EmitContent(*node.children()[pick], parent, depth);
      return;
    }
    case Kind::kOptional:
      // Nearing the recursion bound, optional content is omitted — the
      // only way to terminate recursive DTDs *validly*.
      if (depth + 1 < options_.max_depth &&
          rng_.Chance(options_.optional_probability)) {
        EmitContent(node.child(), parent, depth);
      }
      return;
    case Kind::kStar: {
      uint32_t n = depth + 1 < options_.max_depth
                       ? rng_.Uniform(options_.max_repeat + 1)
                       : 0;
      for (uint32_t i = 0; i < n; ++i) EmitContent(node.child(), parent, depth);
      return;
    }
    case Kind::kPlus: {
      uint32_t n = 1 + rng_.Uniform(options_.max_repeat);
      for (uint32_t i = 0; i < n; ++i) EmitContent(node.child(), parent, depth);
      return;
    }
  }
}

}  // namespace dtdevolve::workload
