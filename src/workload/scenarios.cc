#include "workload/scenarios.h"

#include <cassert>
#include <utility>

#include "dtd/dtd_parser.h"

namespace dtdevolve::workload {

namespace {

dtd::Dtd MustParseDtd(std::string_view text, std::string root) {
  StatusOr<dtd::Dtd> parsed = dtd::ParseDtd(text, std::move(root));
  assert(parsed.ok() && "scenario DTD must parse");
  return std::move(parsed).value();
}

}  // namespace

ScenarioStream::ScenarioStream(std::string name,
                               std::vector<DriftPhase> phases,
                               GeneratorOptions options, uint64_t seed)
    : name_(std::move(name)),
      phases_(std::move(phases)),
      options_(options),
      seed_(seed) {
  assert(!phases_.empty());
}

uint64_t ScenarioStream::total_documents() const {
  uint64_t total = 0;
  for (const DriftPhase& phase : phases_) total += phase.num_documents;
  return total;
}

size_t ScenarioStream::current_phase() const {
  uint64_t remaining = produced_;
  for (size_t i = 0; i < phases_.size(); ++i) {
    if (remaining < phases_[i].num_documents) return i;
    remaining -= phases_[i].num_documents;
  }
  return phases_.size() - 1;
}

xml::Document ScenarioStream::Next() {
  assert(!Done());
  size_t phase = current_phase();
  // A fresh generator per document, seeded from (seed, index): documents
  // are independent and the stream is restartable.
  DocumentGenerator generator(phases_[phase].dtd, options_,
                              seed_ * 0x9E3779B9u + produced_);
  ++produced_;
  return generator.Generate();
}

ScenarioStream MakeBibliographyScenario(uint64_t seed,
                                        uint64_t docs_per_phase) {
  std::vector<DriftPhase> phases;
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT article (title, author+, journal, year)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT journal (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
  )",
                                 "article"),
                    docs_per_phase});
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT article (title, author+, journal, year, doi, url?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT journal (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
    <!ELEMENT doi (#PCDATA)>
    <!ELEMENT url (#PCDATA)>
  )",
                                 "article"),
                    docs_per_phase});
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT article (title, author+, (journal | booktitle), year, doi, url?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT journal (#PCDATA)>
    <!ELEMENT booktitle (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
    <!ELEMENT doi (#PCDATA)>
    <!ELEMENT url (#PCDATA)>
  )",
                                 "article"),
                    docs_per_phase});
  return ScenarioStream("bibliography", std::move(phases), GeneratorOptions(),
                        seed);
}

ScenarioStream MakeCatalogScenario(uint64_t seed, uint64_t docs_per_phase) {
  std::vector<DriftPhase> phases;
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT catalog (vendor, product+)>
    <!ELEMENT vendor (#PCDATA)>
    <!ELEMENT product (name, price, description?)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT description (#PCDATA)>
  )",
                                 "catalog"),
                    docs_per_phase});
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT catalog (vendor, product+)>
    <!ELEMENT vendor (#PCDATA)>
    <!ELEMENT product (name, (price | sale), description?, image+)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT sale (price, discount)>
    <!ELEMENT discount (#PCDATA)>
    <!ELEMENT description (#PCDATA)>
    <!ELEMENT image (#PCDATA)>
  )",
                                 "catalog"),
                    docs_per_phase});
  return ScenarioStream("catalog", std::move(phases), GeneratorOptions(),
                        seed);
}

ScenarioStream MakeNewsScenario(uint64_t seed, uint64_t docs_per_phase) {
  std::vector<DriftPhase> phases;
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT news (headline, body, date)>
    <!ELEMENT headline (#PCDATA)>
    <!ELEMENT body (#PCDATA)>
    <!ELEMENT date (#PCDATA)>
  )",
                                 "news"),
                    docs_per_phase});
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT news (headline, summary?, body, date, (author | agency))>
    <!ELEMENT headline (#PCDATA)>
    <!ELEMENT summary (#PCDATA)>
    <!ELEMENT body (par+)>
    <!ELEMENT par (#PCDATA)>
    <!ELEMENT date (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT agency (#PCDATA)>
  )",
                                 "news"),
                    docs_per_phase});
  return ScenarioStream("news", std::move(phases), GeneratorOptions(), seed);
}

ScenarioStream MakeForumScenario(uint64_t seed, uint64_t docs_per_phase) {
  GeneratorOptions options;
  options.max_repeat = 2;
  options.max_depth = 8;  // bound the reply recursion
  std::vector<DriftPhase> phases;
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT thread (title, post+)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT post (user, text, reply*)>
    <!ELEMENT reply (user, text, reply*)>
    <!ELEMENT user (#PCDATA)>
    <!ELEMENT text (#PCDATA)>
  )",
                                 "thread"),
                    docs_per_phase});
  phases.push_back({MustParseDtd(R"(
    <!ELEMENT thread (title, post+)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT post (user, score, text, reply*)>
    <!ELEMENT reply (user, score, text, mod?, reply*)>
    <!ELEMENT user (#PCDATA)>
    <!ELEMENT score (#PCDATA)>
    <!ELEMENT text (#PCDATA)>
    <!ELEMENT mod EMPTY>
  )",
                                 "thread"),
                    docs_per_phase});
  return ScenarioStream("forum", std::move(phases), options, seed);
}

dtd::Dtd MixedPopulationFamilyDtd(size_t index) {
  switch (index % kMixedPopulationFamilies) {
    case 0:
      return MustParseDtd(R"(
        <!ELEMENT invoice (customer, lineitem+, total)>
        <!ELEMENT customer (#PCDATA)>
        <!ELEMENT lineitem (sku, qty, unitcost)>
        <!ELEMENT sku (#PCDATA)>
        <!ELEMENT qty (#PCDATA)>
        <!ELEMENT unitcost (#PCDATA)>
        <!ELEMENT total (#PCDATA)>
      )",
                          "invoice");
    case 1:
      return MustParseDtd(R"(
        <!ELEMENT playlist (owner, track+)>
        <!ELEMENT owner (#PCDATA)>
        <!ELEMENT track (artist, song, duration?)>
        <!ELEMENT artist (#PCDATA)>
        <!ELEMENT song (#PCDATA)>
        <!ELEMENT duration (#PCDATA)>
      )",
                          "playlist");
    case 2:
      return MustParseDtd(R"(
        <!ELEMENT recipe (dish, ingredient+, step+, serves?)>
        <!ELEMENT dish (#PCDATA)>
        <!ELEMENT ingredient (#PCDATA)>
        <!ELEMENT step (#PCDATA)>
        <!ELEMENT serves (#PCDATA)>
      )",
                          "recipe");
    case 3:
      return MustParseDtd(R"(
        <!ELEMENT itinerary (traveler, leg+, fare)>
        <!ELEMENT traveler (#PCDATA)>
        <!ELEMENT leg (carrier, origin, destination, depart?)>
        <!ELEMENT carrier (#PCDATA)>
        <!ELEMENT origin (#PCDATA)>
        <!ELEMENT destination (#PCDATA)>
        <!ELEMENT depart (#PCDATA)>
        <!ELEMENT fare (#PCDATA)>
      )",
                          "itinerary");
    case 4:
      return MustParseDtd(R"(
        <!ELEMENT chart (pid, visit+)>
        <!ELEMENT pid (#PCDATA)>
        <!ELEMENT visit (vdate, diagnosis, rx*)>
        <!ELEMENT vdate (#PCDATA)>
        <!ELEMENT diagnosis (#PCDATA)>
        <!ELEMENT rx (#PCDATA)>
      )",
                          "chart");
    default:
      return MustParseDtd(R"(
        <!ELEMENT sensorlog (device, reading+)>
        <!ELEMENT device (#PCDATA)>
        <!ELEMENT reading (ts, value, unit?)>
        <!ELEMENT ts (#PCDATA)>
        <!ELEMENT value (#PCDATA)>
        <!ELEMENT unit (#PCDATA)>
      )",
                          "sensorlog");
  }
}

ScenarioStream MakeMixedPopulationScenario(uint64_t seed, size_t families,
                                           uint64_t docs_per_family) {
  if (families == 0) families = 1;
  if (families > kMixedPopulationFamilies) families = kMixedPopulationFamilies;
  // Round-robin interleaving as single-document phases: round r emits one
  // document of every family before round r+1 starts.
  std::vector<DriftPhase> phases;
  phases.reserve(families * docs_per_family);
  for (uint64_t round = 0; round < docs_per_family; ++round) {
    for (size_t family = 0; family < families; ++family) {
      phases.push_back({MixedPopulationFamilyDtd(family), 1});
    }
  }
  return ScenarioStream("mixed-population", std::move(phases),
                        GeneratorOptions(), seed);
}

std::vector<ScenarioStream> MakeAllScenarios(uint64_t seed,
                                             uint64_t docs_per_phase) {
  std::vector<ScenarioStream> scenarios;
  scenarios.push_back(MakeBibliographyScenario(seed, docs_per_phase));
  scenarios.push_back(MakeCatalogScenario(seed + 1, docs_per_phase));
  scenarios.push_back(MakeNewsScenario(seed + 2, docs_per_phase));
  scenarios.push_back(MakeForumScenario(seed + 3, docs_per_phase));
  return scenarios;
}

}  // namespace dtdevolve::workload
