#ifndef DTDEVOLVE_WORKLOAD_MUTATOR_H_
#define DTDEVOLVE_WORKLOAD_MUTATOR_H_

#include <string>
#include <vector>

#include "workload/rng.h"
#include "xml/document.h"

namespace dtdevolve::workload {

/// Probabilities of the structured mutations, matching the three
/// regularity classes of §2 exactly:
///  * drop      — documents *miss* elements the DTD requires;
///  * insert    — documents *contain new elements* not in the DTD;
///  * duplicate / swap — elements match but the *operators are violated*
///    (unexpected repetition, wrong order).
struct MutationOptions {
  double drop_probability = 0.0;
  double insert_probability = 0.0;
  double duplicate_probability = 0.0;
  double swap_probability = 0.0;
  /// Tags used by `insert`; cycled through deterministically.
  std::vector<std::string> new_tags = {"extra"};
  /// Inserted elements carry short text content.
  bool new_tag_with_text = true;
  /// Apply mutations below the root as well (per element, independently).
  bool recursive = true;
};

/// Applies structured random mutations to documents — the divergence
/// injector of the synthetic workloads (the paper's Web corpus is not
/// available; DESIGN.md documents the substitution).
class Mutator {
 public:
  Mutator(MutationOptions options, uint64_t seed)
      : options_(std::move(options)), rng_(seed) {}

  Mutator(const Mutator&) = delete;
  Mutator& operator=(const Mutator&) = delete;

  /// Mutates the element's children in place (and descendants when
  /// `recursive`). Returns the number of mutations applied.
  size_t Mutate(xml::Element& element);

  /// Convenience: mutates a document's root subtree.
  size_t Mutate(xml::Document& doc);

 private:
  size_t MutateOne(xml::Element& element);

  MutationOptions options_;
  Rng rng_;
  size_t next_tag_ = 0;
  uint64_t text_counter_ = 0;
};

}  // namespace dtdevolve::workload

#endif  // DTDEVOLVE_WORKLOAD_MUTATOR_H_
