#ifndef DTDEVOLVE_XML_LEXER_H_
#define DTDEVOLVE_XML_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/document.h"

namespace dtdevolve::xml {

/// One lexical event from the document stream.
struct Token {
  enum class Kind {
    kStartTag,   // <name attr="v" ...>  (self_closing true for <name/>)
    kEndTag,     // </name>
    kText,       // character data (entities decoded)
    kComment,    // <!-- ... --> (content without delimiters)
    kPi,         // <?target ...?> (content without delimiters)
    kDoctype,    // <!DOCTYPE name [subset]> — name + raw internal subset
    kEof,
  };

  Kind kind = Kind::kEof;
  std::string name;                   // tag / target / doctype name
  std::vector<Attribute> attributes;  // for kStartTag
  std::string text;                   // text / comment / PI / subset content
  bool self_closing = false;          // for kStartTag
  size_t line = 0;                    // 1-based line of the token start
};

/// Pull lexer over an in-memory XML document. Produces a stream of Tokens;
/// all errors are reported with the 1-based source line.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Lexer(const Lexer&) = delete;
  Lexer& operator=(const Lexer&) = delete;

  /// Returns the next token, or a ParseError status.
  StatusOr<Token> Next();

  /// 1-based line number at the current cursor.
  size_t line() const { return line_; }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Advance();
  bool Consume(char expected);
  bool ConsumeWord(std::string_view word);
  void SkipWhitespace();
  Status ErrorHere(std::string message) const;

  StatusOr<std::string> LexName();
  StatusOr<std::string> LexQuotedValue();
  StatusOr<Token> LexMarkup();        // cursor just after '<'
  StatusOr<Token> LexBang();          // cursor just after '<!'
  StatusOr<Token> LexDoctype();       // cursor just after '<!DOCTYPE'
  StatusOr<Token> LexStartTag();      // cursor at first char of name
  StatusOr<Token> LexText();

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_LEXER_H_
