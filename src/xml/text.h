#ifndef DTDEVOLVE_XML_TEXT_H_
#define DTDEVOLVE_XML_TEXT_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace dtdevolve::xml {

/// True if `c` may start an XML name (ASCII subset: letter, '_' or ':').
bool IsNameStartChar(char c);

/// True if `c` may appear inside an XML name (adds digits, '-', '.').
bool IsNameChar(char c);

/// True if `name` is a well-formed XML name (non-empty, valid chars).
bool IsValidName(std::string_view name);

/// Escapes '&', '<', '>', '"' for inclusion in element content or
/// attribute values.
std::string EscapeText(std::string_view text);

/// Decodes the five predefined entities (&amp; &lt; &gt; &quot; &apos;)
/// and decimal/hex character references restricted to ASCII. Unknown
/// entities are a parse error.
StatusOr<std::string> UnescapeText(std::string_view text);

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_TEXT_H_
