#ifndef DTDEVOLVE_XML_WRITER_H_
#define DTDEVOLVE_XML_WRITER_H_

#include <string>

#include "xml/document.h"

namespace dtdevolve::xml {

/// Serialization options.
struct WriteOptions {
  /// Pretty-print with this indent per level; when false, emit compactly.
  bool indent = true;
  int indent_width = 2;
  /// Emit an `<?xml version="1.0"?>` declaration before the root.
  bool declaration = false;
};

/// Serializes an element subtree.
std::string WriteElement(const Element& element,
                         const WriteOptions& options = WriteOptions());

/// Serializes a whole document (declaration + DOCTYPE if present + root).
std::string WriteDocument(const Document& doc,
                          const WriteOptions& options = WriteOptions());

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_WRITER_H_
