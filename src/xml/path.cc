#include "xml/path.h"

#include "util/string_util.h"

namespace dtdevolve::xml {

namespace {

void SelectRec(const Element& node, const std::vector<std::string>& steps,
               size_t index, std::vector<const Element*>& out) {
  const std::string& step = steps[index];
  if (step != "*" && node.tag() != step) return;
  if (index + 1 == steps.size()) {
    out.push_back(&node);
    return;
  }
  for (const Element* child : node.ChildElements()) {
    SelectRec(*child, steps, index + 1, out);
  }
}

}  // namespace

std::vector<const Element*> SelectPath(const Element& root,
                                       std::string_view path) {
  std::vector<const Element*> out;
  std::vector<std::string> steps = Split(path, '/');
  if (steps.empty()) return out;
  SelectRec(root, steps, 0, out);
  return out;
}

const Element* SelectFirst(const Element& root, std::string_view path) {
  std::vector<const Element*> matches = SelectPath(root, path);
  return matches.empty() ? nullptr : matches.front();
}

std::vector<const Element*> AllElements(const Element& root) {
  std::vector<const Element*> out;
  out.push_back(&root);
  for (const Element* child : root.ChildElements()) {
    std::vector<const Element*> sub = AllElements(*child);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<const Element*> ElementsByTag(const Element& root,
                                          std::string_view tag) {
  std::vector<const Element*> out;
  for (const Element* e : AllElements(root)) {
    if (e->tag() == tag) out.push_back(e);
  }
  return out;
}

}  // namespace dtdevolve::xml
