#ifndef DTDEVOLVE_XML_PARSER_H_
#define DTDEVOLVE_XML_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace dtdevolve::xml {

/// Parses an XML document from `input`. Comments, processing instructions
/// and the XML declaration are skipped; a DOCTYPE (with its raw internal
/// subset, if any) is recorded on the returned Document. Whitespace-only
/// text between elements is dropped; all other character data becomes Text
/// nodes with entities decoded.
StatusOr<Document> ParseDocument(std::string_view input);

/// Parses a fragment that must consist of exactly one element (no prolog).
StatusOr<Document> ParseElementFragment(std::string_view input);

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_PARSER_H_
