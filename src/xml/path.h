#ifndef DTDEVOLVE_XML_PATH_H_
#define DTDEVOLVE_XML_PATH_H_

#include <string_view>
#include <vector>

#include "xml/document.h"

namespace dtdevolve::xml {

/// Evaluates a simple slash-separated child path against `root`.
/// `"a/b/c"` returns every `c` element reachable as root(a)/b/c; the first
/// step must match the root's own tag. `"*"` steps match any tag. This is a
/// deliberately small subset of XPath used by tests and examples.
std::vector<const Element*> SelectPath(const Element& root,
                                       std::string_view path);

/// Returns the first match of `SelectPath`, or nullptr.
const Element* SelectFirst(const Element& root, std::string_view path);

/// Collects every element in the subtree (pre-order), including `root`.
std::vector<const Element*> AllElements(const Element& root);

/// Collects every element in the subtree with the given tag.
std::vector<const Element*> ElementsByTag(const Element& root,
                                          std::string_view tag);

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_PATH_H_
