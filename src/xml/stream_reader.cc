#include "xml/stream_reader.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <functional>

#include "util/string_util.h"
#include "util/symbol_table.h"
#include "xml/fingerprint.h"
#include "xml/text.h"

namespace dtdevolve::xml {

namespace {

/// Element-nesting bound, identical to the DOM parser's: the tree (DOM
/// or arena) is later walked recursively, so depth must stay bounded
/// whichever path parsed it.
constexpr size_t kMaxElementDepth = 512;

/// Small direct-mapped front cache over `util::InternSymbolBounded`:
/// the global table takes a shared lock per probe, which adds up at one
/// probe per element. Tag vocabularies are tiny and highly repetitive,
/// so nearly every probe after warm-up is a lock-free hit here. Returns
/// exactly what the global table would (including `kNoSymbol` once the
/// bounded table is full, because negative answers are not cached).
int32_t InternTagCached(std::string_view tag) {
  struct Entry {
    std::string name;
    int32_t id = util::SymbolTable::kNoSymbol;
  };
  constexpr size_t kSlots = 256;  // power of two
  thread_local std::array<Entry, kSlots> cache;
  const size_t slot = std::hash<std::string_view>{}(tag) & (kSlots - 1);
  Entry& entry = cache[slot];
  if (entry.id != util::SymbolTable::kNoSymbol && entry.name == tag) {
    return entry.id;
  }
  const int32_t id = util::InternSymbolBounded(tag);
  if (id != util::SymbolTable::kNoSymbol) {
    entry.name.assign(tag.data(), tag.size());
    entry.id = id;
  }
  return id;
}

}  // namespace

char StreamReader::Advance() {
  char c = input_[pos_++];
  if (c == '\n') ++line_;
  return c;
}

bool StreamReader::Consume(char expected) {
  if (AtEnd() || Peek() != expected) return false;
  Advance();
  return true;
}

bool StreamReader::ConsumeWord(std::string_view word) {
  if (input_.substr(pos_, word.size()) != word) return false;
  for (size_t i = 0; i < word.size(); ++i) Advance();
  return true;
}

void StreamReader::SkipWhitespace() {
  // Explicit C-locale class (space \t \n \v \f \r): the libc call
  // is an indirect table lookup per character, and this loop runs
  // between every token of every tag.
  while (!AtEnd()) {
    const char c = Peek();
    if (c != ' ' && c != '\t' && c != '\n' && c != '\v' && c != '\f' &&
        c != '\r') {
      break;
    }
    Advance();
  }
}

Status StreamReader::ErrorHere(std::string message) {
  error_ = Status::ParseError("line " + std::to_string(line_) + ": " +
                              std::move(message));
  return error_;
}

Status StreamReader::LexNameView(std::string_view* out) {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return ErrorHere("expected a name");
  }
  size_t start = pos_;
  while (!AtEnd() && IsNameChar(Peek())) ++pos_;  // names contain no '\n'
  *out = input_.substr(start, pos_ - start);
  return Status::Ok();
}

Status StreamReader::DecodeInto(std::string_view raw, std::string* scratch,
                                std::string_view* out, size_t at_line) {
  if (raw.find('&') == std::string_view::npos) {
    *out = raw;
    return Status::Ok();
  }
  StatusOr<std::string> decoded = UnescapeText(raw);
  if (!decoded.ok()) {
    error_ = Status::ParseError("line " + std::to_string(at_line) + ": " +
                                std::string(decoded.status().message()));
    return error_;
  }
  *scratch = std::move(decoded).value();
  *out = *scratch;
  return Status::Ok();
}

Status StreamReader::Next(StreamEvent* event) {
  if (!error_.ok()) return error_;
  *event = StreamEvent();
  if (pending_end_) {
    pending_end_ = false;
    event->kind = StreamEventKind::kEndElement;
    event->name = pending_end_name_;
    event->line = line_;
    return Status::Ok();
  }
  if (done_) {
    event->kind = StreamEventKind::kEndDocument;
    event->line = line_;
    return Status::Ok();
  }
  while (true) {
    if (AtEnd()) {
      if (!open_.empty()) {
        error_ = Status::ParseError("unexpected end of input: <" +
                                    std::string(open_.back()) +
                                    "> is not closed");
        return error_;
      }
      if (!has_root_) {
        error_ = Status::ParseError("document has no root element");
        return error_;
      }
      done_ = true;
      event->kind = StreamEventKind::kEndDocument;
      event->line = line_;
      return Status::Ok();
    }
    bool emitted = false;
    Status st;
    if (Peek() == '<') {
      Advance();
      st = LexMarkup(event, &emitted);
    } else {
      st = LexText(event, &emitted);
    }
    if (!st.ok()) return st;
    if (emitted) return Status::Ok();
  }
}

Status StreamReader::LexText(StreamEvent* event, bool* emitted) {
  const size_t start_line = line_;
  size_t start = pos_;
  size_t lt = input_.find('<', pos_);
  size_t end = lt == std::string_view::npos ? input_.size() : lt;
  std::string_view raw = input_.substr(start, end - start);
  line_ += static_cast<size_t>(std::count(raw.begin(), raw.end(), '\n'));
  pos_ = end;
  std::string_view decoded;
  Status st = DecodeInto(raw, &text_scratch_, &decoded, start_line);
  if (!st.ok()) return st;
  if (IsBlank(decoded)) return Status::Ok();  // dropped, like the parser
  if (open_.empty()) {
    error_ = Status::ParseError("line " + std::to_string(start_line) +
                                ": character data outside root element");
    return error_;
  }
  event->kind = StreamEventKind::kText;
  event->text = decoded;
  event->line = start_line;
  *emitted = true;
  return Status::Ok();
}

Status StreamReader::LexMarkup(StreamEvent* event, bool* emitted) {
  if (AtEnd()) return ErrorHere("unexpected end of input after '<'");
  if (Peek() == '!') {
    Advance();
    if (ConsumeWord("--")) {
      while (!AtEnd()) {
        if (input_.substr(pos_, 3) == "-->") {
          Advance();
          Advance();
          Advance();
          return Status::Ok();  // comments are validated, then dropped
        }
        Advance();
      }
      return ErrorHere("unterminated comment");
    }
    if (ConsumeWord("[CDATA[")) {
      const size_t start_line = line_;
      size_t start = pos_;
      while (!AtEnd()) {
        if (input_.substr(pos_, 3) == "]]>") {
          std::string_view raw = input_.substr(start, pos_ - start);
          Advance();
          Advance();
          Advance();
          // CDATA content is literal — never unescaped, like the lexer.
          if (IsBlank(raw)) return Status::Ok();
          if (open_.empty()) {
            error_ =
                Status::ParseError("line " + std::to_string(start_line) +
                                   ": character data outside root element");
            return error_;
          }
          event->kind = StreamEventKind::kText;
          event->text = raw;
          event->line = start_line;
          *emitted = true;
          return Status::Ok();
        }
        Advance();
      }
      return ErrorHere("unterminated CDATA section");
    }
    if (ConsumeWord("DOCTYPE")) {
      Status st = LexDoctype(event);
      if (!st.ok()) return st;
      *emitted = true;
      return Status::Ok();
    }
    return ErrorHere("unrecognized markup declaration");
  }
  if (Peek() == '?') {
    Advance();
    std::string_view target;
    Status st = LexNameView(&target);
    if (!st.ok()) return st;
    while (!AtEnd()) {
      if (Peek() == '?' && pos_ + 1 < input_.size() &&
          input_[pos_ + 1] == '>') {
        Advance();
        Advance();
        return Status::Ok();  // PIs are validated, then dropped
      }
      Advance();
    }
    return ErrorHere("unterminated processing instruction");
  }
  if (Peek() == '/') {
    Advance();
    Status st = LexEndTag(event);
    if (!st.ok()) return st;
    *emitted = true;
    return Status::Ok();
  }
  Status st = LexStartTag(event);
  if (!st.ok()) return st;
  *emitted = true;
  return Status::Ok();
}

Status StreamReader::LexStartTag(StreamEvent* event) {
  const size_t start_line = line_;
  std::string_view name;
  Status st = LexNameView(&name);
  if (!st.ok()) return st;
  // Document discipline, checked before attribute lexing would not
  // change the answer: the DOM parser sees the whole token first, but a
  // token with these errors can never become valid, so checking either
  // side of the attribute list accepts the same language.
  if (open_.empty() && has_root_) {
    error_ = Status::ParseError("line " + std::to_string(start_line) +
                                ": multiple root elements (second is <" +
                                std::string(name) + ">)");
    return error_;
  }
  if (open_.size() >= kMaxElementDepth) {
    error_ = Status::ParseError(
        "line " + std::to_string(start_line) + ": elements nested deeper than " +
        std::to_string(kMaxElementDepth));
    return error_;
  }
  attributes_.clear();
  attr_scratch_.clear();
  bool self_closing = false;
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return ErrorHere("unterminated start tag");
    if (Consume('>')) break;
    if (Peek() == '/') {
      Advance();
      if (!Consume('>')) return ErrorHere("expected '>' after '/'");
      self_closing = true;
      break;
    }
    std::string_view attr_name;
    st = LexNameView(&attr_name);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (!Consume('=')) return ErrorHere("expected '=' after attribute name");
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return ErrorHere("expected a quoted attribute value");
    }
    const size_t value_line = line_;
    char quote = Advance();
    size_t value_start = pos_;
    size_t close = input_.find(quote, pos_);
    if (close == std::string_view::npos) {
      // The DOM lexer scans the whole remainder looking for the closing
      // quote, counting newlines as it goes; mirror that so the error
      // lands on the same line number.
      std::string_view tail = input_.substr(pos_);
      line_ += static_cast<size_t>(std::count(tail.begin(), tail.end(), '\n'));
      pos_ = input_.size();
      return ErrorHere("unterminated attribute value");
    }
    std::string_view raw = input_.substr(value_start, close - value_start);
    line_ += static_cast<size_t>(std::count(raw.begin(), raw.end(), '\n'));
    pos_ = close + 1;
    std::string_view value;
    if (raw.find('&') == std::string_view::npos) {
      value = raw;
    } else {
      StatusOr<std::string> decoded = UnescapeText(raw);
      if (!decoded.ok()) {
        error_ =
            Status::ParseError("line " + std::to_string(value_line) + ": " +
                               std::string(decoded.status().message()));
        return error_;
      }
      attr_scratch_.push_back(
          std::make_unique<std::string>(std::move(decoded).value()));
      value = *attr_scratch_.back();
    }
    attributes_.push_back({attr_name, value});
  }
  if (open_.empty()) has_root_ = true;
  if (self_closing) {
    pending_end_ = true;
    pending_end_name_ = name;
  } else {
    open_.push_back(name);
  }
  event->kind = StreamEventKind::kStartElement;
  event->name = name;
  event->self_closing = self_closing;
  event->line = start_line;
  return Status::Ok();
}

Status StreamReader::LexEndTag(StreamEvent* event) {
  const size_t start_line = line_;
  std::string_view name;
  Status st = LexNameView(&name);
  if (!st.ok()) return st;
  SkipWhitespace();
  if (!Consume('>')) return ErrorHere("expected '>' in end tag");
  if (open_.empty()) {
    error_ = Status::ParseError("line " + std::to_string(start_line) +
                                ": unmatched end tag </" + std::string(name) +
                                ">");
    return error_;
  }
  if (open_.back() != name) {
    error_ = Status::ParseError("line " + std::to_string(start_line) +
                                ": end tag </" + std::string(name) +
                                "> does not match open <" +
                                std::string(open_.back()) + ">");
    return error_;
  }
  open_.pop_back();
  event->kind = StreamEventKind::kEndElement;
  event->name = name;
  event->line = start_line;
  return Status::Ok();
}

Status StreamReader::LexDoctype(StreamEvent* event) {
  const size_t start_line = line_;
  if (has_root_ || !open_.empty()) {
    error_ = Status::ParseError("line " + std::to_string(start_line) +
                                ": DOCTYPE after content");
    return error_;
  }
  SkipWhitespace();
  std::string_view name;
  Status st = LexNameView(&name);
  if (!st.ok()) return st;
  // Skip external id (SYSTEM/PUBLIC with quoted literals) if present.
  SkipWhitespace();
  while (!AtEnd() && Peek() != '[' && Peek() != '>') {
    if (Peek() == '"' || Peek() == '\'') {
      char quote = Advance();
      while (!AtEnd() && Peek() != quote) Advance();
      if (!Consume(quote)) return ErrorHere("unterminated literal in DOCTYPE");
    } else {
      Advance();
    }
  }
  std::string_view subset;
  if (Consume('[')) {
    // The internal subset is captured verbatim — a contiguous slice of
    // the input, so the event can carry a direct view.
    size_t start = pos_;
    int depth = 1;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
        if (depth == 0) {
          subset = input_.substr(start, pos_ - start);
          Advance();
          break;
        }
      }
      Advance();
    }
    if (depth != 0) return ErrorHere("unterminated DOCTYPE internal subset");
    SkipWhitespace();
  }
  if (!Consume('>')) return ErrorHere("expected '>' closing DOCTYPE");
  event->kind = StreamEventKind::kDoctype;
  event->name = name;
  event->text = subset;
  event->line = start_line;
  return Status::Ok();
}

/// Friend of `ArenaDocument`: brokers the private-state writes the tree
/// builder needs and hosts the parse driver.
class ArenaDocumentBuilder {
 public:
  static StatusOr<ArenaDocument> Parse(std::string_view input);

  static Arena& arena(ArenaDocument& doc) { return doc.arena_; }
  static void SetRoot(ArenaDocument& doc, const ArenaElement* root) {
    doc.root_ = root;
  }
  static void SetDoctype(ArenaDocument& doc, std::string_view name,
                         std::string_view subset) {
    doc.doctype_name_ = doc.arena_.CopyString(name);
    doc.internal_subset_ = doc.arena_.CopyString(subset);
  }
};

namespace {

/// Builds the arena tree from the event stream: one frame per open
/// element accumulates the fingerprint, the pending text run and the
/// child slice (on a shared stack, copied into a contiguous arena span
/// when the element closes).
class ArenaTreeBuilder {
 public:
  explicit ArenaTreeBuilder(ArenaDocument* doc) : doc_(doc) {}

  void StartElement(std::string_view tag,
                    const std::vector<StreamAttributeView>& attrs) {
    if (!frames_.empty()) FlushText(frames_.back());
    Arena& arena = ArenaDocumentBuilder::arena(*doc_);
    auto* element = new (arena.Allocate(sizeof(ArenaElement),
                                        alignof(ArenaElement))) ArenaElement();
    element->tag = arena.CopyString(tag);
    element->tag_id = InternTagCached(tag);
    if (!attrs.empty()) {
      auto* stored = arena.AllocateArray<ArenaAttribute>(attrs.size());
      for (size_t i = 0; i < attrs.size(); ++i) {
        stored[i].name = arena.CopyString(attrs[i].name);
        stored[i].value = arena.CopyString(attrs[i].value);
      }
      element->attrs = stored;
      element->attr_count = static_cast<uint32_t>(attrs.size());
    }
    frames_.push_back(Frame{
        element, child_stack_.size(),
        FingerprintAccumulator(FingerprintTagToken(element->tag_id, tag))});
  }

  void Text(std::string_view text) { pending_text_.append(text); }

  void EndElement() {
    Frame& frame = frames_.back();
    FlushText(frame);
    frame.fp.Close();
    ArenaElement* element = frame.element;
    element->fp_hi = frame.fp.hi;
    element->fp_lo = frame.fp.lo;
    element->element_count = frame.fp.element_count;
    size_t child_count = child_stack_.size() - frame.child_start;
    if (child_count > 0) {
      Arena& arena = ArenaDocumentBuilder::arena(*doc_);
      auto* children = arena.AllocateArray<ArenaChild>(child_count);
      std::copy(child_stack_.begin() + frame.child_start, child_stack_.end(),
                children);
      child_stack_.resize(frame.child_start);
      element->children = children;
      element->child_count = static_cast<uint32_t>(child_count);
    }
    frames_.pop_back();
    if (frames_.empty()) {
      ArenaDocumentBuilder::SetRoot(*doc_, element);
    } else {
      frames_.back().fp.AbsorbElement(element->fp_hi, element->fp_lo,
                                      element->element_count);
      child_stack_.push_back(ArenaChild{element, {}});
    }
  }

  void Doctype(std::string_view name, std::string_view subset) {
    ArenaDocumentBuilder::SetDoctype(*doc_, name, subset);
  }

 private:
  struct Frame {
    ArenaElement* element;
    size_t child_start;  // offset into child_stack_
    FingerprintAccumulator fp;
  };

  void FlushText(Frame& frame) {
    if (pending_text_.empty()) return;
    child_stack_.push_back(ArenaChild{
        nullptr, ArenaDocumentBuilder::arena(*doc_).CopyString(pending_text_)});
    frame.fp.AbsorbText();
    frame.element->has_text = true;
    pending_text_.clear();
  }

  ArenaDocument* doc_;
  std::vector<Frame> frames_;
  std::vector<ArenaChild> child_stack_;
  /// Merges consecutive non-blank runs (the reader never emits blank
  /// ones); always belongs to the innermost open frame and is flushed
  /// before any element starts or ends.
  std::string pending_text_;
};

}  // namespace

StatusOr<ArenaDocument> ArenaDocumentBuilder::Parse(std::string_view input) {
  ArenaDocument doc;
  ArenaTreeBuilder builder(&doc);
  StreamReader reader(input);
  StreamEvent event;
  while (true) {
    Status st = reader.Next(&event);
    if (!st.ok()) return st;
    switch (event.kind) {
      case StreamEventKind::kStartElement:
        builder.StartElement(event.name, reader.attributes());
        break;
      case StreamEventKind::kEndElement:
        builder.EndElement();
        break;
      case StreamEventKind::kText:
        builder.Text(event.text);
        break;
      case StreamEventKind::kDoctype:
        builder.Doctype(event.name, event.text);
        break;
      case StreamEventKind::kEndDocument:
        return doc;
    }
  }
}

StatusOr<ArenaDocument> ParseArenaDocument(std::string_view input) {
  return ArenaDocumentBuilder::Parse(input);
}

}  // namespace dtdevolve::xml
