#ifndef DTDEVOLVE_XML_STREAM_READER_H_
#define DTDEVOLVE_XML_STREAM_READER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/arena.h"

namespace dtdevolve::xml {

/// One structural event of the streaming parse.
enum class StreamEventKind {
  kStartElement,  // <name attr="v" ...> — attributes() holds the list
  kEndElement,    // </name>, or synthesized after a self-closing tag
  kText,          // one non-blank character-data run (entities decoded)
  kDoctype,       // <!DOCTYPE name [subset]> before the root
  kEndDocument,   // well-formed end of input; terminal
};

struct StreamAttributeView {
  std::string_view name;
  std::string_view value;
};

struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kEndDocument;
  /// Tag name (start/end element) or DOCTYPE name.
  std::string_view name;
  /// Text-run content / raw DOCTYPE internal subset.
  std::string_view text;
  /// True on the kStartElement of `<name/>`; the matching kEndElement is
  /// still delivered, so consumers always see balanced events.
  bool self_closing = false;
  /// 1-based source line of the event start.
  size_t line = 0;
};

/// Single-pass pull tokenizer + well-formedness checker over an
/// in-memory document: emits StartElement/EndElement/Text/Doctype events
/// directly from the input with no intermediate token vector, and
/// enforces the exact document discipline of `ParseDocument`
/// (element-depth bound, one root, matching end tags, no character data
/// outside the root, DOCTYPE only before content) so the event stream
/// always describes a well-formed tree. Comments and processing
/// instructions are validated and skipped; blank text runs are dropped —
/// both exactly as the DOM parser does, which the streaming-vs-DOM
/// differential suite and the fuzz harness lock in.
///
/// View lifetime: `name`, `text` and `attributes()` are valid until the
/// next `Next` call — names and raw runs point into the input, decoded
/// values into reader-owned scratch.
class StreamReader {
 public:
  explicit StreamReader(std::string_view input) : input_(input) {}

  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  /// Advances to the next event. After kEndDocument every further call
  /// returns kEndDocument again; after an error every further call
  /// returns the same error.
  Status Next(StreamEvent* event);

  /// Attributes of the most recent kStartElement, in document order.
  const std::vector<StreamAttributeView>& attributes() const {
    return attributes_;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Advance();
  bool Consume(char expected);
  bool ConsumeWord(std::string_view word);
  void SkipWhitespace();
  Status ErrorHere(std::string message);

  /// Lexes a name as a view into the input (names never need decoding).
  Status LexNameView(std::string_view* out);
  /// Decodes `raw` into `*out`: a direct input view when it holds no
  /// entity, else an unescaped copy in `scratch`.
  Status DecodeInto(std::string_view raw, std::string* scratch,
                    std::string_view* out, size_t at_line);

  Status LexText(StreamEvent* event, bool* emitted);
  Status LexMarkup(StreamEvent* event, bool* emitted);
  Status LexStartTag(StreamEvent* event);
  Status LexEndTag(StreamEvent* event);
  Status LexDoctype(StreamEvent* event);

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;

  /// Open-element tag names (views into the input), innermost last.
  std::vector<std::string_view> open_;
  bool has_root_ = false;
  bool done_ = false;
  Status error_ = Status::Ok();

  /// Synthesized kEndElement pending after a self-closing start tag.
  bool pending_end_ = false;
  std::string_view pending_end_name_;

  std::vector<StreamAttributeView> attributes_;
  /// Decoded attribute values of the current start tag, behind stable
  /// heap addresses so views survive the vector growing.
  std::vector<std::unique_ptr<std::string>> attr_scratch_;
  std::string text_scratch_;
};

/// Parses `input` in one streaming pass into an arena-allocated tree:
/// tags interned during the scan, children as contiguous spans, subtree
/// fingerprints accumulated bottom-up (bit-identical to
/// `similarity::SubtreeFingerprints` over the DOM parse of the same
/// input), text presence recorded per element. Accepts and rejects
/// exactly the inputs `ParseDocument` does.
StatusOr<ArenaDocument> ParseArenaDocument(std::string_view input);

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_STREAM_READER_H_
