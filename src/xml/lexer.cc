#include "xml/lexer.h"

#include <cctype>

#include "xml/text.h"

namespace dtdevolve::xml {

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') ++line_;
  return c;
}

bool Lexer::Consume(char expected) {
  if (AtEnd() || Peek() != expected) return false;
  Advance();
  return true;
}

bool Lexer::ConsumeWord(std::string_view word) {
  if (input_.substr(pos_, word.size()) != word) return false;
  for (size_t i = 0; i < word.size(); ++i) Advance();
  return true;
}

void Lexer::SkipWhitespace() {
  while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
    Advance();
  }
}

Status Lexer::ErrorHere(std::string message) const {
  return Status::ParseError("line " + std::to_string(line_) + ": " +
                            std::move(message));
}

StatusOr<std::string> Lexer::LexName() {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return ErrorHere("expected a name");
  }
  std::string name;
  while (!AtEnd() && IsNameChar(Peek())) name += Advance();
  return name;
}

StatusOr<std::string> Lexer::LexQuotedValue() {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return ErrorHere("expected a quoted attribute value");
  }
  char quote = Advance();
  std::string raw;
  while (!AtEnd() && Peek() != quote) raw += Advance();
  if (!Consume(quote)) return ErrorHere("unterminated attribute value");
  StatusOr<std::string> decoded = UnescapeText(raw);
  if (!decoded.ok()) return ErrorHere(decoded.status().message());
  return std::move(decoded).value();
}

StatusOr<Token> Lexer::Next() {
  if (AtEnd()) {
    Token token;
    token.kind = Token::Kind::kEof;
    token.line = line_;
    return token;
  }
  if (Peek() == '<') {
    Advance();
    return LexMarkup();
  }
  return LexText();
}

StatusOr<Token> Lexer::LexText() {
  Token token;
  token.kind = Token::Kind::kText;
  token.line = line_;
  std::string raw;
  while (!AtEnd() && Peek() != '<') raw += Advance();
  StatusOr<std::string> decoded = UnescapeText(raw);
  if (!decoded.ok()) return ErrorHere(decoded.status().message());
  token.text = std::move(decoded).value();
  return token;
}

StatusOr<Token> Lexer::LexMarkup() {
  if (AtEnd()) return ErrorHere("unexpected end of input after '<'");
  if (Peek() == '!') {
    Advance();
    return LexBang();
  }
  if (Peek() == '?') {
    Advance();
    Token token;
    token.kind = Token::Kind::kPi;
    token.line = line_;
    StatusOr<std::string> name = LexName();
    if (!name.ok()) return name.status();
    token.name = std::move(name).value();
    while (!AtEnd()) {
      if (Peek() == '?' && pos_ + 1 < input_.size() &&
          input_[pos_ + 1] == '>') {
        Advance();
        Advance();
        return token;
      }
      token.text += Advance();
    }
    return ErrorHere("unterminated processing instruction");
  }
  if (Peek() == '/') {
    Advance();
    Token token;
    token.kind = Token::Kind::kEndTag;
    token.line = line_;
    StatusOr<std::string> name = LexName();
    if (!name.ok()) return name.status();
    token.name = std::move(name).value();
    SkipWhitespace();
    if (!Consume('>')) return ErrorHere("expected '>' in end tag");
    return token;
  }
  return LexStartTag();
}

StatusOr<Token> Lexer::LexBang() {
  if (ConsumeWord("--")) {
    Token token;
    token.kind = Token::Kind::kComment;
    token.line = line_;
    while (!AtEnd()) {
      if (input_.substr(pos_, 3) == "-->") {
        Advance();
        Advance();
        Advance();
        return token;
      }
      token.text += Advance();
    }
    return ErrorHere("unterminated comment");
  }
  if (ConsumeWord("[CDATA[")) {
    Token token;
    token.kind = Token::Kind::kText;
    token.line = line_;
    while (!AtEnd()) {
      if (input_.substr(pos_, 3) == "]]>") {
        Advance();
        Advance();
        Advance();
        return token;
      }
      token.text += Advance();
    }
    return ErrorHere("unterminated CDATA section");
  }
  if (ConsumeWord("DOCTYPE")) {
    return LexDoctype();
  }
  return ErrorHere("unrecognized markup declaration");
}

StatusOr<Token> Lexer::LexDoctype() {
  Token token;
  token.kind = Token::Kind::kDoctype;
  token.line = line_;
  SkipWhitespace();
  StatusOr<std::string> name = LexName();
  if (!name.ok()) return name.status();
  token.name = std::move(name).value();
  // Skip external id (SYSTEM/PUBLIC with quoted literals) if present.
  SkipWhitespace();
  while (!AtEnd() && Peek() != '[' && Peek() != '>') {
    if (Peek() == '"' || Peek() == '\'') {
      char quote = Advance();
      while (!AtEnd() && Peek() != quote) Advance();
      if (!Consume(quote)) return ErrorHere("unterminated literal in DOCTYPE");
    } else {
      Advance();
    }
  }
  if (Consume('[')) {
    // Capture the internal subset verbatim; it is parsed by the DTD parser.
    int depth = 1;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
        if (depth == 0) {
          Advance();
          break;
        }
      }
      token.text += Advance();
    }
    if (depth != 0) return ErrorHere("unterminated DOCTYPE internal subset");
    SkipWhitespace();
  }
  if (!Consume('>')) return ErrorHere("expected '>' closing DOCTYPE");
  return token;
}

StatusOr<Token> Lexer::LexStartTag() {
  Token token;
  token.kind = Token::Kind::kStartTag;
  token.line = line_;
  StatusOr<std::string> name = LexName();
  if (!name.ok()) return name.status();
  token.name = std::move(name).value();
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return ErrorHere("unterminated start tag");
    if (Consume('>')) return token;
    if (Peek() == '/') {
      Advance();
      if (!Consume('>')) return ErrorHere("expected '>' after '/'");
      token.self_closing = true;
      return token;
    }
    StatusOr<std::string> attr_name = LexName();
    if (!attr_name.ok()) return attr_name.status();
    SkipWhitespace();
    if (!Consume('=')) return ErrorHere("expected '=' after attribute name");
    SkipWhitespace();
    StatusOr<std::string> attr_value = LexQuotedValue();
    if (!attr_value.ok()) return attr_value.status();
    token.attributes.push_back(
        {std::move(attr_name).value(), std::move(attr_value).value()});
  }
}

}  // namespace dtdevolve::xml
