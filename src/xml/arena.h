#ifndef DTDEVOLVE_XML_ARENA_H_
#define DTDEVOLVE_XML_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "xml/document.h"

namespace dtdevolve::xml {

/// Bump-pointer allocator backing one `ArenaDocument`. Everything the
/// streaming parser produces — element nodes, attribute and child spans,
/// every string (tags, attribute names/values, text runs) — lives in the
/// arena's chunks, so a parsed document is destroyed in O(chunks) frees
/// instead of one `delete` per node, and tree construction never touches
/// the global allocator per node.
///
/// Lifetime rule: views handed out by an `ArenaElement` point into the
/// arena. Chunks are heap blocks owned by the arena, so moving an
/// `ArenaDocument` (which moves the arena) never invalidates them; they
/// die with the document. Nothing points back into the parsed input text,
/// which the caller may discard as soon as parsing returns.
class Arena {
 public:
  Arena() = default;
  /// Returns default-size chunks to a bounded thread-local pool, so a
  /// parse-per-document loop reuses warm chunks instead of paying a heap
  /// round-trip (and the attendant page faults) per document.
  ~Arena();

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` objects of `T`, properly aligned.
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Copies `text` into the arena; the returned view is stable for the
  /// arena's lifetime. Empty input yields an empty view without
  /// allocating.
  std::string_view CopyString(std::string_view text);

  /// Bytes handed out to callers (the document's live footprint).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Bytes reserved from the heap (chunk footprint, ≥ bytes_allocated).
  size_t bytes_reserved() const { return bytes_reserved_; }

  void* Allocate(size_t bytes, size_t align);

 private:
  static constexpr size_t kDefaultChunkBytes = 32 * 1024;

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void NewChunk(size_t min_bytes);

  std::vector<Chunk> chunks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

struct ArenaElement;

/// An attribute as it appeared on a start tag (views into the arena).
struct ArenaAttribute {
  std::string_view name;
  std::string_view value;
};

/// One child slot of an element, in document order: an element, or —
/// when `element` is null — one non-blank text run. Consecutive
/// non-blank runs (e.g. split by a comment or a CDATA boundary) are
/// pre-merged into a single slot at parse time; blank runs are dropped,
/// exactly as the DOM parser drops them. Both are equivalence-preserving
/// for everything downstream reads (content symbols, concatenated text,
/// structural equality, fingerprints).
struct ArenaChild {
  const ArenaElement* element = nullptr;
  std::string_view text;

  bool is_element() const { return element != nullptr; }
};

/// An element of an arena tree: tag + interned id, attribute and child
/// spans (contiguous, arena-resident), and the per-subtree facts the
/// single streaming pass already knows — the 128-bit structural
/// fingerprint (bit-identical to `similarity::SubtreeFingerprints` over
/// the equivalent DOM tree), the subtree element count, and whether any
/// direct text child exists (what `Element::HasTextContent` re-scans for
/// on every call).
struct ArenaElement {
  std::string_view tag;
  /// Dense id in `util::GlobalSymbols()`; `util::SymbolTable::kNoSymbol`
  /// past the table's bound, with the same fall-back-to-string contract
  /// as `Element::tag_id`.
  int32_t tag_id = -1;

  const ArenaAttribute* attrs = nullptr;
  uint32_t attr_count = 0;
  const ArenaChild* children = nullptr;
  uint32_t child_count = 0;

  /// Structural subtree fingerprint (see xml/fingerprint.h).
  uint64_t fp_hi = 0;
  uint64_t fp_lo = 0;
  /// Elements in this subtree, including this one.
  uint32_t element_count = 1;
  /// True iff the element has a (non-blank) direct text child — known at
  /// parse time, no child scan needed.
  bool has_text = false;

  struct AttributeRange {
    const ArenaAttribute* begin_;
    const ArenaAttribute* end_;
    const ArenaAttribute* begin() const { return begin_; }
    const ArenaAttribute* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
  };
  AttributeRange attributes() const { return {attrs, attrs + attr_count}; }

  struct ChildRange {
    const ArenaChild* begin_;
    const ArenaChild* end_;
    const ArenaChild* begin() const { return begin_; }
    const ArenaChild* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
  };
  ChildRange child_nodes() const { return {children, children + child_count}; }

  /// Allocation-free iteration over direct child *elements*.
  class ChildElementIterator {
   public:
    ChildElementIterator(const ArenaChild* pos, const ArenaChild* end)
        : pos_(pos), end_(end) {
      SkipText();
    }
    const ArenaElement& operator*() const { return *pos_->element; }
    const ArenaElement* operator->() const { return pos_->element; }
    ChildElementIterator& operator++() {
      ++pos_;
      SkipText();
      return *this;
    }
    friend bool operator==(const ChildElementIterator& a,
                           const ChildElementIterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    void SkipText() {
      while (pos_ != end_ && !pos_->is_element()) ++pos_;
    }
    const ArenaChild* pos_;
    const ArenaChild* end_;
  };
  struct ChildElementRange {
    const ArenaChild* begin_;
    const ArenaChild* end_;
    ChildElementIterator begin() const { return {begin_, end_}; }
    ChildElementIterator end() const { return {end_, end_}; }
  };
  ChildElementRange child_elements() const {
    return {children, children + child_count};
  }
};

/// A document parsed by the streaming path: DOCTYPE info plus the root
/// element, all storage owned by the embedded arena. Move-only, like
/// `xml::Document`; moving never invalidates any view into the tree.
class ArenaDocument {
 public:
  ArenaDocument() = default;

  ArenaDocument(ArenaDocument&&) = default;
  ArenaDocument& operator=(ArenaDocument&&) = default;

  bool has_root() const { return root_ != nullptr; }
  const ArenaElement& root() const { return *root_; }

  std::string_view doctype_name() const { return doctype_name_; }
  std::string_view internal_subset() const { return internal_subset_; }

  const Arena& arena() const { return arena_; }

  /// Conversion shim for DOM-only consumers (repository, persistence,
  /// oracle, tests): materializes an equivalent `xml::Document`. Adjacent
  /// text runs arrive pre-merged, so the result can have fewer `Text`
  /// children than a direct DOM parse of the same input — every
  /// structural reader (content symbols, `TextContent`,
  /// `StructurallyEqual`, fingerprints) sees identical values.
  Document ToDocument() const;

 private:
  friend class ArenaDocumentBuilder;

  Arena arena_;
  const ArenaElement* root_ = nullptr;
  std::string_view doctype_name_;
  std::string_view internal_subset_;
};

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_ARENA_H_
