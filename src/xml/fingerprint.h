#ifndef DTDEVOLVE_XML_FINGERPRINT_H_
#define DTDEVOLVE_XML_FINGERPRINT_H_

#include <cstdint>
#include <functional>
#include <string_view>

namespace dtdevolve::xml {

// Primitives of the 128-bit structural subtree fingerprint. Both tree
// representations hash with these — `similarity::SubtreeFingerprints`
// walking a DOM bottom-up, and the streaming arena parser accumulating
// per-frame during the scan — and the two MUST stay bit-identical: the
// score cache and the classification memo key on the fingerprint, so a
// divergence would silently alias entries across parse paths. The
// differential oracle's parse-path invariant asserts the equality on
// every scenario document.

/// splitmix64-style absorption: deterministic, well-mixed, cheap.
inline uint64_t FingerprintMix64(uint64_t h, uint64_t v) {
  h += 0x9E3779B97F4A7C15ull + v;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

/// Marker absorbed for a collapsed text run; chosen to never collide with
/// a small non-negative tag id.
inline constexpr uint64_t kFingerprintPcdataMarker = 0xF1E2D3C4B5A69788ull;
/// Marker closing a child list, so (a,(b)) and (a,b) hash differently.
inline constexpr uint64_t kFingerprintEndMarker = 0x123456789ABCDEF0ull;
/// Seed distinguishing string-hashed tag tokens from dense ids.
inline constexpr uint64_t kFingerprintOverflowTagSeed = 0xA24BAED4963EE407ull;
/// Seeds of the two independent lanes; together they form the 128-bit
/// fingerprint, making accidental collisions across a cache lifetime
/// negligible.
inline constexpr uint64_t kFingerprintHiSeed = 0x8A5CD789635D2DFFull;
inline constexpr uint64_t kFingerprintLoSeed = 0x121FD2155C472F96ull;

/// The value a tag absorbs into the fingerprint. Past the symbol table's
/// capacity distinct tags share the kNoSymbol sentinel, so the id alone
/// would fingerprint structurally different subtrees identically and
/// alias their cached triples — hash the tag string instead.
inline uint64_t FingerprintTagToken(int32_t tag_id, std::string_view tag) {
  if (tag_id >= 0) {
    return static_cast<uint64_t>(tag_id);
  }
  return FingerprintMix64(kFingerprintOverflowTagSeed,
                          std::hash<std::string_view>{}(tag));
}

/// Running fingerprint of one element whose children arrive in document
/// order — the streaming-pass form of `SubtreeFingerprints::Compute`.
/// Usage: construct from the tag token when the element opens, absorb
/// each child as it closes (`AbsorbElement` / `AbsorbText`, blank text
/// already dropped by the caller), then `Close()` once.
struct FingerprintAccumulator {
  uint64_t hi = 0;
  uint64_t lo = 0;
  uint32_t element_count = 1;
  bool last_was_text = false;

  explicit FingerprintAccumulator(uint64_t tag_token)
      : hi(FingerprintMix64(kFingerprintHiSeed, tag_token)),
        lo(FingerprintMix64(kFingerprintLoSeed, ~tag_token)) {}

  void AbsorbElement(uint64_t child_hi, uint64_t child_lo,
                     uint32_t child_count) {
    hi = FingerprintMix64(hi, child_hi);
    lo = FingerprintMix64(lo, child_lo);
    element_count += child_count;
    last_was_text = false;
  }

  /// Mirror the ContentSymbols collapse rules exactly: blank text skipped
  /// (caller's job), consecutive non-blank text runs count once.
  void AbsorbText() {
    if (!last_was_text) {
      hi = FingerprintMix64(hi, kFingerprintPcdataMarker);
      lo = FingerprintMix64(lo, ~kFingerprintPcdataMarker);
    }
    last_was_text = true;
  }

  void Close() {
    hi = FingerprintMix64(hi, kFingerprintEndMarker);
    lo = FingerprintMix64(lo, ~kFingerprintEndMarker);
  }
};

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_FINGERPRINT_H_
