#include "xml/parser.h"

#include <memory>
#include <vector>

#include "util/string_util.h"
#include "xml/lexer.h"

namespace dtdevolve::xml {

namespace {

/// Element-nesting bound. Tree construction itself is iterative, but the
/// tree is later walked (and destroyed) recursively, so a pathologically
/// deep document would overflow the stack long after parsing succeeded.
/// Real documents stay far below this; crafted ones get a clean error.
constexpr size_t kMaxElementDepth = 512;

/// Builds the element tree from the token stream. `open` is the stack of
/// currently open elements; the document root is set when the outermost
/// element closes.
Status BuildTree(Lexer& lexer, Document& doc) {
  std::vector<Element*> open;
  while (true) {
    StatusOr<Token> next = lexer.Next();
    if (!next.ok()) return next.status();
    Token& token = *next;
    switch (token.kind) {
      case Token::Kind::kEof:
        if (!open.empty()) {
          return Status::ParseError("unexpected end of input: <" +
                                    open.back()->tag() + "> is not closed");
        }
        if (!doc.has_root()) {
          return Status::ParseError("document has no root element");
        }
        return Status::Ok();
      case Token::Kind::kStartTag: {
        if (open.empty() && doc.has_root()) {
          return Status::ParseError(
              "line " + std::to_string(token.line) +
              ": multiple root elements (second is <" + token.name + ">)");
        }
        if (open.size() >= kMaxElementDepth) {
          return Status::ParseError(
              "line " + std::to_string(token.line) +
              ": elements nested deeper than " +
              std::to_string(kMaxElementDepth));
        }
        auto element = std::make_unique<Element>(token.name);
        for (Attribute& attr : token.attributes) {
          element->AddAttribute(std::move(attr.name), std::move(attr.value));
        }
        Element* raw = element.get();
        if (open.empty()) {
          doc.set_root(std::move(element));
        } else {
          open.back()->AddChild(std::move(element));
        }
        if (!token.self_closing) open.push_back(raw);
        break;
      }
      case Token::Kind::kEndTag: {
        if (open.empty()) {
          return Status::ParseError("line " + std::to_string(token.line) +
                                    ": unmatched end tag </" + token.name +
                                    ">");
        }
        if (open.back()->tag() != token.name) {
          return Status::ParseError("line " + std::to_string(token.line) +
                                    ": end tag </" + token.name +
                                    "> does not match open <" +
                                    open.back()->tag() + ">");
        }
        open.pop_back();
        break;
      }
      case Token::Kind::kText: {
        if (open.empty()) {
          if (!IsBlank(token.text)) {
            return Status::ParseError("line " + std::to_string(token.line) +
                                      ": character data outside root element");
          }
          break;
        }
        if (!IsBlank(token.text)) {
          open.back()->AddText(std::move(token.text));
        }
        break;
      }
      case Token::Kind::kComment:
      case Token::Kind::kPi:
        break;  // ignored
      case Token::Kind::kDoctype:
        if (doc.has_root() || !open.empty()) {
          return Status::ParseError("line " + std::to_string(token.line) +
                                    ": DOCTYPE after content");
        }
        doc.set_doctype_name(std::move(token.name));
        doc.set_internal_subset(std::move(token.text));
        break;
    }
  }
}

}  // namespace

StatusOr<Document> ParseDocument(std::string_view input) {
  Lexer lexer(input);
  Document doc;
  Status st = BuildTree(lexer, doc);
  if (!st.ok()) return st;
  return doc;
}

StatusOr<Document> ParseElementFragment(std::string_view input) {
  StatusOr<Document> doc = ParseDocument(input);
  if (!doc.ok()) return doc.status();
  if (!doc->doctype_name().empty()) {
    return Status::ParseError("fragment must not contain a DOCTYPE");
  }
  return doc;
}

}  // namespace dtdevolve::xml
