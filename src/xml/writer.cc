#include "xml/writer.h"

#include "util/string_util.h"
#include "xml/text.h"

namespace dtdevolve::xml {

namespace {

void WriteIndent(std::string& out, const WriteOptions& options, int depth) {
  if (!options.indent) return;
  out += '\n';
  out.append(static_cast<size_t>(depth) * options.indent_width, ' ');
}

void WriteElementRec(const Element& element, const WriteOptions& options,
                     int depth, std::string& out) {
  out += '<';
  out += element.tag();
  for (const Attribute& attr : element.attributes()) {
    out += ' ';
    out += attr.name;
    out += "=\"";
    out += EscapeText(attr.value);
    out += '"';
  }
  if (element.children().empty()) {
    out += "/>";
    return;
  }
  out += '>';
  // Elements whose children are all text are written inline; mixed or
  // element content is indented one level per depth.
  bool all_text = true;
  for (const auto& child : element.children()) {
    if (!child->is_text()) {
      all_text = false;
      break;
    }
  }
  if (all_text) {
    for (const auto& child : element.children()) {
      out += EscapeText(static_cast<const Text&>(*child).value());
    }
  } else {
    for (const auto& child : element.children()) {
      WriteIndent(out, options, depth + 1);
      if (child->is_text()) {
        out += EscapeText(static_cast<const Text&>(*child).value());
      } else {
        WriteElementRec(child->AsElement(), options, depth + 1, out);
      }
    }
    WriteIndent(out, options, depth);
  }
  out += "</";
  out += element.tag();
  out += '>';
}

}  // namespace

std::string WriteElement(const Element& element, const WriteOptions& options) {
  std::string out;
  WriteElementRec(element, options, 0, out);
  return out;
}

std::string WriteDocument(const Document& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\"?>";
    if (options.indent) out += '\n';
  }
  if (!doc.doctype_name().empty()) {
    out += "<!DOCTYPE ";
    out += doc.doctype_name();
    if (!doc.internal_subset().empty()) {
      out += " [";
      out += doc.internal_subset();
      out += ']';
    }
    out += '>';
    if (options.indent) out += '\n';
  }
  if (doc.has_root()) {
    WriteElementRec(doc.root(), options, 0, out);
  }
  return out;
}

}  // namespace dtdevolve::xml
