#include "xml/text.h"

#include <cctype>

namespace dtdevolve::xml {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsValidName(std::string_view name) {
  if (name.empty() || !IsNameStartChar(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

StatusOr<std::string> UnescapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    size_t end = text.find(';', i + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view name = text.substr(i + 1, end - i - 1);
    if (name == "amp") {
      out += '&';
    } else if (name == "lt") {
      out += '<';
    } else if (name == "gt") {
      out += '>';
    } else if (name == "quot") {
      out += '"';
    } else if (name == "apos") {
      out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits = name.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) {
        return Status::ParseError("empty character reference");
      }
      int value = 0;
      for (char d : digits) {
        int digit;
        if (d >= '0' && d <= '9') {
          digit = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          digit = d - 'a' + 10;
        } else if (base == 16 && d >= 'A' && d <= 'F') {
          digit = d - 'A' + 10;
        } else {
          return Status::ParseError("malformed character reference: &" +
                                    std::string(name) + ";");
        }
        value = value * base + digit;
        if (value > 0x10FFFF) {
          return Status::ParseError("character reference out of range");
        }
      }
      if (value > 0x7F) {
        // Encode as UTF-8.
        if (value <= 0x7FF) {
          out += static_cast<char>(0xC0 | (value >> 6));
          out += static_cast<char>(0x80 | (value & 0x3F));
        } else if (value <= 0xFFFF) {
          out += static_cast<char>(0xE0 | (value >> 12));
          out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (value & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (value >> 18));
          out += static_cast<char>(0x80 | ((value >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (value & 0x3F));
        }
      } else {
        out += static_cast<char>(value);
      }
    } else {
      return Status::ParseError("unknown entity reference: &" +
                                std::string(name) + ";");
    }
    i = end + 1;
  }
  return out;
}

}  // namespace dtdevolve::xml
