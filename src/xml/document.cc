#include "xml/document.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace dtdevolve::xml {

const Element& Node::AsElement() const {
  assert(is_element());
  return static_cast<const Element&>(*this);
}

Element& Node::AsElement() {
  assert(is_element());
  return static_cast<Element&>(*this);
}

const std::string* Element::FindAttribute(std::string_view name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

Node& Element::AddChild(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::AddElement(std::string tag) {
  return AddChild(std::make_unique<Element>(std::move(tag))).AsElement();
}

Text& Element::AddText(std::string value) {
  Node& node = AddChild(std::make_unique<Text>(std::move(value)));
  return static_cast<Text&>(node);
}

std::vector<const Element*> Element::ChildElements() const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (child->is_element()) out.push_back(&child->AsElement());
  }
  return out;
}

std::vector<Element*> Element::ChildElements() {
  std::vector<Element*> out;
  for (auto& child : children_) {
    if (child->is_element()) out.push_back(&child->AsElement());
  }
  return out;
}

std::set<std::string> Element::ChildTagSet() const {
  std::set<std::string> out;
  for (const auto& child : children_) {
    if (child->is_element()) out.insert(child->AsElement().tag());
  }
  return out;
}

std::vector<std::string> Element::ChildTagSequence() const {
  std::vector<std::string> out;
  for (const auto& child : children_) {
    if (child->is_element()) out.push_back(child->AsElement().tag());
  }
  return out;
}

bool Element::HasTextContent() const {
  for (const auto& child : children_) {
    if (child->is_text() &&
        !IsBlank(static_cast<const Text&>(*child).value())) {
      return true;
    }
  }
  return false;
}

std::string Element::TextContent() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->is_text()) out += static_cast<const Text&>(*child).value();
  }
  return out;
}

size_t Element::SubtreeElementCount() const {
  size_t count = 1;
  for (const auto& child : children_) {
    if (child->is_element()) {
      count += child->AsElement().SubtreeElementCount();
    }
  }
  return count;
}

size_t Element::SubtreeHeight() const {
  size_t best = 0;
  for (const auto& child : children_) {
    if (child->is_element()) {
      best = std::max(best, child->AsElement().SubtreeHeight());
    }
  }
  return best + 1;
}

std::unique_ptr<Node> Element::Clone() const { return CloneElement(); }

std::unique_ptr<Element> Element::CloneElement() const {
  auto copy = std::make_unique<Element>(tag_);
  copy->attributes_ = attributes_;
  copy->children_.reserve(children_.size());
  for (const auto& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  return copy;
}

Document Document::Clone() const {
  Document copy;
  copy.doctype_name_ = doctype_name_;
  copy.internal_subset_ = internal_subset_;
  if (root_) copy.root_ = root_->CloneElement();
  return copy;
}

bool StructurallyEqual(const Element& a, const Element& b) {
  if (a.tag() != b.tag()) return false;
  if (a.attributes() != b.attributes()) return false;
  Element::ChildElementRange ra = a.child_elements();
  Element::ChildElementRange rb = b.child_elements();
  auto ia = ra.begin();
  auto ib = rb.begin();
  for (; ia != ra.end() && ib != rb.end(); ++ia, ++ib) {
    if (!StructurallyEqual(*ia, *ib)) return false;
  }
  if (ia != ra.end() || ib != rb.end()) return false;
  return StripWhitespace(a.TextContent()) == StripWhitespace(b.TextContent());
}

}  // namespace dtdevolve::xml
